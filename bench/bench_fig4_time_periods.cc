// Reproduces Figure 4: "Different Time Periods" — for each discretization
// granularity of the one-year study window, the number of periods and the
// percentage of non-empty periods.
//
// Non-emptiness follows the paper's motivation ("many time segments were
// empty after discretization ... each period should contain enough data to
// compute affinities"): a (user, period) cell is non-empty when the user
// liked at least one page inside the period; the reported percentage is the
// share of non-empty cells.
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "timeline/period.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PageLikeLog& likes = ctx.study.likes;
  const Timestamp start = ctx.study.periods.start();
  const Timestamp end = ctx.study.periods.end();

  TablePrinter table("Figure 4: Different Time Periods (one study year)");
  table.SetColumns({"granularity", "# of periods", "non-empty periods (%)"});
  for (const Granularity g : AllGranularities()) {
    const Timeline timeline = Timeline::WithGranularity(start, end, g);
    std::size_t nonempty = 0;
    std::size_t cells = 0;
    for (UserId u = 0; u < likes.num_users(); ++u) {
      for (const Period& p : timeline.periods()) {
        nonempty += likes.EventCountInPeriod(u, p) > 0 ? 1u : 0u;
        ++cells;
      }
    }
    const double pct =
        100.0 * static_cast<double>(nonempty) / static_cast<double>(cells);
    table.AddRow({GranularityName(g),
                  TablePrinter::Cell(timeline.num_periods()),
                  TablePrinter::Cell(pct, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (%, #): Week 26.01/53, Month 54.35/12, "
               "Two-Month 67.4/6, Season 77.18/4, Half-Year 97.83/2.\n"
            << "Two-month periods balance non-emptiness against period count "
               "and are used everywhere else (paper §4.2.1).\n";
  return 0;
}
