// Group formation as the serving runtime's first consumer: the end-to-end
// demo for src/groups/formation_pipeline.h.
//
// Over a synthetic SCALE population (dataset/synthetic.h), the bench
//   1. forms groups — sample a cohort, k-means taste clusters, greedy
//      builds cycling through the five formation strategies;
//   2. serves every formed group in ONE planned, parallel RecommendBatch
//      call on a ShardedEngine (the unified serving runtime,
//      serve/batch_executor.h);
//   3. scores each group's list with the ground-truth SatisfactionOracle
//      (the scale generator's latent preference model IS the truth).
//
// Reported per strategy: groups formed, mean/min/max satisfaction — the
// paper's formation question ("which grouping strategy yields groups the
// recommender can satisfy?") answered with the batch path, plus the batch
// planner's dedup/attribution stats for the formation workload shape.
//
// Output: a table plus BENCH_formation.json (override with
// GRECA_BENCH_FORMATION_JSON). Env knobs: GRECA_BENCH_SMALL=1 (smoke
// scale), GRECA_FORM_USERS, GRECA_FORM_ITEMS, GRECA_FORM_GROUPS,
// GRECA_FORM_COHORT, GRECA_FORM_SHARDS.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "groups/formation_pipeline.h"
#include "shard/sharded_engine.h"

namespace {

using namespace greca;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
    std::cerr << "ignoring " << name << "='" << env
              << "' (expected a positive integer)\n";
  }
  return fallback;
}

struct StrategyStats {
  std::size_t groups = 0;
  double sum_pct = 0.0;
  double min_pct = 0.0;
  double max_pct = 0.0;
};

}  // namespace

int main() {
  const bool small = std::getenv("GRECA_BENCH_SMALL") != nullptr;
  ScaleRatingsConfig sc;
  sc.num_users = EnvSize("GRECA_FORM_USERS", small ? 20'000 : 200'000);
  sc.num_items = EnvSize("GRECA_FORM_ITEMS", small ? 4'000 : 20'000);
  sc.seed = 29;

  FormationPipelineConfig fc;
  fc.num_groups = EnvSize("GRECA_FORM_GROUPS", small ? 40 : 200);
  fc.candidate_users = EnvSize("GRECA_FORM_COHORT", small ? 1'000 : 4'000);
  fc.group_size = 5;
  fc.num_clusters = small ? 4 : 8;
  fc.num_feature_items = small ? 32 : 48;
  fc.seed = 19;
  const std::size_t num_shards = EnvSize("GRECA_FORM_SHARDS", 4);
  const std::size_t pool_size = small ? 128 : 256;

  std::cout << "bench_formation: generating " << sc.num_users << " users x "
            << sc.num_items << " items (scale dataset)...\n";
  Stopwatch gen_watch;
  const SyntheticRatings scale = GenerateScaleRatings(sc);
  const RatingGroundTruth& truth = scale.truth;
  auto base = std::make_shared<const RatingsDataset>(scale.dataset);
  std::cout << "  " << base->num_ratings() << " ratings in "
            << gen_watch.ElapsedSeconds() << "s\n";

  // Same serving stack as bench_shard: truth-backed PoolPredictor (own
  // rating where one exists, latent preference everywhere else), constant
  // affinity (scale populations carry no social signal).
  const PoolPredictor predictor =
      [&truth](UserId u, std::span<const UserRatingEntry> merged,
               std::span<const ItemId> pool, std::span<Score> out) {
        for (std::size_t k = 0; k < pool.size(); ++k) {
          const ItemId item = pool[k];
          const auto it = std::lower_bound(
              merged.begin(), merged.end(), item,
              [](const UserRatingEntry& e, ItemId i) { return e.item < i; });
          out[k] = (it != merged.end() && it->item == item)
                       ? it->rating
                       : truth.TruePreference(u, item);
        }
      };
  ShardedEngineInputs inputs;
  inputs.ratings = base;
  inputs.affinity = std::make_shared<const ConstantAffinitySource>(
      sc.num_users, /*num_periods=*/1, /*static_value=*/1.0,
      /*periodic_value=*/1.0);
  inputs.predictor = predictor;
  inputs.pool = base->TopPopularItems(pool_size);
  inputs.num_universe_items = base->num_items();
  inputs.num_periods = 1;
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  Stopwatch build_watch;
  const ShardedEngine engine(std::move(inputs), options);
  std::cout << "built " << num_shards << "-shard engine in "
            << build_watch.ElapsedSeconds() << "s\n";

  // Stage 1-3: form.
  Stopwatch form_watch;
  const FormationPipeline pipeline(
      *base, [](UserId, UserId) { return 1.0; }, fc);
  const std::vector<FormedGroup> groups = pipeline.FormGroups();
  const double form_seconds = form_watch.ElapsedSeconds();
  std::cout << "formed " << groups.size() << " groups (cohort "
            << fc.candidate_users << ", " << fc.num_clusters
            << " clusters) in " << form_seconds << "s\n";

  // Stage 4: one planned parallel batch through the serving runtime.
  QuerySpec spec;
  spec.k = 10;
  spec.model = AffinityModelSpec::TimeAgnostic();
  spec.algorithm = Algorithm::kGreca;
  spec.num_candidate_items = engine.pool().size();
  spec.eval_period = 0;
  const std::vector<Query> queries =
      FormationPipeline::MakeQueries(groups, spec);
  BatchReport report;
  Stopwatch serve_watch;
  const auto results = engine.RecommendBatch(queries, &report);
  const double serve_seconds = serve_watch.ElapsedSeconds();
  std::cout << "served " << queries.size() << " group queries in "
            << serve_seconds << "s (" << report.num_buckets
            << " buckets, planned=" << (report.planned ? "true" : "false")
            << ")\n";

  // Stage 5: ground-truth satisfaction.
  const SatisfactionOracle oracle(truth);
  const FormationScore score =
      ScoreFormedGroups(oracle, groups, results, /*period=*/0);

  constexpr std::size_t kNumStrategies = 5;
  std::array<StrategyStats, kNumStrategies> per_strategy{};
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const double pct = score.per_group_pct[i];
    if (pct < 0.0) continue;  // failed group
    StrategyStats& s =
        per_strategy[static_cast<std::size_t>(groups[i].strategy)];
    if (s.groups == 0) {
      s.min_pct = s.max_pct = pct;
    } else {
      s.min_pct = std::min(s.min_pct, pct);
      s.max_pct = std::max(s.max_pct, pct);
    }
    ++s.groups;
    s.sum_pct += pct;
  }

  TablePrinter table("Formation round trip: satisfaction by strategy (" +
                     std::to_string(groups.size()) + " groups, " +
                     std::to_string(sc.num_users) + " users)");
  table.SetColumns(
      {"strategy", "groups", "mean sat %", "min sat %", "max sat %"});
  for (std::size_t s = 0; s < kNumStrategies; ++s) {
    const StrategyStats& st = per_strategy[s];
    const double mean =
        st.groups > 0 ? st.sum_pct / static_cast<double>(st.groups) : 0.0;
    table.AddRow({FormationStrategyName(static_cast<FormationStrategy>(s)),
                  std::to_string(st.groups), TablePrinter::Cell(mean, 2),
                  TablePrinter::Cell(st.min_pct, 2),
                  TablePrinter::Cell(st.max_pct, 2)});
  }
  table.Print(std::cout);
  std::cout << "overall: mean=" << score.mean_satisfaction_pct
            << "% min=" << score.min_satisfaction_pct
            << "% max=" << score.max_satisfaction_pct << "% ("
            << score.groups_scored << " scored, " << score.groups_failed
            << " failed)\n";

  const char* json_env = std::getenv("GRECA_BENCH_FORMATION_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_formation.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"num_users\": " << sc.num_users << ",\n"
       << "  \"num_items\": " << sc.num_items << ",\n"
       << "  \"num_ratings\": " << base->num_ratings() << ",\n"
       << "  \"num_shards\": " << num_shards << ",\n"
       << "  \"cohort\": " << fc.candidate_users << ",\n"
       << "  \"num_clusters\": " << fc.num_clusters << ",\n"
       << "  \"group_size\": " << fc.group_size << ",\n"
       << "  \"groups_formed\": " << groups.size() << ",\n"
       << "  \"groups_scored\": " << score.groups_scored << ",\n"
       << "  \"groups_failed\": " << score.groups_failed << ",\n"
       << "  \"form_seconds\": " << form_seconds << ",\n"
       << "  \"serve_seconds\": " << serve_seconds << ",\n"
       << "  \"batch_planned\": " << (report.planned ? "true" : "false")
       << ",\n"
       << "  \"batch_buckets\": " << report.num_buckets << ",\n"
       << "  \"mean_satisfaction_pct\": " << score.mean_satisfaction_pct
       << ",\n"
       << "  \"min_satisfaction_pct\": " << score.min_satisfaction_pct
       << ",\n"
       << "  \"max_satisfaction_pct\": " << score.max_satisfaction_pct
       << ",\n"
       << "  \"strategies\": [\n";
  for (std::size_t s = 0; s < kNumStrategies; ++s) {
    const StrategyStats& st = per_strategy[s];
    const double mean =
        st.groups > 0 ? st.sum_pct / static_cast<double>(st.groups) : 0.0;
    json << "    {\"strategy\": \""
         << FormationStrategyName(static_cast<FormationStrategy>(s))
         << "\", \"groups\": " << st.groups << ", \"mean_pct\": " << mean
         << ", \"min_pct\": " << st.min_pct << ", \"max_pct\": " << st.max_pct
         << "}" << (s + 1 < kNumStrategies ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "Wrote " << path << "\n";

  if (score.groups_failed > 0) {
    std::cerr << "ERROR: " << score.groups_failed
              << " formed groups failed to serve\n";
    return 1;
  }
  return 0;
}
