// Reproduces Figure 2: "Qualitative Evaluation of Consensus Functions" —
// three-way forced choice between the AP, MO and PD lists (all with temporal
// affinity); vote shares per group characteristic.
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  QualityHarness harness(*ctx.recommender, *ctx.oracle,
                         FormStudyGroups(*ctx.recommender), /*k=*/10);

  const std::vector<RecommendationVariant> variants{
      RecommendationVariant::WithConsensus("AP",
                                           ConsensusSpec::AveragePreference()),
      RecommendationVariant::WithConsensus("MO", ConsensusSpec::LeastMisery()),
      RecommendationVariant::WithConsensus(
          "PD", ConsensusSpec::PairwiseDisagreement(0.8)),
  };
  const auto shares = harness.VoteShares(variants);

  TablePrinter table(
      "Figure 2: Qualitative Evaluation of Consensus Functions — vote share "
      "(%)");
  std::vector<std::string> columns{"function"};
  for (const GroupCharacteristic c : AllCharacteristics()) {
    columns.push_back(CharacteristicName(c));
  }
  table.SetColumns(columns);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].label};
    for (const double s : shares[v]) row.push_back(TablePrinter::Cell(s, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout <<
      "\nPaper reference (AP/MO/PD %): Sim 27.8/22.2/50.0, Diss 22.2/33.3/"
      "44.4, Small 44.4/16.7/38.9, Large 16.7/44.4/38.9, HighAff 38.9/16.7/"
      "44.4, LowAff 22.2/33.3/44.4. Shape: PD leads overall, AP strongest in "
      "small/high-affinity groups, MO strongest in large groups.\n";
  return 0;
}
