// Reproduces Figure 1: "Independent Evaluation" — simulated participants
// score the recommendation list they received (0–5, reported as %), per
// group characteristic, for six recommender variants:
//   (A) default: affinity-aware, discrete time model, AP consensus
//   (B) affinity-agnostic      (C) time-agnostic
//   (D) continuous time model  (E) MO consensus  (F) PD consensus
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  QualityHarness harness(*ctx.recommender, *ctx.oracle,
                         FormStudyGroups(*ctx.recommender), /*k=*/10);

  const std::vector<std::pair<std::string, RecommendationVariant>> panels{
      {"(A) Default", RecommendationVariant::Default()},
      {"(B) Affinity-agnostic", RecommendationVariant::AffinityAgnostic()},
      {"(C) Time-agnostic", RecommendationVariant::TimeAgnostic()},
      {"(D) Continuous Time Model", RecommendationVariant::ContinuousModel()},
      {"(E) MO Consensus Function",
       RecommendationVariant::WithConsensus("MO", ConsensusSpec::LeastMisery())},
      {"(F) PD Consensus Function",
       RecommendationVariant::WithConsensus(
           "PD", ConsensusSpec::PairwiseDisagreement(0.8))},
  };

  TablePrinter table("Figure 1: Independent Evaluation — satisfaction (%)");
  std::vector<std::string> columns{"variant"};
  for (const GroupCharacteristic c : AllCharacteristics()) {
    columns.push_back(CharacteristicName(c));
  }
  table.SetColumns(columns);
  for (const auto& [label, variant] : panels) {
    const std::vector<double> scores = harness.IndependentEval(variant);
    std::vector<std::string> row{label};
    for (const double s : scores) row.push_back(TablePrinter::Cell(s, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout <<
      "\nPaper shape to match: (A) scores >= ~80% everywhere with Diss above "
      "Sim; (B) and (C) drop by a wide margin (worst for small/high-affinity "
      "groups in B, dissimilar/large in C); (D) favors dissimilar/large/low-"
      "affinity groups.\n";
  return 0;
}
