// Reproduces Figure 5: "Average Percentage of SAs by Varying Result Size,
// Group Size and Number of Items" — GRECA's %SA over 20 random groups with
// the paper's defaults (group size 6, k 10, 3900 items, AP, discrete model).
//   (A) k in {5, 10, 15, 20, 25, 30}
//   (B) group size in {3, 6, 9, 12}
//   (C) number of items in {900, 1400, 1900, 2400, 2900, 3400, 3900}
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PerformanceHarness perf(*ctx.recommender, /*seed=*/2015);
  const QuerySpec base = PerformanceHarness::DefaultSpec();

  {
    TablePrinter table("Figure 5(A): Varying K — average %SA");
    table.SetColumns({"k", "avg #SA %", "std err", "saveup %"});
    for (const std::size_t k : {5u, 10u, 15u, 20u, 25u, 30u}) {
      QuerySpec spec = base;
      spec.k = k;
      const auto m =
          perf.MeasureRandomGroups(spec, 6, bench::kNumRandomGroups);
      table.AddRow({TablePrinter::Cell(k),
                    TablePrinter::Cell(m.mean_sa_percent, 2),
                    TablePrinter::Cell(m.std_error, 2),
                    TablePrinter::Cell(m.mean_saveup_percent, 2)});
    }
    table.Print(std::cout);
    std::cout << "Paper shape: roughly linear growth in k, saveup >= 81%.\n\n";
  }

  {
    TablePrinter table("Figure 5(B): Varying Group Size — average %SA");
    table.SetColumns({"group size", "avg #SA %", "std err", "saveup %"});
    for (const std::size_t size : {3u, 6u, 9u, 12u}) {
      const auto m =
          perf.MeasureRandomGroups(base, size, bench::kNumRandomGroups);
      table.AddRow({TablePrinter::Cell(size),
                    TablePrinter::Cell(m.mean_sa_percent, 2),
                    TablePrinter::Cell(m.std_error, 2),
                    TablePrinter::Cell(m.mean_saveup_percent, 2)});
    }
    table.Print(std::cout);
    std::cout << "Paper shape: scales well with group size, saveup >= 77%.\n\n";
  }

  {
    TablePrinter table("Figure 5(C): Varying Number of Items — average %SA");
    table.SetColumns({"# items", "avg #SA %", "std err", "saveup %"});
    for (const std::size_t items :
         {900u, 1'400u, 1'900u, 2'400u, 2'900u, 3'400u, 3'900u}) {
      QuerySpec spec = base;
      spec.num_candidate_items = items;
      const auto m =
          perf.MeasureRandomGroups(spec, 6, bench::kNumRandomGroups);
      table.AddRow({TablePrinter::Cell(items),
                    TablePrinter::Cell(m.mean_sa_percent, 2),
                    TablePrinter::Cell(m.std_error, 2),
                    TablePrinter::Cell(m.mean_saveup_percent, 2)});
    }
    table.Print(std::cout);
    std::cout << "Paper shape: no monotone growth with #items (depends on "
                 "score distributions), saveup >= 83% in the worst case.\n";
  }
  return 0;
}
