// Reproduces Table 5: "The MovieLens 1M Dataset" — # users, # movies,
// # ratings. Runs on the synthetic twin by default; pass a path to a real
// MovieLens ratings file (ml-1m "::" format) to print its stats instead.
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "dataset/movielens.h"

int main(int argc, char** argv) {
  using namespace greca;

  DatasetStats stats;
  std::string source;
  if (argc > 1) {
    MovieLensParseOptions options;
    options.strict = false;
    const auto parsed = ParseRatingsFile(argv[1], options);
    if (!parsed.ok()) {
      std::cerr << "failed to parse " << argv[1] << ": "
                << parsed.status().ToString() << '\n';
      return 1;
    }
    stats = parsed.value().ratings.Stats();
    source = argv[1];
  } else {
    stats = bench::BenchContext::Get().universe.dataset.Stats();
    source = "synthetic MovieLens-1M twin";
  }

  TablePrinter table("Table 5: The MovieLens 1M Dataset (" + source + ")");
  table.SetColumns({"# users", "# movies", "# ratings", "mean rating",
                    "density"});
  table.AddRow({TablePrinter::Cell(stats.num_users),
                TablePrinter::Cell(stats.num_items),
                TablePrinter::Cell(stats.num_ratings),
                TablePrinter::Cell(stats.mean_rating, 2),
                TablePrinter::Cell(stats.density, 4)});
  table.Print(std::cout);
  std::cout << "\nPaper reference: 6040 users, 3952 movies, 1000209 ratings.\n";
  return 0;
}
