// Reproduces Figure 8: "Average Percentage of SAs for Different Consensus
// Functions" — AR (= AP), MO, PD V1 (w1 = 0.8) and PD V2 (w1 = 0.2), the
// paper's §4.2.5 configuration.
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PerformanceHarness perf(*ctx.recommender, /*seed=*/2015);
  const auto groups = perf.RandomGroups(bench::kNumRandomGroups, 6);

  struct Row {
    std::string label;
    ConsensusSpec spec;
  };
  const std::vector<Row> rows{
      {"AR (average)", ConsensusSpec::AveragePreference()},
      {"MO (least misery)", ConsensusSpec::LeastMisery()},
      {"PD V1 (w1=0.8)", ConsensusSpec::PairwiseDisagreement(0.8)},
      {"PD V2 (w1=0.2)", ConsensusSpec::PairwiseDisagreement(0.2)},
  };

  TablePrinter table("Figure 8: Average %SA per consensus function");
  table.SetColumns({"consensus", "avg #SA %", "std err", "saveup %"});
  for (const Row& row : rows) {
    QuerySpec spec = PerformanceHarness::DefaultSpec();
    spec.consensus = row.spec;
    const auto m = perf.Measure(groups, spec);
    table.AddRow({row.label, TablePrinter::Cell(m.mean_sa_percent, 2),
                  TablePrinter::Cell(m.std_error, 2),
                  TablePrinter::Cell(m.mean_saveup_percent, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: GRECA saves substantially for every function; "
               "PD V2 (disagreement-heavy) stops earliest, MO next best with "
               "saveups up to 83%.\n";
  return 0;
}
