// Shard-per-core scaling bench: the acceptance harness for src/shard/.
//
// Builds a ShardedEngine over the SCALE synthetic dataset (millions of
// users, truncated-Pareto activity, Zipf popularity — dataset/synthetic.h)
// with a ground-truth-backed PoolPredictor (no CF model is trained at this
// scale), then drives a mixed read/write workload per shard count and
// group-locality setting:
//
//   round = 1 locality-routed update batch (events for one group's members)
//         + Q scatter/gather group queries
//
// The measured quantity is mixed throughput (queries per second of wall
// time, updates included) plus per-ApplyUpdates publish p50/p99 and the
// average scatter width. The scaling mechanism on a single core is BYTE
// REDUCTION, not parallelism: a shard publish clones 1/N of the
// population's index rows, so when the locality knob routes each update
// batch to one shard the per-round publish cost drops by the shard count —
// while locality 0 scatters every batch across all shards and gives the
// win back. The bench sweeps shards x locality to show exactly that.
//
// A second sweep exercises the unified serving runtime's PLANNED BATCH
// path (serve/batch_executor.h): duplicate-heavy read-only batches (dup
// factor 1/4/16 over a fixed set of distinct groups) at 1 and 4 shards,
// served three ways — parallel planned (bucket solving on the batch pool),
// serial planned (batch_threads=1 inline reference), and unplanned serial.
// All three produce bit-identical recommendations; the sweep measures what
// dedup + parallelism buy in throughput.
//
// Output: a table plus BENCH_shard.json (override with
// GRECA_BENCH_SHARD_JSON). Env knobs: GRECA_BENCH_SMALL=1 (smoke scale),
// GRECA_SHARD_USERS, GRECA_SHARD_ITEMS, GRECA_SHARD_POOL,
// GRECA_SHARD_GROUPS, GRECA_SHARD_ROUNDS, GRECA_SHARD_QUERIES,
// GRECA_SHARD_EVENTS. GRECA_SHARD_ASSERT=1 exits nonzero unless the
// 2-shard high-locality configuration reaches 0.9x single-shard throughput
// (the CI smoke gate; full runs should clear 1.3x at 4+ shards).
// GRECA_SHARD_ASSERT_PLANNER=1 exits nonzero unless parallel planned
// serving reaches 1.3x the serial planned reference at 4 shards / dup 16
// (skipped on single-core hosts, which cannot show wall-clock parallelism).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "shard/sharded_engine.h"

namespace {

using namespace greca;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
    std::cerr << "ignoring " << name << "='" << env
              << "' (expected a positive integer)\n";
  }
  return fallback;
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

struct WorkloadResult {
  std::size_t shards = 0;
  double locality = 0.0;
  double qps = 0.0;  // queries / total wall time (updates included)
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double avg_shards_touched_query = 0.0;
  double avg_shards_touched_update = 0.0;
  std::size_t queries = 0;
  std::size_t update_batches = 0;
  std::size_t events_applied = 0;
};

struct WorkloadConfig {
  std::size_t rounds = 10;
  std::size_t queries_per_round = 16;
  std::size_t events_per_batch = 256;
  std::size_t num_groups = 400;
  std::size_t group_size = 5;
};

/// One mixed read/write run against `engine` with groups generated at
/// `locality` for THIS engine's router.
WorkloadResult RunWorkload(ShardedEngine& engine, double locality,
                           const WorkloadConfig& config, Timestamp* next_ts) {
  const auto shard_of = [&](UserId u) { return engine.router().ShardOf(u); };
  ScaleGroupsConfig gc;
  gc.num_groups = config.num_groups;
  gc.group_size = config.group_size;
  gc.locality = locality;
  const std::vector<std::vector<UserId>> groups = GenerateScaleGroups(
      gc, engine.num_users(), engine.num_shards(), shard_of);

  QuerySpec spec;
  spec.k = 10;
  spec.model = AffinityModelSpec::TimeAgnostic();
  spec.algorithm = Algorithm::kGreca;
  spec.num_candidate_items = engine.pool().size();
  spec.eval_period = 0;

  WorkloadResult result;
  result.shards = engine.num_shards();
  result.locality = locality;

  double touched_query = 0.0;
  for (const auto& group : groups) {
    touched_query += static_cast<double>(engine.ShardsTouched(group));
  }
  result.avg_shards_touched_query =
      touched_query / static_cast<double>(groups.size());

  // Warm-up outside the window (allocator, first workspace growth).
  QueryWorkspace ws;
  for (std::size_t i = 0; i < 2 && i < groups.size(); ++i) {
    if (!engine.Recommend(groups[i], spec, &ws).ok()) std::abort();
  }

  Rng rng(90'000 + engine.num_shards() * 10 +
          static_cast<std::uint64_t>(locality * 2));
  const std::span<const ItemId> pool = engine.pool();
  std::vector<double> query_us;
  std::vector<double> publish_ms;
  query_us.reserve(config.rounds * config.queries_per_round);
  publish_ms.reserve(config.rounds);
  double touched_update = 0.0;

  Stopwatch total_watch;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    // One update batch, routed where the workload's groups live: events for
    // the members of one group, rating pool items (so touched rows really
    // change). At locality 1 the whole batch lands on one shard.
    const auto& target = groups[rng.NextBounded(groups.size())];
    std::vector<RatingEvent> events;
    events.reserve(config.events_per_batch);
    for (std::size_t i = 0; i < config.events_per_batch; ++i) {
      RatingEvent e;
      e.user = target[rng.NextBounded(target.size())];
      e.item = pool[rng.NextBounded(pool.size())];
      e.rating = static_cast<Score>(1 + rng.NextBounded(5));
      e.timestamp = (*next_ts)++;  // monotone: every event is fresh
      events.push_back(e);
    }
    ShardedUpdateReport report;
    Stopwatch publish_watch;
    const Status status = engine.ApplyUpdates(events, &report);
    publish_ms.push_back(publish_watch.ElapsedMillis());
    if (!status.ok()) {
      std::cerr << "ERROR: update failed: " << status.ToString() << "\n";
      std::abort();
    }
    touched_update += static_cast<double>(report.shards_touched);
    result.events_applied += report.total.events_applied;

    for (std::size_t q = 0; q < config.queries_per_round; ++q) {
      const auto& group = groups[(round * config.queries_per_round + q) %
                                 groups.size()];
      Stopwatch query_watch;
      const auto r = engine.Recommend(group, spec, &ws);
      query_us.push_back(query_watch.ElapsedSeconds() * 1e6);
      if (!r.ok()) {
        std::cerr << "ERROR: query failed: " << r.status().ToString() << "\n";
        std::abort();
      }
    }
  }
  const double elapsed = total_watch.ElapsedSeconds();

  result.queries = query_us.size();
  result.update_batches = publish_ms.size();
  result.qps = static_cast<double>(result.queries) / elapsed;
  result.query_p50_us = Percentile(query_us, 0.50);
  result.query_p99_us = Percentile(query_us, 0.99);
  result.publish_p50_ms = Percentile(publish_ms, 0.50);
  result.publish_p99_ms = Percentile(publish_ms, 0.99);
  result.avg_shards_touched_update =
      touched_update / static_cast<double>(config.rounds);
  return result;
}

struct PlannerSweepResult {
  std::size_t shards = 0;
  std::size_t dup = 0;
  std::size_t batch_queries = 0;
  std::size_t buckets = 0;
  double dedup_ratio = 0.0;
  double parallel_qps = 0.0;
  double serial_qps = 0.0;
  double unplanned_qps = 0.0;
  /// parallel_qps / serial_qps, both planned — what ParallelFor buys.
  double parallel_speedup = 0.0;
};

/// Repeated read-only RecommendBatch over `queries`; returns queries/sec.
/// The warm-up call (outside the window) also checks every result and
/// fills `report` when non-null.
double BatchQps(const ShardedEngine& engine, std::span<const Query> queries,
                std::size_t rounds, BatchReport* report) {
  const auto warm = engine.RecommendBatch(queries, report);
  for (const auto& r : warm) {
    if (!r.ok()) {
      std::cerr << "ERROR: batch query failed: " << r.status().ToString()
                << "\n";
      std::abort();
    }
  }
  Stopwatch watch;
  for (std::size_t i = 0; i < rounds; ++i) {
    if (engine.RecommendBatch(queries).size() != queries.size()) std::abort();
  }
  return static_cast<double>(queries.size() * rounds) /
         watch.ElapsedSeconds();
}

}  // namespace

int main() {
  const bool small = std::getenv("GRECA_BENCH_SMALL") != nullptr;
  ScaleRatingsConfig sc;
  sc.num_users = EnvSize("GRECA_SHARD_USERS", small ? 30'000 : 1'000'000);
  sc.num_items = EnvSize("GRECA_SHARD_ITEMS", small ? 5'000 : 50'000);
  const std::size_t pool_size =
      EnvSize("GRECA_SHARD_POOL", small ? 128 : 256);
  WorkloadConfig wc;
  wc.rounds = EnvSize("GRECA_SHARD_ROUNDS", small ? 6 : 10);
  wc.queries_per_round = EnvSize("GRECA_SHARD_QUERIES", small ? 8 : 16);
  wc.events_per_batch = EnvSize("GRECA_SHARD_EVENTS", small ? 64 : 256);
  wc.num_groups = EnvSize("GRECA_SHARD_GROUPS", small ? 200 : 400);

  std::cout << "bench_shard: generating " << sc.num_users << " users x "
            << sc.num_items << " items (scale dataset)...\n";
  Stopwatch gen_watch;
  const SyntheticRatings scale = GenerateScaleRatings(sc);
  const RatingGroundTruth& truth = scale.truth;
  auto base = std::make_shared<const RatingsDataset>(scale.dataset);
  std::cout << "  " << base->num_ratings() << " ratings in "
            << gen_watch.ElapsedSeconds() << "s ("
            << static_cast<double>(base->num_ratings()) /
                   static_cast<double>(sc.num_users)
            << " per user)\n";

  // Ground-truth predictor: the user's own (live-updatable) rating where one
  // exists, the latent-model preference everywhere else — so rating events
  // really move the touched rows, like CF predictions would.
  const PoolPredictor predictor =
      [&truth](UserId u, std::span<const UserRatingEntry> merged,
               std::span<const ItemId> pool, std::span<Score> out) {
        for (std::size_t k = 0; k < pool.size(); ++k) {
          const ItemId item = pool[k];
          const auto it = std::lower_bound(
              merged.begin(), merged.end(), item,
              [](const UserRatingEntry& e, ItemId i) { return e.item < i; });
          out[k] = (it != merged.end() && it->item == item)
                       ? it->rating
                       : truth.TruePreference(u, item);
        }
      };
  const std::vector<ItemId> pool = base->TopPopularItems(pool_size);
  const auto affinity = std::make_shared<const ConstantAffinitySource>(
      sc.num_users, /*num_periods=*/1, /*static_value=*/1.0,
      /*periodic_value=*/1.0);

  const std::size_t shard_counts[] = {1, 2, 4, 8};
  const double localities[] = {0.0, 1.0};
  std::vector<WorkloadResult> results;
  Timestamp next_ts = 4'000'000'000;

  for (const std::size_t n : shard_counts) {
    ShardedEngineOptions options;
    options.num_shards = n;
    options.strategy = ShardStrategy::kHash;
    ShardedEngineInputs inputs;
    inputs.ratings = base;
    inputs.affinity = affinity;
    inputs.predictor = predictor;
    inputs.pool = pool;
    inputs.num_universe_items = base->num_items();
    inputs.num_periods = 1;

    Stopwatch build_watch;
    ShardedEngine engine(std::move(inputs), options);
    std::cout << "built " << n << "-shard engine in "
              << build_watch.ElapsedSeconds() << "s\n";
    for (const double locality : localities) {
      results.push_back(RunWorkload(engine, locality, wc, &next_ts));
      const WorkloadResult& r = results.back();
      std::cout << "  shards=" << n << " locality=" << locality
                << "  qps=" << r.qps << "  publish p50=" << r.publish_p50_ms
                << "ms p99=" << r.publish_p99_ms << "ms\n";
    }
  }

  TablePrinter table("Mixed read/write throughput vs shard count (" +
                     std::to_string(sc.num_users) + " users, " +
                     std::to_string(wc.events_per_batch) +
                     " events + " + std::to_string(wc.queries_per_round) +
                     " queries per round)");
  table.SetColumns({"shards", "locality", "qps", "query p50 (us)",
                    "publish p50 (ms)", "publish p99 (ms)",
                    "scatter/query", "scatter/update"});
  for (const WorkloadResult& r : results) {
    table.AddRow({std::to_string(r.shards), TablePrinter::Cell(r.locality, 1),
                  TablePrinter::Cell(r.qps, 1),
                  TablePrinter::Cell(r.query_p50_us, 0),
                  TablePrinter::Cell(r.publish_p50_ms, 2),
                  TablePrinter::Cell(r.publish_p99_ms, 2),
                  TablePrinter::Cell(r.avg_shards_touched_query, 2),
                  TablePrinter::Cell(r.avg_shards_touched_update, 2)});
  }
  table.Print(std::cout);

  const auto find = [&](std::size_t shards, double locality) {
    for (const WorkloadResult& r : results) {
      if (r.shards == shards && r.locality == locality) return r;
    }
    std::abort();
  };
  const double base_qps = find(1, 1.0).qps;
  const double speedup2 = find(2, 1.0).qps / base_qps;
  const double speedup4 = find(4, 1.0).qps / base_qps;
  const double speedup8 = find(8, 1.0).qps / base_qps;
  const double scatter_penalty = find(8, 0.0).qps / find(8, 1.0).qps;
  std::cout << "high-locality speedup over 1 shard: x2=" << speedup2
            << " x4=" << speedup4 << " x8=" << speedup8
            << "\nlocality-0 throughput at 8 shards: " << scatter_penalty
            << "x of locality-1 (scattered updates give the publish "
               "reduction back)\nExpected: >= 1.3x at 4+ shards with high "
               "locality — the per-shard publish clones 1/N of the index\n";

  // --- Planned-batch sweep: the unified serving runtime under dedup ---
  const std::size_t planner_distinct = small ? 12 : 24;
  const std::size_t planner_rounds = small ? 3 : 6;
  const std::size_t planner_shards[] = {1, 4};
  const std::size_t dup_factors[] = {1, 4, 16};
  std::vector<PlannerSweepResult> planner_results;

  for (const std::size_t n : planner_shards) {
    const auto engine_with = [&](bool plan, std::size_t threads) {
      ShardedEngineOptions options;
      options.num_shards = n;
      options.strategy = ShardStrategy::kHash;
      options.plan_batches = plan;
      options.batch_threads = threads;
      ShardedEngineInputs inputs;
      inputs.ratings = base;
      inputs.affinity = affinity;
      inputs.predictor = predictor;
      inputs.pool = pool;
      inputs.num_universe_items = base->num_items();
      inputs.num_periods = 1;
      return std::make_unique<ShardedEngine>(std::move(inputs), options);
    };
    const auto parallel = engine_with(/*plan=*/true, /*threads=*/4);
    const auto serial = engine_with(/*plan=*/true, /*threads=*/1);
    const auto unplanned = engine_with(/*plan=*/false, /*threads=*/1);

    ScaleGroupsConfig gc;
    gc.num_groups = planner_distinct;
    gc.locality = 0.0;
    gc.seed = 71 + n;
    const std::vector<std::vector<UserId>> distinct = GenerateScaleGroups(
        gc, parallel->num_users(), n,
        [&](UserId u) { return parallel->router().ShardOf(u); });

    QuerySpec spec;
    spec.k = 10;
    spec.model = AffinityModelSpec::TimeAgnostic();
    spec.algorithm = Algorithm::kGreca;
    spec.num_candidate_items = pool.size();
    spec.eval_period = 0;

    for (const std::size_t dup : dup_factors) {
      // Interleaved duplicates — the planner's first-appearance bucket order
      // sees the worst case, not presorted runs.
      std::vector<Query> batch;
      batch.reserve(planner_distinct * dup);
      for (std::size_t i = 0; i < planner_distinct * dup; ++i) {
        batch.push_back({distinct[i % planner_distinct], spec});
      }
      PlannerSweepResult r;
      r.shards = n;
      r.dup = dup;
      r.batch_queries = batch.size();
      BatchReport report;
      r.parallel_qps = BatchQps(*parallel, batch, planner_rounds, &report);
      r.buckets = report.num_buckets;
      r.dedup_ratio = report.dedup_ratio;
      r.serial_qps = BatchQps(*serial, batch, planner_rounds, nullptr);
      r.unplanned_qps = BatchQps(*unplanned, batch, planner_rounds, nullptr);
      r.parallel_speedup = r.parallel_qps / r.serial_qps;
      planner_results.push_back(r);
      std::cout << "  planner shards=" << n << " dup=" << dup
                << "  parallel=" << r.parallel_qps
                << " serial=" << r.serial_qps
                << " unplanned=" << r.unplanned_qps << " qps\n";
    }
  }

  TablePrinter planner_table(
      "Planned batch serving: parallel vs serial vs unplanned (qps, " +
      std::to_string(planner_distinct) + " distinct groups)");
  planner_table.SetColumns({"shards", "dup", "queries", "buckets",
                            "parallel qps", "serial qps", "unplanned qps",
                            "parallel/serial"});
  for (const PlannerSweepResult& r : planner_results) {
    planner_table.AddRow(
        {std::to_string(r.shards), std::to_string(r.dup),
         std::to_string(r.batch_queries), std::to_string(r.buckets),
         TablePrinter::Cell(r.parallel_qps, 1),
         TablePrinter::Cell(r.serial_qps, 1),
         TablePrinter::Cell(r.unplanned_qps, 1),
         TablePrinter::Cell(r.parallel_speedup, 2)});
  }
  planner_table.Print(std::cout);

  const auto planner_find = [&](std::size_t shards, std::size_t dup) {
    for (const PlannerSweepResult& r : planner_results) {
      if (r.shards == shards && r.dup == dup) return r;
    }
    std::abort();
  };
  const double planner_speedup = planner_find(4, 16).parallel_speedup;
  std::cout << "parallel planned vs serial planned at 4 shards / dup 16: "
            << planner_speedup << "x\n";

  const char* json_env = std::getenv("GRECA_BENCH_SHARD_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_shard.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"num_users\": " << sc.num_users << ",\n"
       << "  \"num_items\": " << sc.num_items << ",\n"
       << "  \"num_ratings\": " << base->num_ratings() << ",\n"
       << "  \"pool_size\": " << pool_size << ",\n"
       << "  \"rounds\": " << wc.rounds << ",\n"
       << "  \"queries_per_round\": " << wc.queries_per_round << ",\n"
       << "  \"events_per_batch\": " << wc.events_per_batch << ",\n"
       << "  \"group_size\": " << wc.group_size << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    json << "    {\"shards\": " << r.shards << ", \"locality\": " << r.locality
         << ", \"qps\": " << r.qps << ", \"query_p50_us\": " << r.query_p50_us
         << ", \"query_p99_us\": " << r.query_p99_us
         << ", \"publish_p50_ms\": " << r.publish_p50_ms
         << ", \"publish_p99_ms\": " << r.publish_p99_ms
         << ", \"avg_shards_touched_query\": " << r.avg_shards_touched_query
         << ", \"avg_shards_touched_update\": " << r.avg_shards_touched_update
         << ", \"queries\": " << r.queries
         << ", \"events_applied\": " << r.events_applied << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"planner\": [\n";
  for (std::size_t i = 0; i < planner_results.size(); ++i) {
    const PlannerSweepResult& r = planner_results[i];
    json << "    {\"shards\": " << r.shards << ", \"dup\": " << r.dup
         << ", \"batch_queries\": " << r.batch_queries
         << ", \"buckets\": " << r.buckets
         << ", \"dedup_ratio\": " << r.dedup_ratio
         << ", \"parallel_qps\": " << r.parallel_qps
         << ", \"serial_qps\": " << r.serial_qps
         << ", \"unplanned_qps\": " << r.unplanned_qps
         << ", \"parallel_speedup\": " << r.parallel_speedup << "}"
         << (i + 1 < planner_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"planner_parallel_speedup_4_shards_dup16\": " << planner_speedup
       << ",\n"
       << "  \"high_locality_speedup_2_shards\": " << speedup2 << ",\n"
       << "  \"high_locality_speedup_4_shards\": " << speedup4 << ",\n"
       << "  \"high_locality_speedup_8_shards\": " << speedup8 << ",\n"
       << "  \"locality0_vs_locality1_8_shards\": " << scatter_penalty << "\n"
       << "}\n";
  std::cout << "Wrote " << path << "\n";

  if (std::getenv("GRECA_SHARD_ASSERT") != nullptr && speedup2 < 0.9) {
    std::cerr << "ASSERT FAILED: 2-shard high-locality qps is " << speedup2
              << "x of single-shard (expected >= 0.9x)\n";
    return 1;
  }
  if (std::getenv("GRECA_SHARD_ASSERT_PLANNER") != nullptr) {
    // A single hardware thread cannot demonstrate parallel speedup — the
    // sweep still proves bit-identity there, but the wall-clock gate only
    // means something with real cores under the batch pool.
    if (std::thread::hardware_concurrency() < 2) {
      std::cout << "planner assert skipped: single-core host ("
                << planner_speedup << "x measured)\n";
    } else if (planner_speedup < 1.3) {
      std::cerr << "ASSERT FAILED: parallel planned serving is "
                << planner_speedup
                << "x of the serial reference at 4 shards / dup 16 "
                   "(expected >= 1.3x)\n";
      return 1;
    }
  }
  return 0;
}
