// Reproduces §4.2.4 "Time Models": GRECA's average %SA under the continuous
// vs the discrete dynamic affinity model (paper: 16.32% vs 16.60%, i.e. a
// saveup > 83% for both, near-identical costs).
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PerformanceHarness perf(*ctx.recommender, /*seed=*/2015);
  const auto groups = perf.RandomGroups(bench::kNumRandomGroups, 6);

  TablePrinter table("Section 4.2.4: Time Models — average %SA");
  table.SetColumns({"time model", "avg #SA %", "std err", "saveup %"});
  for (const auto& [label, model] :
       std::vector<std::pair<std::string, AffinityModelSpec>>{
           {"discrete", AffinityModelSpec::Default()},
           {"continuous", AffinityModelSpec::Continuous()}}) {
    QuerySpec spec = PerformanceHarness::DefaultSpec();
    spec.model = model;
    const auto m = perf.Measure(groups, spec);
    table.AddRow({label, TablePrinter::Cell(m.mean_sa_percent, 2),
                  TablePrinter::Cell(m.std_error, 2),
                  TablePrinter::Cell(m.mean_saveup_percent, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: continuous 16.32%, discrete 16.60% — both "
               "models cost nearly the same with a slight edge for one of "
               "them; saveup > 83% either way.\n";
  return 0;
}
