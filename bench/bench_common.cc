#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"

namespace greca::bench {

namespace {

BenchContext* BuildContext() {
  Stopwatch watch;
  auto* ctx = new BenchContext();

  SyntheticRatingsConfig uc;  // paper-scale defaults (Table 5)
  const char* small = std::getenv("GRECA_BENCH_SMALL");
  if (small != nullptr && small[0] == '1') {
    uc.num_users = 800;
    uc.num_items = 1'000;
    uc.target_ratings = 80'000;
  }
  ctx->universe = GenerateSyntheticRatings(uc);

  FacebookStudyConfig sc;
  ctx->study = GenerateFacebookStudy(sc, ctx->universe);

  RecommenderOptions options;
  options.max_candidate_items =
      std::min<std::size_t>(3'900, ctx->universe.dataset.num_items());
  ctx->recommender = std::make_unique<GroupRecommender>(ctx->universe,
                                                        ctx->study, options);
  ctx->oracle = std::make_unique<SatisfactionOracle>(
      ctx->universe.truth, ctx->study.like_truth, ctx->study.universe_user,
      OracleWeights{});

  std::fprintf(stderr, "[bench_common] context built in %.1fs (%zu ratings)\n",
               watch.ElapsedSeconds(), ctx->universe.dataset.num_ratings());
  return ctx;
}

}  // namespace

const BenchContext& BenchContext::Get() {
  static const BenchContext* ctx = BuildContext();
  return *ctx;
}

}  // namespace greca::bench
