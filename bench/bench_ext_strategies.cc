// Extension bench (beyond the paper's figures): the two dominant group
// recommendation strategies of §5 head-to-head — profile aggregation into a
// pseudo-user vs the paper's affinity-aware consensus aggregation — judged
// by the satisfaction oracle; plus cluster-sourced group formation
// (the future-work direction of combining clustering with the indices).
#include <iostream>

#include <algorithm>

#include "bench_common.h"
#include "common/distributions.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "core/pseudo_user.h"
#include "groups/user_clustering.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const GroupRecommender& recommender = *ctx.recommender;
  const auto last = static_cast<PeriodId>(recommender.num_periods() - 1);

  // ---- 1. Pseudo-user vs affinity-aware consensus --------------------------
  {
    const UserKnn knn(ctx.universe.dataset, {});
    const std::vector<ItemId> candidates =
        ctx.universe.dataset.TopPopularItems(3'900);
    const PerformanceHarness perf(recommender, 606);
    const auto groups = perf.RandomGroups(12, 4);

    OnlineStats consensus_wins;
    for (const Group& group : groups) {
      QuerySpec spec;
      spec.k = 10;
      spec.algorithm = Algorithm::kNaive;  // exact list for judging
      const std::vector<ItemId> consensus_list =
          recommender.Recommend(group, spec).value().items;
      const auto pseudo = RecommendPseudoUser(
          knn, ctx.study.study_ratings, group, candidates, 10);
      std::vector<ItemId> pseudo_list;
      for (const auto& e : pseudo) pseudo_list.push_back(e.id);
      consensus_wins.Add(ctx.oracle->PreferenceSharePercent(
          group, consensus_list, pseudo_list, last));
    }
    TablePrinter table(
        "Extension 1: affinity-aware consensus vs pseudo-user aggregation");
    table.SetColumns({"comparison", "preference for consensus (%)",
                      "std err"});
    table.AddRow({"consensus (GRECA semantics) vs pseudo-user",
                  TablePrinter::Cell(consensus_wins.mean(), 2),
                  TablePrinter::Cell(consensus_wins.standard_error(), 2)});
    table.Print(std::cout);
    std::cout << "The aggregation family models each member (and their "
                 "affinities); the pseudo-user collapses the group into one "
                 "profile (§5's two dominant strategies).\n\n";
  }

  // ---- 2. Cluster-sourced groups -------------------------------------------
  {
    std::vector<UserId> participants(ctx.study.num_participants());
    for (UserId u = 0; u < participants.size(); ++u) participants[u] = u;
    KMeansConfig km;
    km.num_clusters = 4;
    const auto clusters = ClusterUsersByRatings(ctx.study.study_ratings,
                                                participants, 40, km);

    TablePrinter table(
        "Extension 2: %SA for groups drawn inside vs across taste clusters");
    table.SetColumns({"group source", "avg #SA %", "saveup %"});
    Rng rng(607);
    const auto measure = [&](bool within) {
      OnlineStats sa;
      for (int trial = 0; trial < 10; ++trial) {
        Group group;
        if (within) {
          // Largest cluster with >= 6 members.
          const auto* best = &clusters[0];
          for (const auto& c : clusters) {
            if (c.size() > best->size()) best = &c;
          }
          const auto picks = SampleDistinct(rng, best->size(), 6);
          for (const auto i : picks) group.push_back((*best)[i]);
        } else {
          // One member from each of 4 clusters + 2 extra.
          for (const auto& c : clusters) {
            if (!c.empty() && group.size() < 6) {
              group.push_back(c[rng.NextBounded(c.size())]);
            }
          }
          while (group.size() < 6) {
            const UserId u = static_cast<UserId>(
                rng.NextBounded(participants.size()));
            if (std::find(group.begin(), group.end(), u) == group.end()) {
              group.push_back(u);
            }
          }
        }
        std::sort(group.begin(), group.end());
        group.erase(std::unique(group.begin(), group.end()), group.end());
        if (group.size() < 3) continue;
        const Recommendation rec =
            recommender.Recommend(group, PerformanceHarness::DefaultSpec()).value();
        sa.Add(rec.raw.SequentialAccessPercent());
      }
      return sa;
    };
    const OnlineStats within = measure(true);
    const OnlineStats across = measure(false);
    table.AddRow({"within one taste cluster",
                  TablePrinter::Cell(within.mean(), 2),
                  TablePrinter::Cell(100.0 - within.mean(), 2)});
    table.AddRow({"across taste clusters",
                  TablePrinter::Cell(across.mean(), 2),
                  TablePrinter::Cell(100.0 - across.mean(), 2)});
    table.Print(std::cout);
    std::cout << "Cluster-internal groups play the role of the paper's "
                 "'similar' groups (Figure 7); at study scale the two "
                 "sources differ by well under a standard error, consistent "
                 "with Figure 7's small gaps.\n";
  }
  return 0;
}
