// Online serving under live updates: the acceptance bench for the
// snapshot-centric (RCU-style) API.
//
// Phase 1 (baseline): reader threads hammer Engine::Recommend for a fixed
// wall-clock window with no writer — queries/second plus per-query p50/p99.
// Phase 2 (live): the same reader load while a writer thread applies a
// RatingEvent batch every --update-interval, each publish building a new
// snapshot generation off the serving path. Because readers pin snapshots
// and the writer publishes with an atomic pointer swap, reads never block on
// writes: throughput under the writer should track the baseline (the gap is
// CPU time the writer consumes, not lock waits — on a single-core host the
// writer's rebuild share is the expected gap).
//
// Phase 3 (publish-latency curve): back-to-back update batches, recording
// per-publish latency against the number of live ratings accumulated so far
// — the delta-log acceptance. Publishes fold O(batch) into the per-user
// delta log instead of re-folding the whole dataset, so p99 publish latency
// must stay flat (within ~1.5x) while accumulated live ratings grow 10x;
// the old full re-fold grew linearly. Compaction publishes (the periodic
// fold of the log back into a fresh base) are flagged and reported
// separately from the steady-state curve.
//
// The bench also replays a query batch pinned to a pre-writer snapshot after
// all phases — dozens of generations and at least the curve's compactions
// later — and fails hard if any result changed: the serving-immutability
// contract, cheap enough to enforce every run.
//
// Output: a human-readable table plus a machine-readable JSON file
// (BENCH_online.json by default; override with GRECA_BENCH_ONLINE_JSON).
// Env knobs: GRECA_BENCH_SMALL=1 (smoke scale), GRECA_ONLINE_SECONDS,
// GRECA_ONLINE_READERS, GRECA_ONLINE_UPDATE_MS, GRECA_ONLINE_EVENTS,
// GRECA_ONLINE_CURVE_PUBLISHES, GRECA_ONLINE_CURVE_EVENTS.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace {

using namespace greca;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
    std::cerr << "ignoring " << name << "='" << env
              << "' (expected a positive integer)\n";
  }
  return fallback;
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

struct PhaseResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t queries = 0;
};

/// Runs `readers` threads issuing queries round-robin for `seconds`.
PhaseResult RunReaders(const Engine& engine, std::span<const Query> queries,
                       std::size_t readers, double seconds) {
  std::vector<std::vector<double>> latencies(readers);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  Stopwatch phase_watch;
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& lat = latencies[r];
      lat.reserve(1 << 14);
      std::size_t i = r;  // stride so readers spread over the query mix
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = queries[i % queries.size()];
        i += readers;
        Stopwatch watch;
        const auto result = engine.Recommend(q);
        lat.push_back(watch.ElapsedSeconds() * 1e6);
        if (!result.ok()) {
          std::cerr << "ERROR: query failed: " << result.status().ToString()
                    << "\n";
          std::abort();
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = phase_watch.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  PhaseResult result;
  result.queries = all.size();
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

std::vector<RatingEvent> RandomEvents(Rng& rng, std::size_t count,
                                      UserId participants, ItemId items,
                                      Timestamp base_ts) {
  std::vector<RatingEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RatingEvent e;
    e.user = static_cast<UserId>(rng.NextInt(0, participants - 1));
    e.item = static_cast<ItemId>(rng.NextInt(0, items - 1));
    e.rating = static_cast<Score>(rng.NextInt(1, 5));
    e.timestamp = base_ts + static_cast<Timestamp>(i);
    events.push_back(e);
  }
  return events;
}

}  // namespace

int main() {
  const auto& ctx = bench::BenchContext::Get();
  GroupRecommender& recommender = *ctx.recommender;  // writer entry point
  const Engine engine(recommender);                  // serving entry point

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t readers = EnvSize(
      "GRECA_ONLINE_READERS",
      std::clamp<std::size_t>(hw > 2 ? hw - 2 : 2, 2, 4));
  const double seconds =
      static_cast<double>(EnvSize("GRECA_ONLINE_SECONDS", 3));
  const std::size_t update_ms = EnvSize("GRECA_ONLINE_UPDATE_MS", 100);
  const std::size_t events_per_batch = EnvSize("GRECA_ONLINE_EVENTS", 8);

  // The paper's scalability mix: random groups of 6, k = 10, AP, discrete
  // model — 20 distinct groups cycled by the readers, so the snapshot's
  // (group, period) cache sees the repetition a real batch workload has.
  const PerformanceHarness perf(recommender, /*seed=*/2015);
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  std::vector<Query> queries;
  for (const Group& group : perf.RandomGroups(bench::kNumRandomGroups, 6)) {
    queries.push_back(Query{group, spec});
  }

  const auto participants =
      static_cast<UserId>(recommender.study().num_participants());
  const auto num_items =
      static_cast<ItemId>(ctx.universe.dataset.num_items());

  // Pin a pre-writer snapshot and record its answers: replayed at the end to
  // enforce that publishes never mutate a pinned generation.
  const auto pinned = engine.snapshot();
  const auto pinned_before = engine.RecommendBatch(queries, pinned);

  // Warm-up: touch every query once outside the measurement windows so the
  // baseline phase is not charged the process's cold-start (allocator,
  // period-cache fill for generation 1).
  for (const Query& q : queries) {
    if (!engine.Recommend(q).ok()) std::abort();
  }

  std::cout << "bench_online: " << readers << " readers, " << seconds
            << "s per phase, writer batch " << events_per_batch
            << " events every " << update_ms << "ms (" << hw
            << " hardware threads)\n";

  const PhaseResult baseline = RunReaders(engine, queries, readers, seconds);

  // Phase 2: same reader load + a writer publishing at a fixed arrival rate.
  std::atomic<bool> writer_stop{false};
  std::vector<double> publish_ms;
  std::size_t updates_applied = 0;
  std::thread writer([&] {
    Rng rng(77);
    Timestamp ts = 1'000'000'000;
    while (!writer_stop.load(std::memory_order_relaxed)) {
      const auto events =
          RandomEvents(rng, events_per_batch, participants, num_items, ts);
      ts += static_cast<Timestamp>(events_per_batch);
      Stopwatch watch;
      const Status status = recommender.ApplyRatingUpdates(events);
      publish_ms.push_back(watch.ElapsedMillis());
      if (!status.ok()) {
        std::cerr << "ERROR: update failed: " << status.ToString() << "\n";
        std::abort();
      }
      updates_applied += events.size();
      std::this_thread::sleep_for(std::chrono::milliseconds(update_ms));
    }
  });
  const PhaseResult live = RunReaders(engine, queries, readers, seconds);
  writer_stop.store(true);
  writer.join();

  // Phase 3: the publish-latency curve. Apply update batches back to back
  // and bucket per-publish latency into deciles by accumulated live
  // ratings; with the per-user delta log, the steady-state p99 must not
  // grow with the accumulated volume.
  const bool small_scale = std::getenv("GRECA_BENCH_SMALL") != nullptr;
  const std::size_t curve_publishes =
      EnvSize("GRECA_ONLINE_CURVE_PUBLISHES", small_scale ? 120 : 400);
  const std::size_t curve_events = EnvSize("GRECA_ONLINE_CURVE_EVENTS", 32);
  struct PublishSample {
    std::size_t accumulated = 0;  // live ratings before this publish
    double ms = 0.0;
    bool compacted = false;
  };
  std::vector<PublishSample> curve;
  curve.reserve(curve_publishes);
  {
    Rng rng(4242);
    Timestamp ts = 3'000'000'000;
    std::size_t accumulated = updates_applied;  // phase-2 events carry over
    for (std::size_t i = 0; i < curve_publishes; ++i) {
      const auto events =
          RandomEvents(rng, curve_events, participants, num_items, ts);
      ts += static_cast<Timestamp>(curve_events);
      UpdateReport report;
      Stopwatch watch;
      const Status status = recommender.ApplyRatingUpdates(events, &report);
      const double ms = watch.ElapsedMillis();
      if (!status.ok()) {
        std::cerr << "ERROR: curve update failed: " << status.ToString()
                  << "\n";
        std::abort();
      }
      curve.push_back({accumulated, ms, report.compacted});
      accumulated += report.events_applied;
    }
  }

  struct CurveBucket {
    std::size_t accumulated_mid = 0;
    std::size_t publishes = 0;
    std::size_t compactions = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;  // steady-state (compaction publishes excluded)
  };
  constexpr std::size_t kCurveBuckets = 10;
  std::vector<CurveBucket> buckets(kCurveBuckets);
  for (std::size_t b = 0; b < kCurveBuckets; ++b) {
    const std::size_t lo = b * curve.size() / kCurveBuckets;
    const std::size_t hi = (b + 1) * curve.size() / kCurveBuckets;
    std::vector<double> steady;
    for (std::size_t i = lo; i < hi; ++i) {
      if (curve[i].compacted) {
        ++buckets[b].compactions;
      } else {
        steady.push_back(curve[i].ms);
      }
    }
    buckets[b].publishes = hi - lo;
    buckets[b].accumulated_mid = curve[(lo + hi) / 2].accumulated;
    buckets[b].p50_ms = Percentile(steady, 0.50);
    buckets[b].p99_ms = Percentile(steady, 0.99);
  }
  const double curve_p99_first = buckets.front().p99_ms;
  const double curve_p99_last = buckets.back().p99_ms;
  // A decile with no steady (non-compaction) publishes has no p99; don't
  // let the flat-latency check silently pass as "ratio 0 = flat".
  const bool curve_valid = curve_p99_first > 0.0 && curve_p99_last > 0.0;
  const double curve_p99_ratio =
      curve_valid ? curve_p99_last / curve_p99_first : 0.0;
  std::size_t curve_compactions = 0;
  double compaction_ms_sum = 0.0;
  for (const PublishSample& s : curve) {
    if (s.compacted) {
      ++curve_compactions;
      compaction_ms_sum += s.ms;
    }
  }
  const double compaction_mean_ms =
      curve_compactions > 0
          ? compaction_ms_sum / static_cast<double>(curve_compactions)
          : 0.0;
  const std::size_t delta_log_final =
      engine.snapshot()->ratings().delta_ratings();

  const std::uint64_t final_generation = engine.snapshot()->generation();

  // Immutability check: the pinned pre-writer generation must replay
  // bit-identically after every publish above.
  const auto pinned_after = engine.RecommendBatch(queries, pinned);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!pinned_after[i].ok() || !pinned_before[i].ok() ||
        pinned_after[i].value().items != pinned_before[i].value().items ||
        pinned_after[i].value().scores != pinned_before[i].value().scores) {
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "ERROR: " << mismatches << "/" << queries.size()
              << " pinned-snapshot results changed across publishes\n";
    return 1;
  }

  const double ratio = live.qps / baseline.qps;
  const double publish_p50 = Percentile(publish_ms, 0.50);
  const double publish_p99 = Percentile(publish_ms, 0.99);

  TablePrinter table("Engine::Recommend under live updates (generation 1 -> " +
                     std::to_string(final_generation) + ")");
  table.SetColumns(
      {"phase", "queries", "queries/s", "p50 (us)", "p99 (us)"});
  table.AddRow({"no writer", std::to_string(baseline.queries),
                TablePrinter::Cell(baseline.qps, 1),
                TablePrinter::Cell(baseline.p50_us, 0),
                TablePrinter::Cell(baseline.p99_us, 0)});
  table.AddRow({"concurrent writer", std::to_string(live.queries),
                TablePrinter::Cell(live.qps, 1),
                TablePrinter::Cell(live.p50_us, 0),
                TablePrinter::Cell(live.p99_us, 0)});
  table.Print(std::cout);

  TablePrinter curve_table(
      "Publish latency vs accumulated live ratings (delta-log curve, " +
      std::to_string(curve_events) + " events/batch)");
  curve_table.SetColumns({"live ratings", "publishes", "p50 (ms)",
                          "steady p99 (ms)", "compactions"});
  for (const CurveBucket& b : buckets) {
    curve_table.AddRow({std::to_string(b.accumulated_mid),
                        std::to_string(b.publishes),
                        TablePrinter::Cell(b.p50_ms, 3),
                        TablePrinter::Cell(b.p99_ms, 3),
                        std::to_string(b.compactions)});
  }
  curve_table.Print(std::cout);

  std::cout << "qps_ratio (writer/baseline): " << ratio << "\n"
            << "snapshot_publish_ms p50: " << publish_p50
            << "  p99: " << publish_p99 << "  publishes: "
            << publish_ms.size() << " (" << updates_applied << " events)\n"
            << "publish_curve_p99 (last/first decile): " << curve_p99_last
            << " / " << curve_p99_first << " = " << curve_p99_ratio << " ("
            << curve.front().accumulated << " -> " << curve.back().accumulated
            << " live ratings, " << curve_compactions
            << " compactions, mean " << compaction_mean_ms << " ms, "
            << delta_log_final << " delta entries resident)\n"
            << "pinned-snapshot replay: identical across "
            << (final_generation - pinned->generation())
            << " publishes\nExpected: ratio >= 0.85 on multi-core hosts "
               "(reads never block; the residual gap is the writer's own "
               "CPU share); publish_curve_p99_ratio <= 1.5 (the delta log "
               "keeps publishes O(batch) — the old full re-fold grew "
               "linearly with accumulated ratings)\n";
  if (ratio < 0.85) {
    std::cout << "WARNING: ratio below 0.85 — on a single-core host the "
                 "writer's rebuild time is the likely cause, not blocking\n";
  }
  if (!curve_valid) {
    std::cout << "WARNING: a curve decile had no steady (non-compaction) "
                 "publishes — publish_curve_p99_ratio is 0 (no data), not "
                 "flat; raise GRECA_ONLINE_CURVE_PUBLISHES\n";
  } else if (curve_p99_ratio > 1.5) {
    std::cout << "WARNING: publish p99 grew " << curve_p99_ratio
              << "x across the curve — the delta-log publish path is no "
                 "longer flat\n";
  }

  const char* json_path = std::getenv("GRECA_BENCH_ONLINE_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_online.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"readers\": " << readers << ",\n"
       << "  \"phase_seconds\": " << seconds << ",\n"
       << "  \"update_interval_ms\": " << update_ms << ",\n"
       << "  \"events_per_batch\": " << events_per_batch << ",\n"
       << "  \"baseline_qps\": " << baseline.qps << ",\n"
       << "  \"baseline_p50_us\": " << baseline.p50_us << ",\n"
       << "  \"baseline_p99_us\": " << baseline.p99_us << ",\n"
       << "  \"writer_qps\": " << live.qps << ",\n"
       << "  \"writer_p50_us\": " << live.p50_us << ",\n"
       << "  \"writer_p99_us\": " << live.p99_us << ",\n"
       << "  \"qps_ratio\": " << ratio << ",\n"
       << "  \"publish_p50_ms\": " << publish_p50 << ",\n"
       << "  \"publish_p99_ms\": " << publish_p99 << ",\n"
       << "  \"publishes\": " << publish_ms.size() << ",\n"
       << "  \"events_applied\": " << updates_applied << ",\n"
       << "  \"curve_publishes\": " << curve.size() << ",\n"
       << "  \"curve_events_per_batch\": " << curve_events << ",\n"
       << "  \"publish_curve\": [\n";
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    json << "    {\"accumulated_live_ratings\": "
         << buckets[b].accumulated_mid
         << ", \"publishes\": " << buckets[b].publishes
         << ", \"p50_ms\": " << buckets[b].p50_ms
         << ", \"steady_p99_ms\": " << buckets[b].p99_ms
         << ", \"compactions\": " << buckets[b].compactions << "}"
         << (b + 1 < buckets.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"publish_curve_p99_first_ms\": " << curve_p99_first << ",\n"
       << "  \"publish_curve_p99_last_ms\": " << curve_p99_last << ",\n"
       << "  \"publish_curve_p99_ratio\": " << curve_p99_ratio << ",\n"
       << "  \"curve_compactions\": " << curve_compactions << ",\n"
       << "  \"curve_compaction_mean_ms\": " << compaction_mean_ms << ",\n"
       << "  \"delta_log_ratings_final\": " << delta_log_final << ",\n"
       << "  \"final_generation\": " << final_generation << ",\n"
       << "  \"pinned_replay_identical\": true\n"
       << "}\n";
  std::cout << "Wrote " << path << "\n";
  return 0;
}
