// Online serving under live updates: the acceptance bench for the
// snapshot-centric (RCU-style) API.
//
// Phase 1 (baseline): reader threads hammer Engine::Recommend for a fixed
// wall-clock window with no writer — queries/second plus per-query p50/p99.
// Phase 2 (live): the same reader load while a writer thread applies a
// RatingEvent batch every --update-interval, each publish building a new
// snapshot generation off the serving path. Because readers pin snapshots
// and the writer publishes with an atomic pointer swap, reads never block on
// writes: throughput under the writer should track the baseline (the gap is
// CPU time the writer consumes, not lock waits — on a single-core host the
// writer's rebuild share is the expected gap).
//
// The bench also replays a query batch pinned to a pre-writer snapshot after
// dozens of generations have published and fails hard if any result changed
// — the serving-immutability contract, cheap enough to enforce every run.
//
// Output: a human-readable table plus a machine-readable JSON file
// (BENCH_online.json by default; override with GRECA_BENCH_ONLINE_JSON).
// Env knobs: GRECA_BENCH_SMALL=1 (smoke scale), GRECA_ONLINE_SECONDS,
// GRECA_ONLINE_READERS, GRECA_ONLINE_UPDATE_MS, GRECA_ONLINE_EVENTS.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace {

using namespace greca;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
    std::cerr << "ignoring " << name << "='" << env
              << "' (expected a positive integer)\n";
  }
  return fallback;
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

struct PhaseResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t queries = 0;
};

/// Runs `readers` threads issuing queries round-robin for `seconds`.
PhaseResult RunReaders(const Engine& engine, std::span<const Query> queries,
                       std::size_t readers, double seconds) {
  std::vector<std::vector<double>> latencies(readers);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  Stopwatch phase_watch;
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& lat = latencies[r];
      lat.reserve(1 << 14);
      std::size_t i = r;  // stride so readers spread over the query mix
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = queries[i % queries.size()];
        i += readers;
        Stopwatch watch;
        const auto result = engine.Recommend(q);
        lat.push_back(watch.ElapsedSeconds() * 1e6);
        if (!result.ok()) {
          std::cerr << "ERROR: query failed: " << result.status().ToString()
                    << "\n";
          std::abort();
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = phase_watch.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  PhaseResult result;
  result.queries = all.size();
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

std::vector<RatingEvent> RandomEvents(Rng& rng, std::size_t count,
                                      UserId participants, ItemId items,
                                      Timestamp base_ts) {
  std::vector<RatingEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RatingEvent e;
    e.user = static_cast<UserId>(rng.NextInt(0, participants - 1));
    e.item = static_cast<ItemId>(rng.NextInt(0, items - 1));
    e.rating = static_cast<Score>(rng.NextInt(1, 5));
    e.timestamp = base_ts + static_cast<Timestamp>(i);
    events.push_back(e);
  }
  return events;
}

}  // namespace

int main() {
  const auto& ctx = bench::BenchContext::Get();
  GroupRecommender& recommender = *ctx.recommender;  // writer entry point
  const Engine engine(recommender);                  // serving entry point

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t readers = EnvSize(
      "GRECA_ONLINE_READERS",
      std::clamp<std::size_t>(hw > 2 ? hw - 2 : 2, 2, 4));
  const double seconds =
      static_cast<double>(EnvSize("GRECA_ONLINE_SECONDS", 3));
  const std::size_t update_ms = EnvSize("GRECA_ONLINE_UPDATE_MS", 100);
  const std::size_t events_per_batch = EnvSize("GRECA_ONLINE_EVENTS", 8);

  // The paper's scalability mix: random groups of 6, k = 10, AP, discrete
  // model — 20 distinct groups cycled by the readers, so the snapshot's
  // (group, period) cache sees the repetition a real batch workload has.
  const PerformanceHarness perf(recommender, /*seed=*/2015);
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  std::vector<Query> queries;
  for (const Group& group : perf.RandomGroups(bench::kNumRandomGroups, 6)) {
    queries.push_back(Query{group, spec});
  }

  const auto participants =
      static_cast<UserId>(recommender.study().num_participants());
  const auto num_items =
      static_cast<ItemId>(ctx.universe.dataset.num_items());

  // Pin a pre-writer snapshot and record its answers: replayed at the end to
  // enforce that publishes never mutate a pinned generation.
  const auto pinned = engine.snapshot();
  const auto pinned_before = engine.RecommendBatch(queries, pinned);

  // Warm-up: touch every query once outside the measurement windows so the
  // baseline phase is not charged the process's cold-start (allocator,
  // period-cache fill for generation 1).
  for (const Query& q : queries) {
    if (!engine.Recommend(q).ok()) std::abort();
  }

  std::cout << "bench_online: " << readers << " readers, " << seconds
            << "s per phase, writer batch " << events_per_batch
            << " events every " << update_ms << "ms (" << hw
            << " hardware threads)\n";

  const PhaseResult baseline = RunReaders(engine, queries, readers, seconds);

  // Phase 2: same reader load + a writer publishing at a fixed arrival rate.
  std::atomic<bool> writer_stop{false};
  std::vector<double> publish_ms;
  std::size_t updates_applied = 0;
  std::thread writer([&] {
    Rng rng(77);
    Timestamp ts = 1'000'000'000;
    while (!writer_stop.load(std::memory_order_relaxed)) {
      const auto events =
          RandomEvents(rng, events_per_batch, participants, num_items, ts);
      ts += static_cast<Timestamp>(events_per_batch);
      Stopwatch watch;
      const Status status = recommender.ApplyRatingUpdates(events);
      publish_ms.push_back(watch.ElapsedMillis());
      if (!status.ok()) {
        std::cerr << "ERROR: update failed: " << status.ToString() << "\n";
        std::abort();
      }
      updates_applied += events.size();
      std::this_thread::sleep_for(std::chrono::milliseconds(update_ms));
    }
  });
  const PhaseResult live = RunReaders(engine, queries, readers, seconds);
  writer_stop.store(true);
  writer.join();

  const std::uint64_t final_generation = engine.snapshot()->generation();

  // Immutability check: the pinned pre-writer generation must replay
  // bit-identically after every publish above.
  const auto pinned_after = engine.RecommendBatch(queries, pinned);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!pinned_after[i].ok() || !pinned_before[i].ok() ||
        pinned_after[i].value().items != pinned_before[i].value().items ||
        pinned_after[i].value().scores != pinned_before[i].value().scores) {
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "ERROR: " << mismatches << "/" << queries.size()
              << " pinned-snapshot results changed across publishes\n";
    return 1;
  }

  const double ratio = live.qps / baseline.qps;
  const double publish_p50 = Percentile(publish_ms, 0.50);
  const double publish_p99 = Percentile(publish_ms, 0.99);

  TablePrinter table("Engine::Recommend under live updates (generation 1 -> " +
                     std::to_string(final_generation) + ")");
  table.SetColumns(
      {"phase", "queries", "queries/s", "p50 (us)", "p99 (us)"});
  table.AddRow({"no writer", std::to_string(baseline.queries),
                TablePrinter::Cell(baseline.qps, 1),
                TablePrinter::Cell(baseline.p50_us, 0),
                TablePrinter::Cell(baseline.p99_us, 0)});
  table.AddRow({"concurrent writer", std::to_string(live.queries),
                TablePrinter::Cell(live.qps, 1),
                TablePrinter::Cell(live.p50_us, 0),
                TablePrinter::Cell(live.p99_us, 0)});
  table.Print(std::cout);

  std::cout << "qps_ratio (writer/baseline): " << ratio << "\n"
            << "snapshot_publish_ms p50: " << publish_p50
            << "  p99: " << publish_p99 << "  publishes: "
            << publish_ms.size() << " (" << updates_applied << " events)\n"
            << "pinned-snapshot replay: identical across "
            << (final_generation - pinned->generation())
            << " publishes\nExpected: ratio >= 0.85 on multi-core hosts "
               "(reads never block; the residual gap is the writer's own "
               "CPU share)\n";
  if (ratio < 0.85) {
    std::cout << "WARNING: ratio below 0.85 — on a single-core host the "
                 "writer's rebuild time is the likely cause, not blocking\n";
  }

  const char* json_path = std::getenv("GRECA_BENCH_ONLINE_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_online.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"readers\": " << readers << ",\n"
       << "  \"phase_seconds\": " << seconds << ",\n"
       << "  \"update_interval_ms\": " << update_ms << ",\n"
       << "  \"events_per_batch\": " << events_per_batch << ",\n"
       << "  \"baseline_qps\": " << baseline.qps << ",\n"
       << "  \"baseline_p50_us\": " << baseline.p50_us << ",\n"
       << "  \"baseline_p99_us\": " << baseline.p99_us << ",\n"
       << "  \"writer_qps\": " << live.qps << ",\n"
       << "  \"writer_p50_us\": " << live.p50_us << ",\n"
       << "  \"writer_p99_us\": " << live.p99_us << ",\n"
       << "  \"qps_ratio\": " << ratio << ",\n"
       << "  \"publish_p50_ms\": " << publish_p50 << ",\n"
       << "  \"publish_p99_ms\": " << publish_p99 << ",\n"
       << "  \"publishes\": " << publish_ms.size() << ",\n"
       << "  \"events_applied\": " << updates_applied << ",\n"
       << "  \"final_generation\": " << final_generation << ",\n"
       << "  \"pinned_replay_identical\": true\n"
       << "}\n";
  std::cout << "Wrote " << path << "\n";
  return 0;
}
