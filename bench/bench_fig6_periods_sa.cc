// Reproduces Figure 6: "Average Percentage of SAs for Different Periods in
// Discrete Time Model" — GRECA's %SA as the evaluation horizon extends from
// the first two-month period to all six (each extra period adds one more
// affinity list to scan).
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PerformanceHarness perf(*ctx.recommender, /*seed=*/2015);
  const auto groups = perf.RandomGroups(bench::kNumRandomGroups, 6);

  TablePrinter table(
      "Figure 6: Average %SA per evaluation period (discrete model)");
  table.SetColumns({"periods used", "avg #SA %", "std err", "saveup %"});
  for (PeriodId p = 0; p < ctx.recommender->num_periods(); ++p) {
    QuerySpec spec = PerformanceHarness::DefaultSpec();
    spec.eval_period = p;
    const auto m = perf.Measure(groups, spec);
    table.AddRow({TablePrinter::Cell(static_cast<std::size_t>(p + 1)),
                  TablePrinter::Cell(m.mean_sa_percent, 2),
                  TablePrinter::Cell(m.std_error, 2),
                  TablePrinter::Cell(m.mean_saveup_percent, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: roughly linear growth with the number of "
               "periods (more affinity lists to consume), with plateaus "
               "where a period carries few common page-likes.\n";
  return 0;
}
