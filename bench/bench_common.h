// Shared fixture for every bench harness: the paper-scale synthetic
// MovieLens twin (Table 5), the 72-participant Facebook study twin, the
// recommender and the satisfaction oracle — built once per binary.
#ifndef GRECA_BENCH_BENCH_COMMON_H_
#define GRECA_BENCH_BENCH_COMMON_H_

#include <memory>
#include <vector>

#include "core/group_recommender.h"
#include "eval/experiments.h"
#include "eval/satisfaction.h"
#include "eval/study_groups.h"

namespace greca::bench {

struct BenchContext {
  SyntheticRatings universe;
  FacebookStudy study;
  std::unique_ptr<GroupRecommender> recommender;
  std::unique_ptr<SatisfactionOracle> oracle;

  /// Lazily-built process-wide context at the paper's scale (6 040 users,
  /// 3 952 movies, ~1M ratings, 72 study participants, 6 two-month periods).
  /// Set GRECA_BENCH_SMALL=1 to shrink the universe for smoke runs.
  static const BenchContext& Get();
};

/// Number of repetitions for group-sampled measurements (paper: 20 groups).
inline constexpr std::size_t kNumRandomGroups = 20;

}  // namespace greca::bench

#endif  // GRECA_BENCH_BENCH_COMMON_H_
