// Ablation benches for the design choices called out in DESIGN.md §4:
//   1. buffer-condition termination vs threshold-only (the paper's novelty),
//   2. incremental drift index vs recompute-from-scratch,
//   3. closed-form population average vs naive O(|U|^2) pair scan,
//   4. GRECA vs TA vs naive access accounting at paper scale.
#include <iostream>

#include "affinity/dynamic_affinity.h"
#include "bench_common.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const PerformanceHarness perf(*ctx.recommender, /*seed=*/2015);
  const auto groups = perf.RandomGroups(bench::kNumRandomGroups, 6);

  // ---- 1. Termination policy -------------------------------------------
  {
    TablePrinter table(
        "Ablation 1: buffer-condition termination vs threshold-only");
    table.SetColumns({"policy", "avg #SA %", "saveup %"});
    for (const auto& [label, policy] :
         std::vector<std::pair<std::string, TerminationPolicy>>{
             {"buffer condition (GRECA)", TerminationPolicy::kBufferCondition},
             {"threshold only", TerminationPolicy::kThresholdOnly}}) {
      QuerySpec spec = PerformanceHarness::DefaultSpec();
      spec.termination = policy;
      const auto m = perf.Measure(groups, spec);
      table.AddRow({label, TablePrinter::Cell(m.mean_sa_percent, 2),
                    TablePrinter::Cell(m.mean_saveup_percent, 2)});
    }
    table.Print(std::cout);
    std::cout << "Without the buffer condition the classical threshold rule "
                 "can only fire with exactly k buffered items, so the scan "
                 "runs to exhaustion (paper §3.2).\n\n";
  }

  // ---- 2. Incremental drift index ---------------------------------------
  {
    const PeriodicAffinity& pa = ctx.recommender->periodic_affinity();
    Stopwatch watch;
    DynamicAffinityIndex incremental(pa.num_users());
    for (PeriodId p = 0; p < pa.num_periods(); ++p) {
      incremental.AppendPeriod(pa, p);
    }
    const double incremental_ms = watch.ElapsedMillis();

    watch.Restart();
    double checksum = 0.0;
    const auto n = static_cast<UserId>(pa.num_users());
    for (PeriodId p = 0; p < pa.num_periods(); ++p) {
      for (UserId u = 0; u < n; ++u) {
        for (UserId v = u + 1; v < n; ++v) {
          checksum += RecomputeCumulativeDrift(pa, u, v, p);
        }
      }
    }
    const double recompute_ms = watch.ElapsedMillis();

    TablePrinter table("Ablation 2: incremental drift index maintenance");
    table.SetColumns({"strategy", "time (ms)"});
    table.AddRow({"incremental append (paper)",
                  TablePrinter::Cell(incremental_ms, 3)});
    table.AddRow({"recompute every pair x period",
                  TablePrinter::Cell(recompute_ms, 3)});
    table.Print(std::cout);
    std::cout << "(checksum " << checksum
              << ") Appending a period never touches previous drifts.\n\n";
  }

  // ---- 3. Closed-form population average --------------------------------
  {
    const PageLikeLog& likes = ctx.study.likes;
    const Timeline& timeline = ctx.study.periods;
    Stopwatch watch;
    double closed = 0.0;
    for (const Period& p : timeline.periods()) {
      closed += SumPairwiseCommonCategories(likes, p);
    }
    const double closed_ms = watch.ElapsedMillis();
    watch.Restart();
    double naive = 0.0;
    for (const Period& p : timeline.periods()) {
      naive += SumPairwiseCommonCategoriesNaive(likes, p);
    }
    const double naive_ms = watch.ElapsedMillis();

    TablePrinter table(
        "Ablation 3: AvgAffP via per-category counts vs naive pair scan");
    table.SetColumns({"strategy", "sum over periods", "time (ms)"});
    table.AddRow({"closed form Sum_c C(n_c,2)", TablePrinter::Cell(closed, 1),
                  TablePrinter::Cell(closed_ms, 3)});
    table.AddRow({"naive O(|U|^2) intersection", TablePrinter::Cell(naive, 1),
                  TablePrinter::Cell(naive_ms, 3)});
    table.Print(std::cout);
    std::cout << "Identical sums, asymptotically cheaper closed form.\n\n";
  }

  // ---- 4. Algorithm access accounting ------------------------------------
  {
    TablePrinter table(
        "Ablation 4: access accounting, GRECA vs TA vs naive (k=10, size 6)");
    table.SetColumns({"algorithm", "avg SAs", "avg RAs", "avg total",
                      "avg %SA of full scan"});
    for (const auto& [label, algorithm] :
         std::vector<std::pair<std::string, Algorithm>>{
             {"GRECA", Algorithm::kGreca},
             {"TA", Algorithm::kTa},
             {"naive", Algorithm::kNaive}}) {
      OnlineStats sas, ras, totals, pct;
      for (const Group& group : groups) {
        QuerySpec spec = PerformanceHarness::DefaultSpec();
        spec.algorithm = algorithm;
        const Recommendation r = ctx.recommender->Recommend(group, spec).value();
        sas.Add(static_cast<double>(r.raw.accesses.sequential));
        ras.Add(static_cast<double>(r.raw.accesses.random));
        totals.Add(static_cast<double>(r.raw.accesses.total()));
        pct.Add(r.raw.SequentialAccessPercent());
      }
      table.AddRow({label, TablePrinter::Cell(sas.mean(), 0),
                    TablePrinter::Cell(ras.mean(), 0),
                    TablePrinter::Cell(totals.mean(), 0),
                    TablePrinter::Cell(pct.mean(), 2)});
    }
    table.Print(std::cout);
    std::cout << "GRECA makes sequential accesses only; TA pays heavy RA "
                 "costs per scored item (paper §3.1).\n";
  }
  return 0;
}
