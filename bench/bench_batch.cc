// Batch-vs-sequential throughput of the Engine API: the acceptance bench for
// the batch-first redesign. Runs a 64-query batch (the paper's scalability
// setup: random groups of 6, k = 10, AP, discrete model) sequentially and
// through Engine::RecommendBatch at several thread counts, verifying result
// equivalence and reporting queries/second and speedup. Also splits the
// sequential per-query cost into problem assembly (BuildProblem over the
// shared PreferenceIndex, zero-copy) and solve time, so the perf trajectory
// tracks the assembly cost the zero-copy refactor removed.
//
// The layout sweep at the end runs the exhaustive-scan workload (naive
// algorithm) per candidate-pool size under both index layouts — banded rows
// (popularity bands, prefix views walk only their bands) vs the flat
// globally-sorted fallback — verifying bit-identical results and reporting
// qps plus the per-list scan footprint. Machine-readable results go to the
// path in GRECA_BATCH_JSON (scripts/bench.sh wires this up).
//
// The planner sweep replays a Zipf-repeated duplicate-heavy batch at
// duplicate factors 1/4/16 through a planning engine vs the unplanned
// reference path (EngineOptions::plan_batches), verifying bit-identical
// results and reporting the planned/unplanned qps ratio per factor.
//
// Set GRECA_BENCH_SMALL=1 for a smoke-scale run, GRECA_BATCH_QUERIES to
// change the batch size, GRECA_BATCH_LAYOUT=banded|flat|both to restrict the
// layout sweep, GRECA_BATCH_ASSERT_BANDED=1 (CI) to fail the run when the
// banded layout regresses the smallest-pool workload against flat, and
// GRECA_BATCH_ASSERT_PLANNER=1 (CI) to fail it when planning regresses
// duplicate-free batches, undershoots 1.5x at duplicate factor 16, or ever
// merges buckets across solver ids / weighting modes. GRECA_BATCH_ALGO
// restricts the registered-solver quality-vs-speed sweep (comma-separated
// solver ids; default "all").
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "solver/solver_registry.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const GroupRecommender& recommender = *ctx.recommender;

  std::size_t num_queries = 64;
  if (const char* env = std::getenv("GRECA_BATCH_QUERIES")) {
    const long long parsed = std::atoll(env);
    if (parsed <= 0) {
      std::cerr << "ignoring GRECA_BATCH_QUERIES='" << env
                << "' (expected a positive integer)\n";
    } else {
      num_queries = static_cast<std::size_t>(parsed);
    }
  }

  const PerformanceHarness perf(recommender, /*seed=*/2015);
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  std::vector<Query> batch;
  for (const Group& group : perf.RandomGroups(num_queries, 6)) {
    batch.push_back(Query{group, spec});
  }

  // Cold assembly pass, before anything touches the snapshot's
  // (group, period) period-list cache: every query materializes its periodic
  // lists. The warm pass below re-assembles the same batch with the cache
  // full — the difference is what snapshot-scoped period caching buys
  // repeated-group workloads.
  const auto snapshot = recommender.snapshot();
  QueryWorkspace cold_workspace;
  Stopwatch cold_watch;
  for (const Query& q : batch) {
    const auto problem =
        recommender.BuildProblem(q.group, q.spec, nullptr, &cold_workspace);
    if (!problem.ok()) {
      std::cerr << "ERROR: cold assembly failed\n";
      return 1;
    }
  }
  const double cold_asm_seconds = cold_watch.ElapsedSeconds();
  const std::uint64_t cold_misses = snapshot->period_cache_misses();

  // Sequential baseline: one query at a time through the facade, with a
  // single reused workspace (the fairest single-thread configuration).
  Stopwatch seq_watch;
  QueryWorkspace workspace;
  std::vector<Recommendation> sequential;
  sequential.reserve(batch.size());
  for (const Query& q : batch) {
    sequential.push_back(
        recommender.Recommend(q.group, q.spec, &workspace).value());
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();

  // Assembly-only pass over the same batch and workspace (steady state):
  // what BuildProblem costs without solving.
  Stopwatch asm_watch;
  std::size_t assembled = 0;
  for (const Query& q : batch) {
    const auto problem =
        recommender.BuildProblem(q.group, q.spec, nullptr, &workspace);
    if (problem.ok()) ++assembled;
  }
  const double asm_seconds = asm_watch.ElapsedSeconds();
  if (assembled != batch.size()) {
    std::cerr << "ERROR: only " << assembled << "/" << batch.size()
              << " problems assembled\n";
    return 1;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  TablePrinter table("Engine::RecommendBatch vs sequential (" +
                     std::to_string(batch.size()) + " queries, " +
                     std::to_string(hw) + " hardware threads)");
  table.SetColumns({"configuration", "seconds", "queries/s", "speedup"});
  const double seq_qps = static_cast<double>(batch.size()) / seq_seconds;
  table.AddRow({"sequential", TablePrinter::Cell(seq_seconds, 3),
                TablePrinter::Cell(seq_qps, 1), "1.00"});

  for (const std::size_t threads : {2u, 4u, 8u}) {
    EngineOptions eopts;
    eopts.num_threads = threads;
    const Engine engine(recommender, eopts);
    // Warm-up run so worker workspaces reach steady-state capacity.
    const std::size_t warmup = std::min<std::size_t>(4, batch.size());
    engine.RecommendBatch(
        std::vector<Query>(batch.begin(), batch.begin() + warmup));
    Stopwatch watch;
    const auto results = engine.RecommendBatch(batch);
    const double seconds = watch.ElapsedSeconds();

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!results[i].ok() ||
          results[i].value().items != sequential[i].items) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::cerr << "ERROR: " << mismatches
                << " batch results differ from sequential execution\n";
      return 1;
    }

    const double qps = static_cast<double>(batch.size()) / seconds;
    table.AddRow({std::to_string(threads) + " threads",
                  TablePrinter::Cell(seconds, 3), TablePrinter::Cell(qps, 1),
                  TablePrinter::Cell(seq_seconds / seconds, 2)});
  }
  table.Print(std::cout);

  const double per_query_us =
      1e6 * asm_seconds / static_cast<double>(batch.size());
  const double asm_share = 100.0 * asm_seconds / seq_seconds;
  const double cold_per_query_us =
      1e6 * cold_asm_seconds / static_cast<double>(batch.size());
  std::cout << "problem_assembly_seconds: " << asm_seconds << " ("
            << per_query_us << " us/query, " << asm_share
            << "% of sequential query time)\n"
            << "solve_seconds: " << (seq_seconds - asm_seconds)
            << " (sequential total minus assembly)\n"
            << "period_cache: cold assembly " << cold_per_query_us
            << " us/query (" << cold_misses << " lists materialized) vs warm "
            << per_query_us << " us/query ("
            << (snapshot->period_cache_hits()) << " hits, "
            << snapshot->period_cache_misses()
            << " misses total) — speedup "
            << (asm_seconds > 0.0 ? cold_asm_seconds / asm_seconds : 0.0)
            << "x\n";

  std::cout << "All batch results identical to sequential execution.\n"
            << "Expected: speedup ~ min(threads, cores); >= 2x on >= 4 "
               "cores.\n";

  // ---- Banded-vs-flat layout sweep per candidate-pool size ---------------
  // The exhaustive-scan workload (naive algorithm) is the one the access-cost
  // model governs: under the flat layout every member list walks the full
  // index row regardless of the pool prefix; banded rows walk only the bands
  // the prefix covers. Results must stay bit-identical across layouts.
  const char* layout_env = std::getenv("GRECA_BATCH_LAYOUT");
  std::string layout_sel = layout_env != nullptr ? layout_env : "both";
  if (layout_sel != "both" && layout_sel != "banded" && layout_sel != "flat") {
    std::cerr << "ignoring GRECA_BATCH_LAYOUT='" << layout_sel
              << "' (expected banded|flat|both); running both\n";
    layout_sel = "both";
  }
  const bool run_banded = layout_sel == "both" || layout_sel == "banded";
  const bool run_flat = layout_sel == "both" || layout_sel == "flat";

  // Pool grid from the small-prefix serving case (candidate pools a fraction
  // of the index row — the workload candidate-pool restriction creates) up
  // to the full row, where the banded index falls back to its flat-order
  // twin and must match the flat baseline.
  const std::size_t full_pool = recommender.preference_index().pool_size();
  const std::vector<std::size_t> pools = {full_pool / 16, full_pool / 4,
                                          full_pool / 2, full_pool};
  struct SweepRow {
    std::size_t pool = 0;
    std::string layout;
    double qps = 0.0;
    std::size_t footprint = 0;  // raw entries per member-list exhaustive scan
  };
  std::vector<SweepRow> sweep;
  std::vector<std::vector<Recommendation>> reference(pools.size());

  const auto run_layout = [&](const GroupRecommender& rec,
                              const std::string& layout) -> bool {
    QueryWorkspace ws;
    for (std::size_t pi = 0; pi < pools.size(); ++pi) {
      QuerySpec sweep_spec = spec;
      sweep_spec.algorithm = Algorithm::kNaive;
      sweep_spec.num_candidate_items = pools[pi];

      SweepRow row;
      row.pool = pools[pi];
      row.layout = layout;
      row.footprint = rec.BuildProblem(batch[0].group, sweep_spec, nullptr, &ws)
                          .value()
                          .preference_lists()[0]
                          .scan_footprint();
      // One warm-up query, then best-of-3 timed sequential passes (the
      // layouts run back to back, so taking the fastest pass damps
      // frequency/cache noise in the cross-layout ratio).
      rec.Recommend(batch[0].group, sweep_spec, &ws);
      std::vector<Recommendation> recs;
      double best_seconds = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        recs.clear();
        recs.reserve(batch.size());
        Stopwatch watch;
        for (const Query& q : batch) {
          recs.push_back(rec.Recommend(q.group, sweep_spec, &ws).value());
        }
        const double seconds = watch.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      }
      row.qps = static_cast<double>(batch.size()) / best_seconds;
      sweep.push_back(row);

      if (reference[pi].empty()) {
        reference[pi] = std::move(recs);
      } else {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (recs[i].items != reference[pi][i].items ||
              recs[i].scores != reference[pi][i].scores) {
            std::cerr << "ERROR: layout " << layout << " pool " << pools[pi]
                      << " query " << i << " differs across layouts\n";
            return false;
          }
        }
      }
    }
    return true;
  };

  if (run_banded || run_flat) {
    TablePrinter sweep_table(
        "Index-layout sweep, naive exhaustive scans (qps per pool size)");
    sweep_table.SetColumns(
        {"layout", "pool", "queries/s", "entries walked/scan"});
    if (run_banded && !run_layout(recommender, "banded")) return 1;
    if (run_flat) {
      // Same datasets, flat rows: the pre-banding baseline.
      RecommenderOptions flat_options;
      flat_options.max_candidate_items = full_pool;
      flat_options.index_layout = IndexLayout::kFlat;
      const GroupRecommender flat_rec(ctx.universe, ctx.study, flat_options);
      if (!run_layout(flat_rec, "flat")) return 1;
    }
    for (const SweepRow& row : sweep) {
      sweep_table.AddRow({row.layout, std::to_string(row.pool),
                          TablePrinter::Cell(row.qps, 1),
                          std::to_string(row.footprint)});
    }
    sweep_table.Print(std::cout);
    if (run_banded && run_flat) {
      std::cout << "All layout-sweep results identical across layouts.\n";
    }
  }

  const auto sweep_qps = [&](const std::string& layout,
                             std::size_t pool) -> double {
    for (const SweepRow& row : sweep) {
      if (row.layout == layout && row.pool == pool) return row.qps;
    }
    return 0.0;
  };
  if (run_banded && run_flat) {
    const double small_ratio =
        sweep_qps("banded", pools.front()) / sweep_qps("flat", pools.front());
    const double quarter_ratio =
        sweep_qps("banded", pools[1]) / sweep_qps("flat", pools[1]);
    const double full_ratio =
        sweep_qps("banded", pools.back()) / sweep_qps("flat", pools.back());
    std::cout << "banded/flat qps ratio: " << small_ratio << " at pool "
              << pools.front() << ", " << quarter_ratio << " at pool "
              << pools[1] << ", " << full_ratio << " at pool " << pools.back()
              << " (target: >= 1.3 small-pool, >= 1.0 row/4, >= 0.95 "
                 "full-pool)\n";
    const char* assert_env = std::getenv("GRECA_BATCH_ASSERT_BANDED");
    if (assert_env != nullptr && assert_env[0] == '1') {
      if (small_ratio < 0.95) {
        std::cerr << "ERROR: banded layout regresses the smallest-pool "
                     "workload vs flat (ratio "
                  << small_ratio << " < 0.95)\n";
        return 1;
      }
      // The region the SoA/loser-tree rewrite is supposed to win outright:
      // at row/4 the banded walk covers ~1/4 of the entries the flat row
      // scans, so banded qps must at least match flat.
      if (quarter_ratio < 1.0) {
        std::cerr << "ERROR: banded layout slower than flat at the row/4 "
                     "pool (ratio "
                  << quarter_ratio << " < 1.0)\n";
        return 1;
      }
    }
  }

  // Resident-size split of the serving index (satellite of the SoA rewrite):
  // banded SoA rows vs the global-order twin vs the pool/key maps. The twin
  // component is what RecommenderOptions::build_flat_twin = false reclaims.
  const auto mem = recommender.preference_index().MemoryBreakdownBytes();
  std::cout << "index_memory: banded " << mem.banded_bytes << " B, flat twin "
            << mem.flat_twin_bytes << " B, maps " << mem.map_bytes
            << " B, total " << mem.total() << " B\n";

  // ---- Batch-planner sweep: duplicate-heavy traffic ----------------------
  // Production batch traffic repeats popular groups; the planner buckets
  // duplicate (group, spec-signature) queries so each distinct signature is
  // assembled and solved once, results fanned back out (plan/
  // batch_planner.h). The sweep replays a Zipf-repeated batch at duplicate
  // factors 1/4/16 through a planning engine and the unplanned reference
  // engine — same recommender, same thread count, so the ratio isolates
  // planning — verifying bit-identical results. With duplicate factor d the
  // planned path solves batch/d problems, so planned qps should approach d×
  // unplanned and hold parity at d = 1; GRECA_BATCH_ASSERT_PLANNER=1 (CI)
  // hard-fails when either end of that contract slips.
  struct PlannerRow {
    std::size_t dup = 1;
    std::size_t buckets = 0;
    double dedup = 1.0;
    double planned_qps = 0.0;
    double unplanned_qps = 0.0;
    std::size_t agreement_materialized = 0;
    std::uint64_t tombstone_hits = 0;
    std::uint64_t tombstone_misses = 0;
  };
  std::vector<PlannerRow> planner_sweep;
  {
    EngineOptions planned_opts;
    planned_opts.num_threads = 4;
    const Engine planned_engine(recommender, planned_opts);
    EngineOptions unplanned_opts;
    unplanned_opts.num_threads = 4;
    unplanned_opts.plan_batches = false;
    const Engine unplanned_engine(recommender, unplanned_opts);

    Rng rng(4242);
    const ConsensusSpec consensus_mix[] = {
        ConsensusSpec::AveragePreference(),
        ConsensusSpec::PairwiseDisagreement(), ConsensusSpec::LeastMisery()};
    for (const std::size_t dup : {1u, 4u, 16u}) {
      const std::size_t distinct =
          std::max<std::size_t>(1, num_queries / dup);
      // Distinct base queries over random groups, cycling the consensus
      // function (pairwise included, so the lazy-agreement path runs).
      const PerformanceHarness dup_perf(recommender, /*seed=*/77 + dup);
      std::vector<Query> base;
      for (const Group& group : dup_perf.RandomGroups(distinct, 6)) {
        Query q;
        q.group = group;
        q.spec = spec;
        q.spec.consensus = consensus_mix[base.size() % 3];
        base.push_back(std::move(q));
      }
      // Every base appears once; the rest of the batch repeats bases with
      // Zipf-weighted popularity (heavy traffic concentrates on few groups),
      // then the whole batch is shuffled.
      std::vector<Query> dup_batch = base;
      const ZipfSampler zipf(base.size(), 1.0);
      while (dup_batch.size() < num_queries) {
        dup_batch.push_back(base[zipf.Sample(rng)]);
      }
      Shuffle(rng, dup_batch);

      // One warm-up pass per engine, then best-of-3 timed runs.
      BatchReport report;
      auto planned_results = planned_engine.RecommendBatch(dup_batch);
      auto unplanned_results = unplanned_engine.RecommendBatch(dup_batch);
      double planned_best = 0.0, unplanned_best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        Stopwatch planned_watch;
        planned_results = planned_engine.RecommendBatch(dup_batch, &report);
        const double planned_seconds = planned_watch.ElapsedSeconds();
        Stopwatch unplanned_watch;
        unplanned_results = unplanned_engine.RecommendBatch(dup_batch);
        const double unplanned_seconds = unplanned_watch.ElapsedSeconds();
        if (rep == 0 || planned_seconds < planned_best) {
          planned_best = planned_seconds;
        }
        if (rep == 0 || unplanned_seconds < unplanned_best) {
          unplanned_best = unplanned_seconds;
        }
      }
      for (std::size_t i = 0; i < dup_batch.size(); ++i) {
        if (!planned_results[i].ok() || !unplanned_results[i].ok() ||
            planned_results[i].value().items !=
                unplanned_results[i].value().items ||
            planned_results[i].value().scores !=
                unplanned_results[i].value().scores) {
          std::cerr << "ERROR: planned batch differs from unplanned at dup "
                    << dup << " query " << i << "\n";
          return 1;
        }
      }

      PlannerRow row;
      row.dup = dup;
      row.buckets = report.num_buckets;
      row.dedup = report.dedup_ratio;
      row.planned_qps =
          static_cast<double>(dup_batch.size()) / planned_best;
      row.unplanned_qps =
          static_cast<double>(dup_batch.size()) / unplanned_best;
      row.agreement_materialized = report.agreement_lists_materialized;
      row.tombstone_hits = report.tombstone_cache_hits;
      row.tombstone_misses = report.tombstone_cache_misses;
      planner_sweep.push_back(row);
    }

    TablePrinter planner_table(
        "Batch planner, Zipf-repeated groups (" +
        std::to_string(num_queries) + " queries, 4 threads)");
    planner_table.SetColumns({"dup", "buckets", "dedup", "planned q/s",
                              "unplanned q/s", "speedup"});
    for (const PlannerRow& row : planner_sweep) {
      planner_table.AddRow(
          {std::to_string(row.dup), std::to_string(row.buckets),
           TablePrinter::Cell(row.dedup, 2),
           TablePrinter::Cell(row.planned_qps, 1),
           TablePrinter::Cell(row.unplanned_qps, 1),
           TablePrinter::Cell(row.planned_qps / row.unplanned_qps, 2)});
    }
    planner_table.Print(std::cout);
    std::cout << "All planned batches identical to unplanned execution.\n";

    const double parity_ratio =
        planner_sweep.front().planned_qps / planner_sweep.front().unplanned_qps;
    const double dup16_ratio =
        planner_sweep.back().planned_qps / planner_sweep.back().unplanned_qps;
    std::cout << "planner speedup: " << parity_ratio << "x at dup 1, "
              << dup16_ratio
              << "x at dup 16 (target: >= 1.0 parity at dup 1, >= 1.5 at "
                 "dup 16)\n";
    const char* assert_planner = std::getenv("GRECA_BATCH_ASSERT_PLANNER");
    if (assert_planner != nullptr && assert_planner[0] == '1') {
      // 0.95 is the repo's noise floor for parity gates (the target is 1.0;
      // see the banded small-pool gate above).
      if (parity_ratio < 0.95) {
        std::cerr << "ERROR: planning regresses duplicate-free batches "
                     "(ratio "
                  << parity_ratio << " < 0.95 at dup 1)\n";
        return 1;
      }
      if (dup16_ratio < 1.5) {
        std::cerr << "ERROR: planner speedup below 1.5x on duplicate-heavy "
                     "traffic (ratio "
                  << dup16_ratio << " at dup 16)\n";
        return 1;
      }
      // Bucketing-safety smoke: the same group issued under every registered
      // solver id and under both weighting modes — each duplicated — must
      // never share a bucket across solver ids or weighting modes (a merge
      // would silently serve one solver's result as another's), while exact
      // duplicates still share.
      std::vector<Query> mixed;
      const std::vector<std::string> reg_ids =
          SolverRegistry::Global().RegisteredIds();
      for (const std::string& id : reg_ids) {
        Query q = batch[0];
        q.spec.solver_id = id;
        mixed.push_back(q);
        mixed.push_back(q);  // exact duplicate — must still share
      }
      Query influence = batch[0];
      influence.spec.weighting = MemberWeighting::kInfluence;
      mixed.push_back(influence);
      mixed.push_back(influence);
      BatchReport mixed_report;
      const auto mixed_results =
          planned_engine.RecommendBatch(mixed, &mixed_report);
      const std::size_t distinct_signatures = reg_ids.size() + 1;
      if (mixed_report.num_buckets != distinct_signatures ||
          mixed_report.duplicates_shared != distinct_signatures) {
        std::cerr << "ERROR: planner merged queries across solver ids or "
                     "weighting modes ("
                  << mixed_report.num_buckets << " buckets for "
                  << distinct_signatures << " distinct signatures)\n";
        return 1;
      }
      for (const auto& r : mixed_results) {
        if (!r.ok()) {
          std::cerr << "ERROR: mixed-solver smoke query failed: "
                    << r.status().ToString() << "\n";
          return 1;
        }
      }
      std::cout << "planner bucketing smoke: " << mixed.size()
                << " mixed-solver queries -> " << mixed_report.num_buckets
                << " buckets (no cross-solver or cross-weighting merges)\n";
    }
  }

  // ---- Solver sweep: the quality-vs-speed frontier -----------------------
  // Every registered aggregation objective runs the same batch; qps comes
  // from best-of-3 sequential passes and quality from the satisfaction
  // oracle at the last study period (the paper's §4 protocol). The exact
  // rankers (greca/naive/ta) score identical lists, so their satisfaction
  // matches and the frontier isolates their speed; the submodular solver
  // trades consensus relevance for coverage — a genuinely different point.
  // GRECA_BATCH_ALGO restricts the sweep (comma-separated solver ids, or
  // "all", the default).
  struct AlgoRow {
    std::string id;
    double qps = 0.0;
    double satisfaction = 0.0;  // mean group satisfaction %, last period
  };
  std::vector<AlgoRow> algo_sweep;
  {
    const char* algo_env = std::getenv("GRECA_BATCH_ALGO");
    std::string algo_sel = algo_env != nullptr ? algo_env : "all";
    std::vector<std::string> solver_ids;
    if (algo_sel == "all" || algo_sel.empty()) {
      solver_ids = SolverRegistry::Global().RegisteredIds();
    } else {
      std::size_t start = 0;
      while (start <= algo_sel.size()) {
        const std::size_t comma = algo_sel.find(',', start);
        const std::string id = algo_sel.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!id.empty()) {
          if (SolverRegistry::Global().Find(id) == nullptr) {
            std::cerr << "ignoring unknown solver id '" << id
                      << "' in GRECA_BATCH_ALGO\n";
          } else {
            solver_ids.push_back(id);
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }

    const auto last_period =
        static_cast<PeriodId>(recommender.num_periods() - 1);
    QueryWorkspace ws;
    for (const std::string& id : solver_ids) {
      QuerySpec algo_spec = spec;
      algo_spec.solver_id = id;
      recommender.Recommend(batch[0].group, algo_spec, &ws);  // warm-up
      std::vector<Recommendation> recs;
      double best_seconds = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        recs.clear();
        recs.reserve(batch.size());
        Stopwatch watch;
        for (const Query& q : batch) {
          auto result = recommender.Recommend(q.group, algo_spec, &ws);
          if (!result.ok()) {
            std::cerr << "ERROR: solver '" << id
                      << "' failed: " << result.status().ToString() << "\n";
            return 1;
          }
          recs.push_back(std::move(result).value());
        }
        const double seconds = watch.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      }
      AlgoRow row;
      row.id = id;
      row.qps = static_cast<double>(batch.size()) / best_seconds;
      double satisfaction_sum = 0.0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        satisfaction_sum += ctx.oracle->GroupSatisfactionPercent(
            batch[i].group, recs[i].items, last_period);
      }
      row.satisfaction =
          satisfaction_sum / static_cast<double>(batch.size());
      algo_sweep.push_back(row);
    }

    if (!algo_sweep.empty()) {
      TablePrinter algo_table(
          "Solver sweep, quality vs speed (" +
          std::to_string(batch.size()) + " queries, satisfaction at the "
          "last period)");
      algo_table.SetColumns({"solver", "queries/s", "satisfaction %"});
      for (const AlgoRow& row : algo_sweep) {
        algo_table.AddRow({row.id, TablePrinter::Cell(row.qps, 1),
                           TablePrinter::Cell(row.satisfaction, 2)});
      }
      algo_table.Print(std::cout);
    }
  }

  if (const char* json_path = std::getenv("GRECA_BATCH_JSON");
      json_path != nullptr && json_path[0] != '\0' && !sweep.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"layout_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      json << "    {\"layout\": \"" << sweep[i].layout
           << "\", \"pool\": " << sweep[i].pool
           << ", \"qps\": " << sweep[i].qps
           << ", \"entries_walked_per_scan\": " << sweep[i].footprint << "}"
           << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"planner_sweep\": [\n";
    for (std::size_t i = 0; i < planner_sweep.size(); ++i) {
      const PlannerRow& row = planner_sweep[i];
      json << "    {\"dup\": " << row.dup << ", \"buckets\": " << row.buckets
           << ", \"dedup_ratio\": " << row.dedup
           << ", \"planned_qps\": " << row.planned_qps
           << ", \"unplanned_qps\": " << row.unplanned_qps
           << ", \"speedup\": " << (row.planned_qps / row.unplanned_qps)
           << ", \"agreement_lists_materialized\": "
           << row.agreement_materialized
           << ", \"tombstone_cache_hits\": " << row.tombstone_hits
           << ", \"tombstone_cache_misses\": " << row.tombstone_misses << "}"
           << (i + 1 < planner_sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"algo_sweep\": [\n";
    for (std::size_t i = 0; i < algo_sweep.size(); ++i) {
      json << "    {\"solver\": \"" << algo_sweep[i].id
           << "\", \"qps\": " << algo_sweep[i].qps
           << ", \"satisfaction_pct\": " << algo_sweep[i].satisfaction << "}"
           << (i + 1 < algo_sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"index_memory\": {\"banded_bytes\": " << mem.banded_bytes
         << ", \"flat_twin_bytes\": " << mem.flat_twin_bytes
         << ", \"map_bytes\": " << mem.map_bytes
         << ", \"total_bytes\": " << mem.total()
         << "},\n  \"seq_qps\": " << seq_qps << "\n}\n";
    std::cout << "Wrote layout sweep to " << json_path << "\n";
  }
  return 0;
}
