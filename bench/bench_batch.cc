// Batch-vs-sequential throughput of the Engine API: the acceptance bench for
// the batch-first redesign. Runs a 64-query batch (the paper's scalability
// setup: random groups of 6, k = 10, AP, discrete model) sequentially and
// through Engine::RecommendBatch at several thread counts, verifying result
// equivalence and reporting queries/second and speedup. Also splits the
// sequential per-query cost into problem assembly (BuildProblem over the
// shared PreferenceIndex, zero-copy) and solve time, so the perf trajectory
// tracks the assembly cost the zero-copy refactor removed.
//
// Set GRECA_BENCH_SMALL=1 for a smoke-scale run, GRECA_BATCH_QUERIES to
// change the batch size.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  const GroupRecommender& recommender = *ctx.recommender;

  std::size_t num_queries = 64;
  if (const char* env = std::getenv("GRECA_BATCH_QUERIES")) {
    const long long parsed = std::atoll(env);
    if (parsed <= 0) {
      std::cerr << "ignoring GRECA_BATCH_QUERIES='" << env
                << "' (expected a positive integer)\n";
    } else {
      num_queries = static_cast<std::size_t>(parsed);
    }
  }

  const PerformanceHarness perf(recommender, /*seed=*/2015);
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  std::vector<Query> batch;
  for (const Group& group : perf.RandomGroups(num_queries, 6)) {
    batch.push_back(Query{group, spec});
  }

  // Cold assembly pass, before anything touches the snapshot's
  // (group, period) period-list cache: every query materializes its periodic
  // lists. The warm pass below re-assembles the same batch with the cache
  // full — the difference is what snapshot-scoped period caching buys
  // repeated-group workloads.
  const auto snapshot = recommender.snapshot();
  QueryWorkspace cold_workspace;
  Stopwatch cold_watch;
  for (const Query& q : batch) {
    const auto problem =
        recommender.BuildProblem(q.group, q.spec, nullptr, &cold_workspace);
    if (!problem.ok()) {
      std::cerr << "ERROR: cold assembly failed\n";
      return 1;
    }
  }
  const double cold_asm_seconds = cold_watch.ElapsedSeconds();
  const std::uint64_t cold_misses = snapshot->period_cache_misses();

  // Sequential baseline: one query at a time through the facade, with a
  // single reused workspace (the fairest single-thread configuration).
  Stopwatch seq_watch;
  QueryWorkspace workspace;
  std::vector<Recommendation> sequential;
  sequential.reserve(batch.size());
  for (const Query& q : batch) {
    sequential.push_back(
        recommender.Recommend(q.group, q.spec, &workspace).value());
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();

  // Assembly-only pass over the same batch and workspace (steady state):
  // what BuildProblem costs without solving.
  Stopwatch asm_watch;
  std::size_t assembled = 0;
  for (const Query& q : batch) {
    const auto problem =
        recommender.BuildProblem(q.group, q.spec, nullptr, &workspace);
    if (problem.ok()) ++assembled;
  }
  const double asm_seconds = asm_watch.ElapsedSeconds();
  if (assembled != batch.size()) {
    std::cerr << "ERROR: only " << assembled << "/" << batch.size()
              << " problems assembled\n";
    return 1;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  TablePrinter table("Engine::RecommendBatch vs sequential (" +
                     std::to_string(batch.size()) + " queries, " +
                     std::to_string(hw) + " hardware threads)");
  table.SetColumns({"configuration", "seconds", "queries/s", "speedup"});
  const double seq_qps = static_cast<double>(batch.size()) / seq_seconds;
  table.AddRow({"sequential", TablePrinter::Cell(seq_seconds, 3),
                TablePrinter::Cell(seq_qps, 1), "1.00"});

  for (const std::size_t threads : {2u, 4u, 8u}) {
    EngineOptions eopts;
    eopts.num_threads = threads;
    const Engine engine(recommender, eopts);
    // Warm-up run so worker workspaces reach steady-state capacity.
    const std::size_t warmup = std::min<std::size_t>(4, batch.size());
    engine.RecommendBatch(
        std::vector<Query>(batch.begin(), batch.begin() + warmup));
    Stopwatch watch;
    const auto results = engine.RecommendBatch(batch);
    const double seconds = watch.ElapsedSeconds();

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!results[i].ok() ||
          results[i].value().items != sequential[i].items) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::cerr << "ERROR: " << mismatches
                << " batch results differ from sequential execution\n";
      return 1;
    }

    const double qps = static_cast<double>(batch.size()) / seconds;
    table.AddRow({std::to_string(threads) + " threads",
                  TablePrinter::Cell(seconds, 3), TablePrinter::Cell(qps, 1),
                  TablePrinter::Cell(seq_seconds / seconds, 2)});
  }
  table.Print(std::cout);

  const double per_query_us =
      1e6 * asm_seconds / static_cast<double>(batch.size());
  const double asm_share = 100.0 * asm_seconds / seq_seconds;
  const double cold_per_query_us =
      1e6 * cold_asm_seconds / static_cast<double>(batch.size());
  std::cout << "problem_assembly_seconds: " << asm_seconds << " ("
            << per_query_us << " us/query, " << asm_share
            << "% of sequential query time)\n"
            << "solve_seconds: " << (seq_seconds - asm_seconds)
            << " (sequential total minus assembly)\n"
            << "period_cache: cold assembly " << cold_per_query_us
            << " us/query (" << cold_misses << " lists materialized) vs warm "
            << per_query_us << " us/query ("
            << (snapshot->period_cache_hits()) << " hits, "
            << snapshot->period_cache_misses()
            << " misses total) — speedup "
            << (asm_seconds > 0.0 ? cold_asm_seconds / asm_seconds : 0.0)
            << "x\n";

  std::cout << "All batch results identical to sequential execution.\n"
            << "Expected: speedup ~ min(threads, cores); >= 2x on >= 4 "
               "cores.\n";
  return 0;
}
