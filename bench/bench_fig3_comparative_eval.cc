// Reproduces Figure 3: "Comparative Evaluation" — pairwise forced choice:
//   (A) affinity-aware vs affinity-agnostic
//   (B) time-aware vs time-agnostic
//   (C) continuous vs discrete time model
// reporting the percentage of members preferring the first list.
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace greca;
  const auto& ctx = bench::BenchContext::Get();
  QualityHarness harness(*ctx.recommender, *ctx.oracle,
                         FormStudyGroups(*ctx.recommender), /*k=*/10);

  struct Panel {
    std::string label;
    RecommendationVariant first;
    RecommendationVariant second;
  };
  const std::vector<Panel> panels{
      {"(A) Affinity-aware vs Affinity-agnostic",
       RecommendationVariant::Default(),
       RecommendationVariant::AffinityAgnostic()},
      {"(B) Time-aware vs Time-agnostic", RecommendationVariant::Default(),
       RecommendationVariant::TimeAgnostic()},
      {"(C) Continuous vs Discrete", RecommendationVariant::ContinuousModel(),
       RecommendationVariant::Default()},
  };

  TablePrinter table(
      "Figure 3: Comparative Evaluation — preference for first list (%)");
  std::vector<std::string> columns{"comparison"};
  for (const GroupCharacteristic c : AllCharacteristics()) {
    columns.push_back(CharacteristicName(c));
  }
  table.SetColumns(columns);
  for (const auto& panel : panels) {
    const auto shares = harness.ComparativeEval(panel.first, panel.second);
    std::vector<std::string> row{panel.label};
    for (const double s : shares) row.push_back(TablePrinter::Cell(s, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout <<
      "\nPaper shape to match: (A) affinity-aware preferred in ~75% of cases "
      "(strongest for small, then high-affinity groups); (B) time-aware "
      "preferred in >80% of cases; (C) continuous preferred by dissimilar "
      "and large groups, discrete by high-affinity/high-similarity groups.\n";
  return 0;
}
