// Walks through the paper's §3.1 running example (Tables 1–4): three users,
// three items, two periods; prints the input lists, the exact consensus
// scores, and GRECA's answer (top-1 = i1) with its access accounting.
#include <iostream>

#include "common/table_printer.h"
#include "consensus/consensus.h"
#include "core/greca.h"
#include "topk/naive.h"
#include "topk/ta.h"
#include "../tests/test_util.h"

int main() {
  using namespace greca;

  {
    TablePrinter table("Table 1: Absolute Preference Lists PL_u (stars)");
    table.SetColumns({"user", "i1", "i2", "i3"});
    table.AddRow({"u1", "5", "1", "1"});
    table.AddRow({"u2", "5", "1", "0.5"});
    table.AddRow({"u3", "2", "1", "2"});
    table.Print(std::cout);
  }
  {
    TablePrinter table("Tables 2-4: Affinity Lists (static, p1, p2)");
    table.SetColumns({"pair", "affS", "affV p1", "affV p2"});
    table.AddRow({"u1u2", "1.0", "0.8", "0.7"});
    table.AddRow({"u1u3", "0.2", "0.1", "0.1"});
    table.AddRow({"u2u3", "0.3", "0.2", "0.1"});
    table.Print(std::cout);
  }

  const GroupProblem problem = testing::MakeRunningExampleProblem(
      ConsensusSpec::AveragePreference(), AffinityModelSpec::Default());

  {
    TablePrinter table("Exact consensus scores (AP, discrete model)");
    table.SetColumns({"item", "F(G, i, p)"});
    const char* names[] = {"i1", "i2", "i3"};
    for (ListKey key = 0; key < 3; ++key) {
      table.AddRow({names[key], TablePrinter::Cell(problem.ExactScore(key), 4)});
    }
    table.Print(std::cout);
  }

  GrecaConfig config;
  config.k = 1;
  GrecaStats stats;
  const TopKResult greca = Greca(problem, config, &stats);
  const TopKResult ta = TaTopK(problem, 1);
  const TopKResult naive = NaiveTopK(problem, 1);

  TablePrinter table("Algorithm comparison on the running example (k = 1)");
  table.SetColumns({"algorithm", "top-1", "SAs", "RAs", "total entries"});
  const auto item_name = [](ListKey key) {
    return std::string("i") + std::to_string(key + 1);
  };
  table.AddRow({"GRECA", item_name(greca.items[0].id),
                TablePrinter::Cell(static_cast<std::size_t>(
                    greca.accesses.sequential)),
                TablePrinter::Cell(static_cast<std::size_t>(
                    greca.accesses.random)),
                TablePrinter::Cell(greca.total_entries)});
  table.AddRow({"TA", item_name(ta.items[0].id),
                TablePrinter::Cell(static_cast<std::size_t>(
                    ta.accesses.sequential)),
                TablePrinter::Cell(static_cast<std::size_t>(
                    ta.accesses.random)),
                TablePrinter::Cell(ta.total_entries)});
  table.AddRow({"Naive", item_name(naive.items[0].id),
                TablePrinter::Cell(static_cast<std::size_t>(
                    naive.accesses.sequential)),
                TablePrinter::Cell(static_cast<std::size_t>(
                    naive.accesses.random)),
                TablePrinter::Cell(naive.total_entries)});
  table.Print(std::cout);
  std::cout << "\nPaper reference: the top-1 item is i1; TA-style scoring of "
               "a single item costs ~21 random accesses (3 apref + 18 "
               "affinity entries), which GRECA avoids entirely (0 RAs).\n";
  return 0;
}
