// Reproduces Figure 7: "Average Percentage of SAs for Similar, Dissimilar,
// High Affinity and Low Affinity Groups". Groups of each type are formed
// greedily from bootstrapped subsets of the study participants so the
// measurement carries error bars.
#include <iostream>

#include "bench_common.h"
#include "common/distributions.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "groups/group_formation.h"

namespace {

using namespace greca;

enum class GroupKind { kSimilar, kDissimilar, kHighAffinity, kLowAffinity };

const char* KindName(GroupKind kind) {
  switch (kind) {
    case GroupKind::kSimilar:
      return "Sim";
    case GroupKind::kDissimilar:
      return "Diss";
    case GroupKind::kHighAffinity:
      return "High Aff";
    case GroupKind::kLowAffinity:
      return "Low Aff";
  }
  return "?";
}

}  // namespace

int main() {
  const auto& ctx = greca::bench::BenchContext::Get();
  const GroupRecommender& rec = *ctx.recommender;
  const std::size_t n = ctx.study.num_participants();
  constexpr std::size_t kGroupSize = 6;
  constexpr std::size_t kTrials = 10;
  constexpr std::size_t kPoolSize = 24;

  const auto similarity = [&rec](UserId a, UserId b) {
    return rec.RatingSimilarity(a, b);
  };
  const auto affinity = [&rec](UserId a, UserId b) {
    return rec.ModelAffinity(a, b, std::nullopt,
                             AffinityModelSpec::Default());
  };

  TablePrinter table(
      "Figure 7: Average %SA by group cohesiveness / affinity strength");
  table.SetColumns({"group type", "avg #SA %", "std err", "saveup %"});

  Rng rng(4242);
  for (const GroupKind kind :
       {GroupKind::kSimilar, GroupKind::kDissimilar, GroupKind::kHighAffinity,
        GroupKind::kLowAffinity}) {
    OnlineStats sa;
    OnlineStats saveup;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Bootstrap an eligible pool, then greedily form the extreme group.
      const auto picks = SampleDistinct(rng, n, kPoolSize);
      std::vector<UserId> pool(picks.begin(), picks.end());
      const GroupFormer former(pool, similarity, affinity);
      Group group;
      switch (kind) {
        case GroupKind::kSimilar:
          group = former.FormSimilar(kGroupSize);
          break;
        case GroupKind::kDissimilar:
          group = former.FormDissimilar(kGroupSize);
          break;
        case GroupKind::kHighAffinity:
          group = former.FormHighAffinity(kGroupSize);
          break;
        case GroupKind::kLowAffinity:
          group = former.FormLowAffinity(kGroupSize);
          break;
      }
      const Recommendation r =
          rec.Recommend(group, PerformanceHarness::DefaultSpec()).value();
      sa.Add(r.raw.SequentialAccessPercent());
      saveup.Add(r.raw.SaveupPercent());
    }
    table.AddRow({KindName(kind), TablePrinter::Cell(sa.mean(), 2),
                  TablePrinter::Cell(sa.standard_error(), 2),
                  TablePrinter::Cell(saveup.mean(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: pruning works best for similar and "
               "high-affinity groups (their top-k score distributions "
               "separate early), so their %SA is lowest.\n";
  return 0;
}
