// google-benchmark microbenchmarks for the core building blocks: end-to-end
// top-k latency per algorithm, CF prediction, affinity table construction and
// incremental maintenance, and the periodic-affinity closed form.
#include <benchmark/benchmark.h>

#include "affinity/dynamic_affinity.h"
#include "bench_common.h"
#include "core/greca.h"
#include "topk/naive.h"
#include "topk/ta.h"

namespace {

using namespace greca;
using bench::BenchContext;

const Group& SampleGroup() {
  static const Group group = [] {
    const PerformanceHarness perf(*BenchContext::Get().recommender, 99);
    return perf.RandomGroups(1, 6)[0];
  }();
  return group;
}

void BM_GrecaTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  QuerySpec spec = PerformanceHarness::DefaultSpec();
  spec.k = static_cast<std::size_t>(state.range(0));
  const GroupProblem problem =
      ctx.recommender->BuildProblem(SampleGroup(), spec).value();
  GrecaConfig config;
  config.k = spec.k;
  double sa_percent = 0.0;
  for (auto _ : state) {
    const TopKResult result = Greca(problem, config);
    sa_percent = result.SequentialAccessPercent();
    benchmark::DoNotOptimize(result.items.data());
  }
  state.counters["sa_percent"] = sa_percent;
}
BENCHMARK(BM_GrecaTopK)->Arg(5)->Arg(10)->Arg(20);

void BM_NaiveTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const GroupProblem problem =
      ctx.recommender
          ->BuildProblem(SampleGroup(), PerformanceHarness::DefaultSpec())
          .value();
  for (auto _ : state) {
    const TopKResult result = NaiveTopK(problem, 10);
    benchmark::DoNotOptimize(result.items.data());
  }
}
BENCHMARK(BM_NaiveTopK);

void BM_TaTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const GroupProblem problem =
      ctx.recommender
          ->BuildProblem(SampleGroup(), PerformanceHarness::DefaultSpec())
          .value();
  for (auto _ : state) {
    const TopKResult result = TaTopK(problem, 10);
    benchmark::DoNotOptimize(result.items.data());
  }
}
BENCHMARK(BM_TaTopK);

void ExhaustPreferenceLists(const GroupProblem& problem,
                            AccessCounter& counter) {
  for (const ListView& list : problem.preference_lists()) {
    std::size_t cursor = 0;
    while (list.SkipToLive(cursor)) list.ReadSequential(cursor, counter);
  }
}

const GroupRecommender& FlatRecommender() {
  // Same datasets as the shared context, flat (globally sorted) index rows:
  // the pre-banding baseline for the prefix-scan comparison.
  static const GroupRecommender* rec = [] {
    const auto& ctx = BenchContext::Get();
    RecommenderOptions options;
    options.max_candidate_items =
        ctx.recommender->preference_index().pool_size();
    options.index_layout = IndexLayout::kFlat;
    return new GroupRecommender(ctx.universe, ctx.study, options);
  }();
  return *rec;
}

void PrefixScan(benchmark::State& state, const GroupRecommender& rec) {
  // Exhaustive sequential scan of the group's preference views at the given
  // candidate-pool prefix — the access pattern the banded layout exists for.
  QuerySpec spec = PerformanceHarness::DefaultSpec();
  spec.num_candidate_items = static_cast<std::size_t>(state.range(0));
  const GroupProblem problem = rec.BuildProblem(SampleGroup(), spec).value();
  for (auto _ : state) {
    AccessCounter counter;
    ExhaustPreferenceLists(problem, counter);
    benchmark::DoNotOptimize(counter.sequential);
  }
  state.counters["entries_walked_per_scan"] = static_cast<double>(
      problem.preference_lists()[0].scan_footprint());
}

// Pool args span row/16 .. full row at paper scale; GRECA_BENCH_SMALL runs
// clamp to the shrunken pool (larger args then all hit the flat fast path).
void BM_PrefixScanBanded(benchmark::State& state) {
  PrefixScan(state, *BenchContext::Get().recommender);
}
BENCHMARK(BM_PrefixScanBanded)->Arg(244)->Arg(975)->Arg(1950)->Arg(3900);

void BM_PrefixScanFlat(benchmark::State& state) {
  PrefixScan(state, FlatRecommender());
}
BENCHMARK(BM_PrefixScanFlat)->Arg(244)->Arg(975)->Arg(1950)->Arg(3900);

void BM_BuildProblem(benchmark::State& state) {
  // Workspace-less assembly: zero-copy preference views plus one
  // problem-owned arena allocation per call.
  const auto& ctx = BenchContext::Get();
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  for (auto _ : state) {
    const GroupProblem problem =
        ctx.recommender->BuildProblem(SampleGroup(), spec).value();
    benchmark::DoNotOptimize(&problem);
  }
}
BENCHMARK(BM_BuildProblem);

void BM_ProblemAssembly(benchmark::State& state) {
  // Steady-state batch-worker assembly: the reused workspace arena makes
  // BuildProblem sort- and allocation-free (the perf target of the
  // PreferenceIndex + ListView refactor).
  const auto& ctx = BenchContext::Get();
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  QueryWorkspace workspace;
  for (auto _ : state) {
    const GroupProblem problem =
        ctx.recommender->BuildProblem(SampleGroup(), spec, nullptr, &workspace)
            .value();
    benchmark::DoNotOptimize(&problem);
  }
}
BENCHMARK(BM_ProblemAssembly);

void BM_CfPredictAll(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const UserKnn knn(ctx.universe.dataset, {});
  const auto profile = ctx.study.study_ratings.RatingsOfUser(0);
  for (auto _ : state) {
    const auto predictions = knn.PredictAll(profile);
    benchmark::DoNotOptimize(predictions.data());
  }
}
BENCHMARK(BM_CfPredictAll);

void BM_PeriodicAffinityCompute(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  for (auto _ : state) {
    const PeriodicAffinity pa =
        PeriodicAffinity::Compute(ctx.study.likes, ctx.study.periods);
    benchmark::DoNotOptimize(&pa);
  }
}
BENCHMARK(BM_PeriodicAffinityCompute);

void BM_DynamicIndexAppendPeriod(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const PeriodicAffinity& pa = ctx.recommender->periodic_affinity();
  for (auto _ : state) {
    state.PauseTiming();
    DynamicAffinityIndex index(pa.num_users());
    for (PeriodId p = 0; p + 1 < pa.num_periods(); ++p) {
      index.AppendPeriod(pa, p);
    }
    state.ResumeTiming();
    // Measure only the marginal cost of appending the newest period.
    index.AppendPeriod(pa, static_cast<PeriodId>(pa.num_periods() - 1));
    benchmark::DoNotOptimize(&index);
  }
}
BENCHMARK(BM_DynamicIndexAppendPeriod);

void BM_ClosedFormPopulationAverage(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const Period period = ctx.study.periods.period(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SumPairwiseCommonCategories(ctx.study.likes, period));
  }
}
BENCHMARK(BM_ClosedFormPopulationAverage);

void BM_NaivePopulationAverage(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const Period period = ctx.study.periods.period(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SumPairwiseCommonCategoriesNaive(ctx.study.likes, period));
  }
}
BENCHMARK(BM_NaivePopulationAverage);

}  // namespace

BENCHMARK_MAIN();
