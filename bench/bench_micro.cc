// google-benchmark microbenchmarks for the core building blocks: end-to-end
// top-k latency per algorithm, CF prediction, affinity table construction and
// incremental maintenance, the periodic-affinity closed form, and the index
// row-layout primitives (SoA-vs-AoS tombstone-skip scan, loser-tree-vs-argmin
// band merge).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "affinity/dynamic_affinity.h"
#include "bench_common.h"
#include "core/greca.h"
#include "topk/list_view.h"
#include "topk/naive.h"
#include "topk/sorted_list.h"
#include "topk/ta.h"

namespace {

using namespace greca;
using bench::BenchContext;

const Group& SampleGroup() {
  static const Group group = [] {
    const PerformanceHarness perf(*BenchContext::Get().recommender, 99);
    return perf.RandomGroups(1, 6)[0];
  }();
  return group;
}

void BM_GrecaTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  QuerySpec spec = PerformanceHarness::DefaultSpec();
  spec.k = static_cast<std::size_t>(state.range(0));
  const GroupProblem problem =
      ctx.recommender->BuildProblem(SampleGroup(), spec).value();
  GrecaConfig config;
  config.k = spec.k;
  double sa_percent = 0.0;
  for (auto _ : state) {
    const TopKResult result = Greca(problem, config);
    sa_percent = result.SequentialAccessPercent();
    benchmark::DoNotOptimize(result.items.data());
  }
  state.counters["sa_percent"] = sa_percent;
}
BENCHMARK(BM_GrecaTopK)->Arg(5)->Arg(10)->Arg(20);

void BM_NaiveTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const GroupProblem problem =
      ctx.recommender
          ->BuildProblem(SampleGroup(), PerformanceHarness::DefaultSpec())
          .value();
  for (auto _ : state) {
    const TopKResult result = NaiveTopK(problem, 10);
    benchmark::DoNotOptimize(result.items.data());
  }
}
BENCHMARK(BM_NaiveTopK);

void BM_TaTopK(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const GroupProblem problem =
      ctx.recommender
          ->BuildProblem(SampleGroup(), PerformanceHarness::DefaultSpec())
          .value();
  for (auto _ : state) {
    const TopKResult result = TaTopK(problem, 10);
    benchmark::DoNotOptimize(result.items.data());
  }
}
BENCHMARK(BM_TaTopK);

void ExhaustPreferenceLists(const GroupProblem& problem,
                            AccessCounter& counter) {
  for (const ListView& list : problem.preference_lists()) {
    std::size_t cursor = 0;
    while (list.SkipToLive(cursor)) list.ReadSequential(cursor, counter);
  }
}

const GroupRecommender& FlatRecommender() {
  // Same datasets as the shared context, flat (globally sorted) index rows:
  // the pre-banding baseline for the prefix-scan comparison.
  static const GroupRecommender* rec = [] {
    const auto& ctx = BenchContext::Get();
    RecommenderOptions options;
    options.max_candidate_items =
        ctx.recommender->preference_index().pool_size();
    options.index_layout = IndexLayout::kFlat;
    return new GroupRecommender(ctx.universe, ctx.study, options);
  }();
  return *rec;
}

void PrefixScan(benchmark::State& state, const GroupRecommender& rec) {
  // Exhaustive sequential scan of the group's preference views at the given
  // candidate-pool prefix — the access pattern the banded layout exists for.
  QuerySpec spec = PerformanceHarness::DefaultSpec();
  spec.num_candidate_items = static_cast<std::size_t>(state.range(0));
  const GroupProblem problem = rec.BuildProblem(SampleGroup(), spec).value();
  for (auto _ : state) {
    AccessCounter counter;
    ExhaustPreferenceLists(problem, counter);
    benchmark::DoNotOptimize(counter.sequential);
  }
  state.counters["entries_walked_per_scan"] = static_cast<double>(
      problem.preference_lists()[0].scan_footprint());
}

// Pool args span row/16 .. full row at paper scale; GRECA_BENCH_SMALL runs
// clamp to the shrunken pool (larger args then all hit the flat fast path).
void BM_PrefixScanBanded(benchmark::State& state) {
  PrefixScan(state, *BenchContext::Get().recommender);
}
BENCHMARK(BM_PrefixScanBanded)->Arg(244)->Arg(975)->Arg(1950)->Arg(3900);

void BM_PrefixScanFlat(benchmark::State& state) {
  PrefixScan(state, FlatRecommender());
}
BENCHMARK(BM_PrefixScanFlat)->Arg(244)->Arg(975)->Arg(1950)->Arg(3900);

void BM_BuildProblem(benchmark::State& state) {
  // Workspace-less assembly: zero-copy preference views plus one
  // problem-owned arena allocation per call.
  const auto& ctx = BenchContext::Get();
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  for (auto _ : state) {
    const GroupProblem problem =
        ctx.recommender->BuildProblem(SampleGroup(), spec).value();
    benchmark::DoNotOptimize(&problem);
  }
}
BENCHMARK(BM_BuildProblem);

void BM_ProblemAssembly(benchmark::State& state) {
  // Steady-state batch-worker assembly: the reused workspace arena makes
  // BuildProblem sort- and allocation-free (the perf target of the
  // PreferenceIndex + ListView refactor).
  const auto& ctx = BenchContext::Get();
  const QuerySpec spec = PerformanceHarness::DefaultSpec();
  QueryWorkspace workspace;
  for (auto _ : state) {
    const GroupProblem problem =
        ctx.recommender->BuildProblem(SampleGroup(), spec, nullptr, &workspace)
            .value();
    benchmark::DoNotOptimize(&problem);
  }
}
BENCHMARK(BM_ProblemAssembly);

void BM_CfPredictAll(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const UserKnn knn(ctx.universe.dataset, {});
  const auto profile = ctx.study.study_ratings.RatingsOfUser(0);
  for (auto _ : state) {
    const auto predictions = knn.PredictAll(profile);
    benchmark::DoNotOptimize(predictions.data());
  }
}
BENCHMARK(BM_CfPredictAll);

void BM_PeriodicAffinityCompute(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  for (auto _ : state) {
    const PeriodicAffinity pa =
        PeriodicAffinity::Compute(ctx.study.likes, ctx.study.periods);
    benchmark::DoNotOptimize(&pa);
  }
}
BENCHMARK(BM_PeriodicAffinityCompute);

void BM_DynamicIndexAppendPeriod(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const PeriodicAffinity& pa = ctx.recommender->periodic_affinity();
  for (auto _ : state) {
    state.PauseTiming();
    DynamicAffinityIndex index(pa.num_users());
    for (PeriodId p = 0; p + 1 < pa.num_periods(); ++p) {
      index.AppendPeriod(pa, p);
    }
    state.ResumeTiming();
    // Measure only the marginal cost of appending the newest period.
    index.AppendPeriod(pa, static_cast<PeriodId>(pa.num_periods() - 1));
    benchmark::DoNotOptimize(&index);
  }
}
BENCHMARK(BM_DynamicIndexAppendPeriod);

void BM_ClosedFormPopulationAverage(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const Period period = ctx.study.periods.period(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SumPairwiseCommonCategories(ctx.study.likes, period));
  }
}
BENCHMARK(BM_ClosedFormPopulationAverage);

// ---- Row-layout primitives: SoA-vs-AoS scan, loser-tree-vs-argmin merge ---
// Synthetic rows isolate the two data-structure changes of the SoA rewrite
// from the rest of the serving stack. The row length is deliberately not a
// multiple of the 8-lane vector width (the SIMD scan's scalar tail stays on
// the measured path) and large enough that the scan is bandwidth-bound like
// a real index row — in-L1 rows would hide the 4-vs-16 bytes/entry gap the
// key-only liveness scan exists for.

constexpr std::size_t kLayoutRowLength = 65573;

struct SyntheticRow {
  std::vector<ListKey> keys;
  std::vector<Score> scores;
  std::vector<std::uint32_t> positions;
  std::vector<ListEntry> entries;  // AoS mirror, identical order
  std::vector<std::uint32_t> band_begin;
  std::vector<std::uint64_t> tombstones;
  std::size_t live = 0;
};

SyntheticRow MakeSyntheticRow(std::size_t n, std::size_t num_bands,
                              unsigned tombstone_percent) {
  SyntheticRow row;
  std::mt19937 rng(static_cast<unsigned>(2015 + n + num_bands * 131 +
                                         tombstone_percent * 65537));
  std::uniform_real_distribution<double> score(0.0, 1.0);
  std::vector<ListEntry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries[i] = {static_cast<ListKey>(i), score(rng)};
  }
  // Bands = contiguous key ranges (the popularity-band contract), each
  // independently score-sorted; num_bands == 1 yields a flat sorted row.
  row.band_begin.push_back(0);
  for (std::size_t b = 0; b < num_bands; ++b) {
    const std::size_t begin = b * n / num_bands;
    const std::size_t end = (b + 1) * n / num_bands;
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin),
              entries.begin() + static_cast<std::ptrdiff_t>(end),
              ListEntryOrder{});
    row.band_begin.push_back(static_cast<std::uint32_t>(end));
  }
  row.entries = entries;
  row.keys.resize(n);
  row.scores.resize(n);
  row.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    row.keys[i] = entries[i].id;
    row.scores[i] = entries[i].score;
    row.positions[entries[i].id] = static_cast<std::uint32_t>(i);
  }
  row.tombstones.assign((n + 63) / 64, 0);
  std::uniform_int_distribution<unsigned> pct(0, 99);
  std::size_t dead = 0;
  for (std::size_t key = 0; key < n; ++key) {
    if (pct(rng) < tombstone_percent) {
      row.tombstones[key >> 6] |= 1ull << (key & 63u);
      ++dead;
    }
  }
  row.live = n - dead;
  return row;
}

double ExhaustView(const ListView& view) {
  AccessCounter counter;
  std::size_t cursor = 0;
  double sum = 0.0;
  while (view.SkipToLive(cursor)) {
    sum += view.ReadSequential(cursor, counter).score;
  }
  return sum;
}

// The pre-SoA flat ListView scan, reconstructed: interleaved ListEntry
// storage with the per-entry liveness test loading the full 16-byte entry,
// behind the same cursor/counter interface — so the A/B isolates the storage
// layout, not the call structure around it.
class AosRefView {
 public:
  AosRefView(std::span<const ListEntry> entries, std::size_t key_space,
             std::span<const std::uint64_t> tombstones)
      : entries_(entries), key_space_(key_space), tombstones_(tombstones) {}

  bool SkipToLive(std::size_t& cursor) const {
    while (cursor < entries_.size() && Dead(entries_[cursor].id)) ++cursor;
    return cursor < entries_.size();
  }

  ListEntry ReadSequential(std::size_t& cursor, AccessCounter& counter) const {
    ++counter.sequential;
    return entries_[cursor++];
  }

 private:
  bool Dead(ListKey key) const {
    if (key >= key_space_) return true;
    return (tombstones_[key >> 6] >> (key & 63u)) & 1u;
  }

  std::span<const ListEntry> entries_;
  std::size_t key_space_;
  std::span<const std::uint64_t> tombstones_;
};

// Arg = tombstone density in percent. The SoA path scans the 4-byte key
// array (vectorized under GRECA_SIMD) and touches scores only for live
// entries; the AoS reference below walks the interleaved 16-byte entries.
void BM_TombstoneSkipScanSoA(benchmark::State& state) {
  const SyntheticRow row = MakeSyntheticRow(
      kLayoutRowLength, 1, static_cast<unsigned>(state.range(0)));
  const ListView view(row.keys, row.scores, row.positions, row.keys.size(),
                      row.live, row.tombstones);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustView(view));
  }
  state.counters["live_entries"] = static_cast<double>(row.live);
}
BENCHMARK(BM_TombstoneSkipScanSoA)->Arg(0)->Arg(25)->Arg(75);

void BM_TombstoneSkipScanAoS(benchmark::State& state) {
  // The pre-SoA layout: liveness testing loads each full ListEntry, so one
  // cache line covers 4 entries instead of 16 and nothing vectorizes.
  const SyntheticRow row = MakeSyntheticRow(
      kLayoutRowLength, 1, static_cast<unsigned>(state.range(0)));
  const AosRefView view(row.entries, row.entries.size(), row.tombstones);
  for (auto _ : state) {
    AccessCounter counter;
    std::size_t cursor = 0;
    double sum = 0.0;
    while (view.SkipToLive(cursor)) {
      sum += view.ReadSequential(cursor, counter).score;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["live_entries"] = static_cast<double>(row.live);
}
BENCHMARK(BM_TombstoneSkipScanAoS)->Arg(0)->Arg(25)->Arg(75);

// Arg = band count. Each iteration rewinds the cursor, so the loser-tree
// timing includes the per-query merge reset — the cost a real query pays.
void BM_BandMergeLoserTree(benchmark::State& state) {
  const SyntheticRow row = MakeSyntheticRow(
      kLayoutRowLength, static_cast<std::size_t>(state.range(0)), 25);
  const ListView view(row.keys, row.scores, row.positions, row.keys.size(),
                      row.live, row.tombstones, row.band_begin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustView(view));
  }
}
BENCHMARK(BM_BandMergeLoserTree)->Arg(4)->Arg(8)->Arg(16);

void BM_BandMergeArgmin(benchmark::State& state) {
  // The pre-loser-tree merge: one linear argmin over every band head per
  // consumed entry, same (score desc, key asc) order and tombstone skipping.
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const SyntheticRow row = MakeSyntheticRow(kLayoutRowLength, nb, 25);
  const auto live_at = [&](std::uint32_t pos) {
    const ListKey key = row.keys[pos];
    return ((row.tombstones[key >> 6] >> (key & 63u)) & 1u) == 0;
  };
  for (auto _ : state) {
    std::array<std::uint32_t, ListView::kMaxBands> head{};
    for (std::size_t b = 0; b < nb; ++b) {
      std::uint32_t h = row.band_begin[b];
      while (h < row.band_begin[b + 1] && !live_at(h)) ++h;
      head[b] = h;
    }
    double sum = 0.0;
    for (;;) {
      std::size_t best = nb;
      for (std::size_t b = 0; b < nb; ++b) {
        if (head[b] == row.band_begin[b + 1]) continue;
        if (best == nb) {
          best = b;
          continue;
        }
        const double sb = row.scores[head[b]];
        const double sw = row.scores[head[best]];
        if (sb > sw ||
            (sb == sw && row.keys[head[b]] < row.keys[head[best]])) {
          best = b;
        }
      }
      if (best == nb) break;
      sum += row.scores[head[best]];
      std::uint32_t h = head[best] + 1;
      while (h < row.band_begin[best + 1] && !live_at(h)) ++h;
      head[best] = h;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BandMergeArgmin)->Arg(4)->Arg(8)->Arg(16);

void BM_NaivePopulationAverage(benchmark::State& state) {
  const auto& ctx = BenchContext::Get();
  const Period period = ctx.study.periods.period(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SumPairwiseCommonCategoriesNaive(ctx.study.likes, period));
  }
}
BENCHMARK(BM_NaivePopulationAverage);

}  // namespace

BENCHMARK_MAIN();
