// TA-style baseline with random accesses (paper §3.1's comparison point).
//
// Scans the preference lists round-robin; every newly seen item is scored
// exactly by random-accessing its absolute preference in the other members'
// lists and all of the group's affinity entries (the paper's running example
// charges 21 RAs to score one item of a 3-member group over 2 periods).
// Terminates when the k-th best exact score is at least the threshold
// (the consensus score achievable at the current cursor positions).
#ifndef GRECA_TOPK_TA_H_
#define GRECA_TOPK_TA_H_

#include <cstddef>

#include "topk/problem.h"
#include "topk/result.h"

namespace greca {

TopKResult TaTopK(const GroupProblem& problem, std::size_t k);

}  // namespace greca

#endif  // GRECA_TOPK_TA_H_
