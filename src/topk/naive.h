// Exhaustive-scan baseline: reads every entry of every list, computes every
// candidate's exact consensus score, and sorts. This is the "naive
// counterpart" against which the paper's save-up percentages are measured.
#ifndef GRECA_TOPK_NAIVE_H_
#define GRECA_TOPK_NAIVE_H_

#include <cstddef>

#include "topk/problem.h"
#include "topk/result.h"

namespace greca {

/// Returns the exact top-k (full order, exact scores). Sequential accesses
/// equal TotalEntries().
TopKResult NaiveTopK(const GroupProblem& problem, std::size_t k);

}  // namespace greca

#endif  // GRECA_TOPK_NAIVE_H_
