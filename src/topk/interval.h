// Closed-interval arithmetic for NRA-style score bounds. An Interval [lb, ub]
// encloses the unknown exact value of a score component; sound bound
// propagation through monotone score functions keeps exact ∈ [lb, ub],
// which is what GRECA's termination conditions rely on.
#ifndef GRECA_TOPK_INTERVAL_H_
#define GRECA_TOPK_INTERVAL_H_

#include <algorithm>
#include <cassert>

namespace greca {

struct Interval {
  double lb = 0.0;
  double ub = 0.0;

  constexpr Interval() = default;
  constexpr Interval(double lower, double upper) : lb(lower), ub(upper) {}

  /// Degenerate interval holding an exactly-known value.
  static constexpr Interval Exact(double v) { return {v, v}; }

  constexpr bool IsExact() const { return lb == ub; }
  constexpr double width() const { return ub - lb; }

  constexpr bool Contains(double v) const { return lb <= v && v <= ub; }

  /// True when every value of *this is <= every value of `other`.
  constexpr bool CertainlyLeq(const Interval& other) const {
    return ub <= other.lb;
  }

  friend constexpr Interval operator+(const Interval& a, const Interval& b) {
    return {a.lb + b.lb, a.ub + b.ub};
  }
  friend constexpr Interval operator-(const Interval& a, const Interval& b) {
    return {a.lb - b.ub, a.ub - b.lb};
  }
  /// Scaling by a non-negative constant.
  friend constexpr Interval operator*(double c, const Interval& a) {
    assert(c >= 0.0);
    return {c * a.lb, c * a.ub};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Interval of |x − y| with x ∈ a, y ∈ b: 0 when the intervals overlap,
/// otherwise the gap; the upper end is the widest spread.
constexpr Interval AbsDifference(const Interval& a, const Interval& b) {
  const double gap = std::max({a.lb - b.ub, b.lb - a.ub, 0.0});
  const double spread = std::max(a.ub - b.lb, b.ub - a.lb);
  return {gap, std::max(gap, spread)};
}

/// Interval of min(x, y).
constexpr Interval Min(const Interval& a, const Interval& b) {
  return {std::min(a.lb, b.lb), std::min(a.ub, b.ub)};
}

constexpr Interval Intersect(const Interval& a, const Interval& b) {
  return {std::max(a.lb, b.lb), std::min(a.ub, b.ub)};
}

}  // namespace greca

#endif  // GRECA_TOPK_INTERVAL_H_
