// Sorted/random access accounting — the paper's primary efficiency metric is
// the percentage of sequential accesses (SAs) an algorithm performs relative
// to exhaustively scanning every input list (§4.2).
#ifndef GRECA_TOPK_ACCESS_COUNTER_H_
#define GRECA_TOPK_ACCESS_COUNTER_H_

#include <cstdint>

namespace greca {

struct AccessCounter {
  std::uint64_t sequential = 0;
  std::uint64_t random = 0;

  std::uint64_t total() const { return sequential + random; }

  AccessCounter& operator+=(const AccessCounter& other) {
    sequential += other.sequential;
    random += other.random;
    return *this;
  }
};

}  // namespace greca

#endif  // GRECA_TOPK_ACCESS_COUNTER_H_
