#include "topk/ta.h"

#include <algorithm>
#include <vector>

namespace greca {

TopKResult TaTopK(const GroupProblem& problem, std::size_t k) {
  TopKResult result;
  result.total_entries = problem.TotalEntries();

  const std::size_t g = problem.group_size();
  const std::size_t num_periods = problem.num_periods();
  const auto lists = problem.preference_lists();

  std::vector<bool> scored(problem.num_items(), false);
  std::vector<ListEntry> best;  // maintained sorted descending, size <= k

  // One shared skip pass per list seeds the threshold bound (the first live
  // score) AND leaves the cursor on that entry for round 1, so the dead
  // prefix ahead of it is walked once — not once per MaxScore call and again
  // by the main loop.
  std::vector<std::size_t> cursor(g, 0);
  std::vector<double> cursor_score(g);
  for (std::size_t u = 0; u < g; ++u) {
    cursor_score[u] =
        lists[u].SkipToLive(cursor[u]) ? lists[u].PeekScore(cursor[u]) : 0.0;
  }

  std::vector<double> apref(g);
  std::vector<double> prefs(g);
  std::vector<double> pair_aff(problem.num_pairs());
  std::vector<double> aff_p(num_periods);

  // Exact affinity of one pair, charging one RA per list entry touched.
  const auto fetch_pair_affinity = [&](std::size_t q) {
    const auto key = static_cast<ListKey>(q);
    const double aff_s =
        problem.static_affinity().RandomAccess(key, result.accesses);
    for (std::size_t t = 0; t < num_periods; ++t) {
      aff_p[t] =
          problem.period_affinity()[t].RandomAccess(key, result.accesses);
    }
    return problem.combiner().Combine(aff_s, aff_p);
  };

  std::vector<double> agreements(problem.num_agreement_lists());

  const auto score_item = [&](ListKey key, std::size_t seen_in_list) {
    // Random-access the other members' absolute preferences...
    for (std::size_t u = 0; u < g; ++u) {
      if (u == seen_in_list) {
        apref[u] = lists[u].ScoreOfKey(key);
      } else {
        apref[u] = lists[u].RandomAccess(key, result.accesses);
      }
    }
    // ... and, per the paper's TA accounting, every member's affinity
    // entries: each member contributes (g-1)·(T+1) RAs.
    for (std::size_t u = 0; u < g; ++u) {
      for (std::size_t v = 0; v < g; ++v) {
        if (v == u) continue;
        const std::size_t q =
            problem.PairIndex(std::min(u, v), std::max(u, v));
        pair_aff[q] = fetch_pair_affinity(q);
      }
    }
    problem.MemberPreferences(apref, pair_aff, prefs);
    if (problem.uses_agreement_lists()) {
      for (std::size_t q = 0; q < agreements.size(); ++q) {
        agreements[q] =
            problem.agreement_lists()[q].RandomAccess(key, result.accesses);
      }
      return ConsensusScoreWithAgreements(problem.consensus(), prefs,
                                          agreements,
                                          problem.consensus_weights());
    }
    return ConsensusScore(problem.consensus(), prefs,
                          problem.consensus_weights());
  };

  // Both threshold inputs are problem constants, hoisted out of the
  // per-round lambda: the exact pair affinities and the all-ones agreement
  // bound used to allocate fresh vectors on every round.
  const std::vector<double> exact_aff = problem.ExactPairAffinities();
  const std::vector<double> full_agreement(problem.num_agreement_lists(),
                                           1.0);
  const auto threshold = [&] {
    // Best score an unseen item could have: every member's absolute
    // preference at its cursor, affinities exact (uncounted here — they were
    // already charged while scoring items), agreement bounded by 1.
    problem.MemberPreferences(cursor_score, exact_aff, prefs);
    if (problem.uses_agreement_lists()) {
      return ConsensusScoreWithAgreements(problem.consensus(), prefs,
                                          full_agreement,
                                          problem.consensus_weights());
    }
    return ConsensusScore(problem.consensus(), prefs,
                          problem.consensus_weights());
  };

  // Round-robin over the lists' live entries via the per-list cursors the
  // init pass already positioned (the view layer skips tombstoned entries
  // transparently).
  bool any_read = true;
  while (any_read) {
    any_read = false;
    for (std::size_t u = 0; u < g; ++u) {
      if (!lists[u].SkipToLive(cursor[u])) continue;
      const ListEntry& e = lists[u].ReadSequential(cursor[u], result.accesses);
      any_read = true;
      cursor_score[u] = e.score;
      if (scored[e.id]) continue;
      scored[e.id] = true;
      const double s = score_item(e.id, u);
      const ListEntry entry{e.id, s};
      const auto it = std::lower_bound(
          best.begin(), best.end(), entry,
          [](const ListEntry& a, const ListEntry& b) {
            if (a.score != b.score) return a.score > b.score;
            return a.id < b.id;
          });
      best.insert(it, entry);
      if (best.size() > k) best.pop_back();
    }
    if (!any_read) break;
    ++result.rounds;
    if (best.size() >= k && best.back().score >= threshold()) {
      result.early_terminated = true;
      break;
    }
  }
  result.items = std::move(best);
  return result;
}

}  // namespace greca
