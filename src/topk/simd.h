// The one vector primitive behind every hot list scan: find the first live
// entry of a key array under a prefix restriction and a tombstone bitmap.
//
// The SoA index layout (index/preference_index.h) stores row keys as a bare
// uint32 array, so liveness of 8 entries is decidable from one 32-byte load:
// a key is live when it lies inside the prefix [0, key_space) AND its bit in
// the tombstone bitmap is clear. ListView's sequential scan, band-head skip
// and MaxScore all reduce to FindFirstLive over some [begin, end) range of a
// key array — this header gives that primitive an AVX2 body with a scalar
// tail, plus a portable scalar fallback compiled when GRECA_SIMD is off (or
// the target has no AVX2). Both paths return bit-identical positions; the
// equivalence suites and the -DGRECA_SIMD=OFF CI job hold them to it.
//
// The tombstone bitmap only covers the prefix ((key_space + 63) / 64 words),
// while keys range over the whole row — out-of-prefix lanes therefore MUST
// NOT touch the bitmap. The AVX2 path uses a masked gather with an all-ones
// source: dead lanes never issue a memory access (the mask predates the
// load, per the ISA), and the all-ones fill reads back as "tombstoned",
// which is exactly what out-of-prefix means.
#ifndef GRECA_TOPK_SIMD_H_
#define GRECA_TOPK_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(GRECA_SIMD) && defined(__AVX2__)
#define GRECA_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace greca::simd {

/// Lanes per vector iteration of FindFirstLive (1 on the scalar fallback).
/// Tests use it to build tails that exercise the non-multiple remainder.
#if defined(GRECA_SIMD_AVX2)
inline constexpr std::size_t kLanes = 8;
#else
inline constexpr std::size_t kLanes = 1;
#endif

/// True when `key` is dead: outside [0, key_space) or tombstoned.
/// `tombstones` may be null (nothing tombstoned); when non-null it covers
/// at least (key_space + 63) / 64 words.
inline bool IsDeadKey(std::uint32_t key, std::size_t key_space,
                      const std::uint64_t* tombstones) {
  if (key >= key_space) return true;
  if (tombstones == nullptr) return false;
  return (tombstones[key >> 6] >> (key & 63u)) & 1u;
}

/// First position in [begin, end) whose key is live (in-prefix and not
/// tombstoned), or `end` when none is. Pure — safe to call on shared rows
/// from any number of threads.
inline std::size_t FindFirstLiveScalar(const std::uint32_t* keys,
                                       std::size_t begin, std::size_t end,
                                       std::size_t key_space,
                                       const std::uint64_t* tombstones) {
  std::size_t pos = begin;
  while (pos < end && IsDeadKey(keys[pos], key_space, tombstones)) ++pos;
  return pos;
}

#if defined(GRECA_SIMD_AVX2)

inline std::size_t FindFirstLive(const std::uint32_t* keys, std::size_t begin,
                                 std::size_t end, std::size_t key_space,
                                 const std::uint64_t* tombstones) {
  std::size_t pos = begin;
  // Sequential scans call this once per consumed entry, so the probe usually
  // sits on a live entry already, and scattered tombstones make short dead
  // runs: resolve up to one vector's worth of entries scalar before paying
  // the vector constant setup + masked gather, which per call costs more
  // than 8 scalar probes. The vector body earns its keep on the long dead
  // runs — a small prefix skipping an index row's out-of-prefix tail.
  const std::size_t probe_end = pos + 8 < end ? pos + 8 : end;
  for (; pos < probe_end; ++pos) {
    if (!IsDeadKey(keys[pos], key_space, tombstones)) return pos;
  }
  if (key_space > 0xFFFFFFFFull) {
    // Every uint32 key is inside the prefix; only the bitmap can kill one —
    // and a bitmap this large never exists in practice, so take the scalar
    // walk rather than carrying a degenerate vector variant.
    return FindFirstLiveScalar(keys, begin, end, key_space, tombstones);
  }
  // AVX2 has no unsigned 32-bit compare: bias both sides by 0x80000000 and
  // compare signed — a monotone bijection, so key < key_space is preserved.
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i space_biased = _mm256_set1_epi32(
      static_cast<int>(static_cast<std::uint32_t>(key_space) ^ 0x80000000u));
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i bit_mask = _mm256_set1_epi32(31);
  // The uint64 bitmap viewed as uint32 words: on little-endian x86 the word
  // holding key's bit is word key >> 5 at bit key & 31 — the gather unit
  // loads 32-bit elements, so this view is what it natively indexes.
  const int* const words = reinterpret_cast<const int*>(tombstones);
  for (; pos + 8 <= end; pos += 8) {
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + pos));
    const __m256i in_prefix =
        _mm256_cmpgt_epi32(space_biased, _mm256_xor_si256(k, bias));
    __m256i live = in_prefix;
    if (tombstones != nullptr) {
      // Masked gather, src = all-ones: out-of-prefix lanes never touch the
      // bitmap (it only covers the prefix) and read back as "tombstoned".
      const __m256i widx = _mm256_srli_epi32(k, 5);
      const __m256i gathered = _mm256_mask_i32gather_epi32(
          _mm256_set1_epi32(-1), words, widx, in_prefix, 4);
      const __m256i bit = _mm256_and_si256(
          _mm256_srlv_epi32(gathered, _mm256_and_si256(k, bit_mask)), ones);
      const __m256i dead = _mm256_cmpeq_epi32(bit, ones);
      live = _mm256_andnot_si256(dead, in_prefix);
    }
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(live));
    if (m != 0) {
      return pos + static_cast<std::size_t>(
                       std::countr_zero(static_cast<unsigned>(m)));
    }
  }
  return FindFirstLiveScalar(keys, pos, end, key_space, tombstones);
}

#else  // scalar fallback (GRECA_SIMD off or no AVX2 target)

inline std::size_t FindFirstLive(const std::uint32_t* keys, std::size_t begin,
                                 std::size_t end, std::size_t key_space,
                                 const std::uint64_t* tombstones) {
  return FindFirstLiveScalar(keys, begin, end, key_space, tombstones);
}

#endif

}  // namespace greca::simd

#endif  // GRECA_TOPK_SIMD_H_
