#include "topk/problem.h"

#include <cassert>
#include <utility>

#include "affinity/static_affinity.h"
#include "preference/preference_model.h"

namespace greca {

GroupProblem::GroupProblem(std::size_t num_items,
                           std::vector<SortedList> preference_lists,
                           SortedList static_affinity,
                           std::vector<SortedList> period_affinity,
                           AffinityCombiner combiner, ConsensusSpec consensus,
                           std::vector<SortedList> agreement_lists)
    : num_items_(num_items),
      num_candidates_(num_items),
      combiner_(std::move(combiner)),
      consensus_(std::move(consensus)),
      owned_preference_(std::move(preference_lists)),
      owned_static_(std::move(static_affinity)),
      owned_period_(std::move(period_affinity)),
      owned_agreement_(std::move(agreement_lists)) {
  // Adapt the owned lists to the view layer the algorithms consume. The
  // views point into each SortedList's heap buffers and view_storage_'s heap
  // buffer, both of which travel with the problem on move.
  view_storage_.reserve(owned_preference_.size() + owned_period_.size() +
                        owned_agreement_.size());
  for (const SortedList& list : owned_preference_) {
    view_storage_.emplace_back(list);
  }
  for (const SortedList& list : owned_period_) {
    view_storage_.emplace_back(list);
  }
  for (const SortedList& list : owned_agreement_) {
    view_storage_.emplace_back(list);
  }
  const ListView* base = view_storage_.data();
  preference_views_ = {base, owned_preference_.size()};
  period_views_ = {base + owned_preference_.size(), owned_period_.size()};
  agreement_views_ = {base + owned_preference_.size() + owned_period_.size(),
                      owned_agreement_.size()};
  static_view_ = ListView(owned_static_);

  assert(!preference_views_.empty());
  assert(period_views_.size() == combiner_.num_periods());
  assert((consensus_.disagreement == DisagreementKind::kPairwise &&
          group_size() >= 2)
             ? (agreement_views_.size() == num_pairs() ||
                agreement_views_.size() == 1)
             : agreement_views_.empty());
}

GroupProblem::GroupProblem(std::size_t num_items, std::size_t num_candidates,
                           std::span<const ListView> preference_views,
                           ListView static_view,
                           std::span<const ListView> period_views,
                           AffinityCombiner combiner, ConsensusSpec consensus,
                           std::span<const ListView> agreement_views,
                           std::unique_ptr<ProblemArena> backing)
    : num_items_(num_items),
      num_candidates_(num_candidates),
      combiner_(std::move(combiner)),
      consensus_(std::move(consensus)),
      owned_arena_(std::move(backing)),
      preference_views_(preference_views),
      static_view_(static_view),
      period_views_(period_views),
      agreement_views_(agreement_views) {
  assert(!preference_views_.empty());
  assert(num_candidates_ <= num_items_);
  assert(period_views_.size() == combiner_.num_periods());
  // Pairwise problems may also start with NO views when the caller installs
  // a deferred builder right after construction (DeferAgreementLists).
  assert((consensus_.disagreement == DisagreementKind::kPairwise &&
          group_size() >= 2)
             ? (agreement_views_.size() == num_pairs() ||
                agreement_views_.size() <= 1)
             : agreement_views_.empty());
}

std::size_t GroupProblem::TotalEntries() const {
  std::size_t total = static_view_.size();
  for (const ListView& list : preference_views_) total += list.size();
  for (const ListView& list : period_views_) total += list.size();
  if (agreement_builder_) {
    // Deferred aggregated list: its live size is known exactly without
    // building it (one entry per live candidate key).
    total += deferred_agreement_entries_;
  } else {
    for (const ListView& list : agreement_views_) total += list.size();
  }
  return total;
}

std::size_t GroupProblem::PairIndex(std::size_t a, std::size_t b) const {
  return LocalPairIndex(a, b, group_size());
}

double GroupProblem::ExactPairAffinity(std::size_t q) const {
  const auto key = static_cast<ListKey>(q);
  const double aff_s = static_view_.ScoreOfKey(key);
  std::vector<double> aff_p;
  aff_p.reserve(period_views_.size());
  for (const ListView& list : period_views_) {
    aff_p.push_back(list.ScoreOfKey(key));
  }
  return combiner_.Combine(aff_s, aff_p);
}

std::vector<double> GroupProblem::ExactPairAffinities() const {
  std::vector<double> out(num_pairs());
  for (std::size_t q = 0; q < out.size(); ++q) {
    out[q] = ExactPairAffinity(q);
  }
  return out;
}

void GroupProblem::MemberPreferences(std::span<const double> apref,
                                     std::span<const double> pair_aff,
                                     std::span<double> out) const {
  assert(apref.size() == group_size());
  assert(pair_aff.size() == num_pairs());
  AllMemberPreferences(apref, pair_aff, out);
}

void GroupProblem::ExpandPairWeights(std::span<const double> pair_aff,
                                     std::span<double> w) const {
  assert(pair_aff.size() == num_pairs());
  assert(w.size() == group_size() * group_size());
  greca::ExpandPairWeights(pair_aff, group_size(), w);
}

void GroupProblem::MemberPreferencesDense(std::span<const double> apref,
                                          std::span<const double> w,
                                          std::span<double> out) const {
  assert(apref.size() == group_size());
  assert(w.size() == group_size() * group_size());
  AllMemberPreferencesDense(apref, w, out);
}

void GroupProblem::MemberPreferenceIntervals(std::span<const Interval> apref,
                                             std::span<const Interval> pair_aff,
                                             std::span<Interval> out) const {
  assert(apref.size() == group_size());
  assert(pair_aff.size() == num_pairs());
  AllMemberPreferenceIntervals(apref, pair_aff, out);
}

double GroupProblem::ExactScore(ListKey key) const {
  const std::size_t g = group_size();
  std::vector<double> apref(g);
  for (std::size_t u = 0; u < g; ++u) {
    apref[u] = preference_views_[u].ScoreOfKey(key);
  }
  const std::vector<double> pair_aff = ExactPairAffinities();
  std::vector<double> prefs(g);
  MemberPreferences(apref, pair_aff, prefs);
  if (uses_agreement_lists()) {
    const std::span<const ListView> lists = agreement_lists();
    std::vector<double> agreements(lists.size());
    for (std::size_t q = 0; q < agreements.size(); ++q) {
      agreements[q] = lists[q].ScoreOfKey(key);
    }
    return ConsensusScoreWithAgreements(consensus_, prefs, agreements,
                                        weights_);
  }
  return ConsensusScore(consensus_, prefs, weights_);
}

std::vector<SortedList> BuildAgreementLists(
    std::span<const ListView> preference_lists, std::size_t num_items,
    double disagreement_scale) {
  const std::size_t g = preference_lists.size();
  std::vector<SortedList> lists;
  lists.reserve(NumUserPairs(g));
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      std::vector<ListEntry> entries;
      entries.reserve(num_items);
      for (ListKey key = 0; key < num_items; ++key) {
        if (preference_lists[a].IsTombstoned(key)) continue;
        entries.push_back(
            {key, PairAgreement(preference_lists[a].ScoreOfKey(key),
                                preference_lists[b].ScoreOfKey(key),
                                disagreement_scale)});
      }
      lists.push_back(SortedList::FromUnsorted(
          std::move(entries), static_cast<ListKey>(num_items)));
    }
  }
  return lists;
}

void BuildGroupAgreementListInto(std::span<const ListView> preference_lists,
                                 std::size_t num_items,
                                 double disagreement_scale,
                                 std::vector<ListEntry>& scratch,
                                 SortedList& out,
                                 std::span<const double> pair_weights) {
  const std::size_t g = preference_lists.size();
  const double num_pairs = static_cast<double>(NumUserPairs(g));
  const bool weighted = !pair_weights.empty();
  assert(!weighted || pair_weights.size() == NumUserPairs(g));
  scratch.clear();
  scratch.reserve(num_items);
  for (ListKey key = 0; key < num_items; ++key) {
    if (preference_lists[0].IsTombstoned(key)) continue;
    double sum = 0.0;
    std::size_t q = 0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b, ++q) {
        const double ag = PairAgreement(preference_lists[a].ScoreOfKey(key),
                                        preference_lists[b].ScoreOfKey(key),
                                        disagreement_scale);
        sum += weighted ? pair_weights[q] * ag : ag;
      }
    }
    // Weighted pair weights already sum to 1; the uniform path divides.
    scratch.push_back(
        {key, weighted ? sum : (num_pairs > 0 ? sum / num_pairs : 1.0)});
  }
  out.AssignUnsorted(scratch, static_cast<ListKey>(num_items));
}

SortedList BuildGroupAgreementList(std::span<const ListView> preference_lists,
                                   std::size_t num_items,
                                   double disagreement_scale) {
  SortedList out;
  std::vector<ListEntry> scratch;
  BuildGroupAgreementListInto(preference_lists, num_items, disagreement_scale,
                              scratch, out);
  return out;
}

namespace {

std::vector<ListView> ViewsOf(const std::vector<SortedList>& lists) {
  std::vector<ListView> views;
  views.reserve(lists.size());
  for (const SortedList& list : lists) views.emplace_back(list);
  return views;
}

}  // namespace

std::vector<SortedList> BuildAgreementLists(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale) {
  return BuildAgreementLists(ViewsOf(preference_lists), num_items,
                             disagreement_scale);
}

SortedList BuildGroupAgreementList(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale) {
  return BuildGroupAgreementList(ViewsOf(preference_lists), num_items,
                                 disagreement_scale);
}

}  // namespace greca
