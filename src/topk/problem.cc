#include "topk/problem.h"

#include <cassert>

#include "affinity/static_affinity.h"
#include "preference/preference_model.h"

namespace greca {

GroupProblem::GroupProblem(std::size_t num_items,
                           std::vector<SortedList> preference_lists,
                           SortedList static_affinity,
                           std::vector<SortedList> period_affinity,
                           AffinityCombiner combiner, ConsensusSpec consensus,
                           std::vector<SortedList> agreement_lists)
    : num_items_(num_items),
      preference_lists_(std::move(preference_lists)),
      static_affinity_(std::move(static_affinity)),
      period_affinity_(std::move(period_affinity)),
      combiner_(std::move(combiner)),
      consensus_(std::move(consensus)),
      agreement_lists_(std::move(agreement_lists)) {
  assert(!preference_lists_.empty());
  assert(period_affinity_.size() == combiner_.num_periods());
  assert((consensus_.disagreement == DisagreementKind::kPairwise &&
          group_size() >= 2)
             ? (agreement_lists_.size() == num_pairs() ||
                agreement_lists_.size() == 1)
             : agreement_lists_.empty());
}

std::size_t GroupProblem::TotalEntries() const {
  std::size_t total = static_affinity_.size();
  for (const auto& list : preference_lists_) total += list.size();
  for (const auto& list : period_affinity_) total += list.size();
  for (const auto& list : agreement_lists_) total += list.size();
  return total;
}

std::size_t GroupProblem::PairIndex(std::size_t a, std::size_t b) const {
  return LocalPairIndex(a, b, group_size());
}

double GroupProblem::ExactPairAffinity(std::size_t q) const {
  const auto key = static_cast<ListKey>(q);
  const double aff_s = static_affinity_.ScoreOfKey(key);
  std::vector<double> aff_p;
  aff_p.reserve(period_affinity_.size());
  for (const auto& list : period_affinity_) {
    aff_p.push_back(list.ScoreOfKey(key));
  }
  return combiner_.Combine(aff_s, aff_p);
}

std::vector<double> GroupProblem::ExactPairAffinities() const {
  std::vector<double> out(num_pairs());
  for (std::size_t q = 0; q < out.size(); ++q) {
    out[q] = ExactPairAffinity(q);
  }
  return out;
}

void GroupProblem::MemberPreferences(std::span<const double> apref,
                                     std::span<const double> pair_aff,
                                     std::span<double> out) const {
  assert(apref.size() == group_size());
  assert(pair_aff.size() == num_pairs());
  AllMemberPreferences(apref, pair_aff, out);
}

void GroupProblem::MemberPreferenceIntervals(std::span<const Interval> apref,
                                             std::span<const Interval> pair_aff,
                                             std::span<Interval> out) const {
  assert(apref.size() == group_size());
  assert(pair_aff.size() == num_pairs());
  AllMemberPreferenceIntervals(apref, pair_aff, out);
}

double GroupProblem::ExactScore(ListKey key) const {
  const std::size_t g = group_size();
  std::vector<double> apref(g);
  for (std::size_t u = 0; u < g; ++u) {
    apref[u] = preference_lists_[u].ScoreOfKey(key);
  }
  const std::vector<double> pair_aff = ExactPairAffinities();
  std::vector<double> prefs(g);
  MemberPreferences(apref, pair_aff, prefs);
  if (uses_agreement_lists()) {
    std::vector<double> agreements(agreement_lists_.size());
    for (std::size_t q = 0; q < agreements.size(); ++q) {
      agreements[q] = agreement_lists_[q].ScoreOfKey(key);
    }
    return ConsensusScoreWithAgreements(consensus_, prefs, agreements);
  }
  return ConsensusScore(consensus_, prefs);
}

std::vector<SortedList> BuildAgreementLists(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale) {
  const std::size_t g = preference_lists.size();
  std::vector<SortedList> lists;
  lists.reserve(NumUserPairs(g));
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      std::vector<ListEntry> entries;
      entries.reserve(num_items);
      for (ListKey key = 0; key < num_items; ++key) {
        entries.push_back(
            {key, PairAgreement(preference_lists[a].ScoreOfKey(key),
                                preference_lists[b].ScoreOfKey(key),
                                disagreement_scale)});
      }
      lists.push_back(SortedList::FromUnsorted(
          std::move(entries), static_cast<ListKey>(num_items)));
    }
  }
  return lists;
}

SortedList BuildGroupAgreementList(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale) {
  const std::size_t g = preference_lists.size();
  const double num_pairs = static_cast<double>(NumUserPairs(g));
  std::vector<ListEntry> entries;
  entries.reserve(num_items);
  for (ListKey key = 0; key < num_items; ++key) {
    double sum = 0.0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        sum += PairAgreement(preference_lists[a].ScoreOfKey(key),
                             preference_lists[b].ScoreOfKey(key),
                             disagreement_scale);
      }
    }
    entries.push_back({key, num_pairs > 0 ? sum / num_pairs : 1.0});
  }
  return SortedList::FromUnsorted(std::move(entries),
                                  static_cast<ListKey>(num_items));
}

}  // namespace greca
