// Non-owning view over a score-sorted list — the access layer every top-k
// algorithm (Naive, TA, GRECA) consumes.
//
// A ListView is a span over sorted (key, score) entries plus a key→position
// span, optionally restricted to a key-space prefix and filtered by a
// tombstone bitmap. The restriction mechanism is what makes zero-copy problem
// assembly possible: the shared PreferenceIndex (src/index/) stores one
// immutable entry array per user over the full popular-item pool, and a query
// slices it by prefix (its candidate-pool size) while tombstoning the group's
// already-rated items — no re-sort, no re-key, no copy.
//
// Two storage layouts back a view:
//  * flat — one globally score-sorted span; sequential access is a linear
//    walk. Exhausting a prefix-restricted flat view skips every out-of-prefix
//    entry one by one, so a small prefix over a large index row walks the
//    whole row (the skip-tail pathology);
//  * banded — the span is partitioned into popularity bands (contiguous key
//    ranges, each independently score-sorted, boundaries in `band_begin`).
//    Sequential access is a small k-way merge over the band heads, and a
//    prefix-restricted view receives only the bands its prefix intersects —
//    an exhaustive scan walks at most the covered bands, not the full row.
//    Merged order equals the flat order (both sort by descending score, ties
//    ascending key), so results and access counts are bit-identical.
//
// Tombstoned entries are transparent in both layouts: sequential access skips
// them without counting, random access reads them as absent (0.0), and size()
// reports only live entries — so access accounting is identical to an owning
// SortedList that materialized exactly the live entries.
//
// The sequential cursor is opaque: callers initialize it to 0 and hand it
// back to SkipToLive / ReadSequential / PeekScore unmodified. Banded views
// keep the per-band merge heads as internal mutable state synchronized with
// the cursor (rewinding a cursor resets the merge); consequently a single
// ListView object must not be walked by two threads concurrently — views are
// per-query/per-worker (ProblemArena) by construction, never shared.
//
// A ListView never owns storage. The wrapped SortedList / PreferenceIndex /
// tombstone buffer must outlive the view; the buffers live either in a
// ProblemArena (reused per worker) or inside the GroupProblem itself.
#ifndef GRECA_TOPK_LIST_VIEW_H_
#define GRECA_TOPK_LIST_VIEW_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>

#include "topk/access_counter.h"
#include "topk/sorted_list.h"

namespace greca {

class ListView {
 public:
  /// Upper bound on popularity bands per view (geometric bands over a
  /// 2^20-item pool fit comfortably; the merge head array is inline).
  static constexpr std::size_t kMaxBands = 16;

  ListView() = default;

  /// Adapter over an owning SortedList: full key space, nothing tombstoned.
  explicit ListView(const SortedList& list)
      : entries_(list.entries()),
        position_of_key_(list.key_positions()),
        key_space_(list.key_space()),
        live_entries_(list.size()) {}

  /// Flat form. `entries` are sorted by descending score (ties ascending
  /// key) and may contain keys >= `key_space` (a prefix restriction of a
  /// larger index row); those and the keys whose bit is set in `tombstones`
  /// are dead. `live_entries` must equal the number of live entries and
  /// `tombstones` (when non-empty) must cover keys [0, key_space).
  ListView(std::span<const ListEntry> entries,
           std::span<const std::uint32_t> position_of_key,
           std::size_t key_space, std::size_t live_entries,
           std::span<const std::uint64_t> tombstones = {})
      : entries_(entries),
        position_of_key_(position_of_key),
        tombstones_(tombstones),
        key_space_(key_space),
        live_entries_(live_entries) {
    assert(position_of_key_.size() >= key_space_);
    assert(tombstones_.empty() || tombstones_.size() >= (key_space_ + 63) / 64);
  }

  /// Banded form. `band_begin` holds the band boundaries as offsets into
  /// `entries` (band b = [band_begin[b], band_begin[b+1]), front() == 0,
  /// back() == entries.size()); band b must contain exactly the keys in
  /// [band_begin[b], band_begin[b+1]) sorted by descending score (ties
  /// ascending key). `position_of_key` maps keys to positions within the
  /// same (banded) entry order. The boundary span must outlive the view.
  ListView(std::span<const ListEntry> entries,
           std::span<const std::uint32_t> position_of_key,
           std::size_t key_space, std::size_t live_entries,
           std::span<const std::uint64_t> tombstones,
           std::span<const std::uint32_t> band_begin)
      : ListView(entries, position_of_key, key_space, live_entries,
                 tombstones) {
    assert(band_begin.size() >= 2);
    assert(band_begin.front() == 0);
    assert(band_begin.back() == entries.size());
    assert(band_begin.size() - 1 <= kMaxBands);
    // A single band is already globally sorted — stay on the flat path.
    if (band_begin.size() > 2) {
      bands_ = band_begin;
      ResetMerge();
    }
  }

  /// Number of live (non-tombstoned, in-prefix) entries.
  std::size_t size() const { return live_entries_; }
  bool empty() const { return live_entries_ == 0; }
  /// Keys run in [0, key_space()).
  std::size_t key_space() const { return key_space_; }

  /// Raw entries an exhaustive sequential scan touches (live reads plus
  /// uncounted skips): the whole backing span. Banded prefix views receive
  /// only the covered bands, so this is the access-cost-model probe the
  /// banded-vs-flat benches and tests compare.
  std::size_t scan_footprint() const { return entries_.size(); }

  /// Number of popularity bands merged by sequential access (1 = flat walk).
  std::size_t num_bands() const {
    return bands_.empty() ? 1 : bands_.size() - 1;
  }

  /// True when `key` lies outside the prefix or is tombstoned.
  bool IsTombstoned(ListKey key) const {
    if (key >= key_space_) return true;
    if (tombstones_.empty()) return false;
    return (tombstones_[key >> 6] >> (key & 63u)) & 1u;
  }

  /// Positions `cursor` on the next live entry; returns false when the list
  /// is exhausted. Skipping dead entries is uncounted — they do not exist as
  /// far as access accounting is concerned. Flat views advance the cursor
  /// past dead entries (it is a raw position); banded views advance their
  /// internal band heads instead (the cursor counts consumed live entries).
  /// Either way the cursor stays opaque to the caller.
  bool SkipToLive(std::size_t& cursor) const {
    if (!bands_.empty()) {
      SyncMerge(cursor);
      return MergedBand() >= 0;
    }
    while (cursor < entries_.size() && IsTombstoned(entries_[cursor].id)) {
      ++cursor;
    }
    return cursor < entries_.size();
  }

  /// Counted sequential access: reads the live entry at `cursor` and advances
  /// it. The caller must have established liveness via SkipToLive.
  const ListEntry& ReadSequential(std::size_t& cursor,
                                  AccessCounter& counter) const {
    ++counter.sequential;
    if (!bands_.empty()) {
      SyncMerge(cursor);
      const int b = MergedBand();
      assert(b >= 0 && "ReadSequential past the last live entry");
      const ListEntry& e = entries_[head_[static_cast<std::size_t>(b)]];
      AdvanceMergedHead(static_cast<std::size_t>(b));
      ++cursor;
      return e;
    }
    assert(cursor < entries_.size() && !IsTombstoned(entries_[cursor].id));
    return entries_[cursor++];
  }

  /// Uncounted score of the live entry at `cursor` — the entry the next
  /// ReadSequential would return. The caller must have established liveness
  /// via SkipToLive (TA seeds its threshold bounds through this without
  /// paying a second walk over the dead prefix).
  double PeekScore(std::size_t cursor) const {
    if (!bands_.empty()) {
      SyncMerge(cursor);
      const int b = MergedBand();
      assert(b >= 0 && "PeekScore past the last live entry");
      return entries_[head_[static_cast<std::size_t>(b)]].score;
    }
    assert(cursor < entries_.size() && !IsTombstoned(entries_[cursor].id));
    return entries_[cursor].score;
  }

  /// Uncounted exact score of `key`; 0.0 for tombstoned, missing or
  /// out-of-range keys (same absent-key contract as SortedList::ScoreOfKey).
  double ScoreOfKey(ListKey key) const {
    if (IsTombstoned(key)) return 0.0;
    const std::uint32_t pos = position_of_key_[key];
    return pos == kMissingPosition ? 0.0 : entries_[pos].score;
  }

  /// Counted random access by key.
  double RandomAccess(ListKey key, AccessCounter& counter) const {
    ++counter.random;
    return ScoreOfKey(key);
  }

  /// Highest live score (0.0 when no live entries). Lazily computed once and
  /// cached — repeated calls no longer re-walk the dead prefix.
  double MaxScore() const {
    if (max_score_valid_) return max_score_;
    double best = 0.0;
    if (bands_.empty()) {
      std::size_t pos = 0;
      while (pos < entries_.size() && IsTombstoned(entries_[pos].id)) ++pos;
      if (pos < entries_.size()) best = entries_[pos].score;
    } else {
      // Max over band heads, each advanced (locally, without touching the
      // merge state) past its dead prefix.
      for (std::size_t b = 0; b + 1 < bands_.size(); ++b) {
        std::uint32_t h = bands_[b];
        const std::uint32_t end = bands_[b + 1];
        while (h < end && IsTombstoned(entries_[h].id)) ++h;
        if (h < end && entries_[h].score > best) best = entries_[h].score;
      }
    }
    max_score_ = best;
    max_score_valid_ = true;
    return best;
  }

 private:
  static constexpr int kBandUnknown = -2;
  static constexpr int kBandNone = -1;

  /// Re-establishes the merge invariant for band `b`: head_[b] sits on a
  /// live entry (head_score_[b] caches its score) or at the band end
  /// (head_score_[b] = -inf). Dead entries are passed over uncounted, each
  /// at most once per walk.
  void SkipBandHead(std::size_t b) const {
    std::uint32_t h = head_[b];
    const std::uint32_t end = bands_[b + 1];
    while (h < end && IsTombstoned(entries_[h].id)) ++h;
    head_[b] = h;
    head_score_[b] = h < end ? entries_[h].score
                             : -std::numeric_limits<double>::infinity();
  }

  void ResetMerge() const {
    const std::size_t nb = bands_.size() - 1;
    for (std::size_t b = 0; b < nb; ++b) {
      head_[b] = bands_[b];
      SkipBandHead(b);
      active_[b] = static_cast<std::uint8_t>(b);
    }
    num_active_ = nb;
    merge_consumed_ = 0;
    cur_band_ = kBandUnknown;
    second_score_ = -std::numeric_limits<double>::infinity();
  }

  /// Band whose head is the next live entry in merged order — descending
  /// score, ties by ascending key, exactly the flat layout's global sort, so
  /// banded and flat walks are bit-identical. Heads are live by invariant;
  /// the argmin runs over the cached head scores of the still-active bands
  /// (exhausted bands are dropped in passing, so late-walk reads degrade to
  /// near-flat cost) and records the runner-up score so AdvanceMergedHead
  /// can keep the winner without re-scanning. kBandNone when exhausted.
  int MergedBand() const {
    if (cur_band_ != kBandUnknown) return cur_band_;
    int best = kBandNone;
    double best_score = -std::numeric_limits<double>::infinity();
    double second = -std::numeric_limits<double>::infinity();
    std::size_t w = 0;
    for (std::size_t k = 0; k < num_active_; ++k) {
      const std::size_t b = active_[k];
      if (head_[b] == bands_[b + 1]) continue;  // exhausted: drop
      active_[w++] = static_cast<std::uint8_t>(b);
      const double s = head_score_[b];
      if (best == kBandNone) {
        best = static_cast<int>(b);
        best_score = s;
        continue;
      }
      if (s > best_score ||
          (s == best_score &&
           ListEntryOrder{}(entries_[head_[b]],
                            entries_[head_[static_cast<std::size_t>(best)]]))) {
        second = best_score;
        best = static_cast<int>(b);
        best_score = s;
      } else if (s > second) {
        second = s;
      }
    }
    num_active_ = w;
    second_score_ = second;
    cur_band_ = best;
    return best;
  }

  /// Consumes the merged head entry (band `b` from MergedBand). While the
  /// band's next head still beats every other band's head score outright,
  /// the band stays the cached winner and the next read skips the argmin
  /// (score ties fall back to it for the id tie-break).
  void AdvanceMergedHead(std::size_t b) const {
    ++head_[b];
    SkipBandHead(b);
    ++merge_consumed_;
    cur_band_ = head_score_[b] > second_score_ ? static_cast<int>(b)
                                               : kBandUnknown;
  }

  /// Brings the merge heads in line with `cursor` (= live entries consumed).
  /// A rewound cursor — a fresh algorithm run over the same view — resets the
  /// merge and replays; the steady state (cursor == consumed) is free.
  void SyncMerge(std::size_t cursor) const {
    if (cursor == merge_consumed_) return;
    if (cursor < merge_consumed_) ResetMerge();
    while (merge_consumed_ < cursor) {
      const int b = MergedBand();
      assert(b >= 0 && "cursor points past the last live entry");
      if (b < 0) break;
      AdvanceMergedHead(static_cast<std::size_t>(b));
    }
  }

  std::span<const ListEntry> entries_;
  std::span<const std::uint32_t> position_of_key_;
  std::span<const std::uint64_t> tombstones_;  // empty = nothing tombstoned
  std::span<const std::uint32_t> bands_;       // empty = flat layout
  std::size_t key_space_ = 0;
  std::size_t live_entries_ = 0;

  // Sequential-access state of the banded merge, synchronized with the
  // caller's cursor, plus the lazily cached MaxScore. Invariant between
  // operations: every head_[b] sits on a live entry (score cached in
  // head_score_[b]) or at its band end (-inf). Mutable because views are
  // handed to algorithms by const reference; a view instance belongs to one
  // problem on one thread (see the header comment).
  mutable std::array<std::uint32_t, kMaxBands> head_{};
  mutable std::array<double, kMaxBands> head_score_{};
  mutable std::array<std::uint8_t, kMaxBands> active_{};  // non-exhausted
  mutable std::size_t num_active_ = 0;
  mutable double second_score_ = 0.0;  // runner-up head score (see above)
  mutable std::size_t merge_consumed_ = 0;
  mutable int cur_band_ = kBandUnknown;
  mutable double max_score_ = 0.0;
  mutable bool max_score_valid_ = false;
};

}  // namespace greca

#endif  // GRECA_TOPK_LIST_VIEW_H_
