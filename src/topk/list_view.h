// Non-owning view over a score-sorted list — the access layer every top-k
// algorithm (Naive, TA, GRECA) consumes.
//
// A ListView is a pair of parallel spans (keys, scores — the SoA layout of
// sorted_list.h / index/preference_index.h) plus a key→position span,
// optionally restricted to a key-space prefix and filtered by a tombstone
// bitmap. The restriction mechanism is what makes zero-copy problem assembly
// possible: the shared PreferenceIndex stores one immutable row per user
// over the full popular-item pool, and a query slices it by prefix (its
// candidate-pool size) while tombstoning the group's already-rated items —
// no re-sort, no re-key, no copy. Liveness of an entry depends only on its
// key, so the skip scans read the 4-byte key array alone — one cache line
// covers 16 entries, and the scan vectorizes (topk/simd.h: 8 lanes per
// iteration under AVX2, scalar under -DGRECA_SIMD=OFF, bit-identical
// positions either way).
//
// Two storage layouts back a view:
//  * flat — one globally score-sorted span; sequential access is a linear
//    walk. Exhausting a prefix-restricted flat view skips every out-of-prefix
//    entry one by one, so a small prefix over a large index row walks the
//    whole row (the skip-tail pathology);
//  * banded — the span is partitioned into popularity bands (contiguous key
//    ranges, each independently score-sorted, boundaries in `band_begin`).
//    Sequential access merges the band heads through a loser tree (below),
//    and a prefix-restricted view receives only the bands its prefix
//    intersects — an exhaustive scan walks at most the covered bands, not the
//    full row. Merged order equals the flat order (both sort by descending
//    score, ties ascending key), so results and access counts are
//    bit-identical.
//
// The band merge is a loser tree over the band heads: tree_[0] names the
// winning band, internal nodes store the loser of their match, and consuming
// the winner replays only its leaf-to-root path — O(log B) comparisons
// against the per-step argmin over all B heads it replaces. Band scores are
// mirrored in SoA head arrays (head_score_ / head_key_), so a replay touches
// no entry storage at all. A consumed winner whose next head score strictly
// beats the best loser on its own path (runner_score_, refreshed by every
// replay) stays the winner with zero comparisons — the common case on
// popularity-skewed rows, where one band leads for long stretches.
//
// Tombstoned entries are transparent in both layouts: sequential access skips
// them without counting, random access reads them as absent (0.0), and size()
// reports only live entries — so access accounting is identical to an owning
// SortedList that materialized exactly the live entries.
//
// The sequential cursor is opaque: callers initialize it to 0 and hand it
// back to SkipToLive / ReadSequential / PeekScore unmodified. Banded views
// keep the merge state as internal mutable state synchronized with the
// cursor (rewinding a cursor resets the merge); consequently a single
// ListView object must not be walked by two threads concurrently — views are
// per-query/per-worker (ProblemArena) by construction, never shared.
//
// A ListView never owns storage. The wrapped SortedList / PreferenceIndex /
// tombstone buffer must outlive the view; the buffers live either in a
// ProblemArena (reused per worker) or inside the GroupProblem itself.
#ifndef GRECA_TOPK_LIST_VIEW_H_
#define GRECA_TOPK_LIST_VIEW_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>

#include "topk/access_counter.h"
#include "topk/simd.h"
#include "topk/sorted_list.h"

namespace greca {

class ListView {
 public:
  /// Upper bound on popularity bands per view (geometric bands over a
  /// 2^20-item pool fit comfortably; the loser tree is inline).
  static constexpr std::size_t kMaxBands = 16;

  ListView() = default;

  /// Adapter over an owning SortedList: full key space, nothing tombstoned.
  explicit ListView(const SortedList& list)
      : keys_(list.keys()),
        scores_(list.scores()),
        position_of_key_(list.key_positions()),
        key_space_(list.key_space()),
        live_entries_(list.size()) {}

  /// Flat form. `keys`/`scores` are parallel arrays sorted by descending
  /// score (ties ascending key) and may contain keys >= `key_space` (a
  /// prefix restriction of a larger index row); those and the keys whose bit
  /// is set in `tombstones` are dead. `live_entries` must equal the number
  /// of live entries and `tombstones` (when non-empty) must cover keys
  /// [0, key_space).
  ListView(std::span<const ListKey> keys, std::span<const Score> scores,
           std::span<const std::uint32_t> position_of_key,
           std::size_t key_space, std::size_t live_entries,
           std::span<const std::uint64_t> tombstones = {})
      : keys_(keys),
        scores_(scores),
        position_of_key_(position_of_key),
        tombstones_(tombstones),
        key_space_(key_space),
        live_entries_(live_entries) {
    assert(keys_.size() == scores_.size());
    assert(position_of_key_.size() >= key_space_);
    assert(tombstones_.empty() || tombstones_.size() >= (key_space_ + 63) / 64);
  }

  /// Banded form. `band_begin` holds the band boundaries as offsets into the
  /// key/score arrays (band b = [band_begin[b], band_begin[b+1]), front() ==
  /// 0, back() == keys.size()); band b must contain exactly the keys in
  /// [band_begin[b], band_begin[b+1]) sorted by descending score (ties
  /// ascending key). `position_of_key` maps keys to positions within the
  /// same (banded) entry order. The boundary span must outlive the view.
  ListView(std::span<const ListKey> keys, std::span<const Score> scores,
           std::span<const std::uint32_t> position_of_key,
           std::size_t key_space, std::size_t live_entries,
           std::span<const std::uint64_t> tombstones,
           std::span<const std::uint32_t> band_begin)
      : ListView(keys, scores, position_of_key, key_space, live_entries,
                 tombstones) {
    assert(band_begin.size() >= 2);
    assert(band_begin.front() == 0);
    assert(band_begin.back() == keys.size());
    assert(band_begin.size() - 1 <= kMaxBands);
    // A single band is already globally sorted — stay on the flat path.
    if (band_begin.size() > 2) {
      bands_ = band_begin;
      ResetMerge();
    }
  }

  /// Number of live (non-tombstoned, in-prefix) entries.
  std::size_t size() const { return live_entries_; }
  bool empty() const { return live_entries_ == 0; }
  /// Keys run in [0, key_space()).
  std::size_t key_space() const { return key_space_; }

  /// Raw entries an exhaustive sequential scan touches (live reads plus
  /// uncounted skips): the whole backing span. Banded prefix views receive
  /// only the covered bands, so this is the access-cost-model probe the
  /// banded-vs-flat benches and tests compare.
  std::size_t scan_footprint() const { return keys_.size(); }

  /// Number of popularity bands merged by sequential access (1 = flat walk).
  std::size_t num_bands() const {
    return bands_.empty() ? 1 : bands_.size() - 1;
  }

  /// True when `key` lies outside the prefix or is tombstoned.
  bool IsTombstoned(ListKey key) const {
    return simd::IsDeadKey(key, key_space_,
                           tombstones_.empty() ? nullptr : tombstones_.data());
  }

  /// Positions `cursor` on the next live entry; returns false when the list
  /// is exhausted. Skipping dead entries is uncounted — they do not exist as
  /// far as access accounting is concerned. Flat views advance the cursor
  /// past dead entries (it is a raw position); banded views advance their
  /// internal band heads instead (the cursor counts consumed live entries).
  /// Either way the cursor stays opaque to the caller.
  bool SkipToLive(std::size_t& cursor) const {
    if (!bands_.empty()) {
      SyncMerge(cursor);
      return !WinnerExhausted();
    }
    cursor = FindFirstLive(cursor, keys_.size());
    return cursor < keys_.size();
  }

  /// Counted sequential access: reads the live entry at `cursor` and advances
  /// it. The caller must have established liveness via SkipToLive.
  ListEntry ReadSequential(std::size_t& cursor, AccessCounter& counter) const {
    ++counter.sequential;
    if (!bands_.empty()) {
      SyncMerge(cursor);
      assert(!WinnerExhausted() && "ReadSequential past the last live entry");
      const std::uint32_t h = head_[tree_[0]];
      const ListEntry e{keys_[h], scores_[h]};
      AdvanceWinner();
      ++cursor;
      return e;
    }
    assert(cursor < keys_.size() && !IsTombstoned(keys_[cursor]));
    const std::size_t pos = cursor++;
    return {keys_[pos], scores_[pos]};
  }

  /// Uncounted score of the live entry at `cursor` — the entry the next
  /// ReadSequential would return. The caller must have established liveness
  /// via SkipToLive (TA seeds its threshold bounds through this without
  /// paying a second walk over the dead prefix).
  double PeekScore(std::size_t cursor) const {
    if (!bands_.empty()) {
      SyncMerge(cursor);
      assert(!WinnerExhausted() && "PeekScore past the last live entry");
      return head_score_[tree_[0]];
    }
    assert(cursor < keys_.size() && !IsTombstoned(keys_[cursor]));
    return scores_[cursor];
  }

  /// Uncounted exact score of `key`; 0.0 for tombstoned, missing or
  /// out-of-range keys (same absent-key contract as SortedList::ScoreOfKey).
  double ScoreOfKey(ListKey key) const {
    if (IsTombstoned(key)) return 0.0;
    const std::uint32_t pos = position_of_key_[key];
    return pos == kMissingPosition ? 0.0 : scores_[pos];
  }

  /// Counted random access by key.
  double RandomAccess(ListKey key, AccessCounter& counter) const {
    ++counter.random;
    return ScoreOfKey(key);
  }

  /// Highest live score (0.0 when no live entries). Lazily computed once and
  /// cached — repeated calls no longer re-walk the dead prefix.
  double MaxScore() const {
    if (max_score_valid_) return max_score_;
    double best = 0.0;
    if (bands_.empty()) {
      const std::size_t pos = FindFirstLive(0, keys_.size());
      if (pos < keys_.size()) best = scores_[pos];
    } else {
      // Max over band heads, each advanced (locally, without touching the
      // merge state) past its dead prefix.
      for (std::size_t b = 0; b + 1 < bands_.size(); ++b) {
        const std::size_t h = FindFirstLive(bands_[b], bands_[b + 1]);
        if (h < bands_[b + 1] && scores_[h] > best) best = scores_[h];
      }
    }
    max_score_ = best;
    max_score_valid_ = true;
    return best;
  }

 private:
  /// The one scan primitive: first live position in [begin, end) of the key
  /// array (vectorized under GRECA_SIMD; pure, so MaxScore may call it
  /// without perturbing the merge).
  std::size_t FindFirstLive(std::size_t begin, std::size_t end) const {
    return simd::FindFirstLive(
        keys_.data(), begin, end, key_space_,
        tombstones_.empty() ? nullptr : tombstones_.data());
  }

  /// Re-establishes the head invariant for band `b`: head_[b] sits on a live
  /// entry (score/key mirrored in the SoA head arrays) or at the band end
  /// (-inf / max-key sentinels, which lose every match). Dead entries are
  /// passed over uncounted, each at most once per walk.
  void SkipBandHead(std::size_t b) const {
    const std::uint32_t end = bands_[b + 1];
    const std::size_t h = FindFirstLive(head_[b], end);
    head_[b] = static_cast<std::uint32_t>(h);
    if (h < end) {
      head_score_[b] = scores_[h];
      head_key_[b] = keys_[h];
    } else {
      head_score_[b] = -std::numeric_limits<double>::infinity();
      head_key_[b] = 0xFFFFFFFFu;
    }
  }

  /// Match order of the tree: band a beats band b when a's head precedes b's
  /// in merged order — descending score, ties by ascending key (exactly
  /// ListEntryOrder over the heads; live heads never share a key, bands
  /// partition the key space). Exhausted heads carry -inf/max-key and lose
  /// to every live head; the final band-id tiebreak only ever decides
  /// exhausted-vs-exhausted matches, where the winner is irrelevant.
  bool Beats(std::uint32_t a, std::uint32_t b) const {
    if (head_score_[a] != head_score_[b]) {
      return head_score_[a] > head_score_[b];
    }
    if (head_key_[a] != head_key_[b]) return head_key_[a] < head_key_[b];
    return a < b;
  }

  bool WinnerExhausted() const {
    const std::uint32_t w = tree_[0];
    return head_[w] == bands_[w + 1];
  }

  /// Full tournament rebuild: leaves (bands) at implicit nodes [nb, 2nb),
  /// internal nodes [1, nb) each store the LOSER of their match, tree_[0]
  /// the overall winner. O(nb) — only on reset/rewind.
  void InitLoserTree() const {
    // min() restates the ctor's nb <= kMaxBands invariant where the
    // optimizer can see it (asserts compile out of Release).
    const std::size_t nb = std::min(bands_.size() - 1, kMaxBands);
    std::array<std::uint8_t, 2 * kMaxBands> win;
    for (std::size_t b = 0; b < nb; ++b) {
      win[nb + b] = static_cast<std::uint8_t>(b);
    }
    for (std::size_t node = nb - 1; node >= 1; --node) {
      const std::uint8_t l = win[2 * node];
      const std::uint8_t r = win[2 * node + 1];
      const bool left_wins = Beats(l, r);
      win[node] = left_wins ? l : r;
      tree_[node] = left_wins ? r : l;
    }
    tree_[0] = win[1];
    RefreshRunner();
  }

  /// runner_score_ = best loser score on the current winner's leaf-to-root
  /// path — the only heads that can dethrone it. Kept fresh by Replay; the
  /// O(1) consecutive-win fast path in AdvanceWinner compares against it.
  void RefreshRunner() const {
    const std::size_t nb = bands_.size() - 1;
    double runner = -std::numeric_limits<double>::infinity();
    for (std::size_t t = (nb + tree_[0]) >> 1; t >= 1; t >>= 1) {
      runner = std::max(runner, head_score_[tree_[t]]);
    }
    runner_score_ = runner;
  }

  /// Replays band `b`'s leaf-to-root path after its head changed: at each
  /// node the winner moves up and the loser stays, re-establishing the tree
  /// invariant in O(log nb) — every other path is untouched, so its stored
  /// losers remain correct. The runner must then be refreshed from the NEW
  /// winner's own path: when `b` loses mid-path the winner entered from a
  /// side branch whose lower path segment this replay never visited.
  void Replay(std::size_t b) const {
    const std::size_t nb = bands_.size() - 1;
    std::uint8_t cur = static_cast<std::uint8_t>(b);
    for (std::size_t t = (nb + b) >> 1; t >= 1; t >>= 1) {
      if (Beats(tree_[t], cur)) std::swap(cur, tree_[t]);
    }
    tree_[0] = cur;
    RefreshRunner();
  }

  void ResetMerge() const {
    const std::size_t nb = bands_.size() - 1;
    for (std::size_t b = 0; b < nb; ++b) {
      head_[b] = bands_[b];
      SkipBandHead(b);
    }
    InitLoserTree();
    merge_consumed_ = 0;
  }

  /// Consumes the winning band's head entry. If the band's next head
  /// strictly out-scores every loser on its own path it stays the winner
  /// outright — tree and runner unchanged, zero comparisons (score ties
  /// must replay for the key tiebreak).
  void AdvanceWinner() const {
    const std::size_t b = tree_[0];
    ++head_[b];
    SkipBandHead(b);
    ++merge_consumed_;
    if (head_score_[b] > runner_score_) return;
    Replay(b);
  }

  /// Brings the merge heads in line with `cursor` (= live entries consumed).
  /// A rewound cursor — a fresh algorithm run over the same view — resets the
  /// merge and replays; the steady state (cursor == consumed) is free.
  void SyncMerge(std::size_t cursor) const {
    if (cursor == merge_consumed_) return;
    if (cursor < merge_consumed_) ResetMerge();
    while (merge_consumed_ < cursor) {
      assert(!WinnerExhausted() && "cursor points past the last live entry");
      AdvanceWinner();
    }
  }

  std::span<const ListKey> keys_;    // sorted order, parallel to scores_
  std::span<const Score> scores_;
  std::span<const std::uint32_t> position_of_key_;
  std::span<const std::uint64_t> tombstones_;  // empty = nothing tombstoned
  std::span<const std::uint32_t> bands_;       // empty = flat layout
  std::size_t key_space_ = 0;
  std::size_t live_entries_ = 0;

  // Sequential-access state of the banded merge, synchronized with the
  // caller's cursor, plus the lazily cached MaxScore. Invariant between
  // operations: every head_[b] sits on a live entry (score/key mirrored in
  // head_score_/head_key_) or at its band end (sentinels), and tree_ is a
  // valid loser tree over the heads. Mutable because views are handed to
  // algorithms by const reference; a view instance belongs to one problem on
  // one thread (see the header comment).
  mutable std::array<std::uint32_t, kMaxBands> head_{};
  mutable std::array<double, kMaxBands> head_score_{};
  mutable std::array<std::uint32_t, kMaxBands> head_key_{};
  mutable std::array<std::uint8_t, kMaxBands> tree_{};  // [0]=winner, rest=losers
  mutable double runner_score_ = 0.0;  // best loser on the winner's path
  mutable std::size_t merge_consumed_ = 0;
  mutable double max_score_ = 0.0;
  mutable bool max_score_valid_ = false;
};

}  // namespace greca

#endif  // GRECA_TOPK_LIST_VIEW_H_
