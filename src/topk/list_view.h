// Non-owning view over a score-sorted list — the access layer every top-k
// algorithm (Naive, TA, GRECA) consumes.
//
// A ListView is a span over sorted (key, score) entries plus a key→position
// span, optionally restricted to a key-space prefix and filtered by a
// tombstone bitmap. The restriction mechanism is what makes zero-copy problem
// assembly possible: the shared PreferenceIndex (src/index/) stores one
// immutable sorted entry array per user over the full popular-item pool, and
// a query slices it by prefix (its candidate-pool size) while tombstoning the
// group's already-rated items — no re-sort, no re-key, no copy.
//
// Tombstoned entries are transparent: sequential access skips them without
// counting, random access reads them as absent (0.0), and size() reports only
// live entries — so access accounting is identical to an owning SortedList
// that materialized exactly the live entries.
//
// A ListView never owns storage. The wrapped SortedList / PreferenceIndex /
// tombstone buffer must outlive the view; the buffers live either in a
// ProblemArena (reused per worker) or inside the GroupProblem itself.
#ifndef GRECA_TOPK_LIST_VIEW_H_
#define GRECA_TOPK_LIST_VIEW_H_

#include <cassert>
#include <cstdint>
#include <span>

#include "topk/access_counter.h"
#include "topk/sorted_list.h"

namespace greca {

class ListView {
 public:
  ListView() = default;

  /// Adapter over an owning SortedList: full key space, nothing tombstoned.
  explicit ListView(const SortedList& list)
      : entries_(list.entries()),
        position_of_key_(list.key_positions()),
        key_space_(list.key_space()),
        live_entries_(list.size()) {}

  /// General form. `entries` are sorted by descending score (ties ascending
  /// key) and may contain keys >= `key_space` (a prefix restriction of a
  /// larger index row); those and the keys whose bit is set in `tombstones`
  /// are dead. `live_entries` must equal the number of live entries and
  /// `tombstones` (when non-empty) must cover keys [0, key_space).
  ListView(std::span<const ListEntry> entries,
           std::span<const std::uint32_t> position_of_key,
           std::size_t key_space, std::size_t live_entries,
           std::span<const std::uint64_t> tombstones = {})
      : entries_(entries),
        position_of_key_(position_of_key),
        tombstones_(tombstones),
        key_space_(key_space),
        live_entries_(live_entries) {
    assert(position_of_key_.size() >= key_space_);
    assert(tombstones_.empty() || tombstones_.size() >= (key_space_ + 63) / 64);
  }

  /// Number of live (non-tombstoned, in-prefix) entries.
  std::size_t size() const { return live_entries_; }
  bool empty() const { return live_entries_ == 0; }
  /// Keys run in [0, key_space()).
  std::size_t key_space() const { return key_space_; }

  /// True when `key` lies outside the prefix or is tombstoned.
  bool IsTombstoned(ListKey key) const {
    if (key >= key_space_) return true;
    if (tombstones_.empty()) return false;
    return (tombstones_[key >> 6] >> (key & 63u)) & 1u;
  }

  /// Advances `cursor` past dead entries to the next live one; returns false
  /// when the list is exhausted. Skipping is uncounted — the dead entries do
  /// not exist as far as access accounting is concerned. Note the cost
  /// model: exhausting a prefix-restricted view walks the *full* underlying
  /// row (skipped entries are O(1) each), so a small prefix over a large
  /// index row trades sort-free assembly for a longer skip tail on
  /// exhaustive scans (see ROADMAP "prefix-bucketed rows").
  bool SkipToLive(std::size_t& cursor) const {
    while (cursor < entries_.size() && IsTombstoned(entries_[cursor].id)) {
      ++cursor;
    }
    return cursor < entries_.size();
  }

  /// Counted sequential access: reads the live entry at `cursor` and advances
  /// it. The caller must have established liveness via SkipToLive.
  const ListEntry& ReadSequential(std::size_t& cursor,
                                  AccessCounter& counter) const {
    assert(cursor < entries_.size() && !IsTombstoned(entries_[cursor].id));
    ++counter.sequential;
    return entries_[cursor++];
  }

  /// Uncounted exact score of `key`; 0.0 for tombstoned, missing or
  /// out-of-range keys (same absent-key contract as SortedList::ScoreOfKey).
  double ScoreOfKey(ListKey key) const {
    if (IsTombstoned(key)) return 0.0;
    const std::uint32_t pos = position_of_key_[key];
    return pos == kMissingPosition ? 0.0 : entries_[pos].score;
  }

  /// Counted random access by key.
  double RandomAccess(ListKey key, AccessCounter& counter) const {
    ++counter.random;
    return ScoreOfKey(key);
  }

  /// Highest live score (0.0 when no live entries).
  double MaxScore() const {
    std::size_t cursor = 0;
    return SkipToLive(cursor) ? entries_[cursor].score : 0.0;
  }

 private:
  std::span<const ListEntry> entries_;
  std::span<const std::uint32_t> position_of_key_;
  std::span<const std::uint64_t> tombstones_;  // empty = nothing tombstoned
  std::size_t key_space_ = 0;
  std::size_t live_entries_ = 0;
};

}  // namespace greca

#endif  // GRECA_TOPK_LIST_VIEW_H_
