// Score-sorted input lists for Fagin-style top-k processing (paper §3.1).
//
// A SortedList holds (key, score) entries in decreasing score order and
// supports the two access modes of the threshold-algorithm family:
// counted sequential access (SA) down the list and counted random access
// (RA) by key. Keys form a dense space [0, key_space); preference lists use
// candidate-item keys, affinity lists use local pair indices.
//
// Storage is structure-of-arrays: parallel key (uint32) and score (double)
// arrays instead of interleaved (key, score) structs. Key-only operations —
// the tombstone-skip scans of the ListView layer — then read 4 bytes per
// entry instead of a 16-byte padded struct, and the key array is directly
// vectorizable (topk/simd.h). Entry-shaped values still cross the API
// (ListEntry by value); ListEntryOrder below stays THE comparator for every
// sort in the system.
//
// SortedList owns its storage. The algorithms themselves consume the
// non-owning ListView (list_view.h), which either wraps a SortedList or
// slices the shared PreferenceIndex; SortedList remains the owning building
// block for per-query affinity/agreement lists and for tests/benches that
// compose problems directly.
#ifndef GRECA_TOPK_SORTED_LIST_H_
#define GRECA_TOPK_SORTED_LIST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "topk/access_counter.h"

namespace greca {

using ListKey = std::uint32_t;
using ListEntry = ScoredEntry<ListKey>;

/// Sentinel in key→position arrays for keys without an entry.
inline constexpr std::uint32_t kMissingPosition = 0xFFFFFFFFu;

/// THE list order: descending score, ties by ascending key. Every sorted
/// structure shares it — owning SortedLists, the PreferenceIndex's flat and
/// band-local row sorts, and ListView's k-way band merge. The banded-vs-flat
/// bit-identical guarantee rests on all of them using exactly this functor,
/// so never re-spell the comparison inline.
struct ListEntryOrder {
  constexpr bool operator()(const ListEntry& a, const ListEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
};

class SortedList {
 public:
  SortedList() = default;

  /// Sorts `entries` by descending score (ties by ascending key). Every key
  /// must be < key_space and appear at most once. Allocates fresh storage —
  /// hot paths that rebuild a list per query use AssignUnsorted instead.
  static SortedList FromUnsorted(std::vector<ListEntry> entries,
                                 ListKey key_space);

  /// Rebuilds this list in place from `entries` (same contract as
  /// FromUnsorted), reusing the existing buffer capacity so steady-state
  /// per-query lists allocate nothing.
  void AssignUnsorted(std::span<const ListEntry> entries, ListKey key_space);

  /// Process-wide FromUnsorted call count. Lets tests assert the zero-copy
  /// assembly path performs no per-query preference-list sort/copy.
  static std::uint64_t FromUnsortedCalls();

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  ListKey key_space() const {
    return static_cast<ListKey>(position_of_key_.size());
  }

  /// Raw SoA storage views consumed by the ListView adapter. keys()[p] and
  /// scores()[p] are the p-th entry in sorted order.
  std::span<const ListKey> keys() const { return keys_; }
  std::span<const Score> scores() const { return scores_; }
  std::span<const std::uint32_t> key_positions() const {
    return position_of_key_;
  }

  /// Uncounted positional peek (internal bookkeeping, tests, exact scoring).
  ListEntry entry(std::size_t pos) const {
    return {keys_[pos], scores_[pos]};
  }

  /// Counted sequential access at `pos` (callers advance their own cursor).
  ListEntry ReadSequential(std::size_t pos, AccessCounter& counter) const {
    ++counter.sequential;
    return {keys_[pos], scores_[pos]};
  }

  /// Uncounted exact score of `key`; 0.0 when the key has no entry. Keys
  /// outside the key space are defined as absent (0.0) rather than UB, so
  /// callers probing a larger key space stay safe in every build mode.
  double ScoreOfKey(ListKey key) const {
    if (key >= position_of_key_.size()) return 0.0;
    const std::uint32_t pos = position_of_key_[key];
    return pos == kMissingPosition ? 0.0 : scores_[pos];
  }

  /// Counted random access by key.
  double RandomAccess(ListKey key, AccessCounter& counter) const {
    ++counter.random;
    return ScoreOfKey(key);
  }

  /// Highest score in the list (0.0 for empty lists).
  double MaxScore() const { return scores_.empty() ? 0.0 : scores_[0]; }

 private:
  /// Sorts `entries` with ListEntryOrder and scatters them into the SoA
  /// arrays + the key→position map.
  void FillFromSorted(std::span<ListEntry> entries, ListKey key_space);

  std::vector<ListKey> keys_;     // sorted order, parallel to scores_
  std::vector<Score> scores_;
  std::vector<std::uint32_t> position_of_key_;  // key -> position or missing
};

}  // namespace greca

#endif  // GRECA_TOPK_SORTED_LIST_H_
