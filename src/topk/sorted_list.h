// Score-sorted input lists for Fagin-style top-k processing (paper §3.1).
//
// A SortedList holds (key, score) entries in decreasing score order and
// supports the two access modes of the threshold-algorithm family:
// counted sequential access (SA) down the list and counted random access
// (RA) by key. Keys form a dense space [0, key_space); preference lists use
// candidate-item keys, affinity lists use local pair indices.
#ifndef GRECA_TOPK_SORTED_LIST_H_
#define GRECA_TOPK_SORTED_LIST_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topk/access_counter.h"

namespace greca {

using ListKey = std::uint32_t;
using ListEntry = ScoredEntry<ListKey>;

class SortedList {
 public:
  SortedList() = default;

  /// Sorts `entries` by descending score (ties by ascending key). Every key
  /// must be < key_space and appear at most once.
  static SortedList FromUnsorted(std::vector<ListEntry> entries,
                                 ListKey key_space);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Uncounted positional peek (internal bookkeeping, tests, exact scoring).
  const ListEntry& entry(std::size_t pos) const { return entries_[pos]; }

  /// Counted sequential access at `pos` (callers advance their own cursor).
  const ListEntry& ReadSequential(std::size_t pos,
                                  AccessCounter& counter) const {
    ++counter.sequential;
    return entries_[pos];
  }

  /// Uncounted exact score of `key`; 0.0 when the key has no entry.
  double ScoreOfKey(ListKey key) const {
    const std::uint32_t pos = position_of_key_[key];
    return pos == kMissing ? 0.0 : entries_[pos].score;
  }

  /// Counted random access by key.
  double RandomAccess(ListKey key, AccessCounter& counter) const {
    ++counter.random;
    return ScoreOfKey(key);
  }

  /// Highest score in the list (0.0 for empty lists).
  double MaxScore() const { return entries_.empty() ? 0.0 : entries_[0].score; }

 private:
  static constexpr std::uint32_t kMissing = 0xFFFFFFFFu;

  std::vector<ListEntry> entries_;
  std::vector<std::uint32_t> position_of_key_;  // key -> position or kMissing
};

}  // namespace greca

#endif  // GRECA_TOPK_SORTED_LIST_H_
