#include "topk/sorted_list.h"

#include <algorithm>
#include <cassert>

namespace greca {

SortedList SortedList::FromUnsorted(std::vector<ListEntry> entries,
                                    ListKey key_space) {
  std::sort(entries.begin(), entries.end(),
            [](const ListEntry& a, const ListEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  SortedList list;
  list.position_of_key_.assign(key_space, kMissing);
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    assert(entries[pos].id < key_space);
    assert(list.position_of_key_[entries[pos].id] == kMissing);
    list.position_of_key_[entries[pos].id] = static_cast<std::uint32_t>(pos);
  }
  list.entries_ = std::move(entries);
  return list;
}

}  // namespace greca
