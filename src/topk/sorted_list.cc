#include "topk/sorted_list.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace greca {

namespace {

std::atomic<std::uint64_t> g_from_unsorted_calls{0};

void SortEntriesDescending(std::span<ListEntry> entries) {
  std::sort(entries.begin(), entries.end(), ListEntryOrder{});
}

}  // namespace

SortedList SortedList::FromUnsorted(std::vector<ListEntry> entries,
                                    ListKey key_space) {
  g_from_unsorted_calls.fetch_add(1, std::memory_order_relaxed);
  SortedList list;
  SortEntriesDescending(entries);
  list.position_of_key_.assign(key_space, kMissingPosition);
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    assert(entries[pos].id < key_space);
    assert(list.position_of_key_[entries[pos].id] == kMissingPosition);
    list.position_of_key_[entries[pos].id] = static_cast<std::uint32_t>(pos);
  }
  list.entries_ = std::move(entries);
  return list;
}

void SortedList::AssignUnsorted(std::span<const ListEntry> entries,
                                ListKey key_space) {
  entries_.assign(entries.begin(), entries.end());
  SortEntriesDescending(entries_);
  position_of_key_.assign(key_space, kMissingPosition);
  for (std::size_t pos = 0; pos < entries_.size(); ++pos) {
    assert(entries_[pos].id < key_space);
    assert(position_of_key_[entries_[pos].id] == kMissingPosition);
    position_of_key_[entries_[pos].id] = static_cast<std::uint32_t>(pos);
  }
}

std::uint64_t SortedList::FromUnsortedCalls() {
  return g_from_unsorted_calls.load(std::memory_order_relaxed);
}

}  // namespace greca
