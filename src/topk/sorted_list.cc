#include "topk/sorted_list.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace greca {

namespace {

std::atomic<std::uint64_t> g_from_unsorted_calls{0};

/// AoS scratch for AssignUnsorted: the sort runs on interleaved entries
/// (exactly the pre-SoA semantics, ListEntryOrder and all) and only the
/// result is scattered to the parallel arrays. One buffer per thread keeps
/// the steady-state rebuild allocation-free without sharing across workers.
std::vector<ListEntry>& SortScratch() {
  thread_local std::vector<ListEntry> scratch;
  return scratch;
}

}  // namespace

void SortedList::FillFromSorted(std::span<ListEntry> entries,
                                ListKey key_space) {
  std::sort(entries.begin(), entries.end(), ListEntryOrder{});
  keys_.resize(entries.size());
  scores_.resize(entries.size());
  position_of_key_.assign(key_space, kMissingPosition);
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    assert(entries[pos].id < key_space);
    assert(position_of_key_[entries[pos].id] == kMissingPosition);
    keys_[pos] = entries[pos].id;
    scores_[pos] = entries[pos].score;
    position_of_key_[entries[pos].id] = static_cast<std::uint32_t>(pos);
  }
}

SortedList SortedList::FromUnsorted(std::vector<ListEntry> entries,
                                    ListKey key_space) {
  g_from_unsorted_calls.fetch_add(1, std::memory_order_relaxed);
  SortedList list;
  list.FillFromSorted(entries, key_space);
  return list;
}

void SortedList::AssignUnsorted(std::span<const ListEntry> entries,
                                ListKey key_space) {
  std::vector<ListEntry>& scratch = SortScratch();
  scratch.assign(entries.begin(), entries.end());
  FillFromSorted(scratch, key_space);
}

std::uint64_t SortedList::FromUnsortedCalls() {
  return g_from_unsorted_calls.load(std::memory_order_relaxed);
}

}  // namespace greca
