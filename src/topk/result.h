// Common result type for the group top-k algorithms.
#ifndef GRECA_TOPK_RESULT_H_
#define GRECA_TOPK_RESULT_H_

#include <vector>

#include "topk/access_counter.h"
#include "topk/sorted_list.h"

namespace greca {

struct TopKResult {
  /// The top-k itemset, sorted by descending (lower-bound) score. For exact
  /// algorithms the scores are exact; for GRECA they are the lower bounds at
  /// termination (the itemset is guaranteed correct, the internal order may
  /// be partial — paper §3.1).
  std::vector<ListEntry> items;

  AccessCounter accesses;

  /// Exhaustive-scan cost (Σ list sizes) normalizing the %SA metric.
  std::size_t total_entries = 0;

  /// Round-robin rounds performed (0 for naive).
  std::size_t rounds = 0;

  /// True when the algorithm stopped before exhausting its inputs.
  bool early_terminated = false;

  /// The paper's metric: 100 · SA / total_entries.
  double SequentialAccessPercent() const {
    if (total_entries == 0) return 0.0;
    return 100.0 * static_cast<double>(accesses.sequential) /
           static_cast<double>(total_entries);
  }

  /// Save-up = 100 − %SA (the paper reports "saveups of 75% or beyond").
  double SaveupPercent() const { return 100.0 - SequentialAccessPercent(); }
};

}  // namespace greca

#endif  // GRECA_TOPK_RESULT_H_
