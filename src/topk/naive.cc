#include "topk/naive.h"

#include <algorithm>
#include <span>
#include <vector>

namespace greca {

TopKResult NaiveTopK(const GroupProblem& problem, std::size_t k) {
  TopKResult result;
  result.total_entries = problem.TotalEntries();

  // The naive algorithm scans every live entry of every list end to end.
  const auto scan = [&result](const ListView& list) {
    std::size_t cursor = 0;
    while (list.SkipToLive(cursor)) {
      list.ReadSequential(cursor, result.accesses);
    }
  };
  const std::size_t g = problem.group_size();
  for (const ListView& list : problem.preference_lists()) scan(list);
  scan(problem.static_affinity());
  for (const ListView& list : problem.period_affinity()) scan(list);
  for (const ListView& list : problem.agreement_lists()) scan(list);

  // Score every candidate item exactly. The pair affinities are problem
  // constants, so expand them into a dense weight matrix once and score each
  // candidate with the branchless mat-vec (bit-identical to the packed form).
  const std::vector<double> pair_aff = problem.ExactPairAffinities();
  std::vector<double> pair_weights(g * g);
  problem.ExpandPairWeights(pair_aff, pair_weights);
  const std::span<const ListView> preference_lists =
      problem.preference_lists();
  const std::span<const ListView> agreement_lists = problem.agreement_lists();
  const bool uses_agreements = problem.uses_agreement_lists();
  std::vector<double> apref(g);
  std::vector<double> prefs(g);
  std::vector<double> agreements(agreement_lists.size());
  std::vector<ListEntry> scored;
  scored.reserve(problem.num_candidates());
  for (ListKey key = 0; key < problem.num_items(); ++key) {
    if (!problem.IsCandidate(key)) continue;
    for (std::size_t u = 0; u < g; ++u) {
      apref[u] = preference_lists[u].ScoreOfKey(key);
    }
    problem.MemberPreferencesDense(apref, pair_weights, prefs);
    double score;
    if (uses_agreements) {
      for (std::size_t q = 0; q < agreements.size(); ++q) {
        agreements[q] = agreement_lists[q].ScoreOfKey(key);
      }
      score = ConsensusScoreWithAgreements(problem.consensus(), prefs,
                                           agreements,
                                           problem.consensus_weights());
    } else {
      score = ConsensusScore(problem.consensus(), prefs,
                             problem.consensus_weights());
    }
    scored.push_back({key, score});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ListEntry& a, const ListEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  result.items = std::move(scored);
  result.early_terminated = false;
  return result;
}

}  // namespace greca
