// The group top-k scoring problem instance shared by every algorithm
// (Naive, TA, GRECA).
//
// A problem bundles, for one ad-hoc group G and one evaluation period p:
//  * one absolute-preference list PL_u per member (scores in [0, 1]),
//  * one static affinity list over G's pairs (group-normalized, [0, 1]),
//  * one periodic affinity list per period p' ≼ p (normalized, [0, 1]),
//  * the temporal affinity combiner (discrete/continuous/ablations), and
//  * the consensus function F.
//
// The affinity-aware member preference (paper §2.2) is
//   pref(u,i,G,p) = (apref(u,i) + rpref(u,i,G,p)) / 2,
//   rpref(u,i,G,p) = Σ_{u'≠u} aff(u,u',p)·apref(u',i) / (|G|−1),
// the /2 and /(|G|−1) normalizations keep pref in [0, 1] (the paper computes
// un-normalized sums in its walk-through "by ignoring normalization", §3.2,
// but normalizes in the deployed system, §4.1.2).
#ifndef GRECA_TOPK_PROBLEM_H_
#define GRECA_TOPK_PROBLEM_H_

#include <span>
#include <vector>

#include "affinity/temporal_model.h"
#include "consensus/consensus.h"
#include "topk/interval.h"
#include "topk/sorted_list.h"

namespace greca {

class GroupProblem {
 public:
  /// `preference_lists` has one list per member keyed by candidate item
  /// (key space [0, num_items)); `static_affinity` and each `period_affinity`
  /// list are keyed by local pair index (see LocalPairIndex). The number of
  /// period lists must equal combiner.num_periods().
  ///
  /// `agreement_lists` carry the agreement components consumed by the
  /// pairwise-disagreement consensus (Lemma 1's "pair-wise disagreement
  /// lists"): item-keyed lists whose mean equals 1 − dis(G, i). Two layouts
  /// are supported — one list per pair (ag_q(i) = 1 − |Δapref|, local pair
  /// order) or a single pre-aggregated group list (mean over pairs); both
  /// encode the same score and the aggregated form yields tighter bounds.
  /// Must be non-empty exactly when consensus.disagreement == kPairwise and
  /// the group has >= 2 members.
  GroupProblem(std::size_t num_items,
               std::vector<SortedList> preference_lists,
               SortedList static_affinity,
               std::vector<SortedList> period_affinity,
               AffinityCombiner combiner, ConsensusSpec consensus,
               std::vector<SortedList> agreement_lists = {});

  std::size_t group_size() const { return preference_lists_.size(); }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_pairs() const { return NumUserPairs(group_size()); }
  std::size_t num_periods() const { return period_affinity_.size(); }

  const std::vector<SortedList>& preference_lists() const {
    return preference_lists_;
  }
  const SortedList& static_affinity() const { return static_affinity_; }
  const std::vector<SortedList>& period_affinity() const {
    return period_affinity_;
  }
  const std::vector<SortedList>& agreement_lists() const {
    return agreement_lists_;
  }
  bool uses_agreement_lists() const { return !agreement_lists_.empty(); }
  const AffinityCombiner& combiner() const { return combiner_; }
  const ConsensusSpec& consensus() const { return consensus_; }

  /// Total entries across all input lists — the exhaustive-scan cost that
  /// normalizes the %SA metric.
  std::size_t TotalEntries() const;

  /// Exact temporal affinity of local pair `q` (uncounted accesses).
  double ExactPairAffinity(std::size_t q) const;

  /// All pair affinities, local pair order.
  std::vector<double> ExactPairAffinities() const;

  /// Member preferences pref(u, i) from exact components.
  /// `apref[u]` is member u's absolute preference for the item; `pair_aff[q]`
  /// the temporal affinity of local pair q. `out` must have group_size()
  /// entries.
  void MemberPreferences(std::span<const double> apref,
                         std::span<const double> pair_aff,
                         std::span<double> out) const;

  /// Interval version used for GRECA's bounds.
  void MemberPreferenceIntervals(std::span<const Interval> apref,
                                 std::span<const Interval> pair_aff,
                                 std::span<Interval> out) const;

  /// Exact consensus score of candidate item `key` (uncounted accesses).
  double ExactScore(ListKey key) const;

  /// Local pair index of members (a, b), a < b.
  std::size_t PairIndex(std::size_t a, std::size_t b) const;

 private:
  std::size_t num_items_;
  std::vector<SortedList> preference_lists_;
  SortedList static_affinity_;
  std::vector<SortedList> period_affinity_;
  AffinityCombiner combiner_;
  ConsensusSpec consensus_;
  std::vector<SortedList> agreement_lists_;  // empty unless kPairwise
};

/// Builds the per-pair agreement lists from the members' preference lists:
/// for pair (a, b), entry score = 1 − |apref_a(i) − apref_b(i)|, all items.
std::vector<SortedList> BuildAgreementLists(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale);

/// Builds the single aggregated group-agreement list: entry score =
/// mean over pairs of (1 − |Δapref|) = 1 − dis(G, i).
SortedList BuildGroupAgreementList(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale);

}  // namespace greca

#endif  // GRECA_TOPK_PROBLEM_H_
