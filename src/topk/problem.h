// The group top-k scoring problem instance shared by every algorithm
// (Naive, TA, GRECA).
//
// A problem bundles, for one ad-hoc group G and one evaluation period p:
//  * one absolute-preference list PL_u per member (scores in [0, 1]),
//  * one static affinity list over G's pairs (group-normalized, [0, 1]),
//  * one periodic affinity list per period p' ≼ p (normalized, [0, 1]),
//  * the temporal affinity combiner (discrete/continuous/ablations), and
//  * the consensus function F.
//
// The affinity-aware member preference (paper §2.2) is
//   pref(u,i,G,p) = (apref(u,i) + rpref(u,i,G,p)) / 2,
//   rpref(u,i,G,p) = Σ_{u'≠u} aff(u,u',p)·apref(u',i) / (|G|−1),
// the /2 and /(|G|−1) normalizations keep pref in [0, 1] (the paper computes
// un-normalized sums in its walk-through "by ignoring normalization", §3.2,
// but normalizes in the deployed system, §4.1.2).
//
// Storage model: algorithms consume every list through non-owning ListViews.
// Two assembly paths feed them:
//  * the owning path (tests/benches): vectors of SortedLists are moved into
//    the problem and adapted to views — the original seed composition style;
//  * the zero-copy path (GroupRecommender::BuildProblem): preference views
//    slice the shared PreferenceIndex directly and the small per-query
//    affinity/agreement lists live in a reusable ProblemArena, so steady-state
//    assembly performs no allocation and no preference-list sort.
#ifndef GRECA_TOPK_PROBLEM_H_
#define GRECA_TOPK_PROBLEM_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "affinity/temporal_model.h"
#include "consensus/consensus.h"
#include "topk/interval.h"
#include "topk/list_view.h"
#include "topk/sorted_list.h"

namespace greca {

// Owner layers referenced (by pointer only) from the assembly descriptors
// below; topk never reads through them.
class PreferenceIndex;
class RatingsOverlay;

/// Where one group member's serving rows live — the unit of the sharded
/// scatter/gather assembly (core/problem_assembly.h): the preference index
/// holding the member's sorted row (`row` is the row id WITHIN that index —
/// a shard-local id on the sharded path) and the ratings overlay holding the
/// member's rated items (`ratings_user` is the id within that overlay). On
/// the single-index path every member shares one index/overlay and both ids
/// equal the member's user id.
struct MemberSlice {
  const PreferenceIndex* index = nullptr;
  UserId row = 0;
  const RatingsOverlay* ratings = nullptr;
  UserId ratings_user = 0;
  /// Raw (un-normalized) consensus weight of this member, stamped by the
  /// facade's scatter step (StampMemberWeights) when the query asks for
  /// influence weighting; 1.0 — uniform — otherwise. Assembly normalizes the
  /// group's raw weights to sum 1 before any solver sees them.
  double weight = 1.0;
};

/// Reusable backing store for one in-flight query's problem: the group's
/// tombstone bitmap, the assembled preference views, and the materialized
/// affinity/agreement lists. One arena per worker amortizes every per-query
/// buffer across a batch; an arena must back at most one live GroupProblem
/// at a time (rebuilding it invalidates the previous problem's views).
struct ProblemArena {
  /// 1 bit per candidate-pool key; set = excluded (group-rated) item.
  std::vector<std::uint64_t> tombstones;
  /// Keep-alive for a CACHED tombstone bitmap the preference views alias
  /// instead of `tombstones` (api/snapshot.h's TombstoneCache; type-erased
  /// so topk stays independent of the api layer). Null when the bitmap was
  /// built into `tombstones`.
  std::shared_ptr<const void> tombstone_pin;
  std::vector<ListView> preference_views;
  SortedList static_list;
  /// Periodic lists themselves live in the snapshot-scoped (group, period)
  /// cache; the arena holds the per-query views plus one shared_ptr pin per
  /// list, so a problem survives the bounded cache evicting its lists.
  std::vector<ListView> period_views;
  std::vector<std::shared_ptr<const SortedList>> period_pins;
  SortedList agreement_list;
  std::vector<ListView> agreement_views;
  /// Unsorted-entry scratch shared by the list materializers.
  std::vector<ListEntry> entry_scratch;
  /// Per-member slice descriptors (scatter/gather assembly scratch).
  std::vector<MemberSlice> member_slices;
  /// Normalized consensus weights (member sums to 1; pair = normalized
  /// products, LocalPairIndex order). Empty on uniform-weight queries — the
  /// problem then carries empty spans and every scorer takes the historical
  /// bit-identical path.
  std::vector<double> member_weights;
  std::vector<double> pair_weights;
};

class GroupProblem {
 public:
  /// Owning path. `preference_lists` has one list per member keyed by
  /// candidate item (key space [0, num_items)); `static_affinity` and each
  /// `period_affinity` list are keyed by local pair index (see
  /// LocalPairIndex). The number of period lists must equal
  /// combiner.num_periods().
  ///
  /// `agreement_lists` carry the agreement components consumed by the
  /// pairwise-disagreement consensus (Lemma 1's "pair-wise disagreement
  /// lists"): item-keyed lists whose mean equals 1 − dis(G, i). Two layouts
  /// are supported — one list per pair (ag_q(i) = 1 − |Δapref|, local pair
  /// order) or a single pre-aggregated group list (mean over pairs); both
  /// encode the same score and the aggregated form yields tighter bounds.
  /// Must be non-empty exactly when consensus.disagreement == kPairwise and
  /// the group has >= 2 members.
  GroupProblem(std::size_t num_items,
               std::vector<SortedList> preference_lists,
               SortedList static_affinity,
               std::vector<SortedList> period_affinity,
               AffinityCombiner combiner, ConsensusSpec consensus,
               std::vector<SortedList> agreement_lists = {});

  /// Zero-copy path. All views (and the spans' backing vectors) point into
  /// external storage — the shared PreferenceIndex plus a ProblemArena. When
  /// `backing` is non-null the problem owns that arena (the facade's
  /// workspace-less path); otherwise the arena must outlive the problem.
  /// `num_candidates` is the number of live (non-tombstoned) keys.
  GroupProblem(std::size_t num_items, std::size_t num_candidates,
               std::span<const ListView> preference_views,
               ListView static_view, std::span<const ListView> period_views,
               AffinityCombiner combiner, ConsensusSpec consensus,
               std::span<const ListView> agreement_views = {},
               std::unique_ptr<ProblemArena> backing = nullptr);

  // Views alias internal storage: movable, not copyable.
  GroupProblem(GroupProblem&&) = default;
  GroupProblem& operator=(GroupProblem&&) = default;
  GroupProblem(const GroupProblem&) = delete;
  GroupProblem& operator=(const GroupProblem&) = delete;

  /// Shares ownership of external storage the views alias — on the
  /// snapshot-serving path BuildProblem pins the query's Snapshot here, so
  /// the problem's index rows and cached period lists stay valid even after
  /// the engine publishes a newer generation (type-erased: topk stays
  /// independent of the api layer).
  void PinLifetime(std::shared_ptr<const void> keep_alive) {
    pinned_ = std::move(keep_alive);
  }

  std::size_t group_size() const { return preference_views_.size(); }
  /// Key-space bound: candidate keys run in [0, num_items()). On the
  /// zero-copy path this is the candidate-pool prefix size and some keys may
  /// be tombstoned; see num_candidates().
  std::size_t num_items() const { return num_items_; }
  /// Number of live candidate keys (== num_items() on the owning path).
  std::size_t num_candidates() const { return num_candidates_; }
  std::size_t num_pairs() const { return NumUserPairs(group_size()); }
  std::size_t num_periods() const { return period_views_.size(); }

  /// True when `key` is a live candidate (not tombstoned by the group).
  bool IsCandidate(ListKey key) const {
    return !preference_views_[0].IsTombstoned(key);
  }

  std::span<const ListView> preference_lists() const {
    return preference_views_;
  }
  const ListView& static_affinity() const { return static_view_; }
  std::span<const ListView> period_affinity() const { return period_views_; }
  /// The agreement views the pairwise-disagreement consensus walks. On the
  /// deferred path (DeferAgreementLists) the FIRST call pays the O(C log C)
  /// aggregated-list build; algorithms that never walk the lists (threshold
  /// math sizes its buffers via num_agreement_lists()) never pay it.
  /// Materialization mutates cached state, so it follows the problem's
  /// existing single-consumer contract (one algorithm at a time).
  std::span<const ListView> agreement_lists() const {
    if (agreement_builder_) {
      agreement_views_ = agreement_builder_();
      agreement_builder_ = nullptr;
    }
    return agreement_views_;
  }
  /// How many agreement lists agreement_lists() would yield — WITHOUT
  /// forcing a deferred materialization (the deferred path always builds
  /// the single aggregated group list).
  std::size_t num_agreement_lists() const {
    return agreement_builder_ ? 1 : agreement_views_.size();
  }
  bool uses_agreement_lists() const {
    return agreement_builder_ != nullptr || !agreement_views_.empty();
  }

  /// Installs a lazy agreement-list builder instead of eagerly built views:
  /// `build` materializes the single aggregated group-agreement list (into
  /// storage that outlives this problem) on the first agreement_lists()
  /// call. `live_entries` must equal the built list's live size (the
  /// problem's candidate count) so TotalEntries() stays exact without
  /// materializing. Only valid on pairwise-consensus problems constructed
  /// with no agreement views.
  void DeferAgreementLists(std::function<std::span<const ListView>()> build,
                           std::size_t live_entries) {
    assert(consensus_.disagreement == DisagreementKind::kPairwise &&
           group_size() >= 2);
    assert(agreement_views_.empty());
    agreement_builder_ = std::move(build);
    deferred_agreement_entries_ = live_entries;
    agreement_deferred_ = true;
  }
  /// True when this problem was assembled with a deferred agreement list.
  bool agreement_deferred() const { return agreement_deferred_; }
  /// True once agreement views exist (eagerly built, or deferred-and-walked).
  bool agreement_materialized() const { return !agreement_views_.empty(); }

  const AffinityCombiner& combiner() const { return combiner_; }
  const ConsensusSpec& consensus() const { return consensus_; }

  /// Per-member consensus weights of this problem (empty spans = uniform —
  /// the default). Solvers pass this straight into the weighted consensus
  /// overloads, which delegate to the exact historical code when uniform, so
  /// weighting flows through every solver without per-solver code.
  const ConsensusWeights& consensus_weights() const { return weights_; }
  bool weighted() const { return !weights_.uniform(); }

  /// Installs normalized consensus weights: `member` one weight per member
  /// summing to 1, `pair` one weight per local pair summing to 1 (empty only
  /// for singleton groups). Backing storage must outlive the problem (the
  /// assembly arena, or a caller-owned vector on the owning path). Must be
  /// set before any solver reads the problem and before a deferred
  /// agreement list materializes.
  void SetConsensusWeights(std::span<const double> member,
                           std::span<const double> pair) {
    assert(member.size() == group_size());
    assert(pair.size() == num_pairs());
    weights_.member = member;
    weights_.pair = pair;
  }

  /// Total live entries across all input lists — the exhaustive-scan cost
  /// that normalizes the %SA metric.
  std::size_t TotalEntries() const;

  /// Exact temporal affinity of local pair `q` (uncounted accesses).
  double ExactPairAffinity(std::size_t q) const;

  /// All pair affinities, local pair order.
  std::vector<double> ExactPairAffinities() const;

  /// Member preferences pref(u, i) from exact components.
  /// `apref[u]` is member u's absolute preference for the item; `pair_aff[q]`
  /// the temporal affinity of local pair q. `out` must have group_size()
  /// entries.
  void MemberPreferences(std::span<const double> apref,
                         std::span<const double> pair_aff,
                         std::span<double> out) const;

  /// Expands `pair_aff` (local pair order) into a dense g×g zero-diagonal
  /// weight matrix for MemberPreferencesDense. `w` must have group_size()²
  /// entries. Exhaustive scorers expand once per problem and drop the
  /// per-candidate pair indexing from the scoring loop.
  void ExpandPairWeights(std::span<const double> pair_aff,
                         std::span<double> w) const;

  /// MemberPreferences against a pre-expanded weight matrix — bit-identical
  /// to the packed form (see preference_model.h).
  void MemberPreferencesDense(std::span<const double> apref,
                              std::span<const double> w,
                              std::span<double> out) const;

  /// Interval version used for GRECA's bounds.
  void MemberPreferenceIntervals(std::span<const Interval> apref,
                                 std::span<const Interval> pair_aff,
                                 std::span<Interval> out) const;

  /// Exact consensus score of candidate item `key` (uncounted accesses).
  double ExactScore(ListKey key) const;

  /// Local pair index of members (a, b), a < b.
  std::size_t PairIndex(std::size_t a, std::size_t b) const;

 private:
  std::size_t num_items_;
  std::size_t num_candidates_;
  AffinityCombiner combiner_;
  ConsensusSpec consensus_;
  ConsensusWeights weights_;  // empty spans = uniform

  // Owning backing for the adapter path (empty on the zero-copy path); views
  // point into these lists' heap buffers, which move with the problem.
  std::vector<SortedList> owned_preference_;
  SortedList owned_static_;
  std::vector<SortedList> owned_period_;
  std::vector<SortedList> owned_agreement_;
  std::vector<ListView> view_storage_;
  std::unique_ptr<ProblemArena> owned_arena_;
  std::shared_ptr<const void> pinned_;  // snapshot keep-alive (may be null)

  // What the algorithms consume. Spans point into view_storage_ or into the
  // (owned or external) arena.
  std::span<const ListView> preference_views_;
  ListView static_view_;
  std::span<const ListView> period_views_;
  // mutable: the deferred agreement build is a cached const-path
  // materialization (single-consumer contract, see agreement_lists()).
  mutable std::span<const ListView> agreement_views_;
  mutable std::function<std::span<const ListView>()> agreement_builder_;
  std::size_t deferred_agreement_entries_ = 0;
  bool agreement_deferred_ = false;
};

/// Builds the per-pair agreement lists from the members' preference lists:
/// for pair (a, b), entry score = 1 − |apref_a(i) − apref_b(i)|, over every
/// non-tombstoned item key.
std::vector<SortedList> BuildAgreementLists(
    std::span<const ListView> preference_lists, std::size_t num_items,
    double disagreement_scale);

/// Builds the single aggregated group-agreement list: entry score =
/// mean over pairs of (1 − |Δapref|) = 1 − dis(G, i).
SortedList BuildGroupAgreementList(std::span<const ListView> preference_lists,
                                   std::size_t num_items,
                                   double disagreement_scale);

/// Hot-path variant: rebuilds `out` in place (capacities reused) using
/// `scratch` for the unsorted entries. `pair_weights`, when non-empty, holds
/// one normalized weight per local pair and the aggregated entry becomes the
/// WEIGHTED mean Σ pw_q·ag_q(i); empty = uniform mean (the historical
/// bit-identical path).
void BuildGroupAgreementListInto(std::span<const ListView> preference_lists,
                                 std::size_t num_items,
                                 double disagreement_scale,
                                 std::vector<ListEntry>& scratch,
                                 SortedList& out,
                                 std::span<const double> pair_weights = {});

/// Owning-list conveniences for tests/benches that hold SortedLists.
std::vector<SortedList> BuildAgreementLists(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale);
SortedList BuildGroupAgreementList(
    const std::vector<SortedList>& preference_lists, std::size_t num_items,
    double disagreement_scale);

}  // namespace greca

#endif  // GRECA_TOPK_PROBLEM_H_
