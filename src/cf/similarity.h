// Rating-vector similarity measures (paper §4: cosine over the ratings of a
// user for each movie).
#ifndef GRECA_CF_SIMILARITY_H_
#define GRECA_CF_SIMILARITY_H_

#include <span>

#include "dataset/ratings.h"

namespace greca {

/// Cosine similarity of two sparse rating vectors sorted ascending by item:
/// cos(u, u') = Σ r_u(i)·r_u'(i) / (‖u‖·‖u'‖), norms over each user's full
/// vector. Returns 0 when either vector is empty.
double CosineSimilarity(std::span<const UserRatingEntry> a,
                        std::span<const UserRatingEntry> b);

/// Cosine restricted to co-rated items only (both norms computed over the
/// overlap). Returns 0 when there is no overlap. Used for group cohesiveness
/// (rating similarity between members, §4.1.3).
double OverlapCosineSimilarity(std::span<const UserRatingEntry> a,
                               std::span<const UserRatingEntry> b);

/// Pearson correlation over co-rated items; 0 when overlap < 2 or degenerate.
double PearsonSimilarity(std::span<const UserRatingEntry> a,
                         std::span<const UserRatingEntry> b);

}  // namespace greca

#endif  // GRECA_CF_SIMILARITY_H_
