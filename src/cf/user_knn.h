// User-based k-nearest-neighbor collaborative filtering.
//
// The paper computes absolute preferences apref(u, i) with collaborative
// filtering over MovieLens using cosine similarity (§4). This engine scores a
// query profile (any sparse rating vector — a dataset user or an external
// study participant) against the whole dataset, picks the top-K most similar
// users, and predicts each item's rating as the similarity-weighted mean of
// neighbor ratings with a Bayesian fallback to the item mean.
#ifndef GRECA_CF_USER_KNN_H_
#define GRECA_CF_USER_KNN_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "dataset/ratings.h"

namespace greca {

struct UserKnnConfig {
  /// Neighborhood size (top similar users kept per query).
  std::size_t num_neighbors = 40;
  /// Neighbors below this cosine are dropped.
  double min_similarity = 0.01;
  /// Shrinkage toward the item mean when few neighbors rated an item:
  /// pred = (Σ sim·r + shrinkage·item_mean) / (Σ sim + shrinkage).
  double shrinkage = 0.25;
};

class UserKnn {
 public:
  /// Keeps a reference to `dataset`; it must outlive this object.
  UserKnn(const RatingsDataset& dataset, UserKnnConfig config);

  /// Top-K most similar dataset users to the profile, descending similarity.
  /// The profile must be sorted ascending by item (RatingsOfUser format).
  std::vector<ScoredUser> Neighbors(
      std::span<const UserRatingEntry> profile) const;

  /// Predicted rating of every item, on the dataset's rating scale.
  /// Items rated by no neighbor fall back to their (shrunk) item mean.
  std::vector<Score> PredictAll(
      std::span<const UserRatingEntry> profile) const;

  /// Predicted rating of a single item given a precomputed neighborhood.
  Score PredictWithNeighbors(std::span<const ScoredUser> neighbors,
                             ItemId item) const;

  const RatingsDataset& dataset() const { return *dataset_; }

 private:
  const RatingsDataset* dataset_;
  UserKnnConfig config_;
  std::vector<double> user_norms_;   // ‖ratings(u)‖ for all dataset users
  std::vector<double> item_means_;   // global-mean-shrunk item means
  double global_mean_ = 0.0;
};

}  // namespace greca

#endif  // GRECA_CF_USER_KNN_H_
