#include "cf/item_knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace greca {

ItemKnn::ItemKnn(const RatingsDataset& dataset, ItemKnnConfig config)
    : dataset_(&dataset), config_(config) {
  const std::size_t m = dataset.num_items();
  const double global_mean = dataset.Stats().mean_rating;
  item_means_.resize(m);
  for (ItemId i = 0; i < m; ++i) {
    item_means_[i] = dataset.ItemMeanRating(i, global_mean);
  }

  // Adjusted cosine: center each rating by its user's mean, accumulate
  // pairwise dot products / norms via each user's co-rated item pairs.
  std::vector<double> user_means(dataset.num_users());
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    user_means[u] = dataset.UserMeanRating(u, global_mean);
  }
  std::vector<double> norms(m, 0.0);
  // Sparse accumulators keyed by (lo_item, hi_item).
  struct PairAcc {
    double dot = 0.0;
    std::uint32_t overlap = 0;
  };
  std::unordered_map<std::uint64_t, PairAcc> acc;
  acc.reserve(1 << 20);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const auto ratings = dataset.RatingsOfUser(u);
    for (std::size_t a = 0; a < ratings.size(); ++a) {
      const double ca = ratings[a].rating - user_means[u];
      norms[ratings[a].item] += ca * ca;
      for (std::size_t b = a + 1; b < ratings.size(); ++b) {
        const double cb = ratings[b].rating - user_means[u];
        const std::uint64_t key =
            (static_cast<std::uint64_t>(ratings[a].item) << 32) |
            ratings[b].item;
        PairAcc& pa = acc[key];
        pa.dot += ca * cb;
        ++pa.overlap;
      }
    }
  }

  // Rank neighbors per item.
  std::vector<std::vector<ScoredItem>> per_item(m);
  for (const auto& [key, pa] : acc) {
    if (pa.overlap < config_.min_overlap) continue;
    const auto i = static_cast<ItemId>(key >> 32);
    const auto j = static_cast<ItemId>(key & 0xFFFFFFFFu);
    const double denom = std::sqrt(norms[i] * norms[j]);
    if (denom <= 0.0) continue;
    const double sim = pa.dot / denom;
    if (sim < config_.min_similarity) continue;
    per_item[i].push_back({j, sim});
    per_item[j].push_back({i, sim});
  }
  offsets_.assign(m + 1, 0);
  for (ItemId i = 0; i < m; ++i) {
    auto& list = per_item[i];
    const std::size_t keep = std::min(config_.num_neighbors, list.size());
    std::partial_sort(list.begin(),
                      list.begin() + static_cast<std::ptrdiff_t>(keep),
                      list.end(), [](const ScoredItem& a, const ScoredItem& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
    list.resize(keep);
    offsets_[i + 1] = offsets_[i] + keep;
  }
  neighbors_.reserve(offsets_[m]);
  for (const auto& list : per_item) {
    neighbors_.insert(neighbors_.end(), list.begin(), list.end());
  }
}

std::span<const ScoredItem> ItemKnn::Neighbors(ItemId item) const {
  assert(item < num_items());
  return {neighbors_.data() + offsets_[item],
          offsets_[item + 1] - offsets_[item]};
}

Score ItemKnn::Predict(std::span<const UserRatingEntry> profile,
                       ItemId item) const {
  double weighted = config_.shrinkage * item_means_[item];
  double weights = config_.shrinkage;
  for (const ScoredItem& nb : Neighbors(item)) {
    // Binary search the profile for the neighbor item.
    const auto it = std::lower_bound(
        profile.begin(), profile.end(), nb.id,
        [](const UserRatingEntry& e, ItemId id) { return e.item < id; });
    if (it == profile.end() || it->item != nb.id) continue;
    // Deviation transfer: the profile's deviation on the neighbor item is
    // assumed to carry over, weighted by similarity.
    weighted += nb.score * (item_means_[item] + it->rating -
                            item_means_[nb.id]);
    weights += nb.score;
  }
  return weighted / weights;
}

std::vector<Score> ItemKnn::PredictAll(
    std::span<const UserRatingEntry> profile) const {
  std::vector<Score> out(num_items());
  for (ItemId i = 0; i < num_items(); ++i) {
    out[i] = Predict(profile, i);
  }
  return out;
}

}  // namespace greca
