// Item-based k-nearest-neighbor collaborative filtering.
//
// An alternative absolute-preference predictor to UserKnn (the paper's CF
// choice is user-based cosine, §4, but any single-user recommender can feed
// apref — §2.2). Item-item similarities are precomputed once over the
// dataset (adjusted cosine on mean-centered ratings), so per-query
// prediction only touches the query profile — better suited to deployments
// with many ad-hoc users and a stable catalog.
#ifndef GRECA_CF_ITEM_KNN_H_
#define GRECA_CF_ITEM_KNN_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "dataset/ratings.h"

namespace greca {

struct ItemKnnConfig {
  /// Neighbors retained per item (the model's memory/accuracy dial).
  std::size_t num_neighbors = 30;
  /// Similarities below this are dropped.
  double min_similarity = 0.05;
  /// Items must share at least this many raters to be compared.
  std::size_t min_overlap = 3;
  /// Shrinkage toward the item mean when few profile items are neighbors.
  double shrinkage = 0.5;
};

class ItemKnn {
 public:
  /// Precomputes the truncated item-item similarity model. O(Σ_u deg(u)²)
  /// via user-wise co-rating accumulation; keeps a reference to `dataset`.
  ItemKnn(const RatingsDataset& dataset, ItemKnnConfig config);

  /// Stored neighbors of an item, descending similarity.
  std::span<const ScoredItem> Neighbors(ItemId item) const;

  /// Predicted rating of `item` for a sparse profile (sorted by item id):
  /// mean-centered weighted sum over the profile entries that are stored
  /// neighbors of `item`, shrunk toward the item mean.
  Score Predict(std::span<const UserRatingEntry> profile, ItemId item) const;

  /// Predicted rating of every item for the profile.
  std::vector<Score> PredictAll(
      std::span<const UserRatingEntry> profile) const;

  std::size_t num_items() const { return item_means_.size(); }

 private:
  const RatingsDataset* dataset_;
  ItemKnnConfig config_;
  std::vector<double> item_means_;
  std::vector<std::size_t> offsets_;    // CSR over items
  std::vector<ScoredItem> neighbors_;   // flattened neighbor lists
};

}  // namespace greca

#endif  // GRECA_CF_ITEM_KNN_H_
