#include "cf/similarity.h"

#include <cmath>

namespace greca {

namespace {

/// Applies `fn(rating_a, rating_b)` to every co-rated item (sorted merge).
template <typename Fn>
void ForEachOverlap(std::span<const UserRatingEntry> a,
                    std::span<const UserRatingEntry> b, Fn&& fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].item == b[j].item) {
      fn(a[i].rating, b[j].rating);
      ++i;
      ++j;
    } else if (a[i].item < b[j].item) {
      ++i;
    } else {
      ++j;
    }
  }
}

double Norm(std::span<const UserRatingEntry> v) {
  double sum = 0.0;
  for (const auto& e : v) sum += e.rating * e.rating;
  return std::sqrt(sum);
}

}  // namespace

double CosineSimilarity(std::span<const UserRatingEntry> a,
                        std::span<const UserRatingEntry> b) {
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0;
  ForEachOverlap(a, b, [&](Score ra, Score rb) { dot += ra * rb; });
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (na * nb);
}

double OverlapCosineSimilarity(std::span<const UserRatingEntry> a,
                               std::span<const UserRatingEntry> b) {
  double dot = 0.0, naa = 0.0, nbb = 0.0;
  ForEachOverlap(a, b, [&](Score ra, Score rb) {
    dot += ra * rb;
    naa += ra * ra;
    nbb += rb * rb;
  });
  if (naa == 0.0 || nbb == 0.0) return 0.0;
  return dot / std::sqrt(naa * nbb);
}

double PearsonSimilarity(std::span<const UserRatingEntry> a,
                         std::span<const UserRatingEntry> b) {
  double sa = 0.0, sb = 0.0;
  std::size_t n = 0;
  ForEachOverlap(a, b, [&](Score ra, Score rb) {
    sa += ra;
    sb += rb;
    ++n;
  });
  if (n < 2) return 0.0;
  const double ma = sa / static_cast<double>(n);
  const double mb = sb / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  ForEachOverlap(a, b, [&](Score ra, Score rb) {
    sxy += (ra - ma) * (rb - mb);
    sxx += (ra - ma) * (ra - ma);
    syy += (rb - mb) * (rb - mb);
  });
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace greca
