#include "cf/user_knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greca {

UserKnn::UserKnn(const RatingsDataset& dataset, UserKnnConfig config)
    : dataset_(&dataset), config_(config) {
  const std::size_t n = dataset.num_users();
  user_norms_.resize(n);
  for (UserId u = 0; u < n; ++u) {
    double sum = 0.0;
    for (const auto& e : dataset.RatingsOfUser(u)) sum += e.rating * e.rating;
    user_norms_[u] = std::sqrt(sum);
  }
  global_mean_ = dataset.Stats().mean_rating;
  item_means_.resize(dataset.num_items());
  // Shrink sparse item means toward the global mean (10 pseudo-ratings).
  constexpr double kItemMeanPrior = 10.0;
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    const auto ratings = dataset.RatingsOfItem(i);
    double sum = 0.0;
    for (const auto& e : ratings) sum += e.rating;
    item_means_[i] =
        (sum + kItemMeanPrior * global_mean_) /
        (static_cast<double>(ratings.size()) + kItemMeanPrior);
  }
}

std::vector<ScoredUser> UserKnn::Neighbors(
    std::span<const UserRatingEntry> profile) const {
  // Sparse dot products with every dataset user via the item index:
  // for each profile item, walk that item's rater list.
  std::vector<double> dots(dataset_->num_users(), 0.0);
  double profile_norm_sq = 0.0;
  for (const auto& pe : profile) {
    profile_norm_sq += pe.rating * pe.rating;
    for (const auto& ie : dataset_->RatingsOfItem(pe.item)) {
      dots[ie.user] += pe.rating * ie.rating;
    }
  }
  const double profile_norm = std::sqrt(profile_norm_sq);
  if (profile_norm == 0.0) return {};

  std::vector<ScoredUser> scored;
  scored.reserve(256);
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    if (dots[u] <= 0.0 || user_norms_[u] == 0.0) continue;
    const double sim = dots[u] / (profile_norm * user_norms_[u]);
    if (sim >= config_.min_similarity) scored.push_back({u, sim});
  }
  const std::size_t keep = std::min(config_.num_neighbors, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), [](const ScoredUser& a, const ScoredUser& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

std::vector<Score> UserKnn::PredictAll(
    std::span<const UserRatingEntry> profile) const {
  const auto neighbors = Neighbors(profile);
  std::vector<double> weighted(dataset_->num_items(), 0.0);
  std::vector<double> weights(dataset_->num_items(), 0.0);
  for (const auto& nb : neighbors) {
    for (const auto& e : dataset_->RatingsOfUser(nb.id)) {
      weighted[e.item] += nb.score * e.rating;
      weights[e.item] += nb.score;
    }
  }
  std::vector<Score> predictions(dataset_->num_items());
  for (ItemId i = 0; i < dataset_->num_items(); ++i) {
    predictions[i] =
        (weighted[i] + config_.shrinkage * item_means_[i]) /
        (weights[i] + config_.shrinkage);
  }
  return predictions;
}

Score UserKnn::PredictWithNeighbors(std::span<const ScoredUser> neighbors,
                                    ItemId item) const {
  double weighted = config_.shrinkage * item_means_[item];
  double weights = config_.shrinkage;
  for (const auto& nb : neighbors) {
    if (const auto r = dataset_->GetRating(nb.id, item)) {
      weighted += nb.score * *r;
      weights += nb.score;
    }
  }
  return weighted / weights;
}

}  // namespace greca
