// Builds the per-user absolute-preference lists consumed by GRECA.
//
// A preference list PL_u holds candidate items sorted by decreasing predicted
// preference, with scores normalized to [0, 1] (predicted stars / max star).
// The paper precomputes one list per user from collaborative filtering (§3.1).
#ifndef GRECA_CF_PREFERENCE_LIST_H_
#define GRECA_CF_PREFERENCE_LIST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace greca {

/// Sorts `candidates` by descending predicted score. `predictions` is indexed
/// by raw ItemId; emitted scores are predictions[i] / scale_max clamped to
/// [0, 1]. Output ids are positions into `candidates` (the dense candidate
/// key space shared by all of a group's lists), not raw item ids.
std::vector<ScoredEntry<std::uint32_t>> BuildPreferenceEntries(
    std::span<const Score> predictions, double scale_max,
    std::span<const ItemId> candidates);

}  // namespace greca

#endif  // GRECA_CF_PREFERENCE_LIST_H_
