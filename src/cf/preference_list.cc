#include "cf/preference_list.h"

#include <algorithm>
#include <cassert>

namespace greca {

std::vector<ScoredEntry<std::uint32_t>> BuildPreferenceEntries(
    std::span<const Score> predictions, double scale_max,
    std::span<const ItemId> candidates) {
  assert(scale_max > 0.0);
  std::vector<ScoredEntry<std::uint32_t>> entries;
  entries.reserve(candidates.size());
  for (std::uint32_t key = 0; key < candidates.size(); ++key) {
    const ItemId item = candidates[key];
    assert(item < predictions.size());
    const double score =
        std::clamp(predictions[item] / scale_max, 0.0, 1.0);
    entries.push_back({key, score});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  return entries;
}

}  // namespace greca
