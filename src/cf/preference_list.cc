#include "cf/preference_list.h"

#include <algorithm>
#include <cassert>

#include "topk/sorted_list.h"

namespace greca {

std::vector<ScoredEntry<std::uint32_t>> BuildPreferenceEntries(
    std::span<const Score> predictions, double scale_max,
    std::span<const ItemId> candidates) {
  assert(scale_max > 0.0);
  std::vector<ScoredEntry<std::uint32_t>> entries;
  entries.reserve(candidates.size());
  for (std::uint32_t key = 0; key < candidates.size(); ++key) {
    const ItemId item = candidates[key];
    assert(item < predictions.size());
    const double score =
        std::clamp(predictions[item] / scale_max, 0.0, 1.0);
    entries.push_back({key, score});
  }
  // Shares THE list order (sorted_list.h) with the index's row sorts — any
  // divergence would break the view/owning and banded/flat equivalences.
  std::sort(entries.begin(), entries.end(), ListEntryOrder{});
  return entries;
}

}  // namespace greca
