// Samplers for the heavy-tailed distributions that shape realistic rating
// datasets: Zipf item popularity and log-normal user activity.
#ifndef GRECA_COMMON_DISTRIBUTIONS_H_
#define GRECA_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace greca {

/// Zipf-distributed sampler over ranks {0, ..., n-1}: P(rank r) ∝ 1/(r+1)^s.
/// Uses an inverted-CDF table (O(n) setup, O(log n) per sample), exact for the
/// table-backed range. MovieLens item popularity is approximately Zipfian.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `exponent` >= 0 (0 degenerates to uniform).
  ZipfSampler(std::size_t n, double exponent);

  /// Samples a rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of rank `r`.
  double Pmf(std::size_t r) const;

  std::size_t size() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  std::size_t n_;
  double exponent_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

/// Log-normal sampler clamped to [min_value, max_value]. Parameterized by the
/// mean/sigma of the underlying normal (natural-log scale).
class LogNormalSampler {
 public:
  LogNormalSampler(double log_mean, double log_sigma, double min_value,
                   double max_value)
      : log_mean_(log_mean),
        log_sigma_(log_sigma),
        min_value_(min_value),
        max_value_(max_value) {}

  double Sample(Rng& rng) const;

 private:
  double log_mean_;
  double log_sigma_;
  double min_value_;
  double max_value_;
};

/// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm,
/// O(k) expected). Requires k <= n. The result is sorted ascending.
std::vector<std::size_t> SampleDistinct(Rng& rng, std::size_t n, std::size_t k);

/// In-place Fisher-Yates shuffle using the project Rng.
template <typename T>
void Shuffle(Rng& rng, std::vector<T>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace greca

#endif  // GRECA_COMMON_DISTRIBUTIONS_H_
