// Small statistics helpers used by generators, consensus functions and the
// experiment harness (means, variance, standard error, correlations).
#ifndef GRECA_COMMON_STATS_H_
#define GRECA_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace greca {

/// Single-pass accumulator (Welford) for mean/variance/min/max.
class OnlineStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n). Zero for n < 2.
  double variance() const;
  /// Sample variance (divide by n-1). Zero for n < 2.
  double sample_variance() const;
  double stddev() const;
  /// Standard error of the mean: sample stddev / sqrt(n).
  double standard_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double Mean(std::span<const double> xs);
/// Population variance.
double Variance(std::span<const double> xs);
double StdDev(std::span<const double> xs);

/// Pearson correlation; returns 0 when either side has zero variance.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/// p-th percentile (0..100) by linear interpolation on a copy of the data.
/// Returns 0 for empty input.
double Percentile(std::span<const double> xs, double p);

}  // namespace greca

#endif  // GRECA_COMMON_STATS_H_
