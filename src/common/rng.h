// Deterministic pseudo-random number generation for reproducible experiments.
//
// All generators in this project are seeded explicitly; the same seed always
// yields the same datasets, groups and measurements on every platform
// (no std::random_device, no distribution objects with unspecified algorithms).
#ifndef GRECA_COMMON_RNG_H_
#define GRECA_COMMON_RNG_H_

#include <cstdint>

namespace greca {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via SplitMix64. Fast, high-quality, and fully deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator. Identical seeds reproduce identical streams.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's method
  /// (multiply-shift with rejection) to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Marsaglia polar method (deterministic given stream).
  double NextGaussian();

  /// Derives an independent child generator; children with distinct tags have
  /// decorrelated streams even for consecutive parent seeds.
  Rng Fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// SplitMix64 single step; used for seeding and hashing small integers.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace greca

#endif  // GRECA_COMMON_RNG_H_
