#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greca {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::standard_error() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(sample_variance() / static_cast<double>(count_));
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace greca
