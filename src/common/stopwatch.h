// Monotonic wall-clock timing for the experiment harness.
#ifndef GRECA_COMMON_STOPWATCH_H_
#define GRECA_COMMON_STOPWATCH_H_

#include <chrono>

namespace greca {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace greca

#endif  // GRECA_COMMON_STOPWATCH_H_
