#include "common/table_printer.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace greca {

void TablePrinter::SetColumns(std::vector<std::string> names) {
  assert(rows_.empty() && "set columns before adding rows");
  columns_ = std::move(names);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double value, int digits) {
  return FormatDouble(value, digits);
}

std::string TablePrinter::Cell(std::size_t value) {
  return std::to_string(value);
}

std::string TablePrinter::Cell(int value) { return std::to_string(value); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  emit_row(columns_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace greca
