// Lightweight error propagation without exceptions (per the project style
// guide). `Status` carries success/failure plus a message; `Result<T>` carries
// either a value or a failed Status.
#ifndef GRECA_COMMON_STATUS_H_
#define GRECA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace greca {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of T or a failed Status. Accessing value() on a failed
/// Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace greca

#endif  // GRECA_COMMON_STATUS_H_
