// Reusable group-commit queue for coalescing concurrent writers.
//
// Extracted from GroupRecommender::ApplyRatingUpdates so every publisher in
// the system — the single-index recommender and each Shard of the sharded
// engine — shares one battle-tested implementation of the leader/follower
// protocol:
//
//  * every caller enqueues its batch and the first caller to find no active
//    leader becomes one;
//  * the leader drains the queue in whole rounds, handing each round to the
//    caller-supplied publish function (one rebuild per round, however many
//    batches coalesced into it);
//  * followers block until their batch's round lands and then return its
//    per-batch status;
//  * when the publish function throws, the leader fails the in-flight round
//    AND every batch still queued (no leader remains to serve them), hands
//    leadership back, and lets the exception reach its own caller — the same
//    visibility a pre-group-commit writer had. Followers see a non-OK
//    status instead of the exception.
//
// The queue guards only its own bookkeeping; the publish function runs with
// no queue lock held, so readers of whatever state it publishes are never
// blocked by the protocol itself.
#ifndef GRECA_COMMON_GROUP_COMMIT_H_
#define GRECA_COMMON_GROUP_COMMIT_H_

#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"

namespace greca {

/// `Batch` is the caller's per-call record, owned on the caller's stack for
/// the duration of Commit. It must expose two members the protocol drives:
///   Status status;   // non-OK when the batch's round failed
///   bool done;       // flipped (under the queue lock) when the round lands
/// plus whatever payload the publish function reads. The publish function
/// receives one coalesced round (`std::span<Batch* const>`) and must fill
/// each batch's result fields before returning; it may throw, see above.
template <typename Batch>
class GroupCommitQueue {
 public:
  GroupCommitQueue() = default;
  GroupCommitQueue(const GroupCommitQueue&) = delete;
  GroupCommitQueue& operator=(const GroupCommitQueue&) = delete;

  /// Enqueues `batch` and blocks until its round has been published (by this
  /// caller as leader or by a concurrent one). Returns batch.status.
  template <typename PublishRound>
  Status Commit(Batch& batch, const PublishRound& publish_round) {
    {
      std::unique_lock<std::mutex> qlock(mu_);
      queue_.push_back(&batch);
      if (leader_active_) {
        cv_.wait(qlock, [&] { return batch.done; });
        return batch.status;
      }
      leader_active_ = true;
    }
    for (;;) {
      std::vector<Batch*> round;
      {
        std::lock_guard<std::mutex> qlock(mu_);
        round.swap(queue_);
        if (round.empty()) {
          leader_active_ = false;
          break;
        }
      }
      try {
        publish_round(std::span<Batch* const>(round));
      } catch (...) {
        // The leader must never wedge the queue: fail this round AND every
        // batch still queued, hand leadership back, then rethrow to our own
        // caller.
        {
          std::lock_guard<std::mutex> qlock(mu_);
          round.insert(round.end(), queue_.begin(), queue_.end());
          queue_.clear();
          for (Batch* failed : round) {
            failed->status = Status::FailedPrecondition(
                "group-commit publish failed mid-round; retry the batch");
            failed->done = true;
          }
          leader_active_ = false;
        }
        cv_.notify_all();
        throw;
      }
      {
        std::lock_guard<std::mutex> qlock(mu_);
        for (Batch* landed : round) landed->done = true;
      }
      cv_.notify_all();
    }
    return batch.status;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Batch*> queue_;
  bool leader_active_ = false;
};

}  // namespace greca

#endif  // GRECA_COMMON_GROUP_COMMIT_H_
