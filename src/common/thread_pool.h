// Minimal fixed-size worker pool for data-parallel batches.
//
// One ParallelFor call fans indices [0, n) out to the workers through an
// atomic cursor (dynamic load balancing — queries of very different cost mix
// freely in one batch) and blocks until every index completed. The pool is
// deliberately not a general task queue: the engine's batch execution is its
// only job, and a single shared cursor keeps the dispatch overhead at one
// fetch_add per query.
#ifndef GRECA_COMMON_THREAD_POOL_H_
#define GRECA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greca {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(worker, index) for every index in [0, n), spread across the
  /// workers, and returns when all indices completed. `worker` is a stable
  /// id in [0, size()) — callers key per-thread state off it. `fn` must be
  /// callable concurrently from different workers.
  ///
  /// Concurrent calls from different EXTERNAL threads are safe: they are
  /// serialized internally (one dispatch at a time; the historical contract
  /// that callers serialize corrupted active_workers_ when violated). Calls
  /// must still never NEST — fn must not call ParallelFor on its own pool;
  /// the workers can never finish the outer batch, so the nested call
  /// deadlocks. Debug builds assert on nesting instead of hanging.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t worker,
                                            std::size_t index)>& fn);

 private:
  void WorkerLoop(std::size_t worker);

  /// The pool whose WorkerLoop is running on this thread (null on external
  /// threads) — the debug-mode nested-ParallelFor detector.
  static thread_local const ThreadPool* current_worker_pool_;

  std::vector<std::thread> workers_;
  /// Serializes whole ParallelFor calls; never held by workers, so fn runs
  /// without it. Separate from mu_ because mu_ is released while waiting
  /// for the round to finish (done_cv_), which is exactly when a concurrent
  /// caller used to sneak in and clobber the dispatch state.
  std::mutex dispatch_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t generation_ = 0;  // bumped per ParallelFor
  std::atomic<std::size_t> next_{0};
  std::size_t active_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace greca

#endif  // GRECA_COMMON_THREAD_POOL_H_
