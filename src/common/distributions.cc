#include "common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace greca {

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : n_(n), exponent_(exponent), cdf_(n) {
  assert(n >= 1);
  assert(exponent >= 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent_);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated floating-point error
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(std::size_t r) const {
  assert(r < n_);
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

double LogNormalSampler::Sample(Rng& rng) const {
  const double x = std::exp(log_mean_ + log_sigma_ * rng.NextGaussian());
  return std::clamp(x, min_value_, max_value_);
}

std::vector<std::size_t> SampleDistinct(Rng& rng, std::size_t n,
                                        std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t unless
  // already present, in which case insert j.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = rng.NextBounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace greca
