#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace greca {

namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::Fork(std::uint64_t tag) {
  // Mix the parent stream with the tag through SplitMix64 so children are
  // decorrelated from the parent and from each other.
  std::uint64_t mix = NextU64() ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(mix));
}

}  // namespace greca
