// Fundamental identifier and value types shared by every GRECA subsystem.
#ifndef GRECA_COMMON_TYPES_H_
#define GRECA_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace greca {

/// Dense user identifier, 0-based. Datasets remap external ids to this space.
using UserId = std::uint32_t;

/// Dense item identifier, 0-based.
using ItemId = std::uint32_t;

/// A star rating or predicted preference score. The MovieLens scale is 1..5;
/// predicted/derived preferences may lie outside that range.
using Score = double;

/// Seconds since an arbitrary dataset epoch. MovieLens uses Unix time; the
/// synthetic generators use their own epoch. Only differences matter.
using Timestamp = std::int64_t;

/// Index of a discretized time period (0 = earliest).
using PeriodId = std::uint32_t;

inline constexpr UserId kInvalidUser = std::numeric_limits<UserId>::max();
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// An unordered pair of distinct users, canonicalized so `first < second`.
/// Affinity is symmetric (paper §2.1), so all pair-keyed tables use this form.
struct UserPair {
  UserId first = kInvalidUser;
  UserId second = kInvalidUser;

  constexpr UserPair() = default;
  constexpr UserPair(UserId a, UserId b)
      : first(a < b ? a : b), second(a < b ? b : a) {}

  friend constexpr bool operator==(const UserPair&, const UserPair&) = default;
  friend constexpr auto operator<=>(const UserPair&, const UserPair&) = default;
};

/// Total number of unordered pairs among `n` users: n(n-1)/2.
constexpr std::uint64_t NumUserPairs(std::uint64_t n) {
  return n * (n - 1) / 2;
}

/// A (user, score) or (item, score) entry in a sorted list.
template <typename IdT>
struct ScoredEntry {
  IdT id{};
  Score score = 0.0;

  friend constexpr bool operator==(const ScoredEntry&,
                                   const ScoredEntry&) = default;
};

using ScoredItem = ScoredEntry<ItemId>;
using ScoredUser = ScoredEntry<UserId>;

}  // namespace greca

#endif  // GRECA_COMMON_TYPES_H_
