// String parsing helpers for the dataset readers (MovieLens files use "::",
// tab and comma separated formats).
#ifndef GRECA_COMMON_STRING_UTIL_H_
#define GRECA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace greca {

/// Splits `text` on the (possibly multi-character) separator `sep`.
/// Empty fields are preserved: Split("a::::b", "::") -> {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view text,
                                    std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Strict integer parse of the full string; rejects trailing garbage.
std::optional<std::int64_t> ParseInt64(std::string_view text);

/// Strict floating-point parse of the full string.
std::optional<double> ParseDouble(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` decimal places (locale-independent).
std::string FormatDouble(double value, int digits);

}  // namespace greca

#endif  // GRECA_COMMON_STRING_UTIL_H_
