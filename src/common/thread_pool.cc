#include "common/thread_pool.h"

#include <algorithm>

namespace greca {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      n = job_size_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*job)(worker, i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_size_ = n;
  next_.store(0, std::memory_order_relaxed);
  active_workers_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  job_ = nullptr;
  job_size_ = 0;
}

}  // namespace greca
