#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace greca {

thread_local const ThreadPool* ThreadPool::current_worker_pool_ = nullptr;

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  current_worker_pool_ = this;
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      n = job_size_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*job)(worker, i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // A nested call from one of our own workers can never complete: the
  // worker executing fn would have to finish the outer batch first. Fail
  // fast in debug builds instead of deadlocking on dispatch_mu_.
  assert(current_worker_pool_ != this &&
         "ParallelFor called from its own worker (nested calls deadlock)");
  // Concurrent external callers take turns; mu_ alone cannot serialize them
  // because it is released while waiting on done_cv_ below.
  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_size_ = n;
  next_.store(0, std::memory_order_relaxed);
  active_workers_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  job_ = nullptr;
  job_size_ = 0;
}

}  // namespace greca
