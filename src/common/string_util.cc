#include "common/string_util.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace greca {

std::vector<std::string_view> Split(std::string_view text,
                                    std::string_view sep) {
  std::vector<std::string_view> parts;
  if (sep.empty()) {
    parts.push_back(text);
    return parts;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + sep.size();
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::optional<std::int64_t> ParseInt64(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use it directly.
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace greca
