// ASCII table / CSV emission for the benchmark harnesses. Every figure and
// table reproduced from the paper is printed through this class so output
// formats stay uniform across bench binaries.
#ifndef GRECA_COMMON_TABLE_PRINTER_H_
#define GRECA_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace greca {

class TablePrinter {
 public:
  /// `title` is printed as a header banner, e.g. "Figure 5(A): Varying K".
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetColumns(std::vector<std::string> names);

  /// Appends a row; the cell count must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` decimals.
  static std::string Cell(double value, int digits = 2);
  static std::string Cell(std::size_t value);
  static std::string Cell(int value);

  /// Renders a boxed, column-aligned table.
  void Print(std::ostream& os) const;

  /// Renders the same data as CSV (header + rows).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greca

#endif  // GRECA_COMMON_TABLE_PRINTER_H_
