// Periodic affinity affP(u, u', p) and its population average (paper §2.1,
// §4.1.2).
//
// affP(u, u', p) = |page_like_categories(u, p) ∩ page_like_categories(u', p)|.
// AvgAffP(p) = 2·Σ_{u≠u'} affP(u, u', p) / (|U|² − |U|).
//
// The pairwise table is O(|U|²) per period; the population average however is
// computed in closed form from per-category liker counts:
//   Σ_{pairs} affP(u, u', p) = Σ_c C(n_c, 2),  n_c = #users who liked c in p,
// which costs O(#events) instead of O(|U|²·categories) — an ablation bench
// verifies the equality against the naive pair scan.
#ifndef GRECA_AFFINITY_PERIODIC_AFFINITY_H_
#define GRECA_AFFINITY_PERIODIC_AFFINITY_H_

#include <vector>

#include "affinity/static_affinity.h"
#include "dataset/page_likes.h"
#include "timeline/period.h"

namespace greca {

/// Pairwise periodic affinities for every period of a timeline.
///
/// Supports both batch construction (Compute) and streaming maintenance
/// (AppendPeriod): when a new period closes, only that period's table is
/// computed — nothing previously stored is touched, matching the paper's
/// index-augmentation design and its future-work question on maintaining the
/// structures as time advances.
class PeriodicAffinity {
 public:
  PeriodicAffinity() = default;

  /// Starts an empty streaming table over `num_users` users.
  explicit PeriodicAffinity(std::size_t num_users) : num_users_(num_users) {}

  /// Precomputes raw common-category counts for all pairs and all periods.
  static PeriodicAffinity Compute(const PageLikeLog& likes,
                                  const Timeline& timeline);

  /// Appends one closed period from the log. O(pairs + events of the
  /// period); earlier periods are immutable.
  void AppendPeriod(const PageLikeLog& likes, const Period& period);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_periods() const { return tables_.size(); }

  /// Raw common-category count.
  double Raw(UserId u, UserId v, PeriodId p) const {
    return tables_[p].Get(u, v);
  }

  /// Raw value divided by the period's maximum pair value (0 if the period
  /// has no common likes at all). Always in [0, 1].
  double Normalized(UserId u, UserId v, PeriodId p) const;

  /// AvgAffP(p) over the raw values (paper's definition).
  double PopulationAverageRaw(PeriodId p) const { return averages_raw_[p]; }

  /// Population average on the normalized scale.
  double PopulationAverageNormalized(PeriodId p) const;

  /// Maximum raw pair value within period p.
  double PeriodMax(PeriodId p) const { return maxima_[p]; }

  const PairTable& table(PeriodId p) const { return tables_[p]; }

 private:
  std::size_t num_users_ = 0;
  std::vector<PairTable> tables_;     // one per period, raw counts
  std::vector<double> averages_raw_;  // closed-form population averages
  std::vector<double> maxima_;
};

/// Closed-form Σ_{pairs} |common categories| for one period via per-category
/// liker counts. Exposed for the equality test and the ablation bench.
double SumPairwiseCommonCategories(const PageLikeLog& likes, const Period& p);

/// Naive O(|U|²) reference used to validate the closed form.
double SumPairwiseCommonCategoriesNaive(const PageLikeLog& likes,
                                        const Period& p);

}  // namespace greca

#endif  // GRECA_AFFINITY_PERIODIC_AFFINITY_H_
