#include "affinity/temporal_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greca {

std::string AffinityModelSpec::Name() const {
  if (!affinity_aware) return "affinity-agnostic";
  if (!time_aware) return "time-agnostic";
  return time_model == TimeModel::kDiscrete ? "discrete" : "continuous";
}

AffinityCombiner::AffinityCombiner(AffinityModelSpec spec,
                                   std::vector<double> period_averages)
    : spec_(spec), period_averages_(std::move(period_averages)) {
  for (const double a : period_averages_) average_sum_ += a;
}

double AffinityCombiner::MeanDrift(std::span<const double> aff_p) const {
  assert(aff_p.size() == period_averages_.size());
  if (aff_p.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : aff_p) sum += v;
  const double drift =
      (sum - average_sum_) / static_cast<double>(aff_p.size());
  return std::clamp(spec_.drift_gain * drift, -1.0, 1.0);
}

double AffinityCombiner::Combine(double aff_s,
                                 std::span<const double> aff_p) const {
  if (!spec_.affinity_aware) return 0.0;
  if (!spec_.time_aware || period_averages_.empty()) {
    return std::clamp(aff_s, 0.0, 1.0);
  }
  const double drift = MeanDrift(aff_p);
  double combined;
  if (spec_.time_model == TimeModel::kDiscrete) {
    combined = aff_s + drift;  // affD = affS + affV
  } else {
    combined = aff_s * std::exp(drift);  // affC = affS · e^{affV}
  }
  return std::clamp(combined, 0.0, 1.0);
}

Interval AffinityCombiner::CombineInterval(
    Interval aff_s, std::span<const Interval> aff_p) const {
  // Combine() is monotone non-decreasing in aff_s and every aff_p entry, so
  // evaluating at the interval endpoints yields sound bounds.
  std::vector<double> lows, highs;
  lows.reserve(aff_p.size());
  highs.reserve(aff_p.size());
  for (const Interval& iv : aff_p) {
    assert(iv.lb <= iv.ub);
    lows.push_back(iv.lb);
    highs.push_back(iv.ub);
  }
  return {Combine(aff_s.lb, lows), Combine(aff_s.ub, highs)};
}

}  // namespace greca
