#include "affinity/periodic_affinity.h"

#include <algorithm>
#include <cassert>

namespace greca {

void PeriodicAffinity::AppendPeriod(const PageLikeLog& likes,
                                    const Period& period) {
  assert(likes.num_users() == num_users_);
  const std::size_t n = num_users_;
  std::vector<std::vector<CategoryId>> cats(n);
  for (UserId u = 0; u < n; ++u) {
    cats[u] = likes.CategoriesInPeriod(u, period);
  }
  PairTable table(n);
  double max_value = 0.0;
  for (UserId u = 0; u < n; ++u) {
    if (cats[u].empty()) continue;
    for (UserId v = static_cast<UserId>(u + 1); v < n; ++v) {
      if (cats[v].empty()) continue;
      // Sorted intersection count.
      std::size_t i = 0, j = 0, common = 0;
      while (i < cats[u].size() && j < cats[v].size()) {
        if (cats[u][i] == cats[v][j]) {
          ++common;
          ++i;
          ++j;
        } else if (cats[u][i] < cats[v][j]) {
          ++i;
        } else {
          ++j;
        }
      }
      if (common > 0) {
        table.Set(u, v, static_cast<double>(common));
        max_value = std::max(max_value, static_cast<double>(common));
      }
    }
  }
  averages_raw_.push_back(
      SumPairwiseCommonCategories(likes, period) * 2.0 /
      (static_cast<double>(n) * static_cast<double>(n - 1)));
  maxima_.push_back(max_value);
  tables_.push_back(std::move(table));
}

PeriodicAffinity PeriodicAffinity::Compute(const PageLikeLog& likes,
                                           const Timeline& timeline) {
  PeriodicAffinity pa(likes.num_users());
  for (const Period& period : timeline.periods()) {
    pa.AppendPeriod(likes, period);
  }
  return pa;
}

double PeriodicAffinity::Normalized(UserId u, UserId v, PeriodId p) const {
  const double max_value = maxima_[p];
  if (max_value == 0.0) return 0.0;
  return tables_[p].Get(u, v) / max_value;
}

double PeriodicAffinity::PopulationAverageNormalized(PeriodId p) const {
  const double max_value = maxima_[p];
  if (max_value == 0.0) return 0.0;
  return averages_raw_[p] / max_value;
}

double SumPairwiseCommonCategories(const PageLikeLog& likes, const Period& p) {
  // n_c = number of distinct users who liked category c within p;
  // Σ_pairs |common| = Σ_c n_c (n_c - 1) / 2.
  std::vector<std::size_t> liker_counts(likes.num_categories(), 0);
  for (UserId u = 0; u < likes.num_users(); ++u) {
    for (const CategoryId c : likes.CategoriesInPeriod(u, p)) {
      ++liker_counts[c];
    }
  }
  double sum = 0.0;
  for (const std::size_t c : liker_counts) {
    sum += static_cast<double>(c) * static_cast<double>(c - (c > 0 ? 1 : 0)) /
           2.0;
  }
  return sum;
}

double SumPairwiseCommonCategoriesNaive(const PageLikeLog& likes,
                                        const Period& p) {
  const std::size_t n = likes.num_users();
  std::vector<std::vector<CategoryId>> cats(n);
  for (UserId u = 0; u < n; ++u) cats[u] = likes.CategoriesInPeriod(u, p);
  double sum = 0.0;
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = u + 1; v < n; ++v) {
      std::size_t i = 0, j = 0;
      while (i < cats[u].size() && j < cats[v].size()) {
        if (cats[u][i] == cats[v][j]) {
          sum += 1.0;
          ++i;
          ++j;
        } else if (cats[u][i] < cats[v][j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return sum;
}

}  // namespace greca
