// Streaming maintenance of the affinity index structures (paper §6 future
// work: "the maintenance of our index structures over time in relationship
// with how often affinity between users changes").
//
// As time advances and a period closes, ObservePeriod ingests that period's
// page-likes and extends both the periodic table and the cumulative drift
// index in O(#pairs) — previously stored periods and drifts are never
// recomputed, which is exactly the property GRECA's per-period lists rely
// on ("just augments the index", §1).
#ifndef GRECA_AFFINITY_ONLINE_TRACKER_H_
#define GRECA_AFFINITY_ONLINE_TRACKER_H_

#include <cstddef>

#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/temporal_model.h"
#include "dataset/page_likes.h"

namespace greca {

class OnlineAffinityTracker {
 public:
  explicit OnlineAffinityTracker(std::size_t num_users)
      : periodic_(num_users), drift_(num_users) {}

  /// Ingests one closed period. Periods must arrive in chronological order.
  void ObservePeriod(const PageLikeLog& likes, const Period& period) {
    periodic_.AppendPeriod(likes, period);
    drift_.AppendPeriod(periodic_,
                        static_cast<PeriodId>(drift_.num_periods()));
  }

  std::size_t num_periods() const { return periodic_.num_periods(); }
  const PeriodicAffinity& periodic() const { return periodic_; }
  const DynamicAffinityIndex& drift() const { return drift_; }

  /// Temporal affinity of a pair over the full observed horizon under
  /// `spec`, given the pair's (externally normalized) static affinity.
  double CurrentAffinity(UserId u, UserId v, const AffinityModelSpec& spec,
                         double static_affinity) const;

 private:
  PeriodicAffinity periodic_;
  DynamicAffinityIndex drift_;
};

}  // namespace greca

#endif  // GRECA_AFFINITY_ONLINE_TRACKER_H_
