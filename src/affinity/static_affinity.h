// Static (time-agnostic) affinity affS(u, u') — paper §2.1, §4.1.2.
//
// In the paper's deployment static affinity is the number of common Facebook
// friends, normalized within a group by the maximum pair-wise value so group
// values land in [0, 1]. This table precomputes raw common-friend counts for
// all user pairs of a (study-sized) population.
#ifndef GRECA_AFFINITY_STATIC_AFFINITY_H_
#define GRECA_AFFINITY_STATIC_AFFINITY_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "dataset/social_graph.h"

namespace greca {

/// Symmetric pair table over `n` users stored as a packed upper triangle.
class PairTable {
 public:
  PairTable() = default;
  explicit PairTable(std::size_t num_users)
      : num_users_(num_users),
        values_(NumUserPairs(num_users), 0.0) {}

  std::size_t num_users() const { return num_users_; }
  std::size_t num_pairs() const { return values_.size(); }

  double Get(UserId u, UserId v) const { return values_[PairIndex(u, v)]; }
  void Set(UserId u, UserId v, double value) {
    values_[PairIndex(u, v)] = value;
  }

  /// Largest value in the table (0 for empty tables).
  double Max() const;
  /// Mean over all pairs (0 when there are no pairs).
  double MeanOverPairs() const;

  /// Packed index of the unordered pair {u, v}, u != v.
  std::size_t PairIndex(UserId u, UserId v) const;

 private:
  std::size_t num_users_ = 0;
  std::vector<double> values_;
};

/// Raw static affinity: |friends(u) ∩ friends(v)| for every pair.
PairTable ComputeCommonFriendCounts(const SocialGraph& graph);

/// The paper's group normalization: each pair value divided by the maximum
/// pair value within `group` (all zeros when the max is 0). Returns values
/// indexed by local pair order: (0,1), (0,2), ..., (1,2), ... over the group.
std::vector<double> NormalizeWithinGroup(const PairTable& table,
                                         std::span<const UserId> group);

/// Local pair enumeration order used by NormalizeWithinGroup and the top-k
/// problem encoding: for members g0..g_{s-1}, pair index of (a, b), a < b, is
/// a*(2s-a-1)/2 + (b-a-1).
std::size_t LocalPairIndex(std::size_t a, std::size_t b,
                           std::size_t group_size);

}  // namespace greca

#endif  // GRECA_AFFINITY_STATIC_AFFINITY_H_
