// The two dynamic affinity models of paper §2.1, plus the ablation switches
// used throughout the evaluation (affinity-agnostic, time-agnostic).
//
//   Discrete:    affD(u,u',p) = affS(u,u') + affV(u,u',p)
//   Continuous:  affC(u,u',p) = affS(u,u') · e^{λ·(f−s0)}, λ ≡ affV rate
//
// Implementation notes (documented deviations, see DESIGN.md §4):
//  * All inputs are on the normalized [0, 1] scale (the paper normalizes both
//    static and dynamic affinities to [0, 1], §4.1.2); the drift argument is
//    the *mean* per-period drift, which lies in [−1, 1].
//  * Model outputs are clamped to [0, 1]: the discrete model adds the drift
//    to affS, the continuous model multiplies affS by e^{drift}. Both are
//    monotone non-decreasing in affS and in every periodic affinity value,
//    which is what makes the consensus function monotone (Lemma 1) and GRECA
//    sound.
#ifndef GRECA_AFFINITY_TEMPORAL_MODEL_H_
#define GRECA_AFFINITY_TEMPORAL_MODEL_H_

#include <span>
#include <string>
#include <vector>

#include "topk/interval.h"

namespace greca {

enum class TimeModel {
  kDiscrete,
  kContinuous,
};

/// Which affinity signal the recommender uses — the four variants compared in
/// the paper's quality study (Figure 1 A–D).
struct AffinityModelSpec {
  /// false → aff ≡ 0 (recommendations ignore other members entirely).
  bool affinity_aware = true;
  /// false → aff = affS only (no temporal component).
  bool time_aware = true;
  TimeModel time_model = TimeModel::kDiscrete;
  /// Gain applied to the mean periodic drift before it enters the model.
  /// The paper leaves the scale of Equation 1's Δ-normalization open; on the
  /// max-normalized page-like scale raw drifts are small (|drift| ~ 0.1), so
  /// a gain recovers a temporal signal strong enough to re-rank pairs. The
  /// effective drift is clamp(gain·mean_drift, −1, 1); gain 1 reproduces the
  /// raw equation.
  double drift_gain = 4.0;

  static AffinityModelSpec Default() { return {}; }
  static AffinityModelSpec AffinityAgnostic() {
    return {.affinity_aware = false};
  }
  static AffinityModelSpec TimeAgnostic() { return {.time_aware = false}; }
  static AffinityModelSpec Continuous() {
    return {.time_model = TimeModel::kContinuous};
  }

  std::string Name() const;

  friend bool operator==(const AffinityModelSpec&,
                         const AffinityModelSpec&) = default;
};

/// Pure affinity computation for one evaluation horizon: given affS and the
/// normalized periodic affinities affP[0..T), produces the temporal affinity
/// aff(u, u', p) in [0, 1]. Also propagates intervals for GRECA's bounds
/// (valid because the combination is monotone in every argument).
class AffinityCombiner {
 public:
  /// `period_averages` are the normalized population averages AvgAffP(p') of
  /// the T periods covered by the evaluation horizon.
  AffinityCombiner(AffinityModelSpec spec, std::vector<double> period_averages);

  std::size_t num_periods() const { return period_averages_.size(); }
  const AffinityModelSpec& spec() const { return spec_; }

  /// aff(u, u') from exact components. `aff_p.size()` must equal
  /// num_periods().
  double Combine(double aff_s, std::span<const double> aff_p) const;

  /// Sound interval propagation (endpoint evaluation; valid by monotonicity).
  Interval CombineInterval(Interval aff_s,
                           std::span<const Interval> aff_p) const;

  /// Mean per-period drift Σ(affP − avg)/T in [−1, 1]; 0 when T == 0.
  double MeanDrift(std::span<const double> aff_p) const;

  /// Largest value Combine can return (used for threshold initialization).
  double MaxAffinity() const { return spec_.affinity_aware ? 1.0 : 0.0; }

 private:
  AffinityModelSpec spec_;
  std::vector<double> period_averages_;
  double average_sum_ = 0.0;
};

}  // namespace greca

#endif  // GRECA_AFFINITY_TEMPORAL_MODEL_H_
