// Dynamic affinity affV — the cumulative drift index (paper Equation 1).
//
//   affV(u, u', p) = Σ_{p' ≼ p} (affP(u, u', p') − AvgAffP(p')) / Δ
//
// The index stores, for every pair, the running drift sum per period, built
// incrementally: appending period p+1 only adds one term to each pair's sum
// and never touches previously computed values — the property the paper
// highlights ("GRECA does not need to recalculate any of the previously
// calculated affinities and just augments the index").
//
// Drifts are computed on the normalized affinity scale ([0, 1] per period),
// so a single-period drift lies in [−1, 1] and the mean drift (discrete Δ =
// number of periods) lies in [−1, 1] as well.
#ifndef GRECA_AFFINITY_DYNAMIC_AFFINITY_H_
#define GRECA_AFFINITY_DYNAMIC_AFFINITY_H_

#include <vector>

#include "affinity/periodic_affinity.h"

namespace greca {

class DynamicAffinityIndex {
 public:
  explicit DynamicAffinityIndex(std::size_t num_users)
      : num_users_(num_users) {}

  /// Appends the next period from `pa`. `p` must equal num_periods() (periods
  /// are appended in order). O(#pairs), independent of how many periods exist.
  void AppendPeriod(const PeriodicAffinity& pa, PeriodId p);

  /// Convenience: builds the index over all periods of `pa`.
  static DynamicAffinityIndex Build(const PeriodicAffinity& pa);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_periods() const { return cumulative_.size(); }

  /// Σ_{p' ≤ p} (affP_norm − avg_norm); O(1).
  double CumulativeDrift(UserId u, UserId v, PeriodId p) const {
    return cumulative_[p].Get(u, v);
  }

  /// Discrete-model affV: cumulative drift divided by the number of periods
  /// (Δ = p + 1). Always in [−1, 1].
  double MeanDrift(UserId u, UserId v, PeriodId p) const {
    return CumulativeDrift(u, v, p) / static_cast<double>(p + 1);
  }

 private:
  std::size_t num_users_;
  std::vector<PairTable> cumulative_;  // per period, running drift sums
};

/// From-scratch reference implementation of Equation 1's numerator; used to
/// verify the incremental index and by the ablation bench.
double RecomputeCumulativeDrift(const PeriodicAffinity& pa, UserId u, UserId v,
                                PeriodId p);

}  // namespace greca

#endif  // GRECA_AFFINITY_DYNAMIC_AFFINITY_H_
