#include "affinity/affinity_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greca {

double AffinitySource::CumulativeDrift(UserId u, UserId v, PeriodId p) const {
  double sum = 0.0;
  for (PeriodId q = 0; q <= p; ++q) {
    sum += Periodic(u, v, q) - PeriodAverage(q);
  }
  return sum;
}

double AffinitySource::NormalizedStatic(UserId u, UserId v) const {
  const double max = MaxStatic();
  return max > 0.0 ? Static(u, v) / max : 0.0;
}

void AffinitySource::MaterializeStaticListInto(std::span<const UserId> group,
                                               std::vector<ListEntry>& scratch,
                                               SortedList& out) const {
  const std::size_t g = group.size();
  const auto num_pairs = static_cast<ListKey>(NumUserPairs(g));
  scratch.clear();
  scratch.reserve(num_pairs);
  double group_max = 0.0;
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      const auto q = static_cast<ListKey>(LocalPairIndex(a, b, g));
      const double raw = Static(group[a], group[b]);
      group_max = std::max(group_max, raw);
      scratch.push_back({q, raw});
    }
  }
  if (group_max > 0.0) {
    for (ListEntry& e : scratch) e.score /= group_max;
  }
  out.AssignUnsorted(scratch, num_pairs);
}

void AffinitySource::MaterializePeriodListInto(std::span<const UserId> group,
                                               PeriodId p,
                                               std::vector<ListEntry>& scratch,
                                               SortedList& out) const {
  const std::size_t g = group.size();
  const auto num_pairs = static_cast<ListKey>(NumUserPairs(g));
  scratch.clear();
  scratch.reserve(num_pairs);
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      const auto q = static_cast<ListKey>(LocalPairIndex(a, b, g));
      scratch.push_back({q, Periodic(group[a], group[b], p)});
    }
  }
  out.AssignUnsorted(scratch, num_pairs);
}

SortedList AffinitySource::MaterializeStaticList(
    std::span<const UserId> group) const {
  SortedList out;
  std::vector<ListEntry> scratch;
  MaterializeStaticListInto(group, scratch, out);
  return out;
}

SortedList AffinitySource::MaterializePeriodList(std::span<const UserId> group,
                                                 PeriodId p) const {
  SortedList out;
  std::vector<ListEntry> scratch;
  MaterializePeriodListInto(group, p, scratch, out);
  return out;
}

std::vector<double> AffinitySource::PeriodAverages(PeriodId horizon) const {
  std::vector<double> averages;
  averages.reserve(horizon + 1);
  for (PeriodId p = 0; p <= horizon; ++p) {
    averages.push_back(PeriodAverage(p));
  }
  return averages;
}

void AffinitySource::MaterializeMemberWeightsInto(std::span<const UserId> group,
                                                  std::span<double> out) const {
  assert(out.size() == group.size());
  (void)group;
  std::fill(out.begin(), out.end(), 1.0);
}

void StudyAffinitySource::MaterializeMemberWeightsInto(
    std::span<const UserId> group, std::span<double> out) const {
  if (influence_ == nullptr) {
    AffinitySource::MaterializeMemberWeightsInto(group, out);
    return;
  }
  assert(out.size() == group.size());
  for (std::size_t m = 0; m < group.size(); ++m) {
    out[m] = group[m] < influence_->size() ? (*influence_)[group[m]] : 1.0;
  }
}

double StudyAffinitySource::CumulativeDrift(UserId u, UserId v,
                                            PeriodId p) const {
  if (dynamic_ != nullptr && p < dynamic_->num_periods()) {
    return dynamic_->CumulativeDrift(u, v, p);
  }
  return AffinitySource::CumulativeDrift(u, v, p);
}

DecayWeightedAffinitySource::DecayWeightedAffinitySource(
    std::shared_ptr<const AffinitySource> base, double decay)
    : base_(std::move(base)), decay_(decay) {
  assert(base_ != nullptr);
  assert(decay_ > 0.0 && decay_ <= 1.0);
}

double DecayWeightedAffinitySource::Weight(PeriodId p) const {
  const std::size_t periods = num_periods();
  if (periods == 0) return 1.0;
  const auto age = static_cast<double>(periods - 1 - std::min<std::size_t>(p, periods - 1));
  return std::pow(decay_, age);
}

}  // namespace greca
