#include "affinity/static_affinity.h"

#include <algorithm>
#include <cassert>

namespace greca {

std::size_t PairTable::PairIndex(UserId u, UserId v) const {
  assert(u != v);
  assert(u < num_users_ && v < num_users_);
  const UserPair p(u, v);
  // Row-major packed upper triangle: row a occupies (n-1) + (n-2) + ... down
  // to (n-a) slots before it: a*n - a*(a+1)/2; column offset is b - a - 1.
  const std::size_t a = p.first;
  const std::size_t b = p.second;
  return a * num_users_ - a * (a + 1) / 2 + (b - a - 1);
}

double PairTable::Max() const {
  double best = 0.0;
  for (const double v : values_) best = std::max(best, v);
  return best;
}

double PairTable::MeanOverPairs() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

PairTable ComputeCommonFriendCounts(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  PairTable table(n);
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = u + 1; v < n; ++v) {
      table.Set(u, v, static_cast<double>(graph.CommonFriends(u, v)));
    }
  }
  return table;
}

std::vector<double> NormalizeWithinGroup(const PairTable& table,
                                         std::span<const UserId> group) {
  const std::size_t s = group.size();
  std::vector<double> values(NumUserPairs(s), 0.0);
  double max_value = 0.0;
  for (std::size_t a = 0; a < s; ++a) {
    for (std::size_t b = a + 1; b < s; ++b) {
      const double v = table.Get(group[a], group[b]);
      values[LocalPairIndex(a, b, s)] = v;
      max_value = std::max(max_value, v);
    }
  }
  if (max_value > 0.0) {
    for (auto& v : values) v /= max_value;
  }
  return values;
}

std::size_t LocalPairIndex(std::size_t a, std::size_t b,
                           std::size_t group_size) {
  assert(a < b && b < group_size);
  return a * group_size - a * (a + 1) / 2 + (b - a - 1);
}

}  // namespace greca
