#include "affinity/dynamic_affinity.h"

#include <cassert>

namespace greca {

void DynamicAffinityIndex::AppendPeriod(const PeriodicAffinity& pa,
                                        PeriodId p) {
  assert(p == cumulative_.size());
  assert(pa.num_users() == num_users_);
  assert(p < pa.num_periods());
  const double avg = pa.PopulationAverageNormalized(p);
  PairTable next(num_users_);
  for (UserId u = 0; u < num_users_; ++u) {
    for (UserId v = static_cast<UserId>(u + 1); v < num_users_; ++v) {
      const double prev = p == 0 ? 0.0 : cumulative_[p - 1].Get(u, v);
      next.Set(u, v, prev + (pa.Normalized(u, v, p) - avg));
    }
  }
  cumulative_.push_back(std::move(next));
}

DynamicAffinityIndex DynamicAffinityIndex::Build(const PeriodicAffinity& pa) {
  DynamicAffinityIndex index(pa.num_users());
  for (PeriodId p = 0; p < pa.num_periods(); ++p) {
    index.AppendPeriod(pa, p);
  }
  return index;
}

double RecomputeCumulativeDrift(const PeriodicAffinity& pa, UserId u, UserId v,
                                PeriodId p) {
  double sum = 0.0;
  for (PeriodId q = 0; q <= p; ++q) {
    sum += pa.Normalized(u, v, q) - pa.PopulationAverageNormalized(q);
  }
  return sum;
}

}  // namespace greca
