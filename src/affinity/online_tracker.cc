#include "affinity/online_tracker.h"

#include <vector>

namespace greca {

double OnlineAffinityTracker::CurrentAffinity(UserId u, UserId v,
                                              const AffinityModelSpec& spec,
                                              double static_affinity) const {
  std::vector<double> averages;
  std::vector<double> aff_p;
  averages.reserve(num_periods());
  aff_p.reserve(num_periods());
  for (PeriodId p = 0; p < num_periods(); ++p) {
    averages.push_back(periodic_.PopulationAverageNormalized(p));
    aff_p.push_back(periodic_.Normalized(u, v, p));
  }
  const AffinityCombiner combiner(spec, std::move(averages));
  return combiner.Combine(static_affinity, aff_p);
}

}  // namespace greca
