// Pluggable affinity backend — the one contract through which the core
// (GroupRecommender::BuildProblem, ModelAffinity) consumes affinities.
//
// The paper's deployment computes static affinity from common Facebook
// friends and periodic affinity from common page-like categories (§2.1,
// §4.1.2); StudyAffinitySource wraps exactly those precomputed tables plus
// the incremental drift index of Equation 1. Alternative affinity models
// (decay-weighted, similarity-derived, learned) implement the same interface
// and plug into the engine without touching core/.
//
// Contract invariants every implementation must keep:
//  * Periodic() and PeriodAverage() are on the normalized [0, 1] scale;
//  * Static() is raw (>= 0) and MaxStatic() bounds it over the population —
//    group- and population-level normalizations both derive from these;
//  * all values are monotone inputs to the temporal combiner, which is what
//    keeps the consensus bounds sound (Lemma 1);
//  * implementations are immutable once bound to a Snapshot and safe for
//    concurrent const reads: MaterializePeriodListInto is the fill hook of
//    the snapshot-scoped (group, period) list cache (api/snapshot.h), which
//    may invoke it from any batch worker. To change an affinity model at
//    runtime, publish a NEW source via Engine::UpdateAffinitySource — never
//    mutate one in place.
#ifndef GRECA_AFFINITY_AFFINITY_SOURCE_H_
#define GRECA_AFFINITY_AFFINITY_SOURCE_H_

#include <memory>
#include <span>
#include <vector>

#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"
#include "common/types.h"
#include "topk/sorted_list.h"

namespace greca {

class AffinitySource {
 public:
  virtual ~AffinitySource() = default;

  virtual std::size_t num_users() const = 0;
  /// Number of closed periods with periodic affinities available.
  virtual std::size_t num_periods() const = 0;

  /// Raw static affinity affS(u, v) on the population scale.
  virtual double Static(UserId u, UserId v) const = 0;
  /// Largest static pair value over the population (0 for empty tables).
  virtual double MaxStatic() const = 0;
  /// Periodic affinity affP(u, v, p), normalized to [0, 1] within period p.
  virtual double Periodic(UserId u, UserId v, PeriodId p) const = 0;
  /// Population average of the normalized periodic affinity in period p.
  virtual double PeriodAverage(PeriodId p) const = 0;

  /// Cumulative drift Σ_{p' ≤ p} (affP(u, v, p') − AvgAffP(p')) — the
  /// numerator of Equation 1. The default recomputes from Periodic() and
  /// PeriodAverage() in O(p); index-backed sources override with O(1).
  virtual double CumulativeDrift(UserId u, UserId v, PeriodId p) const;

  /// Static affinity normalized by the population max, in [0, 1].
  double NormalizedStatic(UserId u, UserId v) const;

  // --- List materialization (what BuildProblem consumes, paper §3.1) ---
  //
  // The *Into variants are the hot path: they rebuild `out` in place through
  // SortedList::AssignUnsorted, using `scratch` for the unsorted pair
  // entries, so a reused ProblemArena makes steady-state materialization
  // allocation-free. The by-value overloads are conveniences wrapping them.

  /// Static affinity list over the group's pairs, keyed by local pair index
  /// (LocalPairIndex order) and normalized within the group by the maximum
  /// pair value (§4.1.2; all zeros when the max is 0).
  virtual void MaterializeStaticListInto(std::span<const UserId> group,
                                         std::vector<ListEntry>& scratch,
                                         SortedList& out) const;

  /// Periodic affinity list for period p over the group's pairs, local pair
  /// key order, normalized scale.
  virtual void MaterializePeriodListInto(std::span<const UserId> group,
                                         PeriodId p,
                                         std::vector<ListEntry>& scratch,
                                         SortedList& out) const;

  SortedList MaterializeStaticList(std::span<const UserId> group) const;
  SortedList MaterializePeriodList(std::span<const UserId> group,
                                   PeriodId p) const;

  /// Normalized population averages for periods 0..horizon inclusive.
  virtual std::vector<double> PeriodAverages(PeriodId horizon) const;

  /// Raw per-member consensus weights for influence weighting
  /// (QuerySpec::weighting == kInfluence): fills `out` — one slot per group
  /// member, pre-sized by the caller — with each member's weight on any
  /// non-negative scale; assembly normalizes per group. The default is
  /// uniform 1.0, so sources with no social signal weight everyone equally
  /// and influence queries degrade gracefully to uniform scoring.
  virtual void MaterializeMemberWeightsInto(std::span<const UserId> group,
                                            std::span<double> out) const;
};

/// The study-backed source: common-friend counts (static), common page-like
/// category counts (periodic) and, when given, the incremental drift index
/// (dynamic, O(1) CumulativeDrift). All referenced tables must outlive the
/// source; the source itself is cheap to copy.
class StudyAffinitySource final : public AffinitySource {
 public:
  /// `influence`, when non-null, holds one raw influence weight per study
  /// participant (e.g. PropagationCentrality over the friendship graph) and
  /// backs MaterializeMemberWeightsInto; null keeps the uniform default.
  StudyAffinitySource(
      const PairTable& static_counts, const PeriodicAffinity& periodic,
      const DynamicAffinityIndex* dynamic = nullptr,
      std::shared_ptr<const std::vector<double>> influence = nullptr)
      : static_(&static_counts),
        periodic_(&periodic),
        dynamic_(dynamic),
        influence_(std::move(influence)) {}

  std::size_t num_users() const override { return periodic_->num_users(); }
  std::size_t num_periods() const override { return periodic_->num_periods(); }
  double Static(UserId u, UserId v) const override {
    return static_->Get(u, v);
  }
  double MaxStatic() const override { return static_->Max(); }
  double Periodic(UserId u, UserId v, PeriodId p) const override {
    return periodic_->Normalized(u, v, p);
  }
  double PeriodAverage(PeriodId p) const override {
    return periodic_->PopulationAverageNormalized(p);
  }
  double CumulativeDrift(UserId u, UserId v, PeriodId p) const override;
  void MaterializeMemberWeightsInto(std::span<const UserId> group,
                                    std::span<double> out) const override;

 private:
  const PairTable* static_;
  const PeriodicAffinity* periodic_;
  const DynamicAffinityIndex* dynamic_;  // optional O(1) drift backend
  std::shared_ptr<const std::vector<double>> influence_;  // per-user, raw
};

/// Degenerate source for populations with no social signal — the
/// million-user scale harness (src/shard/, bench/bench_shard.cc), where no
/// study exists and affinity-agnostic models run anyway. Every pair has the
/// same static and periodic affinity, so the period average equals the
/// periodic value and every drift is exactly 0; with the default 0/0 values
/// the affinity terms vanish and group scores are pure preference
/// aggregation.
class ConstantAffinitySource final : public AffinitySource {
 public:
  ConstantAffinitySource(std::size_t num_users, std::size_t num_periods,
                         double static_value = 0.0,
                         double periodic_value = 0.0)
      : num_users_(num_users),
        num_periods_(num_periods),
        static_value_(static_value),
        periodic_value_(periodic_value) {}

  std::size_t num_users() const override { return num_users_; }
  std::size_t num_periods() const override { return num_periods_; }
  double Static(UserId, UserId) const override { return static_value_; }
  double MaxStatic() const override { return static_value_; }
  double Periodic(UserId, UserId, PeriodId) const override {
    return periodic_value_;
  }
  double PeriodAverage(PeriodId) const override { return periodic_value_; }

 private:
  std::size_t num_users_;
  std::size_t num_periods_;
  double static_value_;
  double periodic_value_;
};

/// Pluggability demonstrator: wraps another source and exponentially
/// down-weights periodic affinities by age, weight(p) = decay^(P−1−p) for P
/// available periods — recent togetherness counts more than old
/// togetherness. Averages scale identically, so drifts stay consistent, and
/// scaling by a positive constant preserves the monotonicity the consensus
/// bounds rely on.
class DecayWeightedAffinitySource final : public AffinitySource {
 public:
  /// `decay` must lie in (0, 1]; 1 reproduces `base` exactly.
  DecayWeightedAffinitySource(std::shared_ptr<const AffinitySource> base,
                              double decay);

  std::size_t num_users() const override { return base_->num_users(); }
  std::size_t num_periods() const override { return base_->num_periods(); }
  double Static(UserId u, UserId v) const override {
    return base_->Static(u, v);
  }
  double MaxStatic() const override { return base_->MaxStatic(); }
  double Periodic(UserId u, UserId v, PeriodId p) const override {
    return Weight(p) * base_->Periodic(u, v, p);
  }
  double PeriodAverage(PeriodId p) const override {
    return Weight(p) * base_->PeriodAverage(p);
  }
  /// Influence weights are a property of the wrapped social signal, not of
  /// the temporal decay — forward to the base source.
  void MaterializeMemberWeightsInto(std::span<const UserId> group,
                                    std::span<double> out) const override {
    base_->MaterializeMemberWeightsInto(group, out);
  }

 private:
  double Weight(PeriodId p) const;

  std::shared_ptr<const AffinitySource> base_;
  double decay_;
};

}  // namespace greca

#endif  // GRECA_AFFINITY_AFFINITY_SOURCE_H_
