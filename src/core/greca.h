// GRECA — Group Recommendation with Temporal Affinities (paper §3, Alg. 1).
//
// An NRA-style instance-optimal top-k algorithm that consumes, via sequential
// accesses only, the group's absolute-preference lists, its static affinity
// list and one periodic affinity list per time period. It maintains a buffer
// of candidate items with lower/upper consensus-score bounds, a global
// threshold bounding every unseen item, and terminates through the paper's
// novel *buffer condition*: once the buffer holds k' > k items where the k-th
// best lower bound dominates the upper bound of the other k'−k items, those
// items are pruned and the remaining k returned (Theorem 1 shows this implies
// the classical threshold condition).
//
// The returned itemset is guaranteed to be a correct top-k set (Lemma 2); the
// order within it is the partial order induced by lower bounds at
// termination.
#ifndef GRECA_CORE_GRECA_H_
#define GRECA_CORE_GRECA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topk/interval.h"
#include "topk/problem.h"
#include "topk/result.h"
#include "topk/sorted_list.h"

namespace greca {

/// Termination ablation (paper §3.2 "Stopping Condition"):
///  * kBufferCondition — full GRECA: prune dominated buffer items and stop as
///    soon as exactly k undominated candidates remain.
///  * kThresholdOnly — classical threshold stopping only: may terminate only
///    when the buffer holds exactly k items with the threshold dominated,
///    which in practice means scanning to exhaustion (this is the paper's
///    argument for the buffer condition's necessity).
enum class TerminationPolicy {
  kBufferCondition,
  kThresholdOnly,
};

struct GrecaConfig {
  std::size_t k = 10;
  TerminationPolicy termination = TerminationPolicy::kBufferCondition;
  /// Stopping conditions are evaluated every `check_interval` round-robin
  /// rounds (1 = after every round, the paper's formulation; larger values
  /// trade a few extra SAs for fewer bound recomputations).
  std::size_t check_interval = 1;
};

/// Execution statistics beyond the common TopKResult fields.
struct GrecaStats {
  std::size_t peak_buffer_size = 0;
  std::size_t pruned_items = 0;
  std::size_t stop_checks = 0;
  /// True when the buffer condition (not the plain threshold) fired.
  bool stopped_by_buffer_condition = false;
  /// Global threshold value at termination.
  double final_threshold = 0.0;
};

/// Reusable buffers of one GRECA run: cursors, seen values, candidate-bound
/// buffers and interval scratch. Passing the same workspace to consecutive
/// Greca() calls amortizes the hot-path allocations across a batch of
/// queries (each run re-initializes the contents, never the capacity). A
/// workspace may be reused across problems of any shape but must not be
/// shared by concurrent runs.
struct GrecaWorkspace {
  // Cursors and last-read bounds per list.
  std::vector<std::size_t> pref_pos;
  std::vector<double> pref_bound;
  std::vector<std::size_t> period_pos;
  std::vector<double> period_bound;

  // Seen affinity components.
  std::vector<double> static_val;
  std::vector<std::uint8_t> static_seen;
  std::vector<double> period_val;
  std::vector<std::uint8_t> period_seen;

  // Seen absolute preferences per (item, member) and the candidate buffer.
  std::vector<double> apref_val;
  std::vector<std::uint32_t> apref_seen;
  std::vector<std::uint8_t> item_state;
  std::vector<ListKey> active_items;

  // Agreement-list state (pairwise-disagreement consensus only).
  std::vector<std::size_t> ag_pos;
  std::vector<double> ag_bound;
  std::vector<double> ag_val;
  std::vector<std::uint8_t> ag_seen;
  std::vector<Interval> ag_iv;

  // Interval and bound scratch.
  std::vector<Interval> pair_iv;
  std::vector<Interval> aff_p_iv;
  std::vector<Interval> apref_iv;
  std::vector<Interval> pref_iv;
  std::vector<double> item_lb;
  std::vector<double> item_ub;
  std::vector<double> scratch_lbs;
};

/// Runs GRECA. Every preference list must cover the full candidate key space
/// and every affinity list all group pairs (zero-score entries included).
/// `workspace`, when non-null, provides reusable buffers (see
/// GrecaWorkspace); when null a run-local workspace is used.
TopKResult Greca(const GroupProblem& problem, const GrecaConfig& config,
                 GrecaStats* stats = nullptr,
                 GrecaWorkspace* workspace = nullptr);

}  // namespace greca

#endif  // GRECA_CORE_GRECA_H_
