#include "core/group_recommender.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>
#include <utility>

#include "cf/similarity.h"
#include "topk/naive.h"
#include "topk/ta.h"

namespace greca {

GroupRecommender::GroupRecommender(const RatingsDataset& universe,
                                   const FacebookStudy& study,
                                   RecommenderOptions options)
    : universe_(&universe),
      study_(&study),
      options_(options),
      knn_(universe, options.knn),
      periodic_(PeriodicAffinity::Compute(study.likes, study.periods)),
      dynamic_(DynamicAffinityIndex::Build(periodic_)) {
  const std::size_t n = study.num_participants();
  predictions_.reserve(n);
  for (UserId su = 0; su < n; ++su) {
    predictions_.push_back(
        knn_.PredictAll(study.study_ratings.RatingsOfUser(su)));
  }
  static_ = ComputeCommonFriendCounts(study.graph);
  source_ = std::make_shared<StudyAffinitySource>(static_, periodic_, &dynamic_);
  // One shared, immutable sorted-preference index over the popular-item
  // pool; every query (and every batch worker) slices it by prefix.
  index_ = std::make_shared<const PreferenceIndex>(PreferenceIndex::Build(
      predictions_, /*scale_max=*/5.0,
      universe.TopPopularItems(options.max_candidate_items),
      universe.num_items()));
}

void GroupRecommender::set_affinity_source(
    std::shared_ptr<const AffinitySource> source) {
  assert(source != nullptr);
  source_ = std::move(source);
}

Result<PeriodId> GroupRecommender::ResolvePeriod(
    std::optional<PeriodId> requested) const {
  const auto last =
      static_cast<PeriodId>(study_->periods.num_periods() - 1);
  if (!requested.has_value()) return last;
  if (*requested > last) {
    return Status::OutOfRange("eval_period " + std::to_string(*requested) +
                              " out of range [0, " + std::to_string(last) +
                              "]");
  }
  return *requested;
}

Status GroupRecommender::ValidateQuery(std::span<const UserId> group,
                                       const QuerySpec& spec) const {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  // The seen-bitmask in GRECA's runtime state caps its groups at 32
  // members; the naive scan and TA have no such limit.
  if (spec.algorithm == Algorithm::kGreca && group.size() > 32) {
    return Status::InvalidArgument(
        "GRECA is limited to 32-member groups (got " +
        std::to_string(group.size()) + "); use kNaive or kTa");
  }
  if (spec.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (spec.num_candidate_items == 0) {
    return Status::InvalidArgument("candidate pool must not be empty");
  }
  const std::size_t n = study_->num_participants();
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] >= n) {
      return Status::NotFound("unknown study participant " +
                              std::to_string(group[i]) + " (study has " +
                              std::to_string(n) + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (group[j] == group[i]) {
        return Status::InvalidArgument("duplicate group member " +
                                       std::to_string(group[i]));
      }
    }
  }
  const Result<PeriodId> period = ResolvePeriod(spec.eval_period);
  if (!period.ok()) return period.status();
  if (spec.model.affinity_aware && spec.model.time_aware &&
      period.value() >= source_->num_periods()) {
    return Status::FailedPrecondition(
        "affinity source covers only " +
        std::to_string(source_->num_periods()) + " periods");
  }
  return Status::Ok();
}

std::span<const Score> GroupRecommender::Predictions(UserId study_user) const {
  assert(study_user < predictions_.size());
  return predictions_[study_user];
}

double GroupRecommender::RatingSimilarity(UserId a, UserId b) const {
  // Pearson over co-rated movies: plain cosine of all-positive star vectors
  // is always close to 1 and cannot separate similar from dissimilar tastes.
  return PearsonSimilarity(study_->study_ratings.RatingsOfUser(a),
                           study_->study_ratings.RatingsOfUser(b));
}

double GroupRecommender::ModelAffinity(UserId a, UserId b,
                                       std::optional<PeriodId> period,
                                       const AffinityModelSpec& spec) const {
  const Result<PeriodId> resolved = ResolvePeriod(period);
  assert(resolved.ok() && "ModelAffinity requires an in-range period");
  if (!resolved.ok()) return 0.0;
  const PeriodId p = resolved.value();
  std::vector<double> averages = source_->PeriodAverages(p);
  std::vector<double> aff_p;
  aff_p.reserve(p + 1);
  for (PeriodId q = 0; q <= p; ++q) {
    aff_p.push_back(source_->Periodic(a, b, q));
  }
  const AffinityCombiner combiner(spec, std::move(averages));
  // Static affinity normalized by the population max (group context is not
  // available for a bare pair).
  return combiner.Combine(source_->NormalizedStatic(a, b), aff_p);
}

Result<GroupProblem> GroupRecommender::BuildProblem(
    std::span<const UserId> group, const QuerySpec& spec,
    std::vector<ItemId>* candidates_out, QueryWorkspace* workspace) const {
  if (Status s = ValidateQuery(group, spec); !s.ok()) return s;
  const PeriodId eval_period = ResolvePeriod(spec.eval_period).value();
  const std::size_t g = group.size();

  // The problem's views point into an arena: the caller's workspace when
  // given (reused across a batch), otherwise one the problem itself owns.
  std::unique_ptr<ProblemArena> owned_arena;
  if (workspace == nullptr) owned_arena = std::make_unique<ProblemArena>();
  ProblemArena& arena =
      workspace != nullptr ? workspace->arena : *owned_arena;

  // Candidate pool = keys [0, pool) of the shared index (the popularity
  // prefix); the group's already-rated items are tombstoned, not re-keyed
  // (§2.4 exclusion), so no preference list is sorted or copied per query.
  const std::size_t pool =
      std::min(spec.num_candidate_items, index_->pool_size());
  arena.tombstones.assign((pool + 63) / 64, 0);
  if (options_.exclude_group_rated) {
    for (const UserId su : group) {
      for (const auto& e : study_->study_ratings.RatingsOfUser(su)) {
        const std::uint32_t key = index_->PoolPositionOf(e.item);
        if (key < pool) arena.tombstones[key >> 6] |= 1ull << (key & 63u);
      }
    }
  }
  std::size_t tombstoned = 0;
  for (const std::uint64_t word : arena.tombstones) {
    tombstoned += static_cast<std::size_t>(std::popcount(word));
  }
  const std::size_t live = pool - tombstoned;

  arena.preference_views.clear();
  arena.preference_views.reserve(g);
  for (const UserId su : group) {
    arena.preference_views.push_back(
        index_->UserView(su, pool, arena.tombstones, live));
  }

  // Affinity lists come only from the pluggable source: the static list is
  // group-normalized (paper §4.1.2), plus one periodic list per period
  // 0..eval_period. Time- or affinity-agnostic variants read no periodic
  // lists at all. All land in the arena's reusable buffers.
  source_->MaterializeStaticListInto(group, arena.entry_scratch,
                                     arena.static_list);
  arena.period_views.clear();
  std::vector<double> averages;
  if (spec.model.time_aware && spec.model.affinity_aware) {
    const std::size_t periods = static_cast<std::size_t>(eval_period) + 1;
    if (arena.period_lists.size() < periods) {
      arena.period_lists.resize(periods);  // grow-only, capacity is kept
    }
    arena.period_views.reserve(periods);
    for (PeriodId p = 0; p <= eval_period; ++p) {
      source_->MaterializePeriodListInto(group, p, arena.entry_scratch,
                                         arena.period_lists[p]);
      arena.period_views.emplace_back(arena.period_lists[p]);
    }
    averages = source_->PeriodAverages(eval_period);
  }

  // Pair-wise disagreement consensus reads its own agreement list (Lemma 1's
  // "pair-wise disagreement lists"); since the lists are built per ad-hoc
  // group anyway, the per-pair components are pre-aggregated into one
  // group-agreement list — identical scores, tighter bounds, fewer lists.
  arena.agreement_views.clear();
  if (spec.consensus.disagreement == DisagreementKind::kPairwise && g >= 2) {
    BuildGroupAgreementListInto(arena.preference_views, pool,
                                spec.consensus.disagreement_scale,
                                arena.entry_scratch, arena.agreement_list);
    arena.agreement_views.emplace_back(arena.agreement_list);
  }

  AffinityCombiner combiner(spec.model, std::move(averages));
  if (candidates_out != nullptr) {
    const std::span<const ItemId> items = index_->pool();
    candidates_out->assign(items.begin(), items.begin() + pool);
  }
  return GroupProblem(pool, live, arena.preference_views,
                      ListView(arena.static_list), arena.period_views,
                      std::move(combiner), spec.consensus,
                      arena.agreement_views, std::move(owned_arena));
}

Result<Recommendation> GroupRecommender::Recommend(
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace* workspace) const {
  QueryWorkspace local;
  QueryWorkspace& ws = workspace != nullptr ? *workspace : local;
  Result<GroupProblem> problem = BuildProblem(group, spec, nullptr, &ws);
  if (!problem.ok()) return problem.status();

  Recommendation rec;
  switch (spec.algorithm) {
    case Algorithm::kGreca: {
      GrecaConfig config;
      config.k = spec.k;
      config.termination = spec.termination;
      rec.raw = Greca(problem.value(), config, &rec.greca_stats, &ws.greca);
      break;
    }
    case Algorithm::kNaive:
      rec.raw = NaiveTopK(problem.value(), spec.k);
      break;
    case Algorithm::kTa:
      rec.raw = TaTopK(problem.value(), spec.k);
      break;
  }
  rec.items.reserve(rec.raw.items.size());
  rec.scores.reserve(rec.raw.items.size());
  const std::span<const ItemId> pool = index_->pool();
  for (const ListEntry& e : rec.raw.items) {
    rec.items.push_back(pool[e.id]);  // problem keys are pool positions
    rec.scores.push_back(e.score);
  }
  return rec;
}

}  // namespace greca
