#include "core/group_recommender.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "cf/preference_list.h"
#include "cf/similarity.h"
#include "topk/naive.h"
#include "topk/ta.h"

namespace greca {

GroupRecommender::GroupRecommender(const RatingsDataset& universe,
                                   const FacebookStudy& study,
                                   RecommenderOptions options)
    : universe_(&universe),
      study_(&study),
      options_(options),
      knn_(universe, options.knn),
      periodic_(PeriodicAffinity::Compute(study.likes, study.periods)),
      dynamic_(DynamicAffinityIndex::Build(periodic_)) {
  const std::size_t n = study.num_participants();
  predictions_.reserve(n);
  for (UserId su = 0; su < n; ++su) {
    predictions_.push_back(
        knn_.PredictAll(study.study_ratings.RatingsOfUser(su)));
  }
  static_ = ComputeCommonFriendCounts(study.graph);
  popular_items_ = universe.TopPopularItems(options.max_candidate_items);
}

PeriodId GroupRecommender::ResolvePeriod(PeriodId requested) const {
  const auto last =
      static_cast<PeriodId>(study_->periods.num_periods() - 1);
  return requested == QuerySpec::kLastPeriod ? last
                                             : std::min(requested, last);
}

std::span<const Score> GroupRecommender::Predictions(UserId study_user) const {
  assert(study_user < predictions_.size());
  return predictions_[study_user];
}

double GroupRecommender::RatingSimilarity(UserId a, UserId b) const {
  // Pearson over co-rated movies: plain cosine of all-positive star vectors
  // is always close to 1 and cannot separate similar from dissimilar tastes.
  return PearsonSimilarity(study_->study_ratings.RatingsOfUser(a),
                           study_->study_ratings.RatingsOfUser(b));
}

double GroupRecommender::ModelAffinity(UserId a, UserId b, PeriodId period,
                                       const AffinityModelSpec& spec) const {
  const PeriodId p = ResolvePeriod(period);
  std::vector<double> averages;
  std::vector<double> aff_p;
  for (PeriodId q = 0; q <= p; ++q) {
    averages.push_back(periodic_.PopulationAverageNormalized(q));
    aff_p.push_back(periodic_.Normalized(a, b, q));
  }
  const AffinityCombiner combiner(spec, std::move(averages));
  // Static affinity normalized by the population max (group context is not
  // available for a bare pair).
  const double max_static = static_.Max();
  const double aff_s = max_static > 0.0 ? static_.Get(a, b) / max_static : 0.0;
  return combiner.Combine(aff_s, aff_p);
}

GroupProblem GroupRecommender::BuildProblem(
    std::span<const UserId> group, const QuerySpec& spec,
    std::vector<ItemId>* candidates_out) const {
  assert(!group.empty());
  const PeriodId eval_period = ResolvePeriod(spec.eval_period);
  const std::size_t g = group.size();

  // Candidate pool: top-N popular items minus the group's rated items.
  std::unordered_set<ItemId> rated;
  if (options_.exclude_group_rated) {
    for (const UserId su : group) {
      for (const auto& e : study_->study_ratings.RatingsOfUser(su)) {
        rated.insert(e.item);
      }
    }
  }
  std::vector<ItemId> candidates;
  const std::size_t pool =
      std::min(spec.num_candidate_items, popular_items_.size());
  candidates.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    if (!rated.contains(popular_items_[i])) {
      candidates.push_back(popular_items_[i]);
    }
  }
  const auto m = static_cast<ListKey>(candidates.size());

  // Preference lists (apref normalized to [0, 1] by the 5-star scale).
  std::vector<SortedList> pref_lists;
  pref_lists.reserve(g);
  for (const UserId su : group) {
    pref_lists.push_back(SortedList::FromUnsorted(
        BuildPreferenceEntries(predictions_[su], 5.0, candidates), m));
  }

  // Static affinity list, normalized within the group (paper §4.1.2).
  const std::vector<double> static_vals = NormalizeWithinGroup(static_, group);
  const auto num_pairs = static_cast<ListKey>(static_vals.size());
  std::vector<ListEntry> static_entries;
  static_entries.reserve(static_vals.size());
  for (ListKey q = 0; q < num_pairs; ++q) {
    static_entries.push_back({q, static_vals[q]});
  }
  SortedList static_list =
      SortedList::FromUnsorted(std::move(static_entries), num_pairs);

  // One periodic affinity list per period 0..eval_period.
  std::vector<SortedList> period_lists;
  std::vector<double> averages;
  for (PeriodId p = 0; p <= eval_period; ++p) {
    std::vector<ListEntry> entries;
    entries.reserve(static_vals.size());
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        const auto q =
            static_cast<ListKey>(LocalPairIndex(a, b, g));
        entries.push_back({q, periodic_.Normalized(group[a], group[b], p)});
      }
    }
    period_lists.push_back(
        SortedList::FromUnsorted(std::move(entries), num_pairs));
    averages.push_back(periodic_.PopulationAverageNormalized(p));
  }
  if (!spec.model.time_aware || !spec.model.affinity_aware) {
    // Time-agnostic variants read no periodic lists at all.
    period_lists.clear();
    averages.clear();
  }

  // Pair-wise disagreement consensus reads its own agreement list (Lemma 1's
  // "pair-wise disagreement lists"); since the lists are built per ad-hoc
  // group anyway, the per-pair components are pre-aggregated into one
  // group-agreement list — identical scores, tighter bounds, fewer lists.
  std::vector<SortedList> agreement_lists;
  if (spec.consensus.disagreement == DisagreementKind::kPairwise && g >= 2) {
    agreement_lists.push_back(BuildGroupAgreementList(
        pref_lists, m, spec.consensus.disagreement_scale));
  }

  AffinityCombiner combiner(spec.model, std::move(averages));
  if (candidates_out != nullptr) *candidates_out = candidates;
  return GroupProblem(m, std::move(pref_lists), std::move(static_list),
                      std::move(period_lists), std::move(combiner),
                      spec.consensus, std::move(agreement_lists));
}

Recommendation GroupRecommender::Recommend(std::span<const UserId> group,
                                           const QuerySpec& spec) const {
  std::vector<ItemId> candidates;
  const GroupProblem problem = BuildProblem(group, spec, &candidates);

  Recommendation rec;
  switch (spec.algorithm) {
    case Algorithm::kGreca: {
      GrecaConfig config;
      config.k = spec.k;
      config.termination = spec.termination;
      rec.raw = Greca(problem, config, &rec.greca_stats);
      break;
    }
    case Algorithm::kNaive:
      rec.raw = NaiveTopK(problem, spec.k);
      break;
    case Algorithm::kTa:
      rec.raw = TaTopK(problem, spec.k);
      break;
  }
  rec.items.reserve(rec.raw.items.size());
  rec.scores.reserve(rec.raw.items.size());
  for (const ListEntry& e : rec.raw.items) {
    rec.items.push_back(candidates[e.id]);
    rec.scores.push_back(e.score);
  }
  return rec;
}

}  // namespace greca
