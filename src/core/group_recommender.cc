#include "core/group_recommender.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "cf/similarity.h"
#include "core/problem_assembly.h"
#include "dataset/social_graph.h"

namespace greca {

GroupRecommender::GroupRecommender(const RatingsDataset& universe,
                                   const FacebookStudy& study,
                                   RecommenderOptions options)
    : universe_(&universe),
      study_(&study),
      options_(options),
      knn_(universe, options.knn),
      periodic_(PeriodicAffinity::Compute(study.likes, study.periods)),
      dynamic_(DynamicAffinityIndex::Build(periodic_)) {
  if (options_.update_threads > 0) {
    update_pool_ = std::make_unique<ThreadPool>(options_.update_threads);
  }
  const std::size_t n = study.num_participants();
  auto predictions = std::make_shared<std::vector<std::vector<Score>>>();
  predictions->reserve(n);
  for (UserId su = 0; su < n; ++su) {
    predictions->push_back(
        knn_.PredictAll(study.study_ratings.RatingsOfUser(su)));
  }
  static_ = ComputeCommonFriendCounts(study.graph);
  // Influence weights for kInfluence queries: propagation centrality over
  // the friendship graph, shared by every snapshot generation (the study
  // graph is immutable).
  auto influence = std::make_shared<const std::vector<double>>(
      PropagationCentrality(study.graph));
  auto source = std::make_shared<StudyAffinitySource>(
      static_, periodic_, &dynamic_, std::move(influence));
  // One shared, immutable sorted-preference index over the popular-item
  // pool; every query (and every batch worker) slices it by prefix. Banded
  // rows (the default) keep small-prefix scans proportional to the prefix;
  // the flat fallback stores one globally sorted row per user.
  std::vector<ItemId> pool =
      universe.TopPopularItems(options.max_candidate_items);
  const std::vector<std::uint32_t> breakpoints =
      options.index_layout == IndexLayout::kBanded
          ? PreferenceIndex::GeometricBandBreakpoints(pool.size(),
                                                      options.min_band_size)
          : std::vector<std::uint32_t>{};
  auto index = std::make_shared<const PreferenceIndex>(PreferenceIndex::Build(
      *predictions, /*scale_max=*/5.0, std::move(pool), universe.num_items(),
      breakpoints, options_.build_flat_twin));
  // Generation 1 aliases the study-owned ratings (non-owning shared_ptr —
  // the study outlives the recommender by contract) under an empty delta
  // log; live updates accumulate in later generations' logs until a
  // compaction owns a fresh base.
  auto base = std::shared_ptr<const RatingsDataset>(
      std::shared_ptr<const void>(), &study.study_ratings);
  snapshot_ = std::make_shared<const Snapshot>(
      /*generation=*/1,
      std::make_shared<const RatingsOverlay>(std::move(base)),
      std::move(predictions), std::move(index), std::move(source),
      std::make_shared<PeriodListCache>(options_.period_cache_max_entries),
      options_.tombstone_cache_max_entries);
}

std::uint64_t GroupRecommender::Publish(
    std::shared_ptr<const RatingsOverlay> ratings,
    std::shared_ptr<const std::vector<std::vector<Score>>> preds,
    std::shared_ptr<const PreferenceIndex> index,
    std::shared_ptr<const AffinitySource> source,
    std::shared_ptr<PeriodListCache> cache) {
  // All building happened before this point; the swap itself is O(1).
  const std::uint64_t generation = next_generation_++;
  auto next = std::make_shared<const Snapshot>(
      generation, std::move(ratings), std::move(preds), std::move(index),
      std::move(source), std::move(cache),
      options_.tombstone_cache_max_entries);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(next);
  return generation;
}

Status GroupRecommender::ApplyRatingUpdates(
    std::span<const RatingEvent> events, UpdateReport* report) {
  const std::size_t n = study_->num_participants();
  for (const RatingEvent& e : events) {
    if (e.user >= n) {
      return Status::NotFound("rating event for unknown study participant " +
                              std::to_string(e.user) + " (study has " +
                              std::to_string(n) + ")");
    }
    if (e.item >= universe_->num_items()) {
      return Status::NotFound("rating event for unknown universe item " +
                              std::to_string(e.item) + " (universe has " +
                              std::to_string(universe_->num_items()) + ")");
    }
    // A non-finite rating would poison the folded state permanently (CF
    // norms and similarities all turn NaN), so gate it with the rest.
    if (!std::isfinite(e.rating)) {
      return Status::InvalidArgument("rating event with non-finite rating");
    }
  }
  if (events.empty()) {
    // A no-op batch publishes nothing: callers polling generation ids can
    // rely on every increment meaning a real state change. The report still
    // carries the real current state (a zeroed generation would read as
    // "never published", a zeroed log size as "just compacted").
    if (report != nullptr) {
      const std::shared_ptr<const Snapshot> cur = snapshot();
      *report = UpdateReport{};
      report->published_generation = cur->generation();
      report->batches_coalesced = 1;
      report->delta_log_ratings = cur->ratings().delta_ratings();
    }
    return Status::Ok();
  }

  // Group commit: enqueue; the first caller to find no leader publishes
  // whole rounds until the queue drains, everyone else blocks until its
  // batch's round lands. Readers continue on the published snapshot either
  // way.
  PendingUpdate self;
  self.events = events;
  const Status status = commit_.Commit(
      self, [this](std::span<PendingUpdate* const> round) {
        PublishUpdateRound(round);
      });
  if (report != nullptr) *report = self.report;
  return status;
}

void GroupRecommender::PublishUpdateRound(
    std::span<PendingUpdate* const> round) {
  // Builds serialize with affinity swaps here; readers are never blocked.
  std::lock_guard<std::mutex> lock(update_mutex_);
  const std::shared_ptr<const Snapshot> cur = snapshot();

  // Fold each batch into the delta log in arrival order — O(delta), only
  // the touched users' rows are rebuilt. Per-batch attribution (applied vs
  // stale) falls out of folding batch by batch.
  std::shared_ptr<const RatingsOverlay> overlay = cur->ratings_ptr();
  std::vector<UserId> touched;
  std::vector<RatingRecord> records;  // the overlay speaks dataset records
  std::size_t round_applied = 0;
  for (PendingUpdate* batch : round) {
    records.clear();
    records.reserve(batch->events.size());
    for (const RatingEvent& e : batch->events) {
      records.push_back({e.user, e.item, e.rating, e.timestamp});
    }
    RatingsOverlay::ApplyStats stats;
    overlay = overlay->WithEvents(records, &stats);
    batch->report = UpdateReport{};
    batch->report.events_applied = stats.applied;
    batch->report.events_ignored_stale = stats.ignored_stale;
    batch->report.batches_coalesced = round.size();
    touched.insert(touched.end(), stats.touched_users.begin(),
                   stats.touched_users.end());
    round_applied += stats.applied;
  }
  if (round_applied == 0) {
    // Every event in the round was stale: nothing changed, publish nothing.
    for (PendingUpdate* batch : round) {
      batch->report.published_generation = cur->generation();
      batch->report.delta_log_ratings = overlay->delta_ratings();
    }
    return;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Compaction: fold the delta log back into a fresh immutable base when
  // the policy triggers — still off the serving path, and amortized across
  // the publishes since the last fold.
  bool compacted = false;
  if ((options_.compact_every_n_publishes > 0 &&
       publishes_since_compaction_ + 1 >= options_.compact_every_n_publishes) ||
      (options_.compact_delta_fraction > 0.0 &&
       static_cast<double>(overlay->delta_ratings()) >
           options_.compact_delta_fraction *
               static_cast<double>(overlay->base().num_ratings()))) {
    overlay = std::make_shared<const RatingsOverlay>(
        std::make_shared<const RatingsDataset>(overlay->Compact()));
    compacted = true;
  }

  // Rebuild CF predictions + index rows for the touched users only, reading
  // through the merged view (base + delta) — identical input to a full
  // re-fold, so the rebuilt rows are bit-identical too. With an update pool
  // the per-row work (CF predict + index re-sort) fans out over the workers;
  // rows are disjoint, so the parallel result is bit-identical to the serial
  // fallback (tests/delta_log_test.cc asserts it).
  auto preds = std::make_shared<std::vector<std::vector<Score>>>(
      *cur->predictions_ptr());
  if (update_pool_ != nullptr && touched.size() > 1) {
    std::vector<std::vector<UserRatingEntry>> scratch(update_pool_->size());
    update_pool_->ParallelFor(
        touched.size(), [&](std::size_t worker, std::size_t i) {
          const UserId su = touched[i];
          (*preds)[su] =
              knn_.PredictAll(overlay->MergedRatingsOfUser(su, scratch[worker]));
        });
  } else {
    std::vector<UserRatingEntry> scratch;
    for (const UserId su : touched) {
      (*preds)[su] = knn_.PredictAll(overlay->MergedRatingsOfUser(su, scratch));
    }
  }
  std::vector<std::span<const Score>> touched_preds;
  touched_preds.reserve(touched.size());
  for (const UserId su : touched) touched_preds.emplace_back((*preds)[su]);
  auto index = std::make_shared<const PreferenceIndex>(
      cur->index().CloneWithUpdatedRows(touched, touched_preds,
                                        update_pool_.get()));

  const std::size_t delta_after = overlay->delta_ratings();
  // The affinity binding is unchanged (compaction included), so the
  // period-list cache carries forward: a steady rating-update stream never
  // re-colds it.
  const std::uint64_t generation =
      Publish(std::move(overlay), std::move(preds), std::move(index),
              cur->affinity_ptr(), cur->period_cache_ptr());
  publishes_since_compaction_ =
      compacted ? 0 : publishes_since_compaction_ + 1;
  for (PendingUpdate* batch : round) {
    batch->report.published_generation = generation;
    batch->report.users_rebuilt = touched.size();
    batch->report.compacted = compacted;
    batch->report.delta_log_ratings = delta_after;
  }
}

Status GroupRecommender::UpdateAffinitySource(
    std::shared_ptr<const AffinitySource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("affinity source must not be null");
  }
  std::lock_guard<std::mutex> lock(update_mutex_);
  const std::shared_ptr<const Snapshot> cur = snapshot();
  // New affinity binding → the period lists change: start a cold cache
  // (bounded by the same policy as the construction-time one).
  Publish(cur->ratings_ptr(), cur->predictions_ptr(), cur->index_ptr(),
          std::move(source),
          std::make_shared<PeriodListCache>(options_.period_cache_max_entries));
  return Status::Ok();
}

void GroupRecommender::set_affinity_source(
    std::shared_ptr<const AffinitySource> source) {
  assert(source != nullptr);
  const Status status = UpdateAffinitySource(std::move(source));
  assert(status.ok());
  (void)status;
}

Result<PeriodId> GroupRecommender::ResolvePeriod(
    std::optional<PeriodId> requested) const {
  return ResolveEvalPeriod(requested, study_->periods.num_periods());
}

Status GroupRecommender::ValidateQuery(std::span<const UserId> group,
                                       const QuerySpec& spec) const {
  return ValidateQuery(*snapshot(), group, spec);
}

Status GroupRecommender::ValidateQuery(const Snapshot& snap,
                                       std::span<const UserId> group,
                                       const QuerySpec& spec) const {
  return ValidateGroupQuery(group, spec, study_->num_participants(),
                            study_->periods.num_periods(),
                            snap.affinity().num_periods());
}

std::span<const Score> GroupRecommender::Predictions(UserId study_user) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  assert(study_user < snap->num_users());
  return snap->predictions(study_user);
}

double GroupRecommender::RatingSimilarity(UserId a, UserId b) const {
  // Pearson over co-rated movies: plain cosine of all-positive star vectors
  // is always close to 1 and cannot separate similar from dissimilar tastes.
  return PearsonSimilarity(study_->study_ratings.RatingsOfUser(a),
                           study_->study_ratings.RatingsOfUser(b));
}

double GroupRecommender::ModelAffinity(UserId a, UserId b,
                                       std::optional<PeriodId> period,
                                       const AffinityModelSpec& spec) const {
  const Result<PeriodId> resolved = ResolvePeriod(period);
  assert(resolved.ok() && "ModelAffinity requires an in-range period");
  if (!resolved.ok()) return 0.0;
  const PeriodId p = resolved.value();
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const AffinitySource& source = snap->affinity();
  std::vector<double> averages = source.PeriodAverages(p);
  std::vector<double> aff_p;
  aff_p.reserve(p + 1);
  for (PeriodId q = 0; q <= p; ++q) {
    aff_p.push_back(source.Periodic(a, b, q));
  }
  const AffinityCombiner combiner(spec, std::move(averages));
  // Static affinity normalized by the population max (group context is not
  // available for a bare pair).
  return combiner.Combine(source.NormalizedStatic(a, b), aff_p);
}

Result<GroupProblem> GroupRecommender::BuildProblem(
    std::span<const UserId> group, const QuerySpec& spec,
    std::vector<ItemId>* candidates_out, QueryWorkspace* workspace) const {
  return BuildProblem(snapshot(), group, spec, candidates_out, workspace);
}

Result<GroupProblem> GroupRecommender::BuildProblem(
    const std::shared_ptr<const Snapshot>& snap,
    std::span<const UserId> group, const QuerySpec& spec,
    std::vector<ItemId>* candidates_out, QueryWorkspace* workspace) const {
  if (snap == nullptr) {
    return Status::InvalidArgument("snapshot must not be null");
  }
  if (Status s = ValidateQuery(*snap, group, spec); !s.ok()) return s;
  const PeriodId eval_period = ResolvePeriod(spec.eval_period).value();

  // Single-index scatter: every member's rows live in the snapshot's one
  // index/overlay. The shared assembly (core/problem_assembly.h) does the
  // rest — the sharded engine feeds it per-shard slices instead and gets
  // bit-identical problems.
  std::vector<MemberSlice> local_slices;
  std::vector<MemberSlice>& slices =
      workspace != nullptr ? workspace->arena.member_slices : local_slices;
  slices.clear();
  slices.reserve(group.size());
  for (const UserId su : group) {
    slices.push_back({&snap->index(), su, &snap->ratings(), su});
  }
  StampMemberWeights(snap->affinity(), group, spec, slices);
  AssemblyContext ctx;
  ctx.key_index = &snap->index();
  ctx.affinity = &snap->affinity();
  ctx.period_cache = snap->period_cache_ptr().get();
  ctx.tombstone_cache = snap->tombstone_cache_ptr().get();
  ctx.exclude_group_rated = options_.exclude_group_rated;
  GroupProblem problem = AssembleGroupProblem(ctx, group, slices, spec,
                                              eval_period, candidates_out,
                                              workspace);
  // The problem's views alias the snapshot's index rows and cached period
  // lists: share ownership so they survive a concurrent publish.
  problem.PinLifetime(snap);
  return problem;
}

Result<Recommendation> GroupRecommender::Recommend(
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace* workspace) const {
  return Recommend(snapshot(), group, spec, workspace);
}

Result<Recommendation> GroupRecommender::Recommend(
    const std::shared_ptr<const Snapshot>& snap,
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace* workspace) const {
  QueryWorkspace local;
  QueryWorkspace& ws = workspace != nullptr ? *workspace : local;
  Result<GroupProblem> problem = BuildProblem(snap, group, spec, nullptr, &ws);
  if (!problem.ok()) return problem.status();
  return SolveGroupProblem(problem.value(), spec, snap->index().pool(), ws);
}

}  // namespace greca
