#include "core/greca.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace greca {

namespace {

/// Mutable execution state of one GRECA run.
class GrecaRun {
 public:
  GrecaRun(const GroupProblem& problem, const GrecaConfig& config,
           GrecaStats* stats, GrecaWorkspace& ws)
      : problem_(problem),
        config_(config),
        stats_(stats),
        pref_pos_(ws.pref_pos),
        pref_bound_(ws.pref_bound),
        period_pos_(ws.period_pos),
        period_bound_(ws.period_bound),
        static_val_(ws.static_val),
        static_seen_(ws.static_seen),
        period_val_(ws.period_val),
        period_seen_(ws.period_seen),
        apref_val_(ws.apref_val),
        apref_seen_(ws.apref_seen),
        item_state_(ws.item_state),
        active_items_(ws.active_items),
        ag_pos_(ws.ag_pos),
        ag_bound_(ws.ag_bound),
        ag_val_(ws.ag_val),
        ag_seen_(ws.ag_seen),
        ag_iv_(ws.ag_iv),
        pair_iv_(ws.pair_iv),
        aff_p_iv_(ws.aff_p_iv),
        apref_iv_(ws.apref_iv),
        pref_iv_(ws.pref_iv),
        item_lb_(ws.item_lb),
        item_ub_(ws.item_ub),
        scratch_lbs_(ws.scratch_lbs),
        g_(problem.group_size()),
        num_pairs_(problem.num_pairs()),
        num_periods_(problem.num_periods()),
        m_(problem.num_items()),
        num_ag_(problem.num_agreement_lists()),
        ag_floor_(1.0 - problem.consensus().disagreement_scale),
        uses_agreements_(problem.uses_agreement_lists()) {
    pref_pos_.assign(g_, 0);
    pref_bound_.assign(g_, 1.0);
    static_pos_ = 0;
    static_bound_ = 1.0;
    period_pos_.assign(num_periods_, 0);
    period_bound_.assign(num_periods_, 1.0);

    static_val_.assign(num_pairs_, 0.0);
    static_seen_.assign(num_pairs_, 0);
    period_val_.assign(num_periods_ * num_pairs_, 0.0);
    period_seen_.assign(num_periods_ * num_pairs_, 0);

    apref_val_.assign(m_ * g_, 0.0);
    apref_seen_.assign(m_, 0u);
    item_state_.assign(m_, kUnseen);
    active_items_.clear();

    if (uses_agreements_) {
      ag_pos_.assign(num_ag_, 0);
      ag_bound_.assign(num_ag_, 1.0);
      ag_val_.assign(m_ * num_ag_, 0.0);
      ag_seen_.assign(m_ * num_ag_, 0);
      ag_iv_.resize(num_ag_);
    }

    // Scratch buffers reused across bound computations.
    pair_iv_.resize(num_pairs_);
    aff_p_iv_.resize(num_periods_);
    apref_iv_.resize(g_);
    pref_iv_.resize(g_);
  }

  TopKResult Run() {
    TopKResult result;
    result.total_entries = problem_.TotalEntries();
    assert(g_ <= 32 && "seen-bitmask limits groups to 32 members");

    bool stopped = false;
    while (!stopped && !AllExhausted()) {
      DoRound(result.accesses);
      ++result.rounds;
      const bool due = result.rounds % config_.check_interval == 0;
      if (due || AllExhausted()) {
        stopped = CheckStop();
      }
    }
    result.early_terminated = stopped && !AllExhausted();
    result.items = ExtractTopK();
    return result;
  }

 private:
  static constexpr std::uint8_t kUnseen = 0;
  static constexpr std::uint8_t kActive = 1;
  static constexpr std::uint8_t kPruned = 2;

  // List cursors are opaque to us (flat views store a raw position, banded
  // views a consumed-live count — see list_view.h); SkipToLive positions
  // them past dead entries (uncounted), so exhaustion and reads see only
  // live entries — identical accounting to the owning-list path.
  bool AllExhausted() {
    for (std::size_t u = 0; u < g_; ++u) {
      if (problem_.preference_lists()[u].SkipToLive(pref_pos_[u])) {
        return false;
      }
    }
    if (problem_.static_affinity().SkipToLive(static_pos_)) return false;
    for (std::size_t t = 0; t < num_periods_; ++t) {
      if (problem_.period_affinity()[t].SkipToLive(period_pos_[t])) {
        return false;
      }
    }
    for (std::size_t q = 0; q < num_ag_; ++q) {
      if (problem_.agreement_lists()[q].SkipToLive(ag_pos_[q])) return false;
    }
    return true;
  }

  /// One round-robin sweep: one sequential access on every non-exhausted
  /// list (Algorithm 1's getNext()).
  void DoRound(AccessCounter& counter) {
    for (std::size_t u = 0; u < g_; ++u) {
      const ListView& list = problem_.preference_lists()[u];
      if (!list.SkipToLive(pref_pos_[u])) continue;
      const ListEntry& e = list.ReadSequential(pref_pos_[u], counter);
      pref_bound_[u] = e.score;
      apref_val_[e.id * g_ + u] = e.score;
      apref_seen_[e.id] |= (1u << u);
      if (item_state_[e.id] == kUnseen) {
        item_state_[e.id] = kActive;
        active_items_.push_back(e.id);
      }
    }
    {
      const ListView& list = problem_.static_affinity();
      if (list.SkipToLive(static_pos_)) {
        const ListEntry& e = list.ReadSequential(static_pos_, counter);
        static_bound_ = e.score;
        static_val_[e.id] = e.score;
        static_seen_[e.id] = 1;
      }
    }
    for (std::size_t t = 0; t < num_periods_; ++t) {
      const ListView& list = problem_.period_affinity()[t];
      if (!list.SkipToLive(period_pos_[t])) continue;
      const ListEntry& e = list.ReadSequential(period_pos_[t], counter);
      period_bound_[t] = e.score;
      period_val_[t * num_pairs_ + e.id] = e.score;
      period_seen_[t * num_pairs_ + e.id] = 1;
    }
    for (std::size_t q = 0; q < num_ag_; ++q) {
      const ListView& list = problem_.agreement_lists()[q];
      if (!list.SkipToLive(ag_pos_[q])) continue;
      const ListEntry& e = list.ReadSequential(ag_pos_[q], counter);
      ag_bound_[q] = e.score;
      ag_val_[e.id * num_ag_ + q] = e.score;
      ag_seen_[e.id * num_ag_ + q] = 1;
      if (item_state_[e.id] == kUnseen) {
        item_state_[e.id] = kActive;
        active_items_.push_back(e.id);
      }
    }
  }

  /// Refreshes the temporal affinity interval of every group pair from the
  /// seen values and current cursor bounds.
  void RefreshPairIntervals() {
    for (std::size_t q = 0; q < num_pairs_; ++q) {
      const Interval aff_s = static_seen_[q]
                                 ? Interval::Exact(static_val_[q])
                                 : Interval{0.0, static_bound_};
      for (std::size_t t = 0; t < num_periods_; ++t) {
        const std::size_t idx = t * num_pairs_ + q;
        aff_p_iv_[t] = period_seen_[idx]
                           ? Interval::Exact(period_val_[idx])
                           : Interval{0.0, period_bound_[t]};
      }
      pair_iv_[q] = problem_.combiner().CombineInterval(aff_s, aff_p_iv_);
    }
  }

  /// Consensus-score interval of item `key` (ComputeLB/ComputeUB).
  Interval ItemInterval(ListKey key) {
    const std::uint32_t mask = apref_seen_[key];
    for (std::size_t u = 0; u < g_; ++u) {
      apref_iv_[u] = (mask >> u) & 1u
                         ? Interval::Exact(apref_val_[key * g_ + u])
                         : Interval{0.0, pref_bound_[u]};
    }
    problem_.MemberPreferenceIntervals(apref_iv_, pair_iv_, pref_iv_);
    if (!uses_agreements_) {
      return ConsensusInterval(problem_.consensus(), pref_iv_,
                               problem_.consensus_weights());
    }
    for (std::size_t q = 0; q < num_ag_; ++q) {
      const std::size_t idx = key * num_ag_ + q;
      ag_iv_[q] = ag_seen_[idx] ? Interval::Exact(ag_val_[idx])
                                : Interval{ag_floor_, ag_bound_[q]};
    }
    return ConsensusIntervalWithAgreements(problem_.consensus(), pref_iv_,
                                           ag_iv_,
                                           problem_.consensus_weights());
  }

  /// ComputeTh: the best consensus score any *unseen* item could reach given
  /// the current cursor positions.
  double Threshold() {
    for (std::size_t u = 0; u < g_; ++u) {
      apref_iv_[u] = Interval{0.0, pref_bound_[u]};
    }
    problem_.MemberPreferenceIntervals(apref_iv_, pair_iv_, pref_iv_);
    if (!uses_agreements_) {
      return ConsensusInterval(problem_.consensus(), pref_iv_,
                               problem_.consensus_weights())
          .ub;
    }
    for (std::size_t q = 0; q < num_ag_; ++q) {
      ag_iv_[q] = Interval{ag_floor_, ag_bound_[q]};
    }
    return ConsensusIntervalWithAgreements(problem_.consensus(), pref_iv_,
                                           ag_iv_,
                                           problem_.consensus_weights())
        .ub;
  }

  /// Evaluates the stopping conditions; returns true when the run may stop.
  bool CheckStop() {
    if (stats_ != nullptr) {
      ++stats_->stop_checks;
      stats_->peak_buffer_size =
          std::max(stats_->peak_buffer_size, active_items_.size());
    }
    const std::size_t k = config_.k;
    if (active_items_.size() < k) return AllExhausted();

    RefreshPairIntervals();
    item_lb_.resize(m_);
    item_ub_.resize(m_);
    for (const ListKey key : active_items_) {
      const Interval iv = ItemInterval(key);
      item_lb_[key] = iv.lb;
      item_ub_[key] = iv.ub;
    }

    // k-th largest lower bound among active items.
    scratch_lbs_.clear();
    for (const ListKey key : active_items_) scratch_lbs_.push_back(item_lb_[key]);
    std::nth_element(scratch_lbs_.begin(),
                     scratch_lbs_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     scratch_lbs_.end(), std::greater<>());
    const double kth_lb = scratch_lbs_[k - 1];

    const double th = Threshold();
    if (stats_ != nullptr) stats_->final_threshold = th;

    if (config_.termination == TerminationPolicy::kBufferCondition) {
      // Prune buffered items that can no longer enter the top-k. Keep the k
      // items with the highest lower bounds (ties broken towards keeping).
      std::size_t kept_at_least = 0;
      std::size_t write = 0;
      for (std::size_t r = 0; r < active_items_.size(); ++r) {
        const ListKey key = active_items_[r];
        const bool in_topk_by_lb =
            item_lb_[key] >= kth_lb && kept_at_least < k;
        bool keep;
        if (in_topk_by_lb) {
          keep = true;
          ++kept_at_least;
        } else {
          keep = item_ub_[key] > kth_lb;
        }
        if (keep) {
          active_items_[write++] = key;
        } else {
          item_state_[key] = kPruned;
          if (stats_ != nullptr) ++stats_->pruned_items;
          pruned_any_ = true;
        }
      }
      active_items_.resize(write);

      // Buffer condition: exactly k candidates survive. By Theorem 1 the
      // threshold condition is implied whenever anything was pruned; the
      // explicit threshold comparison covers the never-pruned case.
      if (active_items_.size() == k && (pruned_any_ || th <= kth_lb)) {
        if (stats_ != nullptr) {
          stats_->stopped_by_buffer_condition = pruned_any_;
        }
        return true;
      }
      return AllExhausted();
    }

    // Threshold-only policy: the classical condition can fire only when the
    // buffer itself holds exactly k items (paper §3.2).
    if (active_items_.size() == k && th <= kth_lb) return true;
    return AllExhausted();
  }

  std::vector<ListEntry> ExtractTopK() {
    // Final bounds for the surviving candidates.
    RefreshPairIntervals();
    std::vector<ListEntry> out;
    out.reserve(active_items_.size());
    for (const ListKey key : active_items_) {
      out.push_back({key, ItemInterval(key).lb});
    }
    std::sort(out.begin(), out.end(), [](const ListEntry& a, const ListEntry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    if (out.size() > config_.k) out.resize(config_.k);
    return out;
  }

  const GroupProblem& problem_;
  const GrecaConfig& config_;
  GrecaStats* stats_;

  // All bulk state lives in the (possibly caller-provided) workspace so its
  // capacity survives across runs; scalars stay run-local.

  // Cursors and last-read bounds per list.
  std::vector<std::size_t>& pref_pos_;
  std::vector<double>& pref_bound_;
  std::vector<std::size_t>& period_pos_;
  std::vector<double>& period_bound_;

  // Seen affinity components.
  std::vector<double>& static_val_;
  std::vector<std::uint8_t>& static_seen_;
  std::vector<double>& period_val_;
  std::vector<std::uint8_t>& period_seen_;

  // Seen absolute preferences per (item, member).
  std::vector<double>& apref_val_;
  std::vector<std::uint32_t>& apref_seen_;
  std::vector<std::uint8_t>& item_state_;
  std::vector<ListKey>& active_items_;

  // Agreement-list state (pairwise-disagreement consensus only).
  std::vector<std::size_t>& ag_pos_;
  std::vector<double>& ag_bound_;
  std::vector<double>& ag_val_;         // m × num_pairs
  std::vector<std::uint8_t>& ag_seen_;  // m × num_pairs
  std::vector<Interval>& ag_iv_;

  // Scratch.
  std::vector<Interval>& pair_iv_;
  std::vector<Interval>& aff_p_iv_;
  std::vector<Interval>& apref_iv_;
  std::vector<Interval>& pref_iv_;
  std::vector<double>& item_lb_;
  std::vector<double>& item_ub_;
  std::vector<double>& scratch_lbs_;

  const std::size_t g_;
  const std::size_t num_pairs_;
  const std::size_t num_periods_;
  const std::size_t m_;
  const std::size_t num_ag_;
  const double ag_floor_;
  const bool uses_agreements_;

  // Run-local cursor/flag scalars.
  std::size_t static_pos_ = 0;
  double static_bound_ = 1.0;
  bool pruned_any_ = false;
};

}  // namespace

TopKResult Greca(const GroupProblem& problem, const GrecaConfig& config,
                 GrecaStats* stats, GrecaWorkspace* workspace) {
  assert(config.k >= 1);
  assert(config.check_interval >= 1);
  GrecaWorkspace local;
  GrecaRun run(problem, config, stats, workspace != nullptr ? *workspace : local);
  return run.Run();
}

}  // namespace greca
