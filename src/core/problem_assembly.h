// Shared zero-copy problem assembly — the one implementation behind both
// serving facades.
//
// GroupRecommender::BuildProblem (single index) and the sharded engine's
// scatter/gather path (src/shard/) assemble EXACTLY the same GroupProblem:
// tombstoned pool-prefix candidates, one ListView per member sliced from a
// PreferenceIndex, the group-normalized static affinity list, cached period
// lists and the optional aggregated agreement list. This header extracts
// that assembly into free functions parameterized by WHERE each member's
// rows live (MemberSlice, topk/problem.h): the single-index path passes the
// snapshot's index/overlay for every member, the sharded path passes each
// member's own shard — and because every per-member input is identical
// either way, the assembled problems (and therefore recommendations and
// access counts) are bit-identical. That equivalence is the foundation of
// sharded_equivalence_test.
//
// All candidate keys are POOL POSITIONS of a shared popularity pool: every
// index participating in one assembly must have been built over the same
// pool (the sharded engine builds all shards from one pool vector), and
// `AssemblyContext::key_index` is any of them — used only for the pool and
// the item→key map.
#ifndef GRECA_CORE_PROBLEM_ASSEMBLY_H_
#define GRECA_CORE_PROBLEM_ASSEMBLY_H_

#include <optional>
#include <span>
#include <vector>

#include "affinity/affinity_source.h"
#include "api/snapshot.h"
#include "common/status.h"
#include "core/group_recommender.h"
#include "index/preference_index.h"
#include "topk/problem.h"

namespace greca {

/// The query-independent serving state one assembly reads (all non-owning;
/// the caller pins lifetimes — a Snapshot, a ShardedSnapshotSet — on the
/// returned problem).
struct AssemblyContext {
  /// Pool / item→key authority. Any index built over the shared pool.
  const PreferenceIndex* key_index = nullptr;
  const AffinitySource* affinity = nullptr;
  /// The (group, period) list cache; may be null only for models that read
  /// no period lists (!time_aware or !affinity_aware).
  PeriodListCache* period_cache = nullptr;
  /// The (group, pool) tombstone-bitmap memo — scoped to whatever pins the
  /// members' rated-item state (the Snapshot's generation on the monolithic
  /// path, the ShardedSnapshotSet's generation vector on the sharded path);
  /// null = build the bitmap per call.
  TombstoneCache* tombstone_cache = nullptr;
  bool exclude_group_rated = true;
};

/// The single resolution point for the last-period convention: nullopt
/// resolves to the last period, explicit in-range indices to themselves,
/// anything else to kOutOfRange. `num_periods` must be >= 1.
Result<PeriodId> ResolveEvalPeriod(std::optional<PeriodId> requested,
                                   std::size_t num_periods);

/// Validation shared by every facade: non-empty group of known, distinct
/// members, a registered solver (unknown QuerySpec::solver_id values are
/// rejected with kInvalidArgument; the resolved solver's own ValidateQuery
/// hook may veto further — GRECA caps groups at 32 members), k >= 1, a
/// non-empty candidate pool, an in-range evaluation period and (for
/// time+affinity aware models) an affinity source covering it.
Status ValidateGroupQuery(std::span<const UserId> group, const QuerySpec& spec,
                          std::size_t num_users, std::size_t num_periods,
                          std::size_t affinity_num_periods);

/// Scatter step for per-member consensus weights: when the query asks for
/// influence weighting, materializes the group's raw weights from the bound
/// AffinitySource into the slices' `weight` fields (uniform 1.0 otherwise —
/// including resetting slices reused from a previous weighted query). Call
/// after locating each member's rows, before AssembleGroupProblem; assembly
/// normalizes the raw weights to sum 1.
void StampMemberWeights(const AffinitySource& source,
                        std::span<const UserId> group, const QuerySpec& spec,
                        std::span<MemberSlice> slices);

/// Assembles the zero-copy GroupProblem for `group` at `eval_period`.
/// `members` is parallel to `group` (members[m] locates group[m]'s rows);
/// inputs must already be validated (ValidateGroupQuery) and the period
/// resolved. When `workspace` is non-null the problem's views point into its
/// arena (the workspace must outlive the problem and not be reused before
/// the problem is dropped); when null the problem owns a fresh arena, and
/// `members` only needs to live for the duration of this call either way.
/// `candidates_out`, when non-null, receives the candidate pool in key
/// order. The caller pins whatever owns the index rows on the result
/// (GroupProblem::PinLifetime); cached period lists are pinned internally.
GroupProblem AssembleGroupProblem(const AssemblyContext& ctx,
                                  std::span<const UserId> group,
                                  std::span<const MemberSlice> members,
                                  const QuerySpec& spec, PeriodId eval_period,
                                  std::vector<ItemId>* candidates_out,
                                  QueryWorkspace* workspace);

/// Dispatches the spec's RESOLVED solver (solver/solver_registry.h) over an
/// assembled problem and maps the result keys back to universe items through
/// `pool_items` (the shared pool, key order). `workspace` provides the
/// solvers' reusable buffers. The spec must have passed ValidateGroupQuery —
/// that is where unknown solver ids are rejected.
Recommendation SolveGroupProblem(GroupProblem& problem, const QuerySpec& spec,
                                 std::span<const ItemId> pool_items,
                                 QueryWorkspace& workspace);

}  // namespace greca

#endif  // GRECA_CORE_PROBLEM_ASSEMBLY_H_
