// High-level facade: builds group top-k problems from the datasets and runs
// the recommendation algorithms. Downstream applications normally reach it
// through the batch-first `Engine` in src/api/ (see examples/quickstart.cc);
// this layer stays usable directly for tests and benches.
//
// Pipeline per query (ad-hoc group G, evaluation period p):
//  1. candidate items = the top-C prefix of the popular-item pool, with
//     items any member already rated tombstoned (the problem definition
//     excludes individually known items, §2.4);
//  2. absolute preferences apref(u, ·) from user-based CF, precomputed per
//     study participant and held pre-sorted over the pool in one shared
//     PreferenceIndex — per query each member's list is a ListView slice of
//     the index (no sort, no copy);
//  3. static affinities from common friends, normalized within the group;
//  4. periodic affinities from common page-like categories per period,
//     served from the snapshot's (group, period) list cache;
//  5. the chosen temporal model + consensus function form a GroupProblem
//     solved by GRECA / TA / the naive scan.
//
// Serving state lives in an immutable Snapshot (src/api/snapshot.h): the
// preference index, the CF predictions, the study ratings (immutable base +
// per-user delta log, dataset/ratings_overlay.h) and the bound
// AffinitySource, all under one generation id. Every query pins the current
// snapshot at entry and reads nothing else, so the live-update path —
// ApplyRatingUpdates / UpdateAffinitySource — can rebuild the affected state
// off the serving path and publish a new generation with an atomic pointer
// swap (RCU-style) without ever blocking or corrupting in-flight queries.
//
// Update cost is O(delta), not O(dataset): a batch folds into the delta log
// (touched users' rows only), and a compaction policy (RecommenderOptions)
// periodically folds the log back into a fresh immutable base so the overlay
// stays compact. Concurrent ApplyRatingUpdates callers group-commit: batches
// arriving while a publish is in flight coalesce into one next generation,
// each caller blocking only until the coalesced publish lands.
//
// Error handling: invalid queries (empty group, k = 0, unknown member,
// out-of-range period, oversized group) are reported through
// `greca::Status` — Recommend/BuildProblem return Result<> and never assert
// on bad query input.
#ifndef GRECA_CORE_GROUP_RECOMMENDER_H_
#define GRECA_CORE_GROUP_RECOMMENDER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "affinity/affinity_source.h"
#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"
#include "affinity/temporal_model.h"
#include "api/snapshot.h"
#include "api/update.h"
#include "cf/user_knn.h"
#include "common/group_commit.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "consensus/consensus.h"
#include "core/greca.h"
#include "dataset/facebook_study.h"
#include "dataset/ratings_overlay.h"
#include "dataset/synthetic.h"
#include "index/preference_index.h"
#include "topk/problem.h"
#include "topk/result.h"

namespace greca {

/// Legacy solver selector, kept as a thin alias for API compatibility: each
/// enumerator maps to a registered solver id (solver/solver_registry.h's
/// AlgorithmSolverId). New code — and any solver beyond these three — selects
/// by QuerySpec::solver_id instead; a non-empty solver_id always wins.
enum class Algorithm {
  kGreca,
  kNaive,
  kTa,
};

/// How member preferences are weighted inside the consensus functions.
enum class MemberWeighting {
  /// Every member counts equally — the historical, bit-identical default.
  kUniform,
  /// Per-member weights from social-graph influence (propagation
  /// centrality over the study's friendship graph), materialized by the
  /// bound AffinitySource and normalized per group. Flows through every
  /// registered solver without per-solver code.
  kInfluence,
};

/// Row layout of the shared PreferenceIndex (identical recommendations and
/// access counts either way — the layouts differ only in how many raw
/// entries a prefix-restricted sequential scan walks).
enum class IndexLayout {
  /// Rows bucketed by popularity band (geometric pool-position breakpoints),
  /// each band score-sorted: a prefix-restricted view walks only the bands
  /// its candidate pool intersects (≤ 2× the prefix), restoring the paper's
  /// access-cost model for small-pool queries.
  kBanded,
  /// One globally score-sorted row per user: exhausting a prefix slice skips
  /// every out-of-prefix entry one by one, walking the full row. Kept as the
  /// equivalence and bench baseline.
  kFlat,
};

struct RecommenderOptions {
  UserKnnConfig knn;
  /// Candidate pool = the top-N most popular universe items (the paper's
  /// scalability experiments sweep 900..3900 items).
  std::size_t max_candidate_items = 3'900;
  /// Drop items any group member has already rated (paper §2.4).
  bool exclude_group_rated = true;

  /// How index rows are stored (see IndexLayout).
  IndexLayout index_layout = IndexLayout::kBanded;
  /// Smallest popularity band of the banded layout (the first breakpoint;
  /// bands double from here up to the pool size). Pool prefixes of at least
  /// half this size keep exhaustive scans within 2× the prefix.
  std::size_t min_band_size = 64;
  /// Whether banded rows also keep a global-order twin — the wide-prefix
  /// fast path (served when a prefix covers more than half the row). False
  /// halves index row storage; wide prefixes then pay the banded merge.
  /// Results are bit-identical either way. Ignored on kFlat (no twin
  /// exists). See PreferenceIndex::MemoryBreakdownBytes for the split.
  bool build_flat_twin = true;

  // --- Delta-log compaction policy (live updates) ---
  // Live ratings accumulate in a per-user delta log (keeping publishes
  // O(delta)); compaction folds the log back into a fresh immutable base —
  // an O(dataset) step paid rarely instead of on every publish. Both
  // triggers are checked before each rating publish; either suffices.
  // Compaction changes no observable state (recommendations, reports and
  // the period-list cache behave identically — tests/delta_log_test.cc).

  /// Compact after this many rating publishes since the last compaction
  /// (0 = never by count).
  std::size_t compact_every_n_publishes = 0;
  /// Compact when the delta log exceeds this fraction of the base's rating
  /// count (0 = never by size). The default bounds the overlay — and the
  /// per-query merge overhead — to a quarter of the base.
  double compact_delta_fraction = 0.25;

  // --- Update-path parallelism ---

  /// Worker threads for the touched-row rebuild inside ApplyRatingUpdates
  /// (per-row CF predict + index re-sort fan out over an internal pool;
  /// rows are independent, so results are bit-identical to the serial
  /// path — tests/delta_log_test.cc asserts it). 0 = serial fallback (the
  /// default: rebuild rounds are usually a handful of rows).
  std::size_t update_threads = 0;

  /// Residency cap of the snapshot-scoped (group, period) list cache; least
  /// recently used lists are evicted past it (0 = unbounded). See
  /// PeriodListCache.
  std::size_t period_cache_max_entries = PeriodListCache::kDefaultMaxEntries;

  /// Residency cap of the generation-scoped (group, pool) tombstone-bitmap
  /// cache (0 = unbounded). See TombstoneCache.
  std::size_t tombstone_cache_max_entries = TombstoneCache::kDefaultMaxEntries;
};

struct QuerySpec {
  std::size_t k = 10;
  AffinityModelSpec model;
  ConsensusSpec consensus;
  /// Evaluation period index into the study timeline; recommendations use
  /// periods 0..eval_period inclusive. `std::nullopt` means "the last study
  /// period"; explicit indices must be in range — ResolvePeriod rejects
  /// out-of-range values with kOutOfRange instead of clamping.
  std::optional<PeriodId> eval_period;
  Algorithm algorithm = Algorithm::kGreca;
  /// Registry solver id (solver/solver_registry.h). Empty — the default —
  /// falls back to the `algorithm` enum alias; non-empty always wins, so the
  /// enum never constrains which registered solver runs. Unknown ids are
  /// rejected at validation with kInvalidArgument.
  std::string solver_id;
  /// Per-member consensus weighting (see MemberWeighting). kUniform keeps
  /// the historical bit-identical scoring path.
  MemberWeighting weighting = MemberWeighting::kUniform;
  TerminationPolicy termination = TerminationPolicy::kBufferCondition;
  /// Candidate pool size for this query (<= RecommenderOptions limit).
  std::size_t num_candidate_items = 3'900;

  /// Field-wise equality. Note the batch planner (plan/batch_planner.h)
  /// buckets on RESOLVED periods and RESOLVED solver ids, so specs differing
  /// only in "nullopt vs explicit last period" (or "enum alias vs its
  /// explicit solver id") compare unequal here but still share a bucket.
  friend bool operator==(const QuerySpec&, const QuerySpec&) = default;
};

/// One group recommendation request: an ad-hoc group of study participants
/// plus the full query configuration. The unit of Engine::RecommendBatch and
/// of the batch planner's bucketing.
struct Query {
  std::vector<UserId> group;
  QuerySpec spec;
};

struct Recommendation {
  /// Universe item ids, best first.
  std::vector<ItemId> items;
  /// Matching (lower-bound) consensus scores.
  std::vector<double> scores;
  /// Raw algorithm output with access statistics.
  TopKResult raw;
  /// GRECA-only execution statistics (zeros for other algorithms).
  GrecaStats greca_stats;
};

/// Reusable per-query buffers: the problem-assembly arena (tombstones,
/// preference views, materialized affinity/agreement lists) plus GRECA's
/// bound buffers. One workspace per worker thread amortizes hot-path
/// allocations across a batch of queries; a workspace must never be shared
/// by concurrent queries, and a problem built into a workspace is
/// invalidated by the workspace's next BuildProblem.
struct QueryWorkspace {
  ProblemArena arena;
  GrecaWorkspace greca;
};

class GroupRecommender {
 public:
  /// Both references must outlive this object (and every snapshot pinned
  /// from it). Construction precomputes CF predictions for every study
  /// participant and all affinity tables, and publishes generation 1.
  /// `universe` may be any collaborative rating dataset — the synthetic twin
  /// or a parsed real MovieLens file.
  GroupRecommender(const RatingsDataset& universe, const FacebookStudy& study,
                   RecommenderOptions options);

  /// Convenience overload for the synthetic universe.
  GroupRecommender(const SyntheticRatings& universe,
                   const FacebookStudy& study, RecommenderOptions options)
      : GroupRecommender(universe.dataset, study, options) {}

  GroupRecommender(const GroupRecommender&) = delete;
  GroupRecommender& operator=(const GroupRecommender&) = delete;

  // --- Snapshot lifecycle (the RCU-style serving contract) ---

  /// The currently published serving state. Queries made through the
  /// parameterless Recommend/BuildProblem pin it implicitly; callers that
  /// need cross-call stability (a batch, a paginated session) pin it once
  /// and pass it to the snapshot-explicit overloads. Never null.
  ///
  /// Pinning is a constant-time pointer copy under a light mutex — the
  /// publication point. Rebuild work always happens outside it, so readers
  /// never wait on a refresh (std::atomic<shared_ptr> would express the
  /// same contract, but libstdc++'s embedded-spinlock implementation is
  /// opaque to ThreadSanitizer, and the TSan CI job is part of this
  /// contract's regression suite).
  std::shared_ptr<const Snapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Applies a batch of live ratings: validates every event (known study
  /// participant, known universe item), folds them into the per-user delta
  /// log (latest (timestamp, rating) wins per (user, item), matching
  /// RatingsDataset::FromRecords — stale events are counted, not applied),
  /// recomputes the affected users' CF predictions and index rows, and
  /// publishes the result as a new snapshot generation. The fold is
  /// O(delta): the base ratings are never re-folded on the publish path;
  /// the compaction policy in RecommenderOptions periodically folds the log
  /// back into a fresh base. In-flight queries keep their pinned snapshot;
  /// no event is applied when any event is invalid; a batch that changes
  /// nothing (empty, or all events stale) publishes nothing, so every
  /// generation increment still means a real state change.
  ///
  /// Concurrent callers group-commit: batches arriving while a publish is
  /// in flight coalesce into the next generation (one rebuild for the whole
  /// round) and every caller returns once its events are live. Readers are
  /// never blocked. `report`, when non-null, receives what was rebuilt —
  /// per-batch applied/stale counts, the round's coalesced batch count and
  /// the published generation.
  Status ApplyRatingUpdates(std::span<const RatingEvent> events,
                            UpdateReport* report = nullptr);

  /// Swaps the affinity backend by publishing a new snapshot generation
  /// bound to `source` — same non-blocking contract as ApplyRatingUpdates,
  /// so the swap is safe with respect to in-flight queries. The source must
  /// cover the study's participants and periods and be internally
  /// thread-safe for concurrent const reads.
  Status UpdateAffinitySource(std::shared_ptr<const AffinitySource> source);

  /// Deprecated spelling of UpdateAffinitySource (kept for callers of the
  /// pre-snapshot API; now race-free). Asserts on null sources.
  void set_affinity_source(std::shared_ptr<const AffinitySource> source);

  // --- Queries ---

  /// Recommends spec.k items to `group` (study participant ids) against the
  /// currently published snapshot. Returns a non-OK status for invalid
  /// queries (see ValidateQuery). `workspace`, when non-null, provides
  /// reusable buffers for batch execution.
  Result<Recommendation> Recommend(std::span<const UserId> group,
                                   const QuerySpec& spec,
                                   QueryWorkspace* workspace = nullptr) const;

  /// Snapshot-explicit variant: runs entirely against `snap`, regardless of
  /// how many generations publish meanwhile — results are bit-identical for
  /// the same (snap, group, spec).
  Result<Recommendation> Recommend(const std::shared_ptr<const Snapshot>& snap,
                                   std::span<const UserId> group,
                                   const QuerySpec& spec,
                                   QueryWorkspace* workspace = nullptr) const;

  /// Builds the underlying top-k problem (exposed for tests and benches)
  /// against the currently published snapshot.
  /// Zero-copy hot path: member preference lists are ListView slices of the
  /// snapshot's PreferenceIndex (pool-prefix keys, group-rated items
  /// tombstoned) — no per-query sort or copy; periodic affinity lists come
  /// from the snapshot's (group, period) cache, and only the small static /
  /// agreement lists are materialized into the workspace's arena.
  ///
  /// `candidates_out`, when non-null, receives the candidate-pool items in
  /// key order (problem key k ↔ candidates_out[k]; tombstoned keys never
  /// appear in results). When `workspace` is non-null the problem's views
  /// point into its arena — the workspace must outlive the problem and not
  /// be reused before the problem is dropped; when null the problem owns its
  /// arena. Either way the problem shares ownership of the snapshot it was
  /// built from, so index rows and cached period lists outlive any
  /// subsequent publish.
  Result<GroupProblem> BuildProblem(
      std::span<const UserId> group, const QuerySpec& spec,
      std::vector<ItemId>* candidates_out = nullptr,
      QueryWorkspace* workspace = nullptr) const;

  /// Snapshot-explicit variant of BuildProblem.
  Result<GroupProblem> BuildProblem(
      const std::shared_ptr<const Snapshot>& snap,
      std::span<const UserId> group, const QuerySpec& spec,
      std::vector<ItemId>* candidates_out = nullptr,
      QueryWorkspace* workspace = nullptr) const;

  /// Validates a query without running it: non-empty group of known,
  /// distinct participants (≤ 32 for GRECA, its seen-bitmask limit), k ≥ 1,
  /// a non-empty candidate pool and an in-range evaluation period.
  Status ValidateQuery(std::span<const UserId> group,
                       const QuerySpec& spec) const;
  Status ValidateQuery(const Snapshot& snap, std::span<const UserId> group,
                       const QuerySpec& spec) const;

  // Legacy direct accessors into the CURRENT snapshot, for tests and the
  // evaluation harnesses. They return references/spans whose backing
  // snapshot they do not pin, so they are safe only while no concurrent
  // writer can publish (a publish may free the old generation the moment
  // its last pin drops). Code that coexists with ApplyRatingUpdates /
  // UpdateAffinitySource must pin snapshot() and read through it instead.

  /// The affinity source bound to the current snapshot (lifetime caveat
  /// above).
  const AffinitySource& affinity_source() const {
    return snapshot()->affinity();
  }

  /// CF-predicted ratings (universe scale) for a study participant, as of
  /// the current snapshot (lifetime caveat above).
  std::span<const Score> Predictions(UserId study_user) const;

  /// The sorted-preference index of the current snapshot (lifetime caveat
  /// above).
  const PreferenceIndex& preference_index() const {
    return snapshot()->index();
  }
  /// Ownership-sharing handle to the current snapshot's index.
  std::shared_ptr<const PreferenceIndex> preference_index_snapshot() const {
    return snapshot()->index_ptr();
  }

  /// Group cohesiveness signal: overlap-cosine of two participants' own
  /// study ratings (§4.1.3). Reads the immutable as-generated study ratings,
  /// not live updates — it feeds evaluation-group formation, which is
  /// defined on the study artifacts.
  double RatingSimilarity(UserId a, UserId b) const;

  /// Model affinity of a pair at a period (used to form high/low affinity
  /// groups; the 0.4 cut of §4.1.3 applies to this value). `period` follows
  /// the QuerySpec convention (nullopt = last period) and must resolve — this
  /// is an evaluation helper, not a query path, so an out-of-range period is
  /// a programming error (returns 0 in release builds).
  double ModelAffinity(UserId a, UserId b, std::optional<PeriodId> period,
                       const AffinityModelSpec& spec) const;

  const PeriodicAffinity& periodic_affinity() const { return periodic_; }
  const PairTable& static_affinity() const { return static_; }
  const DynamicAffinityIndex& dynamic_index() const { return dynamic_; }
  const FacebookStudy& study() const { return *study_; }
  std::size_t num_periods() const { return study_->periods.num_periods(); }

  /// The single resolution point for the last-period convention: nullopt
  /// resolves to the last study period, explicit in-range indices to
  /// themselves, and anything else to kOutOfRange.
  Result<PeriodId> ResolvePeriod(std::optional<PeriodId> requested) const;

 private:
  /// One ApplyRatingUpdates call waiting in the group-commit queue. The
  /// caller owns it on its stack and blocks until `done`; the leader fills
  /// `report`/`status` before flipping `done` (GroupCommitQueue contract).
  struct PendingUpdate {
    std::span<const RatingEvent> events;
    UpdateReport report;
    Status status;  // non-OK when the leader's publish failed
    bool done = false;
  };

  /// Builds and atomically publishes the next generation; returns its
  /// generation id. `cache` is the period-list cache to carry forward (same
  /// affinity binding) or null to start cold (affinity swaps). Callers hold
  /// update_mutex_.
  std::uint64_t Publish(
      std::shared_ptr<const RatingsOverlay> ratings,
      std::shared_ptr<const std::vector<std::vector<Score>>> preds,
      std::shared_ptr<const PreferenceIndex> index,
      std::shared_ptr<const AffinitySource> source,
      std::shared_ptr<PeriodListCache> cache);

  /// Folds one coalesced round of update batches into a single generation
  /// (delta-log fold → optional compaction → touched-row rebuild → publish)
  /// and fills every batch's report. Called by the group-commit leader with
  /// no lock held; takes update_mutex_ itself.
  void PublishUpdateRound(std::span<PendingUpdate* const> round);

  const RatingsDataset* universe_;
  const FacebookStudy* study_;
  RecommenderOptions options_;
  UserKnn knn_;
  PairTable static_;       // raw common-friend counts (immutable study table)
  PeriodicAffinity periodic_;
  DynamicAffinityIndex dynamic_;

  // The RCU publication point: queries copy the pointer, writers
  // (serialized by update_mutex_) swap in a freshly built snapshot.
  // snapshot_mu_ guards only the pointer itself — never held while
  // rebuilding. Never null after construction.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  // Serializes snapshot builds (rating-update rounds and affinity swaps).
  std::mutex update_mutex_;
  std::uint64_t next_generation_ = 2;          // guarded by update_mutex_
  std::size_t publishes_since_compaction_ = 0;  // guarded by update_mutex_

  // Group-commit queue: ApplyRatingUpdates callers enqueue here; the first
  // caller to find no leader becomes one and publishes whole rounds (all
  // queued batches at once) until the queue drains (common/group_commit.h).
  GroupCommitQueue<PendingUpdate> commit_;

  // Update-path rebuild pool (null when options_.update_threads == 0).
  // Distinct from any batch-serving pool — the rebuild fan-out runs on the
  // writer path, so reader batches never contend for its workers.
  std::unique_ptr<ThreadPool> update_pool_;
};

}  // namespace greca

#endif  // GRECA_CORE_GROUP_RECOMMENDER_H_
