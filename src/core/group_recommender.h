// High-level facade: builds group top-k problems from the datasets and runs
// the recommendation algorithms. Downstream applications normally reach it
// through the batch-first `Engine` in src/api/ (see examples/quickstart.cc);
// this layer stays usable directly for tests and benches.
//
// Pipeline per query (ad-hoc group G, evaluation period p):
//  1. candidate items = the top-C prefix of the popular-item pool, with
//     items any member already rated tombstoned (the problem definition
//     excludes individually known items, §2.4);
//  2. absolute preferences apref(u, ·) from user-based CF, precomputed per
//     study participant and held pre-sorted over the pool in one shared
//     PreferenceIndex — per query each member's list is a ListView slice of
//     the index (no sort, no copy);
//  3. static affinities from common friends, normalized within the group;
//  4. periodic affinities from common page-like categories per period;
//  5. the chosen temporal model + consensus function form a GroupProblem
//     solved by GRECA / TA / the naive scan.
//
// Affinities (steps 3–4) are consumed exclusively through the pluggable
// AffinitySource interface; by default queries run against the study-backed
// source, and set_affinity_source() swaps in alternative models without
// touching this layer.
//
// Error handling: invalid queries (empty group, k = 0, unknown member,
// out-of-range period, oversized group) are reported through
// `greca::Status` — Recommend/BuildProblem return Result<> and never assert
// on bad query input.
#ifndef GRECA_CORE_GROUP_RECOMMENDER_H_
#define GRECA_CORE_GROUP_RECOMMENDER_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "affinity/affinity_source.h"
#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"
#include "affinity/temporal_model.h"
#include "cf/user_knn.h"
#include "common/status.h"
#include "consensus/consensus.h"
#include "core/greca.h"
#include "dataset/facebook_study.h"
#include "dataset/synthetic.h"
#include "index/preference_index.h"
#include "topk/problem.h"
#include "topk/result.h"

namespace greca {

enum class Algorithm {
  kGreca,
  kNaive,
  kTa,
};

struct RecommenderOptions {
  UserKnnConfig knn;
  /// Candidate pool = the top-N most popular universe items (the paper's
  /// scalability experiments sweep 900..3900 items).
  std::size_t max_candidate_items = 3'900;
  /// Drop items any group member has already rated (paper §2.4).
  bool exclude_group_rated = true;
};

struct QuerySpec {
  std::size_t k = 10;
  AffinityModelSpec model;
  ConsensusSpec consensus;
  /// Evaluation period index into the study timeline; recommendations use
  /// periods 0..eval_period inclusive. `std::nullopt` means "the last study
  /// period"; explicit indices must be in range — ResolvePeriod rejects
  /// out-of-range values with kOutOfRange instead of clamping.
  std::optional<PeriodId> eval_period;
  Algorithm algorithm = Algorithm::kGreca;
  TerminationPolicy termination = TerminationPolicy::kBufferCondition;
  /// Candidate pool size for this query (<= RecommenderOptions limit).
  std::size_t num_candidate_items = 3'900;
};

struct Recommendation {
  /// Universe item ids, best first.
  std::vector<ItemId> items;
  /// Matching (lower-bound) consensus scores.
  std::vector<double> scores;
  /// Raw algorithm output with access statistics.
  TopKResult raw;
  /// GRECA-only execution statistics (zeros for other algorithms).
  GrecaStats greca_stats;
};

/// Reusable per-query buffers: the problem-assembly arena (tombstones,
/// preference views, materialized affinity/agreement lists) plus GRECA's
/// bound buffers. One workspace per worker thread amortizes hot-path
/// allocations across a batch of queries; a workspace must never be shared
/// by concurrent queries, and a problem built into a workspace is
/// invalidated by the workspace's next BuildProblem.
struct QueryWorkspace {
  ProblemArena arena;
  GrecaWorkspace greca;
};

class GroupRecommender {
 public:
  /// Both references must outlive this object. Construction precomputes CF
  /// predictions for every study participant and all affinity tables.
  /// `universe` may be any collaborative rating dataset — the synthetic twin
  /// or a parsed real MovieLens file.
  GroupRecommender(const RatingsDataset& universe, const FacebookStudy& study,
                   RecommenderOptions options);

  /// Convenience overload for the synthetic universe.
  GroupRecommender(const SyntheticRatings& universe,
                   const FacebookStudy& study, RecommenderOptions options)
      : GroupRecommender(universe.dataset, study, options) {}

  // The default affinity source points at member tables.
  GroupRecommender(const GroupRecommender&) = delete;
  GroupRecommender& operator=(const GroupRecommender&) = delete;

  /// Recommends spec.k items to `group` (study participant ids). Returns a
  /// non-OK status for invalid queries (see ValidateQuery). `workspace`, when
  /// non-null, provides reusable buffers for batch execution.
  Result<Recommendation> Recommend(std::span<const UserId> group,
                                   const QuerySpec& spec,
                                   QueryWorkspace* workspace = nullptr) const;

  /// Builds the underlying top-k problem (exposed for tests and benches).
  /// Zero-copy hot path: member preference lists are ListView slices of the
  /// shared PreferenceIndex (pool-prefix keys, group-rated items
  /// tombstoned) — no per-query sort or copy; only the small per-group
  /// affinity/agreement lists are materialized, into the workspace's arena
  /// through the configured AffinitySource.
  ///
  /// `candidates_out`, when non-null, receives the candidate-pool items in
  /// key order (problem key k ↔ candidates_out[k]; tombstoned keys never
  /// appear in results). When `workspace` is non-null the problem's views
  /// point into its arena — the workspace must outlive the problem and not
  /// be reused before the problem is dropped; when null the problem owns its
  /// arena.
  Result<GroupProblem> BuildProblem(
      std::span<const UserId> group, const QuerySpec& spec,
      std::vector<ItemId>* candidates_out = nullptr,
      QueryWorkspace* workspace = nullptr) const;

  /// Validates a query without running it: non-empty group of known,
  /// distinct participants (≤ 32 for GRECA, its seen-bitmask limit), k ≥ 1,
  /// a non-empty candidate pool and an in-range evaluation period.
  Status ValidateQuery(std::span<const UserId> group,
                       const QuerySpec& spec) const;

  /// Swaps the affinity backend every subsequent query consumes. The default
  /// is the study-backed source (common friends + page-like categories +
  /// drift index). The source must cover the study's participants and
  /// periods.
  void set_affinity_source(std::shared_ptr<const AffinitySource> source);
  const AffinitySource& affinity_source() const { return *source_; }

  /// CF-predicted ratings (universe scale) for a study participant.
  std::span<const Score> Predictions(UserId study_user) const;

  /// The shared sorted-preference index every query slices (built once at
  /// construction over the popular-item pool).
  const PreferenceIndex& preference_index() const { return *index_; }
  /// Ownership-sharing handle to the same snapshot (what the Engine hands to
  /// its batch workers).
  std::shared_ptr<const PreferenceIndex> preference_index_snapshot() const {
    return index_;
  }

  /// Group cohesiveness signal: overlap-cosine of two participants' own
  /// study ratings (§4.1.3).
  double RatingSimilarity(UserId a, UserId b) const;

  /// Model affinity of a pair at a period (used to form high/low affinity
  /// groups; the 0.4 cut of §4.1.3 applies to this value). `period` follows
  /// the QuerySpec convention (nullopt = last period) and must resolve — this
  /// is an evaluation helper, not a query path, so an out-of-range period is
  /// a programming error (returns 0 in release builds).
  double ModelAffinity(UserId a, UserId b, std::optional<PeriodId> period,
                       const AffinityModelSpec& spec) const;

  const PeriodicAffinity& periodic_affinity() const { return periodic_; }
  const PairTable& static_affinity() const { return static_; }
  const DynamicAffinityIndex& dynamic_index() const { return dynamic_; }
  const FacebookStudy& study() const { return *study_; }
  std::size_t num_periods() const { return study_->periods.num_periods(); }

  /// The single resolution point for the last-period convention: nullopt
  /// resolves to the last study period, explicit in-range indices to
  /// themselves, and anything else to kOutOfRange.
  Result<PeriodId> ResolvePeriod(std::optional<PeriodId> requested) const;

 private:
  const RatingsDataset* universe_;
  const FacebookStudy* study_;
  RecommenderOptions options_;
  UserKnn knn_;
  std::vector<std::vector<Score>> predictions_;  // per study user
  PairTable static_;                             // raw common-friend counts
  PeriodicAffinity periodic_;
  DynamicAffinityIndex dynamic_;
  std::shared_ptr<const AffinitySource> source_;      // never null
  std::shared_ptr<const PreferenceIndex> index_;      // never null; immutable
};

}  // namespace greca

#endif  // GRECA_CORE_GROUP_RECOMMENDER_H_
