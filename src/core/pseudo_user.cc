#include "core/pseudo_user.h"

#include <algorithm>
#include <map>

namespace greca {

std::vector<UserRatingEntry> MergeGroupProfile(
    const RatingsDataset& member_ratings, std::span<const UserId> group) {
  struct Acc {
    double sum = 0.0;
    std::size_t count = 0;
    Timestamp latest = 0;
  };
  std::map<ItemId, Acc> merged;  // ordered: output must be item-sorted
  for (const UserId u : group) {
    for (const auto& e : member_ratings.RatingsOfUser(u)) {
      Acc& acc = merged[e.item];
      acc.sum += e.rating;
      ++acc.count;
      acc.latest = std::max(acc.latest, e.timestamp);
    }
  }
  std::vector<UserRatingEntry> profile;
  profile.reserve(merged.size());
  for (const auto& [item, acc] : merged) {
    profile.push_back(
        {item, acc.sum / static_cast<double>(acc.count), acc.latest});
  }
  return profile;
}

std::vector<ScoredItem> RecommendPseudoUser(
    const UserKnn& knn, const RatingsDataset& member_ratings,
    std::span<const UserId> group, std::span<const ItemId> candidates,
    std::size_t k) {
  const std::vector<UserRatingEntry> profile =
      MergeGroupProfile(member_ratings, group);
  const std::vector<Score> predictions = knn.PredictAll(profile);

  std::vector<ScoredItem> scored;
  scored.reserve(candidates.size());
  for (const ItemId item : candidates) {
    // The merged profile contains exactly the group's rated items.
    const auto it = std::lower_bound(
        profile.begin(), profile.end(), item,
        [](const UserRatingEntry& e, ItemId id) { return e.item < id; });
    if (it != profile.end() && it->item == item) continue;
    scored.push_back({item, predictions[item]});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace greca
