// The *other* dominant group-recommendation strategy (paper §5): create a
// pseudo-user whose profile merges the group members' ratings, recommend to
// that pseudo-user with a single-user CF, and return its top-k. Provided as
// a comparison baseline to the consensus-aggregation family implemented by
// GroupProblem/GRECA — the paper argues aggregation with affinities is
// richer, and the quality harness can put the two head-to-head.
#ifndef GRECA_CORE_PSEUDO_USER_H_
#define GRECA_CORE_PSEUDO_USER_H_

#include <span>
#include <vector>

#include "cf/user_knn.h"
#include "common/types.h"
#include "dataset/ratings.h"

namespace greca {

/// Merges the members' rating profiles: for every item rated by at least one
/// member, the pseudo-rating is the mean of the members' ratings (the
/// standard profile-aggregation scheme). Timestamps keep the latest value.
/// Output is sorted by item id (RatingsOfUser format).
std::vector<UserRatingEntry> MergeGroupProfile(
    const RatingsDataset& member_ratings, std::span<const UserId> group);

/// Recommends `k` items to the pseudo-user over the candidate pool,
/// excluding items any member already rated. Scores are predicted ratings on
/// the dataset scale, descending.
std::vector<ScoredItem> RecommendPseudoUser(
    const UserKnn& knn, const RatingsDataset& member_ratings,
    std::span<const UserId> group, std::span<const ItemId> candidates,
    std::size_t k);

}  // namespace greca

#endif  // GRECA_CORE_PSEUDO_USER_H_
