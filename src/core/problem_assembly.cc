#include "core/problem_assembly.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "dataset/ratings_overlay.h"
#include "solver/solver_registry.h"

namespace greca {

Result<PeriodId> ResolveEvalPeriod(std::optional<PeriodId> requested,
                                   std::size_t num_periods) {
  const auto last = static_cast<PeriodId>(num_periods - 1);
  if (!requested.has_value()) return last;
  if (*requested > last) {
    return Status::OutOfRange("eval_period " + std::to_string(*requested) +
                              " out of range [0, " + std::to_string(last) +
                              "]");
  }
  return *requested;
}

Status ValidateGroupQuery(std::span<const UserId> group, const QuerySpec& spec,
                          std::size_t num_users, std::size_t num_periods,
                          std::size_t affinity_num_periods) {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  // Solver resolution plus the solver's own veto hook, at the exact position
  // of the historical GRECA group-size check (GrecaSolver::ValidateQuery
  // reproduces its message byte for byte), so error sequences are unchanged.
  const GroupSolver* solver =
      SolverRegistry::Global().Find(ResolveSolverId(spec));
  if (solver == nullptr) {
    return Status::InvalidArgument("unknown solver id \"" + spec.solver_id +
                                   "\"");
  }
  if (Status solver_veto = solver->ValidateQuery(group, spec);
      !solver_veto.ok()) {
    return solver_veto;
  }
  if (spec.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (spec.num_candidate_items == 0) {
    return Status::InvalidArgument("candidate pool must not be empty");
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] >= num_users) {
      return Status::NotFound("unknown study participant " +
                              std::to_string(group[i]) + " (study has " +
                              std::to_string(num_users) + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (group[j] == group[i]) {
        return Status::InvalidArgument("duplicate group member " +
                                       std::to_string(group[i]));
      }
    }
  }
  const Result<PeriodId> period =
      ResolveEvalPeriod(spec.eval_period, num_periods);
  if (!period.ok()) return period.status();
  if (spec.model.affinity_aware && spec.model.time_aware &&
      period.value() >= affinity_num_periods) {
    return Status::FailedPrecondition(
        "affinity source covers only " +
        std::to_string(affinity_num_periods) + " periods");
  }
  return Status::Ok();
}

GroupProblem AssembleGroupProblem(const AssemblyContext& ctx,
                                  std::span<const UserId> group,
                                  std::span<const MemberSlice> members,
                                  const QuerySpec& spec, PeriodId eval_period,
                                  std::vector<ItemId>* candidates_out,
                                  QueryWorkspace* workspace) {
  assert(members.size() == group.size());
  const PreferenceIndex& key_index = *ctx.key_index;
  const AffinitySource& source = *ctx.affinity;

  // The problem's views point into an arena: the caller's workspace when
  // given (reused across a batch), otherwise one the problem itself owns.
  std::unique_ptr<ProblemArena> owned_arena;
  if (workspace == nullptr) owned_arena = std::make_unique<ProblemArena>();
  ProblemArena& arena = workspace != nullptr ? workspace->arena : *owned_arena;

  // Candidate pool = keys [0, pool) of the shared popularity pool; the
  // group's already-rated items are tombstoned, not re-keyed (§2.4
  // exclusion), so no preference list is sorted or copied per query.
  const std::size_t pool =
      std::min(spec.num_candidate_items, key_index.pool_size());
  // A member's rated items = the immutable base row plus the live delta
  // row of the overlay that SERVES that member (the member's own shard on
  // the sharded path — deltas are partitioned by user, so the union is
  // identical to the single-overlay fold).
  const auto mark_group_rated = [&](std::vector<std::uint64_t>& words) {
    const auto mark = [&](ItemId item) {
      const std::uint32_t key = key_index.PoolPositionOf(item);
      if (key < pool) words[key >> 6] |= 1ull << (key & 63u);
    };
    for (const MemberSlice& m : members) {
      const RatingsOverlay& ratings = *m.ratings;
      for (const auto& e : ratings.base().RatingsOfUser(m.ratings_user)) {
        mark(e.item);
      }
      for (const auto& e : ratings.DeltaOfUser(m.ratings_user)) mark(e.item);
    }
  };
  const auto count_live = [pool](std::span<const std::uint64_t> words) {
    std::size_t tombstoned = 0;
    for (const std::uint64_t word : words) {
      tombstoned += static_cast<std::size_t>(std::popcount(word));
    }
    return pool - tombstoned;
  };

  std::span<const std::uint64_t> tombstones;
  std::size_t live = pool;
  arena.tombstone_pin.reset();
  if (ctx.exclude_group_rated && ctx.tombstone_cache != nullptr) {
    // Memoized path: bitmaps depend only on (group, pool) within one
    // snapshot generation — repeated groups skip the per-member rated-item
    // walk entirely. The pin keeps an evicted bitmap alive for the
    // problem's lifetime (the arena outlives the problem by contract).
    std::shared_ptr<const TombstoneSet> set = ctx.tombstone_cache->GetShared(
        group, pool, [&]() -> std::shared_ptr<const TombstoneSet> {
          auto fresh = std::make_shared<TombstoneSet>();
          fresh->words.assign((pool + 63) / 64, 0);
          mark_group_rated(fresh->words);
          fresh->live = count_live(fresh->words);
          return fresh;
        });
    tombstones = set->words;
    live = set->live;
    arena.tombstone_pin = std::move(set);
  } else {
    arena.tombstones.assign((pool + 63) / 64, 0);
    if (ctx.exclude_group_rated) {
      mark_group_rated(arena.tombstones);
      live = count_live(arena.tombstones);
    }
    tombstones = arena.tombstones;
  }

  arena.preference_views.clear();
  arena.preference_views.reserve(members.size());
  for (const MemberSlice& m : members) {
    arena.preference_views.push_back(
        m.index->UserView(m.row, pool, tombstones, live));
  }

  // Affinity lists come only from the bound source: the static list is
  // group-normalized (paper §4.1.2) and materialized into the arena, plus
  // one periodic list per period 0..eval_period served from the shared
  // (group, period) cache — repeated groups in a batch rebuild nothing, and
  // each list is pinned so the bounded cache evicting it mid-flight cannot
  // invalidate this problem. Time- or affinity-agnostic variants read no
  // periodic lists at all.
  source.MaterializeStaticListInto(group, arena.entry_scratch,
                                   arena.static_list);
  arena.period_views.clear();
  arena.period_pins.clear();
  std::vector<double> averages;
  if (spec.model.time_aware && spec.model.affinity_aware) {
    assert(ctx.period_cache != nullptr);
    const std::size_t periods = static_cast<std::size_t>(eval_period) + 1;
    arena.period_views.reserve(periods);
    arena.period_pins.reserve(periods);
    for (PeriodId p = 0; p <= eval_period; ++p) {
      arena.period_pins.push_back(
          ctx.period_cache->GetShared(group, p, source));
      arena.period_views.emplace_back(*arena.period_pins.back());
    }
    averages = source.PeriodAverages(eval_period);
  }

  // Per-member consensus weights: influence queries normalize the raw
  // weights stamped on the slices (StampMemberWeights) to sum 1; the weight
  // of pair (a, b) is the normalized product w_a·w_b. Uniform queries clear
  // the arena vectors so the problem carries empty spans — the bit-identical
  // historical scoring path (and no stale weights survive from a previous
  // weighted query in a reused workspace). Degenerate raw weights (zero sum,
  // negatives, non-finite) also fall back to uniform.
  arena.member_weights.clear();
  arena.pair_weights.clear();
  bool weighted = false;
  if (spec.weighting == MemberWeighting::kInfluence) {
    const std::size_t g = members.size();
    double sum = 0.0;
    bool sane = true;
    for (const MemberSlice& m : members) {
      sane = sane && std::isfinite(m.weight) && m.weight >= 0.0;
      sum += m.weight;
    }
    if (sane && sum > 0.0) {
      weighted = true;
      arena.member_weights.reserve(g);
      for (const MemberSlice& m : members) {
        arena.member_weights.push_back(m.weight / sum);
      }
      if (g >= 2) {
        double pair_sum = 0.0;
        arena.pair_weights.reserve(NumUserPairs(g));
        for (std::size_t a = 0; a < g; ++a) {
          for (std::size_t b = a + 1; b < g; ++b) {
            const double w =
                arena.member_weights[a] * arena.member_weights[b];
            arena.pair_weights.push_back(w);
            pair_sum += w;
          }
        }
        if (pair_sum > 0.0) {
          for (double& w : arena.pair_weights) w /= pair_sum;
        } else {
          const double uniform =
              1.0 / static_cast<double>(arena.pair_weights.size());
          for (double& w : arena.pair_weights) w = uniform;
        }
      }
    }
  }

  // Pair-wise disagreement consensus reads its own agreement list (Lemma 1's
  // "pair-wise disagreement lists"); since the lists are built per ad-hoc
  // group anyway, the per-pair components are pre-aggregated into one
  // group-agreement list — identical scores, tighter bounds, fewer lists.
  // The O(C log C) build is DEFERRED: a builder closure goes into the
  // problem and runs only if the algorithm actually walks the list
  // (agreement_lists()); assemble-only consumers and bound-math that sizes
  // buffers via num_agreement_lists() never pay it.
  arena.agreement_views.clear();
  const bool wants_agreements =
      spec.consensus.disagreement == DisagreementKind::kPairwise &&
      group.size() >= 2;

  AffinityCombiner combiner(spec.model, std::move(averages));
  if (candidates_out != nullptr) {
    const std::span<const ItemId> items = key_index.pool();
    candidates_out->assign(items.begin(), items.begin() + pool);
  }
  GroupProblem problem(pool, live, arena.preference_views,
                       ListView(arena.static_list), arena.period_views,
                       std::move(combiner), spec.consensus,
                       arena.agreement_views, std::move(owned_arena));
  if (weighted) {
    problem.SetConsensusWeights(arena.member_weights, arena.pair_weights);
  }
  if (wants_agreements) {
    // The closure captures the arena by address: an external arena outlives
    // the problem by contract, and an owned arena was just moved into the
    // problem (unique_ptr — the arena object itself never moves again). Its
    // preference views stay exactly the ones assembled above until the
    // arena's next assembly, which invalidates the problem anyway.
    ProblemArena* backing = &arena;
    const double scale = spec.consensus.disagreement_scale;
    problem.DeferAgreementLists(
        [backing, pool, scale]() -> std::span<const ListView> {
          BuildGroupAgreementListInto(backing->preference_views, pool, scale,
                                      backing->entry_scratch,
                                      backing->agreement_list,
                                      backing->pair_weights);
          backing->agreement_views.clear();
          backing->agreement_views.emplace_back(backing->agreement_list);
          return backing->agreement_views;
        },
        /*live_entries=*/live);
  }
  return problem;
}

void StampMemberWeights(const AffinitySource& source,
                        std::span<const UserId> group, const QuerySpec& spec,
                        std::span<MemberSlice> slices) {
  assert(slices.size() == group.size());
  if (spec.weighting != MemberWeighting::kInfluence) {
    for (MemberSlice& s : slices) s.weight = 1.0;
    return;
  }
  std::vector<double> weights(group.size(), 1.0);
  source.MaterializeMemberWeightsInto(group, weights);
  for (std::size_t m = 0; m < slices.size(); ++m) {
    slices[m].weight = weights[m];
  }
}

Recommendation SolveGroupProblem(GroupProblem& problem, const QuerySpec& spec,
                                 std::span<const ItemId> pool_items,
                                 QueryWorkspace& workspace) {
  Recommendation rec;
  const GroupSolver* solver =
      SolverRegistry::Global().Find(ResolveSolverId(spec));
  // ValidateGroupQuery rejects unknown ids before any assembly happens; a
  // null here means a caller skipped validation.
  assert(solver != nullptr);
  if (solver == nullptr) return rec;
  SolverResult solved = solver->Solve(problem, spec, workspace);
  rec.raw = std::move(solved.raw);
  rec.greca_stats = solved.greca_stats;
  rec.items.reserve(rec.raw.items.size());
  rec.scores.reserve(rec.raw.items.size());
  for (const ListEntry& e : rec.raw.items) {
    rec.items.push_back(pool_items[e.id]);  // problem keys are pool positions
    rec.scores.push_back(e.score);
  }
  return rec;
}

}  // namespace greca
