#include "index/preference_index.h"

#include <cassert>
#include <utility>

#include "cf/preference_list.h"

namespace greca {

void PreferenceIndex::RebuildRow(UserId u, std::span<const Score> predictions) {
  const std::size_t pool_size = pool_.size();
  const std::vector<ListEntry> row =
      BuildPreferenceEntries(predictions, scale_max_, pool_);
  ListEntry* const out = entries_.data() + u * pool_size;
  std::uint32_t* const pos = positions_.data() + u * pool_size;
  for (std::size_t p = 0; p < row.size(); ++p) {
    out[p] = row[p];
    pos[row[p].id] = static_cast<std::uint32_t>(p);
  }
}

PreferenceIndex PreferenceIndex::Build(
    std::span<const std::vector<Score>> predictions, double scale_max,
    std::vector<ItemId> pool, std::size_t num_universe_items) {
  PreferenceIndex index;
  index.num_users_ = predictions.size();
  index.scale_max_ = scale_max;
  index.pool_ = std::move(pool);
  const std::size_t pool_size = index.pool_.size();

  index.pool_position_of_item_.assign(num_universe_items, kNotPooled);
  for (std::size_t key = 0; key < pool_size; ++key) {
    assert(index.pool_[key] < num_universe_items);
    index.pool_position_of_item_[index.pool_[key]] =
        static_cast<std::uint32_t>(key);
  }

  index.entries_.resize(index.num_users_ * pool_size);
  index.positions_.resize(index.num_users_ * pool_size);
  for (UserId u = 0; u < index.num_users_; ++u) {
    // Same normalization and ordering as the per-query seed path, computed
    // once: keys are pool positions, scores predictions/scale_max in [0, 1].
    index.RebuildRow(u, predictions[u]);
  }
  return index;
}

PreferenceIndex PreferenceIndex::CloneWithUpdatedRows(
    std::span<const UserId> users,
    std::span<const std::span<const Score>> predictions) const {
  assert(users.size() == predictions.size());
  PreferenceIndex clone;
  clone.num_users_ = num_users_;
  clone.scale_max_ = scale_max_;
  clone.pool_ = pool_;
  clone.pool_position_of_item_ = pool_position_of_item_;
  // Wholesale copy-assign on purpose: touched rows get written twice
  // (RebuildRow overwrites them), but touched × pool is tiny next to the
  // full array, while any skip-the-touched-rows scheme pays a full
  // value-initializing resize first — double the memory traffic of this
  // single copy.
  clone.entries_ = entries_;
  clone.positions_ = positions_;
  for (std::size_t i = 0; i < users.size(); ++i) {
    assert(users[i] < num_users_);
    clone.RebuildRow(users[i], predictions[i]);
  }
  return clone;
}

}  // namespace greca
