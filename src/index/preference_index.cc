#include "index/preference_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/thread_pool.h"

namespace greca {

namespace {

/// AoS fill/sort scratch, one per thread: rows are filled and sorted as
/// interleaved (key, score) entries — exactly the pre-SoA semantics, under
/// the one canonical ListEntryOrder — then scattered into the parallel
/// arrays. Thread-local so the parallel build/clone fan-outs stay
/// allocation-free after warm-up without sharing buffers across workers.
std::vector<ListEntry>& RowScratch() {
  thread_local std::vector<ListEntry> scratch;
  return scratch;
}

std::vector<ListEntry>& FlatScratch() {
  thread_local std::vector<ListEntry> scratch;
  return scratch;
}

}  // namespace

std::vector<std::uint32_t> PreferenceIndex::GeometricBandBreakpoints(
    std::size_t pool_size, std::size_t first_band) {
  std::vector<std::uint32_t> breakpoints;
  if (first_band == 0) return breakpoints;
  for (std::size_t b = first_band;
       b < pool_size && breakpoints.size() + 1 < ListView::kMaxBands; b *= 2) {
    breakpoints.push_back(static_cast<std::uint32_t>(b));
  }
  return breakpoints;
}

void PreferenceIndex::SortRow(UserId u, std::span<ListEntry> row) {
  const std::size_t pool_size = pool_.size();
  assert(row.size() == pool_size);
  constexpr ListEntryOrder by_score{};
  if (!flat_keys_.empty()) {
    // Global-order twin for the large-prefix fast path, sorted from the
    // key-order fill before the bands scramble it.
    std::vector<ListEntry>& flat = FlatScratch();
    flat.assign(row.begin(), row.end());
    std::sort(flat.begin(), flat.end(), by_score);
    ListKey* const fk = flat_keys_.data() + u * pool_size;
    Score* const fs = flat_scores_.data() + u * pool_size;
    std::uint32_t* const fpos = flat_positions_.data() + u * pool_size;
    for (std::size_t p = 0; p < pool_size; ++p) {
      fk[p] = flat[p].id;
      fs[p] = flat[p].score;
      fpos[flat[p].id] = static_cast<std::uint32_t>(p);
    }
  }
  for (std::size_t b = 0; b + 1 < band_begin_.size(); ++b) {
    std::sort(row.begin() + band_begin_[b], row.begin() + band_begin_[b + 1],
              by_score);
  }
  ListKey* const keys = keys_.data() + u * pool_size;
  Score* const scores = scores_.data() + u * pool_size;
  std::uint32_t* const pos = positions_.data() + u * pool_size;
  for (std::size_t p = 0; p < pool_size; ++p) {
    keys[p] = row[p].id;
    scores[p] = row[p].score;
    pos[row[p].id] = static_cast<std::uint32_t>(p);
  }
}

void PreferenceIndex::RebuildRow(UserId u,
                                 std::span<const Score> predictions) {
  assert(scale_max_ > 0.0);
  const std::size_t pool_size = pool_.size();
  std::vector<ListEntry>& row = RowScratch();
  row.resize(pool_size);
  // Band b holds exactly the keys [band_begin_[b], band_begin_[b+1]), so a
  // key-order fill already places every entry in its band; each band is then
  // score-sorted independently. One band (the flat layout) degenerates to
  // the global sort — same normalization and ordering as the per-query seed
  // path: keys are pool positions, scores predictions/scale_max in [0, 1].
  for (std::uint32_t key = 0; key < pool_size; ++key) {
    assert(pool_[key] < predictions.size());
    row[key] = {key, std::clamp(predictions[pool_[key]] / scale_max_,
                                0.0, 1.0)};
  }
  SortRow(u, row);
}

void PreferenceIndex::RebuildRowFromPool(UserId u,
                                         std::span<const Score> pool_scores) {
  assert(scale_max_ > 0.0);
  const std::size_t pool_size = pool_.size();
  assert(pool_scores.size() == pool_size);
  std::vector<ListEntry>& row = RowScratch();
  row.resize(pool_size);
  for (std::uint32_t key = 0; key < pool_size; ++key) {
    row[key] = {key, std::clamp(pool_scores[key] / scale_max_, 0.0, 1.0)};
  }
  SortRow(u, row);
}

void PreferenceIndex::InitStorage(
    std::size_t num_rows, double scale_max, std::vector<ItemId> pool,
    std::size_t num_universe_items,
    std::span<const std::uint32_t> band_breakpoints, bool build_flat_twin) {
  num_users_ = num_rows;
  scale_max_ = scale_max;
  pool_ = std::move(pool);
  const std::size_t pool_size = pool_.size();

  // Normalize the breakpoints defensively (not assert-only): out-of-range
  // and non-ascending values are dropped and the band count is clamped to
  // ListView's inline merge arrays — a bad grid degrades to coarser bands,
  // never to out-of-bounds writes in release builds.
  band_begin_.assign(1, 0);
  for (const std::uint32_t breakpoint : band_breakpoints) {
    if (breakpoint == 0 || breakpoint >= pool_size) continue;
    if (breakpoint <= band_begin_.back()) continue;
    if (band_begin_.size() >= ListView::kMaxBands) break;
    band_begin_.push_back(breakpoint);
  }
  band_begin_.push_back(static_cast<std::uint32_t>(pool_size));
  assert(num_bands() <= ListView::kMaxBands);

  pool_position_of_item_.assign(num_universe_items, kNotPooled);
  for (std::size_t key = 0; key < pool_size; ++key) {
    assert(pool_[key] < num_universe_items);
    pool_position_of_item_[pool_[key]] = static_cast<std::uint32_t>(key);
  }

  keys_.resize(num_users_ * pool_size);
  scores_.resize(num_users_ * pool_size);
  positions_.resize(num_users_ * pool_size);
  if (num_bands() > 1 && build_flat_twin) {
    flat_keys_.resize(num_users_ * pool_size);
    flat_scores_.resize(num_users_ * pool_size);
    flat_positions_.resize(num_users_ * pool_size);
  }
}

PreferenceIndex PreferenceIndex::Build(
    std::span<const std::vector<Score>> predictions, double scale_max,
    std::vector<ItemId> pool, std::size_t num_universe_items,
    std::span<const std::uint32_t> band_breakpoints, bool build_flat_twin) {
  PreferenceIndex index;
  index.InitStorage(predictions.size(), scale_max, std::move(pool),
                    num_universe_items, band_breakpoints, build_flat_twin);
  for (UserId u = 0; u < index.num_users_; ++u) {
    index.RebuildRow(u, predictions[u]);
  }
  return index;
}

PreferenceIndex PreferenceIndex::BuildStreaming(
    std::size_t num_rows, const PoolScoreFiller& fill, double scale_max,
    std::vector<ItemId> pool, std::size_t num_universe_items,
    std::span<const std::uint32_t> band_breakpoints, bool build_flat_twin,
    ThreadPool* threads) {
  PreferenceIndex index;
  index.InitStorage(num_rows, scale_max, std::move(pool), num_universe_items,
                    band_breakpoints, build_flat_twin);
  const std::size_t pool_size = index.pool_.size();
  if (threads != nullptr && num_rows > 1) {
    // One raw-score scratch per worker; rows are disjoint, so concurrent
    // RebuildRowFromPool calls never touch the same storage.
    std::vector<std::vector<Score>> scratch(threads->size());
    for (auto& s : scratch) s.resize(pool_size);
    threads->ParallelFor(num_rows, [&](std::size_t worker, std::size_t row) {
      const auto u = static_cast<UserId>(row);
      fill(u, index.pool_, scratch[worker]);
      index.RebuildRowFromPool(u, scratch[worker]);
    });
    return index;
  }
  std::vector<Score> scores(pool_size);
  for (UserId u = 0; u < num_rows; ++u) {
    fill(u, index.pool_, scores);
    index.RebuildRowFromPool(u, scores);
  }
  return index;
}

namespace {

/// Runs `rebuild(i)` for every i in [0, n), optionally fanned out over a
/// thread pool (touched rows are disjoint — bit-identical to serial order).
template <typename RebuildFn>
void RebuildTouchedRows(std::size_t n, ThreadPool* threads,
                        const RebuildFn& rebuild) {
  if (threads != nullptr && n > 1) {
    threads->ParallelFor(n, [&](std::size_t, std::size_t i) { rebuild(i); });
  } else {
    for (std::size_t i = 0; i < n; ++i) rebuild(i);
  }
}

}  // namespace

PreferenceIndex PreferenceIndex::CloneWithUpdatedRows(
    std::span<const UserId> users,
    std::span<const std::span<const Score>> predictions,
    ThreadPool* threads) const {
  assert(users.size() == predictions.size());
  PreferenceIndex clone;
  clone.num_users_ = num_users_;
  clone.scale_max_ = scale_max_;
  clone.pool_ = pool_;
  clone.pool_position_of_item_ = pool_position_of_item_;
  clone.band_begin_ = band_begin_;
  // Wholesale copy-assign on purpose: touched rows get written twice
  // (RebuildRow overwrites them), but touched × pool is tiny next to the
  // full array, while any skip-the-touched-rows scheme pays a full
  // value-initializing resize first — double the memory traffic of this
  // single copy.
  clone.keys_ = keys_;
  clone.scores_ = scores_;
  clone.positions_ = positions_;
  clone.flat_keys_ = flat_keys_;
  clone.flat_scores_ = flat_scores_;
  clone.flat_positions_ = flat_positions_;
  RebuildTouchedRows(users.size(), threads, [&](std::size_t i) {
    assert(users[i] < num_users_);
    clone.RebuildRow(users[i], predictions[i]);
  });
  return clone;
}

PreferenceIndex PreferenceIndex::CloneWithUpdatedPoolRows(
    std::span<const UserId> users,
    std::span<const std::span<const Score>> pool_scores,
    ThreadPool* threads) const {
  assert(users.size() == pool_scores.size());
  PreferenceIndex clone;
  clone.num_users_ = num_users_;
  clone.scale_max_ = scale_max_;
  clone.pool_ = pool_;
  clone.pool_position_of_item_ = pool_position_of_item_;
  clone.band_begin_ = band_begin_;
  clone.keys_ = keys_;
  clone.scores_ = scores_;
  clone.positions_ = positions_;
  clone.flat_keys_ = flat_keys_;
  clone.flat_scores_ = flat_scores_;
  clone.flat_positions_ = flat_positions_;
  RebuildTouchedRows(users.size(), threads, [&](std::size_t i) {
    assert(users[i] < num_users_);
    clone.RebuildRowFromPool(users[i], pool_scores[i]);
  });
  return clone;
}

}  // namespace greca
