#include "index/preference_index.h"

#include <cassert>
#include <utility>

#include "cf/preference_list.h"

namespace greca {

PreferenceIndex PreferenceIndex::Build(
    std::span<const std::vector<Score>> predictions, double scale_max,
    std::vector<ItemId> pool, std::size_t num_universe_items) {
  PreferenceIndex index;
  index.num_users_ = predictions.size();
  index.pool_ = std::move(pool);
  const std::size_t pool_size = index.pool_.size();

  index.pool_position_of_item_.assign(num_universe_items, kNotPooled);
  for (std::size_t key = 0; key < pool_size; ++key) {
    assert(index.pool_[key] < num_universe_items);
    index.pool_position_of_item_[index.pool_[key]] =
        static_cast<std::uint32_t>(key);
  }

  index.entries_.resize(index.num_users_ * pool_size);
  index.positions_.resize(index.num_users_ * pool_size);
  for (UserId u = 0; u < index.num_users_; ++u) {
    // Same normalization and ordering as the per-query seed path, computed
    // once: keys are pool positions, scores predictions/scale_max in [0, 1].
    const std::vector<ListEntry> row =
        BuildPreferenceEntries(predictions[u], scale_max, index.pool_);
    ListEntry* const out = index.entries_.data() + u * pool_size;
    std::uint32_t* const pos = index.positions_.data() + u * pool_size;
    for (std::size_t p = 0; p < row.size(); ++p) {
      out[p] = row[p];
      pos[row[p].id] = static_cast<std::uint32_t>(p);
    }
  }
  return index;
}

}  // namespace greca
