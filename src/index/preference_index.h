// The shared, immutable preference index behind zero-copy problem assembly.
//
// The paper precomputes one CF-predicted preference list per user (§3.1); the
// seed nevertheless re-sorted and re-copied |G| lists of up to 3 900 entries
// inside every BuildProblem call — the dominant per-query cost at scale
// (§4.2's candidate-pool sweep exists precisely because list preparation
// dominates). This index moves that work to construction time: for every
// study participant it stores one row over the popular-item pool, sorted by
// descending predicted preference, plus a key→position array for random
// access.
//
// Keys are pool positions (popularity ranks), so a query's candidate pool of
// size C is simply the key prefix [0, C): UserView() restricts a stored row
// to that prefix and tombstones the group's already-rated items via a bitmap
// — no per-query sort, copy, or re-keying. One index snapshot is shared
// read-only by every batch worker (src/api/engine.h).
//
// Row storage is structure-of-arrays: parallel key (uint32) and score
// (double) arrays per row instead of interleaved (key, score) structs. The
// serving hot loops — tombstone-skip scans, band-head skips — test liveness
// from keys alone, so they read 4 bytes per entry (vs 16 padded) and
// vectorize over the bare key array (topk/simd.h); scores are only touched
// for entries actually consumed. 12 bytes/entry of row payload (key + score)
// plus 4 bytes/entry of position map, per stored order.
//
// Row layout. A row is partitioned into popularity bands: band b holds
// exactly the keys [band_begin[b], band_begin[b+1]), each band sorted
// independently (descending score, ties ascending key). A prefix-restricted
// UserView receives only the bands its prefix intersects, so an exhaustive
// sequential scan walks at most the next band boundary past the prefix
// (≤ 2× the prefix under the geometric grid) instead of the full row — the
// fix for the prefix-slice skip-tail pathology. ListView merges the band
// heads through a loser tree; merged order equals a global sort, so results
// and access counts are bit-identical across layouts. With a single band
// (the flat layout, band_begin = {0, pool}) the row is globally sorted and
// views degenerate to the plain linear walk — kept as an equivalence and
// bench baseline (RecommenderOptions::index_layout).
//
// A banded index additionally keeps each row in global (flat) order: when a
// prefix covers most of the row the band merge cannot pay for itself (few
// skipped entries, per-read head comparisons), so UserView serves the flat
// copy whenever the covered footprint exceeds half the row — large-prefix
// queries keep the exact pre-banding fast path. The dual order doubles
// per-row storage (MemoryBreakdownBytes() reports the split); callers that
// never serve wide prefixes can skip the twin at build time
// (build_flat_twin = false), in which case wide prefixes take the banded
// merge — same results, no twin bytes.
//
// Live updates never mutate a published index. When ratings change, the
// writer calls CloneWithUpdatedRows() with the affected users' fresh CF
// predictions: the clone copies the untouched rows wholesale and re-sorts
// only the affected ones, then gets published inside a new Snapshot
// (src/api/snapshot.h) via atomic pointer swap — readers holding the old
// index are unaffected.
#ifndef GRECA_INDEX_PREFERENCE_INDEX_H_
#define GRECA_INDEX_PREFERENCE_INDEX_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.h"
#include "topk/list_view.h"

namespace greca {

class ThreadPool;

class PreferenceIndex {
 public:
  /// PoolPositionOf() marker for items outside the popular-item pool.
  static constexpr std::uint32_t kNotPooled = 0xFFFFFFFFu;

  /// Resident-size split of one index (MemoryBreakdownBytes): the banded SoA
  /// rows, the global-order twin rows, and the pool/key maps.
  struct MemoryBreakdown {
    /// Band-order rows: keys + scores + key→position maps.
    std::size_t banded_bytes = 0;
    /// Global-order twin rows (0 on flat layouts or build_flat_twin=false).
    std::size_t flat_twin_bytes = 0;
    /// Pool vector, item→key map and the band grid.
    std::size_t map_bytes = 0;
    std::size_t total() const {
      return banded_bytes + flat_twin_bytes + map_bytes;
    }
  };

  /// Builds the index: one sorted row per user in `predictions` (each a
  /// per-ItemId prediction array covering every universe item) over `pool`
  /// (universe items in popularity order). Scores are predictions / scale_max
  /// clamped to [0, 1]; `num_universe_items` sizes the reverse item→pool map.
  /// `band_breakpoints` are ascending interior pool-position breakpoints of
  /// the banded row layout; out-of-range or non-ascending values are
  /// dropped and the count is clamped to ListView::kMaxBands bands (a bad
  /// grid degrades to coarser bands, never to UB). Empty means one band —
  /// the flat, globally sorted layout. `build_flat_twin` = false skips the
  /// global-order twin of banded rows (halves row storage; wide prefixes
  /// then use the banded merge).
  static PreferenceIndex Build(
      std::span<const std::vector<Score>> predictions, double scale_max,
      std::vector<ItemId> pool, std::size_t num_universe_items,
      std::span<const std::uint32_t> band_breakpoints = {},
      bool build_flat_twin = true);

  /// Fills raw (universe-scale, un-normalized) scores for one row, one slot
  /// per POOL POSITION: out[key] is the prediction for pool[key]. The
  /// contract deliberately skips the per-universe-item indirection of
  /// Build() so million-row builds never materialize a num_rows ×
  /// num_universe_items prediction matrix.
  using PoolScoreFiller = std::function<void(
      UserId row, std::span<const ItemId> pool, std::span<Score> out)>;

  /// Streaming twin of Build() for populations too large to hold full
  /// per-item prediction arrays: `fill` produces each row's pool scores on
  /// demand (called once per row, from multiple threads when `threads` is
  /// non-null — it must be safe for concurrent calls on distinct rows).
  /// Rows are bit-identical to Build() fed predictions p with
  /// p[pool[key]] == filled out[key].
  static PreferenceIndex BuildStreaming(
      std::size_t num_rows, const PoolScoreFiller& fill, double scale_max,
      std::vector<ItemId> pool, std::size_t num_universe_items,
      std::span<const std::uint32_t> band_breakpoints = {},
      bool build_flat_twin = true, ThreadPool* threads = nullptr);

  /// The default banded grid: geometric (doubling) breakpoints
  /// {first_band, 2·first_band, ...} below `pool_size`, capped at
  /// ListView::kMaxBands bands. Guarantees a prefix P >= first_band / 2 walks
  /// at most 2·P entries per exhaustive scan (the next boundary past P).
  /// first_band == 0 yields no breakpoints (flat).
  static std::vector<std::uint32_t> GeometricBandBreakpoints(
      std::size_t pool_size, std::size_t first_band = 64);

  /// Incremental rebuild for live updates: a full copy of this index in
  /// which the rows of `users` (parallel to `predictions`: predictions[i]
  /// is a view of users[i]'s fresh per-ItemId prediction array) are
  /// re-normalized and re-sorted; every other row is copied bit-identically.
  /// The pool, the item→key map and the score normalization (scale_max) are
  /// inherited. Cost: one O(users × pool) memcpy plus O(pool log pool) per
  /// updated row.
  /// `threads`, when non-null, fans the per-row rebuilds out over the pool
  /// (rows are disjoint, so the result is bit-identical to the serial path;
  /// the caller must not be running on one of the pool's own workers).
  PreferenceIndex CloneWithUpdatedRows(
      std::span<const UserId> users,
      std::span<const std::span<const Score>> predictions,
      ThreadPool* threads = nullptr) const;

  /// CloneWithUpdatedRows twin fed pool-position scores instead of
  /// per-universe-item predictions: pool_scores[i][key] is users[i]'s raw
  /// (universe-scale) score for pool()[key] — the per-shard publish path,
  /// where full per-item arrays never exist. Same layout, normalization and
  /// ordering guarantees as CloneWithUpdatedRows.
  PreferenceIndex CloneWithUpdatedPoolRows(
      std::span<const UserId> users,
      std::span<const std::span<const Score>> pool_scores,
      ThreadPool* threads = nullptr) const;

  std::size_t num_users() const { return num_users_; }
  std::size_t pool_size() const { return pool_.size(); }

  /// Number of popularity bands per row (1 = flat layout).
  std::size_t num_bands() const { return band_begin_.size() - 1; }
  /// Band boundaries as pool positions: band b = [bounds[b], bounds[b+1]).
  std::span<const std::uint32_t> band_boundaries() const {
    return band_begin_;
  }
  /// True when banded rows also carry the global-order twin (the wide-prefix
  /// fast path).
  bool has_flat_twin() const { return !flat_keys_.empty(); }

  /// The popular-item pool in key order: pool()[key] is the universe item of
  /// candidate key `key` for every prefix slice.
  std::span<const ItemId> pool() const { return pool_; }

  /// Pool position (== candidate key) of a universe item, or kNotPooled.
  std::uint32_t PoolPositionOf(ItemId item) const {
    return item < pool_position_of_item_.size() ? pool_position_of_item_[item]
                                                : kNotPooled;
  }

  /// User `u`'s full row in band order (per-band descending score, ties by
  /// ascending key; globally sorted when num_bands() == 1): parallel
  /// key/score arrays, UserKeys(u)[p] scored UserScores(u)[p].
  std::span<const ListKey> UserKeys(UserId u) const {
    return {keys_.data() + u * pool_.size(), pool_.size()};
  }
  std::span<const Score> UserScores(UserId u) const {
    return {scores_.data() + u * pool_.size(), pool_.size()};
  }

  /// Non-owning preference list of user `u` restricted to the candidate-pool
  /// prefix [0, prefix) minus the keys tombstoned in `tombstones` (which,
  /// with `live_entries`, the caller derives from the group's rated items —
  /// all members share both). Only the bands the prefix intersects back the
  /// view, so exhausting it never walks past the first band boundary >=
  /// prefix; a prefix whose covered footprint exceeds half the row serves
  /// the flat-order copy instead when the twin exists (see the header
  /// comment — the merge cannot pay for itself there). The view is valid as
  /// long as this index and the tombstone buffer live.
  ListView UserView(UserId u, std::size_t prefix,
                    std::span<const std::uint64_t> tombstones,
                    std::size_t live_entries) const {
    const std::size_t pool_size = pool_.size();
    assert(prefix <= pool_size);
    if (num_bands() == 1) {
      // Flat layout: the banded arrays ARE the globally sorted row.
      return ListView(UserKeys(u), UserScores(u),
                      {positions_.data() + u * pool_size, pool_size}, prefix,
                      live_entries, tombstones);
    }
    // Covered-band span: smallest nb with band_begin_[nb] >= prefix. The
    // grid is shared by every row, so the walk depends on the prefix alone;
    // batch traffic repeats a handful of pool sizes, so a single-entry memo
    // (packed (prefix+1, nb), 0 = cold) short-circuits it. Relaxed atomics:
    // a stale or torn-away entry only means a recompute from the immutable
    // grid, never a wrong span.
    std::size_t nb;
    const std::uint64_t memo =
        band_span_memo_.packed.load(std::memory_order_relaxed);
    if ((memo >> 32) == prefix + 1) {
      nb = static_cast<std::size_t>(memo & 0xFFFFFFFFull);
    } else {
      nb = 1;  // covered bands: band_begin_[nb - 1] < prefix
      while (band_begin_[nb] < prefix) ++nb;
      band_span_memo_.packed.store(
          (static_cast<std::uint64_t>(prefix + 1) << 32) |
              static_cast<std::uint64_t>(nb),
          std::memory_order_relaxed);
    }
    const std::size_t footprint = band_begin_[nb];
    if (2 * footprint > pool_size && has_flat_twin()) {
      // Cost-model guard: the merge must at least halve the walk, otherwise
      // the flat copy (no merge, pre-banding behavior) is the better lens.
      return ListView({flat_keys_.data() + u * pool_size, pool_size},
                      {flat_scores_.data() + u * pool_size, pool_size},
                      {flat_positions_.data() + u * pool_size, pool_size},
                      prefix, live_entries, tombstones);
    }
    const std::span<const ListKey> keys{keys_.data() + u * pool_size,
                                        footprint};
    const std::span<const Score> scores{scores_.data() + u * pool_size,
                                        footprint};
    const std::span<const std::uint32_t> positions{
        positions_.data() + u * pool_size, pool_size};
    if (nb == 1) {
      // One covered band is already sorted — plain flat view, no merge.
      return ListView(keys, scores, positions, prefix, live_entries,
                      tombstones);
    }
    return ListView(keys, scores, positions, prefix, live_entries, tombstones,
                    std::span<const std::uint32_t>(band_begin_.data(), nb + 1));
  }

  /// Resident size split by component, for capacity planning and the bench
  /// JSON (BENCH_batch.json index_memory).
  MemoryBreakdown MemoryBreakdownBytes() const {
    MemoryBreakdown b;
    b.banded_bytes = keys_.size() * sizeof(ListKey) +
                     scores_.size() * sizeof(Score) +
                     positions_.size() * sizeof(std::uint32_t);
    b.flat_twin_bytes = flat_keys_.size() * sizeof(ListKey) +
                        flat_scores_.size() * sizeof(Score) +
                        flat_positions_.size() * sizeof(std::uint32_t);
    b.map_bytes = pool_.size() * sizeof(ItemId) +
                  pool_position_of_item_.size() * sizeof(std::uint32_t) +
                  band_begin_.size() * sizeof(std::uint32_t);
    return b;
  }

  /// Approximate total resident size (the breakdown summed).
  std::size_t MemoryBytes() const { return MemoryBreakdownBytes().total(); }

 private:
  /// Re-sorts user `u`'s row (per band) and its key→position map from a
  /// fresh prediction array. Internal: only called on rows of an unpublished
  /// copy. Safe to call concurrently on DISTINCT rows (each row's storage is
  /// disjoint; the sort scratch is thread-local) — the parallel build/clone
  /// paths rely on that.
  void RebuildRow(UserId u, std::span<const Score> predictions);

  /// RebuildRow twin fed raw scores per pool position (pool_scores[key] is
  /// the score of pool_[key]); same normalization and ordering.
  void RebuildRowFromPool(UserId u, std::span<const Score> pool_scores);

  /// The shared sort tail of both fills: `row` is the key-order AoS fill
  /// (row[key] = {key, score}); sorts it per band (plus globally for the
  /// flat twin) with ListEntryOrder and scatters into the SoA arrays and
  /// key→position maps.
  void SortRow(UserId u, std::span<ListEntry> row);

  /// Sizes the SoA arrays (and the flat twins) and installs the pool, the
  /// item→key map and the normalized band grid — everything Build and
  /// BuildStreaming share before the per-row fills.
  void InitStorage(std::size_t num_rows, double scale_max,
                   std::vector<ItemId> pool, std::size_t num_universe_items,
                   std::span<const std::uint32_t> band_breakpoints,
                   bool build_flat_twin);

  /// The UserView band-span memo: one packed (prefix+1) << 32 | nb entry
  /// (0 = cold), atomic so concurrent batch workers share it without racing.
  /// All special members reset to cold — an index copied or moved (the
  /// CloneWithUpdatedRows/CloneWithUpdatedPoolRows publish path) starts
  /// invalidated, and PreferenceIndex keeps its implicit value semantics
  /// despite the atomic.
  struct BandSpanMemo {
    BandSpanMemo() = default;
    BandSpanMemo(const BandSpanMemo&) noexcept {}
    BandSpanMemo(BandSpanMemo&&) noexcept {}
    BandSpanMemo& operator=(const BandSpanMemo&) noexcept {
      packed.store(0, std::memory_order_relaxed);
      return *this;
    }
    BandSpanMemo& operator=(BandSpanMemo&&) noexcept {
      packed.store(0, std::memory_order_relaxed);
      return *this;
    }
    mutable std::atomic<std::uint64_t> packed{0};
  };

  std::size_t num_users_ = 0;
  double scale_max_ = 1.0;                            // score normalization
  std::vector<ItemId> pool_;                          // key -> universe item
  std::vector<std::uint32_t> pool_position_of_item_;  // item -> key
  std::vector<std::uint32_t> band_begin_ = {0, 0};  // band b = [b, b+1) keys
  // Band-order SoA rows, num_users × pool_size each: keys_[u·P + p] is the
  // key at row position p, scores_ its score, positions_ the inverse map.
  std::vector<ListKey> keys_;
  std::vector<Score> scores_;
  std::vector<std::uint32_t> positions_;  // key -> band-order row position
  // Global-order twin of the row arrays, populated only when num_bands() > 1
  // and build_flat_twin — the large-prefix fast path (see UserView).
  std::vector<ListKey> flat_keys_;
  std::vector<Score> flat_scores_;
  std::vector<std::uint32_t> flat_positions_;
  BandSpanMemo band_span_memo_;
};

}  // namespace greca

#endif  // GRECA_INDEX_PREFERENCE_INDEX_H_
