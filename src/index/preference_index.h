// The shared, immutable preference index behind zero-copy problem assembly.
//
// The paper precomputes one CF-predicted preference list per user (§3.1); the
// seed nevertheless re-sorted and re-copied |G| lists of up to 3 900 entries
// inside every BuildProblem call — the dominant per-query cost at scale
// (§4.2's candidate-pool sweep exists precisely because list preparation
// dominates). This index moves that work to construction time: for every
// study participant it stores one entry array over the popular-item pool,
// sorted once by descending predicted preference, plus a key→position array
// for random access.
//
// Keys are pool positions (popularity ranks), so a query's candidate pool of
// size C is simply the key prefix [0, C): UserView() restricts a stored row
// to that prefix and tombstones the group's already-rated items via a bitmap
// — no per-query sort, copy, or re-keying. One index snapshot is shared
// read-only by every batch worker (src/api/engine.h).
//
// Live updates never mutate a published index. When ratings change, the
// writer calls CloneWithUpdatedRows() with the affected users' fresh CF
// predictions: the clone copies the untouched rows wholesale and re-sorts
// only the affected ones, then gets published inside a new Snapshot
// (src/api/snapshot.h) via atomic pointer swap — readers holding the old
// index are unaffected.
#ifndef GRECA_INDEX_PREFERENCE_INDEX_H_
#define GRECA_INDEX_PREFERENCE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "topk/list_view.h"

namespace greca {

class PreferenceIndex {
 public:
  /// PoolPositionOf() marker for items outside the popular-item pool.
  static constexpr std::uint32_t kNotPooled = 0xFFFFFFFFu;

  /// Builds the index: one sorted row per user in `predictions` (each a
  /// per-ItemId prediction array covering every universe item) over `pool`
  /// (universe items in popularity order). Scores are predictions / scale_max
  /// clamped to [0, 1]; `num_universe_items` sizes the reverse item→pool map.
  static PreferenceIndex Build(std::span<const std::vector<Score>> predictions,
                               double scale_max, std::vector<ItemId> pool,
                               std::size_t num_universe_items);

  /// Incremental rebuild for live updates: a full copy of this index in
  /// which the rows of `users` (parallel to `predictions`: predictions[i]
  /// is a view of users[i]'s fresh per-ItemId prediction array) are
  /// re-normalized and re-sorted; every other row is copied bit-identically.
  /// The pool, the item→key map and the score normalization (scale_max) are
  /// inherited. Cost: one O(users × pool) memcpy plus O(pool log pool) per
  /// updated row.
  PreferenceIndex CloneWithUpdatedRows(
      std::span<const UserId> users,
      std::span<const std::span<const Score>> predictions) const;

  std::size_t num_users() const { return num_users_; }
  std::size_t pool_size() const { return pool_.size(); }

  /// The popular-item pool in key order: pool()[key] is the universe item of
  /// candidate key `key` for every prefix slice.
  std::span<const ItemId> pool() const { return pool_; }

  /// Pool position (== candidate key) of a universe item, or kNotPooled.
  std::uint32_t PoolPositionOf(ItemId item) const {
    return item < pool_position_of_item_.size() ? pool_position_of_item_[item]
                                                : kNotPooled;
  }

  /// User `u`'s full sorted row (descending score, ties by ascending key).
  std::span<const ListEntry> UserEntries(UserId u) const {
    return {entries_.data() + u * pool_.size(), pool_.size()};
  }

  /// Non-owning preference list of user `u` restricted to the candidate-pool
  /// prefix [0, prefix) minus the keys tombstoned in `tombstones` (which,
  /// with `live_entries`, the caller derives from the group's rated items —
  /// all members share both). The view is valid as long as this index and the
  /// tombstone buffer live.
  ListView UserView(UserId u, std::size_t prefix,
                    std::span<const std::uint64_t> tombstones,
                    std::size_t live_entries) const {
    return ListView(UserEntries(u),
                    {positions_.data() + u * pool_.size(), pool_.size()},
                    prefix, live_entries, tombstones);
  }

  /// Approximate resident size, for capacity planning.
  std::size_t MemoryBytes() const {
    return entries_.size() * sizeof(ListEntry) +
           positions_.size() * sizeof(std::uint32_t) +
           pool_.size() * sizeof(ItemId) +
           pool_position_of_item_.size() * sizeof(std::uint32_t);
  }

 private:
  /// Re-sorts user `u`'s row (and its key→position map) from a fresh
  /// prediction array. Internal: only called on rows of an unpublished copy.
  void RebuildRow(UserId u, std::span<const Score> predictions);

  std::size_t num_users_ = 0;
  double scale_max_ = 1.0;                            // score normalization
  std::vector<ItemId> pool_;                          // key -> universe item
  std::vector<std::uint32_t> pool_position_of_item_;  // item -> key
  std::vector<ListEntry> entries_;    // num_users × pool_size, row-major
  std::vector<std::uint32_t> positions_;  // key -> row position, same shape
};

}  // namespace greca

#endif  // GRECA_INDEX_PREFERENCE_INDEX_H_
