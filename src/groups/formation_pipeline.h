// Group formation as a serving workload: form → RecommendBatch → evaluate.
//
// The paper recommends to GIVEN groups; From Group Recommendations to Group
// Formation (PAPERS.md) runs the pipeline in reverse — given a user
// population, form the groups themselves, then judge them by the
// satisfaction the recommender can deliver. This module promotes the
// group_formation.* + user_clustering.* seeds into that end-to-end pipeline,
// and it is deliberately shaped as a heavy BATCH consumer: formation emits
// one Query per candidate group and the whole set goes through
// RecommendBatch (the unified serving runtime, serve/batch_executor.h) in
// one planned, parallel call.
//
// Stages:
//  1. SAMPLE — draw a bounded candidate set from the population (the scale
//     harness has millions of users; formation quality needs a cohort, not
//     a census), deterministically in the seed.
//  2. CLUSTER — k-means taste clusters over mean-centered ratings of the
//     most popular items (user_clustering.h). Formation inside a taste
//     cluster is where cohesiveness-based strategies have signal.
//  3. FORM — per cluster, greedy GroupFormer builds cycling through the
//     formation strategies (similar / dissimilar / high-affinity /
//     low-affinity / random). Each build sees a bounded WINDOW of the
//     cluster's remaining users — the greedy seed-pair search is O(E²), so
//     the window caps per-group cost regardless of cluster size — and
//     formed members are consumed, keeping groups disjoint.
//  4. SERVE + SCORE — the caller runs MakeQueries() through any engine's
//     RecommendBatch and hands the results to ScoreFormedGroups with a
//     ground-truth SatisfactionOracle (eval/satisfaction.h).
//
// Everything is deterministic in FormationPipelineConfig::seed, so a
// formation round trip reproduces bit-identical groups and scores across
// runs and engines (tests/formation_test.cc).
#ifndef GRECA_GROUPS_FORMATION_PIPELINE_H_
#define GRECA_GROUPS_FORMATION_PIPELINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/group_recommender.h"
#include "dataset/ratings.h"
#include "eval/satisfaction.h"
#include "groups/group_formation.h"

namespace greca {

enum class FormationStrategy : std::uint8_t {
  kSimilar,
  kDissimilar,
  kHighAffinity,
  kLowAffinity,
  kRandom,
};

const char* FormationStrategyName(FormationStrategy s);

struct FormationPipelineConfig {
  /// Total groups to form (across all clusters and strategies).
  std::size_t num_groups = 64;
  std::size_t group_size = 5;
  /// Candidate cohort sampled from the population before clustering (0 =
  /// use everyone; keep bounded on scale populations).
  std::size_t candidate_users = 2'000;
  /// Taste clusters over the cohort.
  std::size_t num_clusters = 8;
  /// Most-popular items used as clustering features.
  std::size_t num_feature_items = 48;
  /// Users visible to one greedy build — caps the O(E²) seed-pair search.
  std::size_t greedy_window = 96;
  std::uint64_t seed = 19;
};

struct FormedGroup {
  Group members;
  FormationStrategy strategy = FormationStrategy::kRandom;
  /// Taste cluster the group was drawn from.
  std::size_t cluster = 0;
};

class FormationPipeline {
 public:
  /// `affinity` is the formation-side pair score (e.g. the engine's
  /// AffinitySource at the evaluation period, or a constant for populations
  /// without social signal); rating similarity is derived internally
  /// (Pearson over the users' observed ratings). `ratings` must outlive the
  /// pipeline.
  FormationPipeline(const RatingsDataset& ratings, PairScoreFn affinity,
                    FormationPipelineConfig config);

  /// Stages 1–3: sample, cluster, form. Deterministic in the config seed.
  std::vector<FormedGroup> FormGroups() const;

  /// One Query per formed group, sharing `spec` — feed to RecommendBatch.
  static std::vector<Query> MakeQueries(std::span<const FormedGroup> groups,
                                        const QuerySpec& spec);

 private:
  const RatingsDataset* ratings_;
  PairScoreFn affinity_;
  FormationPipelineConfig config_;
};

/// Satisfaction summary of one formation round trip.
struct FormationScore {
  std::size_t groups_scored = 0;
  /// Groups whose recommendation failed validation (no score contribution).
  std::size_t groups_failed = 0;
  double mean_satisfaction_pct = 0.0;
  double min_satisfaction_pct = 0.0;
  double max_satisfaction_pct = 0.0;
  /// Parallel to `groups`; -1 for failed groups.
  std::vector<double> per_group_pct;
};

/// Scores each formed group's recommended list through the oracle.
/// `results` must be RecommendBatch's output for MakeQueries(groups, spec),
/// in order.
FormationScore ScoreFormedGroups(const SatisfactionOracle& oracle,
                                 std::span<const FormedGroup> groups,
                                 std::span<const Result<Recommendation>> results,
                                 PeriodId period);

}  // namespace greca

#endif  // GRECA_GROUPS_FORMATION_PIPELINE_H_
