#include "groups/group_formation.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/distributions.h"

namespace greca {

GroupFormer::GroupFormer(std::vector<UserId> eligible,
                         PairScoreFn rating_similarity, PairScoreFn affinity)
    : eligible_(std::move(eligible)),
      rating_similarity_(std::move(rating_similarity)),
      affinity_(std::move(affinity)) {
  assert(!eligible_.empty());
}

Group GroupFormer::Greedy(
    std::size_t size,
    const std::function<double(std::span<const UserId>, UserId)>& marginal)
    const {
  assert(size >= 2);
  assert(size <= eligible_.size());
  Group group;
  // Seed with the best pair under the marginal objective.
  double best = -std::numeric_limits<double>::infinity();
  UserId seed_a = eligible_[0], seed_b = eligible_[1];
  for (std::size_t i = 0; i < eligible_.size(); ++i) {
    const Group single{eligible_[i]};
    for (std::size_t j = i + 1; j < eligible_.size(); ++j) {
      const double value = marginal(single, eligible_[j]);
      if (value > best) {
        best = value;
        seed_a = eligible_[i];
        seed_b = eligible_[j];
      }
    }
  }
  group = {seed_a, seed_b};
  while (group.size() < size) {
    double best_gain = -std::numeric_limits<double>::infinity();
    UserId best_user = kInvalidUser;
    for (const UserId u : eligible_) {
      if (std::find(group.begin(), group.end(), u) != group.end()) continue;
      const double gain = marginal(group, u);
      if (gain > best_gain) {
        best_gain = gain;
        best_user = u;
      }
    }
    assert(best_user != kInvalidUser);
    group.push_back(best_user);
  }
  std::sort(group.begin(), group.end());
  return group;
}

Group GroupFormer::FormSimilar(std::size_t size) const {
  return Greedy(size, [this](std::span<const UserId> group, UserId u) {
    double sum = 0.0;
    for (const UserId v : group) sum += rating_similarity_(u, v);
    return sum;
  });
}

Group GroupFormer::FormDissimilar(std::size_t size) const {
  return Greedy(size, [this](std::span<const UserId> group, UserId u) {
    double sum = 0.0;
    for (const UserId v : group) sum += rating_similarity_(u, v);
    return -sum;
  });
}

Group GroupFormer::FormHighAffinity(std::size_t size) const {
  // Maximize the weakest link: high-affinity groups require *every* pair to
  // clear the threshold (§4.1.3).
  return Greedy(size, [this](std::span<const UserId> group, UserId u) {
    double weakest = std::numeric_limits<double>::infinity();
    for (const UserId v : group) {
      weakest = std::min(weakest, affinity_(u, v));
    }
    return weakest;
  });
}

Group GroupFormer::FormLowAffinity(std::size_t size) const {
  return Greedy(size, [this](std::span<const UserId> group, UserId u) {
    double strongest = 0.0;
    for (const UserId v : group) {
      strongest = std::max(strongest, affinity_(u, v));
    }
    return -strongest;
  });
}

Group GroupFormer::FormRandom(std::size_t size, Rng& rng) const {
  assert(size <= eligible_.size());
  const auto picks = SampleDistinct(rng, eligible_.size(), size);
  Group group;
  group.reserve(size);
  for (const std::size_t i : picks) group.push_back(eligible_[i]);
  std::sort(group.begin(), group.end());
  return group;
}

double GroupFormer::SumRatingSimilarity(std::span<const UserId> group) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      sum += rating_similarity_(group[i], group[j]);
    }
  }
  return sum;
}

double GroupFormer::MinPairAffinity(std::span<const UserId> group) const {
  double weakest = 1.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      weakest = std::min(weakest, affinity_(group[i], group[j]));
    }
  }
  return weakest;
}

double GroupFormer::MaxPairAffinity(std::span<const UserId> group) const {
  double strongest = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      strongest = std::max(strongest, affinity_(group[i], group[j]));
    }
  }
  return strongest;
}

}  // namespace greca
