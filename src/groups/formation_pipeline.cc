#include "groups/formation_pipeline.h"

#include <algorithm>
#include <utility>

#include "cf/similarity.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "groups/user_clustering.h"

namespace greca {

const char* FormationStrategyName(FormationStrategy s) {
  switch (s) {
    case FormationStrategy::kSimilar:
      return "similar";
    case FormationStrategy::kDissimilar:
      return "dissimilar";
    case FormationStrategy::kHighAffinity:
      return "high_affinity";
    case FormationStrategy::kLowAffinity:
      return "low_affinity";
    case FormationStrategy::kRandom:
      return "random";
  }
  return "unknown";
}

FormationPipeline::FormationPipeline(const RatingsDataset& ratings,
                                     PairScoreFn affinity,
                                     FormationPipelineConfig config)
    : ratings_(&ratings), affinity_(std::move(affinity)), config_(config) {}

namespace {

constexpr FormationStrategy kStrategyCycle[] = {
    FormationStrategy::kSimilar,      FormationStrategy::kDissimilar,
    FormationStrategy::kHighAffinity, FormationStrategy::kLowAffinity,
    FormationStrategy::kRandom,
};

Group FormOne(const GroupFormer& former, FormationStrategy strategy,
              std::size_t size, Rng& rng) {
  switch (strategy) {
    case FormationStrategy::kSimilar:
      return former.FormSimilar(size);
    case FormationStrategy::kDissimilar:
      return former.FormDissimilar(size);
    case FormationStrategy::kHighAffinity:
      return former.FormHighAffinity(size);
    case FormationStrategy::kLowAffinity:
      return former.FormLowAffinity(size);
    case FormationStrategy::kRandom:
      return former.FormRandom(size, rng);
  }
  return {};
}

}  // namespace

std::vector<FormedGroup> FormationPipeline::FormGroups() const {
  Rng rng(config_.seed);

  // Stage 1 — sample the candidate cohort. SampleDistinct returns sorted
  // ascending, so cohort order (and everything downstream) is independent
  // of anything but the seed.
  const std::size_t population = ratings_->num_users();
  std::vector<UserId> cohort;
  if (config_.candidate_users == 0 || config_.candidate_users >= population) {
    cohort.resize(population);
    for (UserId u = 0; u < population; ++u) cohort[u] = u;
  } else {
    for (const std::size_t u :
         SampleDistinct(rng, population, config_.candidate_users)) {
      cohort.push_back(static_cast<UserId>(u));
    }
  }

  // Stage 2 — taste clusters over the cohort.
  KMeansConfig kmeans;
  kmeans.num_clusters = std::min(config_.num_clusters,
                                 std::max<std::size_t>(1, cohort.size()));
  kmeans.seed = config_.seed + 1;
  std::vector<std::vector<UserId>> clusters = ClusterUsersByRatings(
      *ratings_, cohort, config_.num_feature_items, kmeans);

  // Stage 3 — greedy builds over a sliding window of each cluster's
  // remaining users. A deterministic shuffle first: clusters come out of
  // k-means in cohort (ascending id) order, and a greedy window over sorted
  // ids would always form groups of low-id users.
  for (auto& cluster : clusters) Shuffle(rng, cluster);
  std::vector<std::size_t> next(clusters.size(), 0);  // consumed prefix

  const PairScoreFn rating_similarity = [this](UserId a, UserId b) {
    return PearsonSimilarity(ratings_->RatingsOfUser(a),
                             ratings_->RatingsOfUser(b));
  };

  std::vector<FormedGroup> formed;
  formed.reserve(config_.num_groups);
  std::size_t strategy_ix = 0;
  bool any_progress = true;
  while (formed.size() < config_.num_groups && any_progress) {
    any_progress = false;
    for (std::size_t c = 0;
         c < clusters.size() && formed.size() < config_.num_groups; ++c) {
      const std::size_t remaining = clusters[c].size() - next[c];
      if (remaining < config_.group_size) continue;
      const std::size_t window = std::min(config_.greedy_window, remaining);
      const std::vector<UserId> eligible(
          clusters[c].begin() + static_cast<std::ptrdiff_t>(next[c]),
          clusters[c].begin() + static_cast<std::ptrdiff_t>(next[c] + window));
      const GroupFormer former(eligible, rating_similarity, affinity_);
      const FormationStrategy strategy =
          kStrategyCycle[strategy_ix % std::size(kStrategyCycle)];
      ++strategy_ix;
      Group group = FormOne(former, strategy, config_.group_size, rng);
      if (group.size() < config_.group_size) continue;

      // Consume the members: swap them into the consumed prefix so they are
      // invisible to every later window and groups stay disjoint.
      for (const UserId u : group) {
        auto it = std::find(
            clusters[c].begin() + static_cast<std::ptrdiff_t>(next[c]),
            clusters[c].end(), u);
        std::iter_swap(it, clusters[c].begin() +
                               static_cast<std::ptrdiff_t>(next[c]));
        ++next[c];
      }
      formed.push_back({std::move(group), strategy, c});
      any_progress = true;
    }
  }
  return formed;
}

std::vector<Query> FormationPipeline::MakeQueries(
    std::span<const FormedGroup> groups, const QuerySpec& spec) {
  std::vector<Query> queries;
  queries.reserve(groups.size());
  for (const FormedGroup& g : groups) {
    queries.push_back({g.members, spec});
  }
  return queries;
}

FormationScore ScoreFormedGroups(
    const SatisfactionOracle& oracle, std::span<const FormedGroup> groups,
    std::span<const Result<Recommendation>> results, PeriodId period) {
  FormationScore score;
  score.per_group_pct.reserve(groups.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < groups.size() && i < results.size(); ++i) {
    if (!results[i].ok()) {
      ++score.groups_failed;
      score.per_group_pct.push_back(-1.0);
      continue;
    }
    const double pct = oracle.GroupSatisfactionPercent(
        groups[i].members, results[i].value().items, period);
    score.per_group_pct.push_back(pct);
    if (score.groups_scored == 0) {
      score.min_satisfaction_pct = score.max_satisfaction_pct = pct;
    } else {
      score.min_satisfaction_pct = std::min(score.min_satisfaction_pct, pct);
      score.max_satisfaction_pct = std::max(score.max_satisfaction_pct, pct);
    }
    ++score.groups_scored;
    sum += pct;
  }
  if (score.groups_scored > 0) {
    score.mean_satisfaction_pct = sum / static_cast<double>(score.groups_scored);
  }
  return score;
}

}  // namespace greca
