// User clustering over rating behavior.
//
// The paper's related work ([19], Ntoutsi et al.) accelerates group
// recommendation by clustering similar users; the paper's own future work
// proposes combining incremental clustering with the affinity indices. This
// module provides the substrate: deterministic k-means over mean-centered
// rating feature vectors, plus a convenience that partitions users into
// taste clusters (usable as a group-formation source or as a preference-list
// sharing scheme).
#ifndef GRECA_GROUPS_USER_CLUSTERING_H_
#define GRECA_GROUPS_USER_CLUSTERING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dataset/ratings.h"

namespace greca {

struct KMeansConfig {
  std::size_t num_clusters = 4;
  std::size_t max_iterations = 50;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  /// Cluster index per input row.
  std::vector<std::size_t> assignment;
  /// num_clusters × dim centroids, row-major.
  std::vector<double> centroids;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ style seeding (deterministic in the
/// seed). `data` is `rows × dim` row-major; requires rows >= num_clusters.
KMeansResult KMeans(std::span<const double> data, std::size_t rows,
                    std::size_t dim, const KMeansConfig& config);

/// Feature matrix for clustering: one row per user in `users`, one column
/// per item in `feature_items`; entries are the user's mean-centered rating
/// of the item (0 when unrated). Row-major, users.size() × feature_items.size().
std::vector<double> RatingFeatureMatrix(const RatingsDataset& ratings,
                                        std::span<const UserId> users,
                                        std::span<const ItemId> feature_items);

/// Partitions `users` into taste clusters over their ratings of the
/// `num_features` most popular items.
std::vector<std::vector<UserId>> ClusterUsersByRatings(
    const RatingsDataset& ratings, std::span<const UserId> users,
    std::size_t num_features, const KMeansConfig& config);

}  // namespace greca

#endif  // GRECA_GROUPS_USER_CLUSTERING_H_
