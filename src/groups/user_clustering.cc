#include "groups/user_clustering.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace greca {

namespace {

double SquaredDistance(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult KMeans(std::span<const double> data, std::size_t rows,
                    std::size_t dim, const KMeansConfig& config) {
  assert(data.size() == rows * dim);
  assert(rows >= config.num_clusters);
  assert(config.num_clusters >= 1);
  const std::size_t k = config.num_clusters;
  Rng rng(config.seed);

  KMeansResult result;
  result.centroids.resize(k * dim);
  result.assignment.assign(rows, 0);

  // k-means++ seeding: first centroid uniform, then rows weighted by their
  // squared distance to the closest chosen centroid.
  std::vector<std::size_t> chosen;
  chosen.push_back(rng.NextBounded(rows));
  std::vector<double> min_dist(rows, std::numeric_limits<double>::infinity());
  while (chosen.size() < k) {
    const double* last = &data[chosen.back() * dim];
    double total = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      min_dist[r] =
          std::min(min_dist[r], SquaredDistance(&data[r * dim], last, dim));
      total += min_dist[r];
    }
    std::size_t next = 0;
    if (total <= 0.0) {
      next = rng.NextBounded(rows);  // all points identical: any row works
    } else {
      double pick = rng.NextDouble() * total;
      for (std::size_t r = 0; r < rows; ++r) {
        pick -= min_dist[r];
        if (pick <= 0.0) {
          next = r;
          break;
        }
      }
    }
    chosen.push_back(next);
  }
  for (std::size_t c = 0; c < k; ++c) {
    std::copy_n(&data[chosen[c] * dim], dim, &result.centroids[c * dim]);
  }

  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    bool moved = false;
    // Assign.
    for (std::size_t r = 0; r < rows; ++r) {
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double dist = SquaredDistance(&data[r * dim],
                                            &result.centroids[c * dim], dim);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[r] != best) {
        result.assignment[r] = best;
        moved = true;
      }
    }
    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t c = result.assignment[r];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) {
        sums[c * dim + d] += data[r * dim + d];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] =
            sums[c * dim + d] / static_cast<double>(counts[c]);
      }
    }
    if (!moved && iter > 0) break;
  }

  result.inertia = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    result.inertia += SquaredDistance(
        &data[r * dim], &result.centroids[result.assignment[r] * dim], dim);
  }
  return result;
}

std::vector<double> RatingFeatureMatrix(
    const RatingsDataset& ratings, std::span<const UserId> users,
    std::span<const ItemId> feature_items) {
  const std::size_t dim = feature_items.size();
  std::vector<double> matrix(users.size() * dim, 0.0);
  for (std::size_t r = 0; r < users.size(); ++r) {
    const double mean = ratings.UserMeanRating(users[r], 0.0);
    for (std::size_t d = 0; d < dim; ++d) {
      if (const auto rating = ratings.GetRating(users[r], feature_items[d])) {
        matrix[r * dim + d] = *rating - mean;
      }
    }
  }
  return matrix;
}

std::vector<std::vector<UserId>> ClusterUsersByRatings(
    const RatingsDataset& ratings, std::span<const UserId> users,
    std::size_t num_features, const KMeansConfig& config) {
  const std::vector<ItemId> features = ratings.TopPopularItems(num_features);
  const std::vector<double> matrix =
      RatingFeatureMatrix(ratings, users, features);
  const KMeansResult km =
      KMeans(matrix, users.size(), features.size(), config);
  std::vector<std::vector<UserId>> clusters(config.num_clusters);
  for (std::size_t r = 0; r < users.size(); ++r) {
    clusters[km.assignment[r]].push_back(users[r]);
  }
  return clusters;
}

}  // namespace greca
