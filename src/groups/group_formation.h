// Group formation (paper §4.1.3).
//
// Groups are characterized along three axes:
//  * size — small (3) vs large (6) in the quality study, up to 12 in the
//    scalability study;
//  * cohesiveness — "similar" groups maximize the summed pair-wise rating
//    similarity among users who rated the Similar movie set, "dissimilar"
//    groups minimize it among users who rated the Dissimilar set;
//  * affinity strength — "high affinity" groups have every pair-wise
//    affinity >= 0.4, "low affinity" groups minimize pair-wise affinity.
//
// Exhaustive search over all size-g subsets is infeasible; the paper does not
// specify its procedure, so we use a greedy build (best seed pair, then
// repeatedly add the user optimizing the objective), which is deterministic
// and reproduces the intended extremes.
#ifndef GRECA_GROUPS_GROUP_FORMATION_H_
#define GRECA_GROUPS_GROUP_FORMATION_H_

#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace greca {

using Group = std::vector<UserId>;

/// Symmetric pair score used as the formation objective.
using PairScoreFn = std::function<double(UserId, UserId)>;

class GroupFormer {
 public:
  /// `eligible` are the candidate users (e.g. participants who rated the
  /// Similar set). Scores are evaluated lazily through the callbacks.
  GroupFormer(std::vector<UserId> eligible, PairScoreFn rating_similarity,
              PairScoreFn affinity);

  /// Greedy maximizer of Σ pair-wise rating similarity.
  Group FormSimilar(std::size_t size) const;
  /// Greedy minimizer of Σ pair-wise rating similarity.
  Group FormDissimilar(std::size_t size) const;
  /// Greedy maximizer of the *minimum* pair-wise affinity; callers should
  /// verify the 0.4 threshold with MinPairAffinity().
  Group FormHighAffinity(std::size_t size) const;
  /// Greedy minimizer of the maximum pair-wise affinity.
  Group FormLowAffinity(std::size_t size) const;
  /// Uniform random group.
  Group FormRandom(std::size_t size, Rng& rng) const;

  /// Σ pair-wise rating similarity of a group.
  double SumRatingSimilarity(std::span<const UserId> group) const;
  /// Minimum pair-wise affinity within a group (1.0 for singletons).
  double MinPairAffinity(std::span<const UserId> group) const;
  double MaxPairAffinity(std::span<const UserId> group) const;

  const std::vector<UserId>& eligible() const { return eligible_; }

 private:
  /// Greedy subset build optimizing `marginal` (higher is better).
  Group Greedy(std::size_t size,
               const std::function<double(std::span<const UserId>, UserId)>&
                   marginal) const;

  std::vector<UserId> eligible_;
  PairScoreFn rating_similarity_;
  PairScoreFn affinity_;
};

}  // namespace greca

#endif  // GRECA_GROUPS_GROUP_FORMATION_H_
