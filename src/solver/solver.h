// The pluggable solver seam: every aggregation objective — GRECA's
// bound-based early termination, TA, the exhaustive scan, submodular
// coverage, and anything registered later — implements this one interface
// and is dispatched by stable string id through SolverRegistry
// (solver_registry.h). The serving layers (SolveGroupProblem, the batch
// planner, both engines' RecommendBatch) know nothing about individual
// algorithms anymore; adding an objective is one registration, not a
// nine-layer edit.
//
// A solver consumes a fully assembled GroupProblem (zero-copy ListViews,
// consensus spec, per-member weights) and produces a TopKResult over POOL
// KEYS plus its access statistics; the caller maps keys back to universe
// items. Solvers must be stateless and safe for concurrent const use — all
// per-run mutable state belongs in the caller-provided QueryWorkspace or on
// the stack, because one registered instance serves every batch worker.
#ifndef GRECA_SOLVER_SOLVER_H_
#define GRECA_SOLVER_SOLVER_H_

#include <span>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "core/greca.h"
#include "core/group_recommender.h"
#include "topk/problem.h"
#include "topk/result.h"

namespace greca {

/// What one solve produces: the raw pool-key result with access counts, plus
/// GRECA's extended statistics (zeroed by every other solver).
struct SolverResult {
  TopKResult raw;
  GrecaStats greca_stats;
};

class GroupSolver {
 public:
  virtual ~GroupSolver() = default;

  /// Stable registry id ("greca", "naive", "ta", "submodular", ...). Must be
  /// unique across the registry and stable across versions — it is the batch
  /// planner's bucketing key and the public selection handle
  /// (QuerySpec::solver_id).
  virtual std::string_view id() const = 0;

  /// Solver-specific validation hook, called from the shared
  /// ValidateGroupQuery after the group-shape checks. Lets a solver reject
  /// queries it cannot serve (e.g. GRECA's 32-member seen-bitmask cap)
  /// before any assembly happens. Default: everything this far is fine.
  virtual Status ValidateQuery(std::span<const UserId> group,
                               const QuerySpec& spec) const {
    (void)group;
    (void)spec;
    return Status::Ok();
  }

  /// Solves the assembled problem for spec.k items. Result keys are pool
  /// positions; access counts follow each algorithm's published accounting.
  /// `workspace` offers reusable buffers (arena, GRECA bound state) — using
  /// them is optional, mutating shared solver state is not.
  virtual SolverResult Solve(GroupProblem& problem, const QuerySpec& spec,
                             QueryWorkspace& workspace) const = 0;
};

}  // namespace greca

#endif  // GRECA_SOLVER_SOLVER_H_
