// SAGA-style submodular-greedy group top-k (PAPERS.md: "SAGA: A Submodular
// Greedy Algorithm For Group Recommendation").
//
// Where GRECA/TA/Naive rank items independently by consensus score F, this
// solver selects a SET: greedy maximization of the monotone submodular
// objective
//
//   Obj(S) = λ·Σ_{i∈S} rel(i)  +  (1−λ)·Σ_u w_u·cov_u(S),
//   cov_u(S) = max_{i∈S} apref_u(i)       (facility-location coverage),
//
// with rel(i) the exact consensus score and w_u the problem's per-member
// consensus weights (uniform 1/|G| by default). The coverage term rewards a
// list in which EVERY member has at least one item they love, so the greedy
// list trades a little relevance for taste diversity — a genuinely different
// index access pattern (k rounds of marginal-gain re-evaluation over the
// candidate pool) that the quality-vs-speed frontier in bench_batch's
// GRECA_BATCH_ALGO sweep measures against the exact rankers.
//
// Cost model: one exhaustive scan of every list (the same sequential-access
// accounting as the naive baseline — accesses equal naive's) to materialize
// apref and rel, then k greedy rounds of O(candidates·|G|) marginal-gain
// re-evaluation — O(scan + k·C·g) total, no random accesses. The classical
// 1−1/e approximation guarantee of greedy on monotone submodular objectives
// applies.
//
// Reported scores are each item's marginal gain at selection time —
// non-increasing down the list (submodularity), so results stay
// descending-sorted like every other solver; they are NOT consensus scores.
#ifndef GRECA_SOLVER_SUBMODULAR_SOLVER_H_
#define GRECA_SOLVER_SUBMODULAR_SOLVER_H_

#include "solver/solver.h"
#include "solver/solver_registry.h"

namespace greca {

class SubmodularGreedySolver final : public GroupSolver {
 public:
  /// `relevance_weight` is λ ∈ [0, 1]: 1 reduces to the exact consensus
  /// ranking (same items and order as the naive scan), 0 ranks by pure
  /// coverage of member tastes. The registered built-in uses the default.
  explicit SubmodularGreedySolver(double relevance_weight = 0.5);

  std::string_view id() const override { return kSubmodularSolverId; }
  SolverResult Solve(GroupProblem& problem, const QuerySpec& spec,
                     QueryWorkspace& workspace) const override;

  double relevance_weight() const { return relevance_weight_; }

 private:
  double relevance_weight_;
};

}  // namespace greca

#endif  // GRECA_SOLVER_SUBMODULAR_SOLVER_H_
