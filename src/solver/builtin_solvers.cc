#include "solver/builtin_solvers.h"

#include <string>

#include "topk/naive.h"
#include "topk/ta.h"

namespace greca {

Status GrecaSolver::ValidateQuery(std::span<const UserId> group,
                                  const QuerySpec& spec) const {
  (void)spec;
  // The seen-bitmask in GRECA's runtime state caps its groups at 32
  // members; the naive scan and TA have no such limit.
  if (group.size() > 32) {
    return Status::InvalidArgument(
        "GRECA is limited to 32-member groups (got " +
        std::to_string(group.size()) + "); use kNaive or kTa");
  }
  return Status::Ok();
}

SolverResult GrecaSolver::Solve(GroupProblem& problem, const QuerySpec& spec,
                                QueryWorkspace& workspace) const {
  SolverResult result;
  GrecaConfig config;
  config.k = spec.k;
  config.termination = spec.termination;
  result.raw = Greca(problem, config, &result.greca_stats, &workspace.greca);
  return result;
}

SolverResult NaiveSolver::Solve(GroupProblem& problem, const QuerySpec& spec,
                                QueryWorkspace& workspace) const {
  (void)workspace;
  SolverResult result;
  result.raw = NaiveTopK(problem, spec.k);
  return result;
}

SolverResult TaSolver::Solve(GroupProblem& problem, const QuerySpec& spec,
                             QueryWorkspace& workspace) const {
  (void)workspace;
  SolverResult result;
  result.raw = TaTopK(problem, spec.k);
  return result;
}

}  // namespace greca
