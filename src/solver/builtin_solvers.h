// Registry adapters for the three original algorithms. Each wraps the
// existing free-function implementation (core/greca.h, topk/naive.h,
// topk/ta.h) unchanged — with uniform weights the registry-dispatched path
// is bit-identical (items, scores, access counts) to the historical
// enum-switch, which tests/solver_registry_test.cc pins on both engines.
#ifndef GRECA_SOLVER_BUILTIN_SOLVERS_H_
#define GRECA_SOLVER_BUILTIN_SOLVERS_H_

#include "solver/solver.h"
#include "solver/solver_registry.h"

namespace greca {

/// GRECA (paper Alg. 1). Rejects groups beyond 32 members — its seen-bitmask
/// caps runtime state — through the ValidateQuery hook, keeping the
/// historical error message byte-identical.
class GrecaSolver final : public GroupSolver {
 public:
  std::string_view id() const override { return kGrecaSolverId; }
  Status ValidateQuery(std::span<const UserId> group,
                       const QuerySpec& spec) const override;
  SolverResult Solve(GroupProblem& problem, const QuerySpec& spec,
                     QueryWorkspace& workspace) const override;
};

/// Exhaustive scan + exact scoring — the equivalence baseline.
class NaiveSolver final : public GroupSolver {
 public:
  std::string_view id() const override { return kNaiveSolverId; }
  SolverResult Solve(GroupProblem& problem, const QuerySpec& spec,
                     QueryWorkspace& workspace) const override;
};

/// Fagin's Threshold Algorithm with the paper's access accounting.
class TaSolver final : public GroupSolver {
 public:
  std::string_view id() const override { return kTaSolverId; }
  SolverResult Solve(GroupProblem& problem, const QuerySpec& spec,
                     QueryWorkspace& workspace) const override;
};

}  // namespace greca

#endif  // GRECA_SOLVER_BUILTIN_SOLVERS_H_
