#include "solver/solver_registry.h"

#include <mutex>
#include <utility>

#include "solver/builtin_solvers.h"
#include "solver/submodular_solver.h"

namespace greca {

SolverRegistry& SolverRegistry::Global() {
  // Function-local static: built-ins are registered on first use, which
  // survives static-archive linking (no file-scope registrar objects to get
  // dropped by the linker) and is thread-safe per the magic-static rules.
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    (void)r->Register(std::make_unique<GrecaSolver>());
    (void)r->Register(std::make_unique<NaiveSolver>());
    (void)r->Register(std::make_unique<TaSolver>());
    (void)r->Register(std::make_unique<SubmodularGreedySolver>());
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(std::unique_ptr<const GroupSolver> solver) {
  if (!solver) {
    return Status::InvalidArgument("cannot register a null solver");
  }
  const std::string id(solver->id());
  if (id.empty()) {
    return Status::InvalidArgument("cannot register a solver with empty id");
  }
  std::unique_lock lock(mu_);
  const auto [it, inserted] = solvers_.try_emplace(id, std::move(solver));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("solver id already registered: " + id);
  }
  return Status::Ok();
}

const GroupSolver* SolverRegistry::Find(std::string_view id) const {
  std::shared_lock lock(mu_);
  const auto it = solvers_.find(id);
  return it == solvers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SolverRegistry::RegisteredIds() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(solvers_.size());
  for (const auto& [id, solver] : solvers_) ids.push_back(id);
  return ids;  // std::map iterates sorted
}

std::string_view AlgorithmSolverId(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGreca:
      return kGrecaSolverId;
    case Algorithm::kNaive:
      return kNaiveSolverId;
    case Algorithm::kTa:
      return kTaSolverId;
  }
  return kGrecaSolverId;  // unreachable with a valid enum
}

std::string_view ResolveSolverId(const QuerySpec& spec) {
  if (!spec.solver_id.empty()) return spec.solver_id;
  return AlgorithmSolverId(spec.algorithm);
}

}  // namespace greca
