// Registry of GroupSolvers keyed by stable solver id.
//
// The process-wide registry (Global()) self-registers the built-ins on first
// use — GRECA, TA, the naive scan and the submodular-coverage solver — so
// lookup works without any static-initializer ceremony (and survives static
// archive linking, where file-scope registrar objects get dropped). Clients
// add solvers at startup with Register(); ids are first-come-first-served
// and never overwritten, so a typo'd duplicate fails loudly instead of
// silently replacing a built-in.
//
// Thread safety: Register() and Find() may race arbitrarily — lookups take a
// shared lock. Registered solvers are immutable and live for the process.
#ifndef GRECA_SOLVER_SOLVER_REGISTRY_H_
#define GRECA_SOLVER_SOLVER_REGISTRY_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "solver/solver.h"

namespace greca {

/// Built-in solver ids — the enum aliases plus the submodular objective.
inline constexpr std::string_view kGrecaSolverId = "greca";
inline constexpr std::string_view kNaiveSolverId = "naive";
inline constexpr std::string_view kTaSolverId = "ta";
inline constexpr std::string_view kSubmodularSolverId = "submodular";

class SolverRegistry {
 public:
  /// The process-wide registry, with the built-ins already registered.
  static SolverRegistry& Global();

  /// Adds `solver` under its id(). Fails with kInvalidArgument on a null
  /// solver, an empty id, or an id already taken (the existing registration
  /// is kept either way).
  Status Register(std::unique_ptr<const GroupSolver> solver);

  /// The solver registered under `id`, or null.
  const GroupSolver* Find(std::string_view id) const;

  /// All registered ids, sorted (stable iteration for sweeps and listings).
  std::vector<std::string> RegisteredIds() const;

 private:
  SolverRegistry() = default;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<const GroupSolver>, std::less<>>
      solvers_;
};

/// The registry id the legacy Algorithm enum aliases to.
std::string_view AlgorithmSolverId(Algorithm algorithm);

/// The solver id a spec actually selects: a non-empty spec.solver_id wins,
/// otherwise the enum alias. This is the planner's bucketing key — two specs
/// with equal resolved ids run the same solver.
std::string_view ResolveSolverId(const QuerySpec& spec);

}  // namespace greca

#endif  // GRECA_SOLVER_SOLVER_REGISTRY_H_
