#include "solver/submodular_solver.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace greca {

SubmodularGreedySolver::SubmodularGreedySolver(double relevance_weight)
    : relevance_weight_(relevance_weight) {
  assert(relevance_weight_ >= 0.0 && relevance_weight_ <= 1.0);
}

SolverResult SubmodularGreedySolver::Solve(GroupProblem& problem,
                                           const QuerySpec& spec,
                                           QueryWorkspace& workspace) const {
  (void)workspace;
  SolverResult result;
  TopKResult& out = result.raw;
  out.total_entries = problem.TotalEntries();

  // Phase 1 — exhaustive scan, identical accounting to the naive baseline:
  // every live entry of every list is read sequentially once. This is what
  // materializing apref(u, ·) for the coverage term costs on the paper's
  // access model.
  const auto scan = [&out](const ListView& list) {
    std::size_t cursor = 0;
    while (list.SkipToLive(cursor)) {
      list.ReadSequential(cursor, out.accesses);
    }
  };
  for (const ListView& list : problem.preference_lists()) scan(list);
  scan(problem.static_affinity());
  for (const ListView& list : problem.period_affinity()) scan(list);
  for (const ListView& list : problem.agreement_lists()) scan(list);

  const std::size_t g = problem.group_size();
  const std::size_t m = problem.num_items();
  const std::span<const ListView> preference_lists =
      problem.preference_lists();
  const ConsensusWeights& weights = problem.consensus_weights();

  // Materialize the candidate set, the apref matrix (coverage input) and
  // each candidate's exact consensus score (relevance input) — the same
  // dense-scoring recipe as the naive scan.
  const std::vector<double> pair_aff = problem.ExactPairAffinities();
  std::vector<double> pair_weights(g * g);
  problem.ExpandPairWeights(pair_aff, pair_weights);
  const std::span<const ListView> agreement_lists = problem.agreement_lists();
  const bool uses_agreements = problem.uses_agreement_lists();

  std::vector<ListKey> candidates;
  candidates.reserve(problem.num_candidates());
  std::vector<double> apref_matrix;  // candidate-major, g entries each
  apref_matrix.reserve(problem.num_candidates() * g);
  std::vector<double> relevance;
  relevance.reserve(problem.num_candidates());

  std::vector<double> apref(g);
  std::vector<double> prefs(g);
  std::vector<double> agreements(agreement_lists.size());
  for (ListKey key = 0; key < m; ++key) {
    if (!problem.IsCandidate(key)) continue;
    for (std::size_t u = 0; u < g; ++u) {
      apref[u] = preference_lists[u].ScoreOfKey(key);
    }
    problem.MemberPreferencesDense(apref, pair_weights, prefs);
    double rel;
    if (uses_agreements) {
      for (std::size_t q = 0; q < agreements.size(); ++q) {
        agreements[q] = agreement_lists[q].ScoreOfKey(key);
      }
      rel = ConsensusScoreWithAgreements(problem.consensus(), prefs,
                                         agreements, weights);
    } else {
      rel = ConsensusScore(problem.consensus(), prefs, weights);
    }
    candidates.push_back(key);
    apref_matrix.insert(apref_matrix.end(), apref.begin(), apref.end());
    relevance.push_back(rel);
  }

  // Phase 2 — greedy set construction: k rounds, each re-evaluating every
  // remaining candidate's marginal gain against the current coverage vector.
  // Uniform weights use 1/g so λ = 1 exactly reproduces the consensus
  // ranking and λ = 0 a [0, 1]-scaled coverage objective.
  const double lambda = relevance_weight_;
  const double uniform_w = g > 0 ? 1.0 / static_cast<double>(g) : 0.0;
  std::vector<double> coverage(g, 0.0);
  std::vector<bool> picked(candidates.size(), false);
  const std::size_t rounds = std::min(spec.k, candidates.size());
  out.items.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::ptrdiff_t best = -1;
    double best_gain = 0.0;
    ListKey best_key = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      double gain = lambda * relevance[c];
      const double* row = &apref_matrix[c * g];
      for (std::size_t u = 0; u < g; ++u) {
        const double lift = row[u] - coverage[u];
        if (lift > 0.0) {
          const double w = weights.uniform() ? uniform_w : weights.member[u];
          gain += (1.0 - lambda) * w * lift;
        }
      }
      // Deterministic tie-break towards the smaller key, matching every
      // other solver's ordering convention.
      if (best < 0 || gain > best_gain ||
          (gain == best_gain && candidates[c] < best_key)) {
        best = static_cast<std::ptrdiff_t>(c);
        best_gain = gain;
        best_key = candidates[c];
      }
    }
    if (best < 0) break;
    picked[static_cast<std::size_t>(best)] = true;
    const double* row = &apref_matrix[static_cast<std::size_t>(best) * g];
    for (std::size_t u = 0; u < g; ++u) {
      coverage[u] = std::max(coverage[u], row[u]);
    }
    out.items.push_back({best_key, best_gain});
    ++out.rounds;
  }
  out.early_terminated = false;
  return result;
}

}  // namespace greca
