// One shard of the shard-per-core engine: an independent publisher for a
// slice of the user population.
//
// A shard owns, for exactly the users the ShardRouter assigned to it:
//  * a PreferenceIndex with ONE ROW PER OWNED USER (local row r = the r-th
//    smallest owned user id), built over the engine's shared popularity
//    pool — every shard speaks the same candidate key space;
//  * a RatingsOverlay delta log over the shared immutable base dataset
//    (only owned users ever have delta rows here);
//  * its own group-commit queue and RCU snapshot (generation-stamped
//    overlay + index pair, swapped under a light mutex).
//
// Publish independence is the point: a rating batch touching only this
// shard's users clones THIS shard's index (1/N of the population's rows),
// not the whole fleet's — under locality-routed traffic the per-publish
// byte cost drops by the shard count, which is where the multi-shard
// throughput win comes from on a mixed read/write workload.
//
// Prediction recompute goes through a PoolPredictor instead of stored
// universe-scale prediction arrays: the predictor maps a user's merged
// ratings straight to raw scores per POOL POSITION, so million-user shards
// never materialize num_users × num_universe_items state. The study-backed
// engine wraps UserKnn::PredictAll in one; the scale harness wraps the
// synthetic ground truth.
//
// Equivalence contract (tests/sharded_equivalence_test.cc): a shard's rows
// are bit-identical to the corresponding rows of a monolithic index built
// from the same predictor over the same pool — rows depend only on (user's
// merged ratings, pool, scale_max), none of which shard placement changes.
#ifndef GRECA_SHARD_SHARD_H_
#define GRECA_SHARD_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "api/update.h"
#include "common/group_commit.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dataset/ratings.h"
#include "dataset/ratings_overlay.h"
#include "index/preference_index.h"

namespace greca {

/// Maps one user's merged ratings (base + live deltas, sorted by item) to
/// raw (universe-scale, un-normalized) scores per pool position:
/// out[key] = predicted rating for pool[key]. Must be safe for concurrent
/// calls on distinct users.
using PoolPredictor = std::function<void(
    UserId user, std::span<const UserRatingEntry> merged_ratings,
    std::span<const ItemId> pool, std::span<Score> out)>;

/// One published generation of a shard: immutable once built, pinned by
/// queries via shared_ptr (RCU). `ratings` is an overlay over the shared
/// base with delta rows only for this shard's users; `index` holds one row
/// per owned user in local-row order.
struct ShardSnapshot {
  std::uint64_t generation = 0;
  std::shared_ptr<const RatingsOverlay> ratings;
  std::shared_ptr<const PreferenceIndex> index;
};

/// Per-shard delta-log compaction policy (same semantics as
/// RecommenderOptions; each shard triggers independently — compaction is
/// unobservable, so independent triggers cannot break cross-shard
/// equivalence).
struct ShardOptions {
  std::size_t compact_every_n_publishes = 0;
  double compact_delta_fraction = 0.25;
  /// Keep the global-order twin of banded rows (see
  /// RecommenderOptions::build_flat_twin).
  bool build_flat_twin = true;
};

class Shard {
 public:
  /// Builds generation 1. `users` are the owned global ids, ascending (the
  /// ShardRouter::PartitionUsers order); `base` is the SHARED immutable
  /// ratings dataset of the whole population; `pool` the shared popularity
  /// pool (copied per shard — each index owns its pool vector, all equal).
  /// `build_threads`, when non-null, fans the initial row fills out
  /// (bit-identical to serial — rows are disjoint).
  Shard(std::size_t shard_id, std::vector<UserId> users,
        std::shared_ptr<const RatingsDataset> base, PoolPredictor predictor,
        double scale_max, std::vector<ItemId> pool,
        std::size_t num_universe_items,
        std::span<const std::uint32_t> band_breakpoints, ShardOptions options,
        ThreadPool* build_threads = nullptr);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  std::size_t shard_id() const { return shard_id_; }
  std::span<const UserId> users() const { return users_; }
  std::size_t num_local_users() const { return users_.size(); }

  /// Local index row of an owned user (binary search; asserts ownership in
  /// debug builds, callers route through the ShardRouter first).
  std::uint32_t LocalRowOf(UserId u) const;
  bool Owns(UserId u) const;

  /// The currently published generation; constant-time pointer copy.
  std::shared_ptr<const ShardSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Applies one PRE-VALIDATED, PRE-PARTITIONED sub-batch (every event's
  /// user owned by this shard, engine-arrival order preserved) and publishes
  /// a new shard generation. Same contract as
  /// GroupRecommender::ApplyRatingUpdates scoped to one shard: O(delta)
  /// fold, touched-row-only rebuild, group commit for concurrent callers,
  /// all-stale batches publish nothing. `report` receives the per-shard
  /// attribution (applied / stale / users_rebuilt / generation).
  Status Apply(std::span<const RatingEvent> events,
               UpdateReport* report = nullptr);

 private:
  struct PendingUpdate {
    std::span<const RatingEvent> events;
    UpdateReport report;
    Status status;
    bool done = false;
  };

  void PublishRound(std::span<PendingUpdate* const> round);
  std::shared_ptr<const ShardSnapshot> MakeSnapshot(
      std::uint64_t generation, std::shared_ptr<const RatingsOverlay> ratings,
      std::shared_ptr<const PreferenceIndex> index);

  const std::size_t shard_id_;
  const std::vector<UserId> users_;  // ascending; local row -> global id
  const PoolPredictor predictor_;
  const ShardOptions options_;

  mutable std::mutex snapshot_mu_;  // guards only the pointer swap
  std::shared_ptr<const ShardSnapshot> snapshot_;
  std::mutex update_mu_;  // serializes this shard's snapshot builds
  std::uint64_t next_generation_ = 2;           // guarded by update_mu_
  std::size_t publishes_since_compaction_ = 0;  // guarded by update_mu_
  GroupCommitQueue<PendingUpdate> commit_;
};

}  // namespace greca

#endif  // GRECA_SHARD_SHARD_H_
