#include "shard/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "core/problem_assembly.h"
#include "dataset/social_graph.h"
#include "serve/batch_executor.h"

namespace greca {

ShardedEngine::ShardedEngine(const RatingsDataset& universe,
                             const FacebookStudy& study,
                             ShardedEngineOptions options)
    : options_(options),
      router_(options.num_shards, study.num_participants(), options.strategy),
      num_universe_items_(universe.num_items()),
      num_periods_(study.periods.num_periods()),
      knn_(std::make_unique<UserKnn>(universe, options.knn)),
      static_(ComputeCommonFriendCounts(study.graph)),
      periodic_(std::make_unique<PeriodicAffinity>(
          PeriodicAffinity::Compute(study.likes, study.periods))),
      dynamic_(std::make_unique<DynamicAffinityIndex>(
          DynamicAffinityIndex::Build(*periodic_))) {
  // Same influence backing as the monolithic recommender: propagation
  // centrality over the immutable study graph, so influence-weighted queries
  // score identically on both engines.
  auto influence = std::make_shared<const std::vector<double>>(
      PropagationCentrality(study.graph));
  affinity_ = std::make_shared<StudyAffinitySource>(
      static_, *periodic_, dynamic_.get(), std::move(influence));
  // The shard-side prediction backend: CF over the merged profile, gathered
  // down to pool positions. Feeding RebuildRowFromPool the same raw values
  // Build() would read via pool[key] keeps shard rows bit-identical to a
  // monolithic index over the same study.
  const UserKnn* knn = knn_.get();
  predictor_ = [knn](UserId /*user*/,
                     std::span<const UserRatingEntry> merged_ratings,
                     std::span<const ItemId> pool, std::span<Score> out) {
    const std::vector<Score> preds = knn->PredictAll(merged_ratings);
    for (std::size_t k = 0; k < pool.size(); ++k) out[k] = preds[pool[k]];
  };
  // Generation 1 aliases the study-owned ratings, like the monolithic
  // recommender (the study outlives the engine by contract).
  auto base = std::shared_ptr<const RatingsDataset>(
      std::shared_ptr<const void>(), &study.study_ratings);
  BuildShards(std::move(base), /*scale_max=*/5.0,
              universe.TopPopularItems(options_.max_candidate_items),
              universe.num_items());
}

ShardedEngine::ShardedEngine(ShardedEngineInputs inputs,
                             ShardedEngineOptions options)
    : options_(options),
      router_(options.num_shards, inputs.ratings->num_users(),
              options.strategy),
      num_universe_items_(inputs.num_universe_items),
      num_periods_(inputs.num_periods),
      affinity_(std::move(inputs.affinity)),
      predictor_(std::move(inputs.predictor)) {
  assert(affinity_ != nullptr && predictor_ != nullptr);
  BuildShards(std::move(inputs.ratings), inputs.prediction_scale_max,
              std::move(inputs.pool), num_universe_items_);
}

void ShardedEngine::BuildShards(std::shared_ptr<const RatingsDataset> base,
                                double scale_max, std::vector<ItemId> pool,
                                std::size_t num_universe_items) {
  period_cache_ =
      std::make_shared<PeriodListCache>(options_.period_cache_max_entries);
  pool_ = std::move(pool);
  const std::vector<std::uint32_t> breakpoints =
      options_.index_layout == IndexLayout::kBanded
          ? PreferenceIndex::GeometricBandBreakpoints(pool_.size(),
                                                      options_.min_band_size)
          : std::vector<std::uint32_t>{};
  std::unique_ptr<ThreadPool> build_pool;
  if (options_.build_threads > 0) {
    build_pool = std::make_unique<ThreadPool>(options_.build_threads);
  }
  ShardOptions shard_options;
  shard_options.compact_every_n_publishes = options_.compact_every_n_publishes;
  shard_options.compact_delta_fraction = options_.compact_delta_fraction;
  shard_options.build_flat_twin = options_.build_flat_twin;
  std::vector<std::vector<UserId>> owned = router_.PartitionUsers();
  shards_.reserve(owned.size());
  for (std::size_t s = 0; s < owned.size(); ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, std::move(owned[s]), base, predictor_, scale_max,
        pool_ /*copied per shard*/, num_universe_items, breakpoints,
        shard_options, build_pool.get()));
  }
  // batch_threads == 1 keeps batches inline on the calling thread (the
  // serial reference path); anything else gets a dedicated pool.
  if (options_.batch_threads != 1) {
    batch_pool_ = std::make_unique<ThreadPool>(
        ResolveBatchThreads(options_.batch_threads));
  }
}

std::shared_ptr<const ShardedSnapshotSet> ShardedEngine::Pin() const {
  // The per-shard gathers run OUTSIDE pin_mu_ on purpose: each takes its
  // shard's own publication mutex, and holding pin_mu_ across all N of them
  // would serialize pins against every concurrent publish. The race this
  // opens is benign by direction: a shard publishing between its gather
  // above and the comparison below makes `snaps` differ from whatever
  // last_pin_ holds, so the comparison FAILS and a fresh set is built from
  // the gathered (individually consistent) snapshots. Reuse only succeeds
  // when every gathered pointer equals the cached one — i.e. last_pin_ is
  // exactly the gathered state — so a stale set can never be handed out;
  // the worst case is a missed reuse. tests/serving_runtime_test.cc pins
  // this with a publish-storm stress.
  std::vector<std::shared_ptr<const ShardSnapshot>> snaps;
  snaps.reserve(shards_.size());
  for (const auto& shard : shards_) snaps.push_back(shard->snapshot());
  std::lock_guard<std::mutex> lock(pin_mu_);
  if (last_pin_ != nullptr) {
    // Same per-shard snapshot pointers ⟺ same generation vector: hand out
    // the SAME set so repeat pins share its (group, pool) tombstone memo.
    bool same = true;
    for (std::size_t s = 0; s < snaps.size(); ++s) {
      if (last_pin_->shard_ptr(s) != snaps[s]) {
        same = false;
        break;
      }
    }
    if (same) return last_pin_;
  }
  last_pin_ = std::make_shared<const ShardedSnapshotSet>(
      std::move(snaps), options_.tombstone_cache_max_entries);
  return last_pin_;
}

Status ShardedEngine::ApplyUpdates(std::span<const RatingEvent> events,
                                   ShardedUpdateReport* report) {
  // All-or-nothing validation, identical to the monolithic path: no event
  // is applied anywhere when any event is invalid.
  const std::size_t n = router_.num_users();
  for (const RatingEvent& e : events) {
    if (e.user >= n) {
      return Status::NotFound("rating event for unknown user " +
                              std::to_string(e.user) + " (population has " +
                              std::to_string(n) + ")");
    }
    if (e.item >= num_universe_items_) {
      return Status::NotFound("rating event for unknown universe item " +
                              std::to_string(e.item) + " (universe has " +
                              std::to_string(num_universe_items_) + ")");
    }
    if (!std::isfinite(e.rating)) {
      return Status::InvalidArgument("rating event with non-finite rating");
    }
  }

  // Scatter by ownership, preserving arrival order within each shard (a
  // user's events all route to one shard, so per-user fold order — the only
  // order the overlay semantics depend on — is exactly the monolithic one).
  std::vector<std::vector<RatingEvent>> per_shard_events(shards_.size());
  for (const RatingEvent& e : events) {
    per_shard_events[router_.ShardOf(e.user)].push_back(e);
  }

  ShardedUpdateReport local;
  ShardedUpdateReport& out = report != nullptr ? *report : local;
  out = ShardedUpdateReport{};
  out.per_shard.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard_events[s].empty()) {
      // Untouched: report current state with zero counters.
      const std::shared_ptr<const ShardSnapshot> snap = shards_[s]->snapshot();
      out.per_shard[s].published_generation = snap->generation;
      out.per_shard[s].delta_log_ratings = snap->ratings->delta_ratings();
      continue;
    }
    ++out.shards_touched;
    if (Status status =
            shards_[s]->Apply(per_shard_events[s], &out.per_shard[s]);
        !status.ok()) {
      return status;
    }
  }

  UpdateReport& total = out.total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const UpdateReport& r = out.per_shard[s];
    total.events_applied += r.events_applied;
    total.events_ignored_stale += r.events_ignored_stale;
    total.users_rebuilt += r.users_rebuilt;
    total.delta_log_ratings += r.delta_log_ratings;
    total.published_generation =
        std::max(total.published_generation, r.published_generation);
    total.batches_coalesced =
        std::max(total.batches_coalesced, r.batches_coalesced);
    total.compacted = total.compacted || r.compacted;
  }
  if (total.batches_coalesced == 0) total.batches_coalesced = 1;
  return Status::Ok();
}

Status ShardedEngine::ValidateQuery(std::span<const UserId> group,
                                    const QuerySpec& spec) const {
  return ValidateGroupQuery(group, spec, router_.num_users(), num_periods_,
                            affinity_->num_periods());
}

std::size_t ShardedEngine::ShardsTouched(std::span<const UserId> group) const {
  // Scatter widths are tiny (|G| shards at most); a sorted scratch vector
  // beats any set for these sizes.
  std::vector<std::size_t> seen;
  seen.reserve(group.size());
  for (const UserId u : group) seen.push_back(router_.ShardOf(u));
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return seen.size();
}

std::span<const ItemId> ShardedEngine::pool() const { return pool_; }

Result<Recommendation> ShardedEngine::Recommend(
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace* workspace) const {
  return Recommend(Pin(), group, spec, workspace);
}

Result<Recommendation> ShardedEngine::Recommend(
    const std::shared_ptr<const ShardedSnapshotSet>& set,
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace* workspace) const {
  QueryWorkspace local;
  QueryWorkspace& ws = workspace != nullptr ? *workspace : local;
  return RecommendOnSet(set, group, spec, ws, nullptr);
}

Result<Recommendation> ShardedEngine::RecommendOnSet(
    const std::shared_ptr<const ShardedSnapshotSet>& set,
    std::span<const UserId> group, const QuerySpec& spec,
    QueryWorkspace& ws, SolveOutcome* outcome) const {
  if (set == nullptr) {
    return Status::InvalidArgument("snapshot set must not be null");
  }
  if (Status s = ValidateQuery(group, spec); !s.ok()) return s;
  const PeriodId eval_period =
      ResolveEvalPeriod(spec.eval_period, num_periods_).value();

  // Scatter: one zero-copy MemberSlice per member, pointing into the owning
  // shard's pinned generation. Gather happens inside the shared assembly —
  // the same code path the monolithic recommender uses, fed per-shard rows
  // instead of one index's rows.
  std::vector<MemberSlice>& slices = ws.arena.member_slices;
  slices.clear();
  slices.reserve(group.size());
  for (const UserId u : group) {
    const std::size_t s = router_.ShardOf(u);
    const ShardSnapshot& snap = set->shard(s);
    slices.push_back(
        {snap.index.get(), shards_[s]->LocalRowOf(u), snap.ratings.get(), u});
  }
  StampMemberWeights(*affinity_, group, spec, slices);
  AssemblyContext ctx;
  ctx.key_index = set->shard(0).index.get();
  ctx.affinity = affinity_.get();
  ctx.period_cache = period_cache_.get();
  // Tombstone memo scoped to the SET: members pin a mix of per-shard
  // generations, so no single generation can scope a cache — but the set
  // pins that exact generation-vector mix for its whole lifetime, so its own
  // memo is correct by construction (see ShardedSnapshotSet). Repeat pins
  // reuse one set while nothing publishes, so repeated groups across queries
  // hit too.
  ctx.tombstone_cache = &set->tombstone_cache();
  ctx.exclude_group_rated = options_.exclude_group_rated;
  GroupProblem problem = AssembleGroupProblem(ctx, group, slices, spec,
                                              eval_period, nullptr, &ws);
  // The problem's views alias rows of every touched shard's pinned
  // generation: share ownership of the whole set so they survive any
  // shard's concurrent publish.
  problem.PinLifetime(set);
  Result<Recommendation> rec =
      SolveGroupProblem(problem, spec, ctx.key_index->pool(), ws);
  if (outcome != nullptr) {
    outcome->agreement_deferred = problem.agreement_deferred();
    outcome->agreement_materialized = problem.agreement_materialized();
  }
  return rec;
}

std::vector<Result<Recommendation>> ShardedEngine::RecommendBatch(
    std::span<const Query> queries, BatchReport* report) const {
  return RecommendBatch(Pin(), queries, report);
}

std::vector<Result<Recommendation>> ShardedEngine::RecommendBatch(
    const std::shared_ptr<const ShardedSnapshotSet>& set,
    std::span<const Query> queries, BatchReport* report) const {
  if (set == nullptr) {
    std::vector<Result<Recommendation>> results;
    results.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results.emplace_back(
          Status::InvalidArgument("snapshot set must not be null"));
    }
    return results;
  }
  const ShardedSetServingBackend backend(*this, set);
  return BatchExecutor::Execute(backend, queries, options_.plan_batches,
                                batch_pool_.get(), workspace_pool_, report);
}

}  // namespace greca
