#include "shard/shard.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace greca {

Shard::Shard(std::size_t shard_id, std::vector<UserId> users,
             std::shared_ptr<const RatingsDataset> base,
             PoolPredictor predictor, double scale_max,
             std::vector<ItemId> pool, std::size_t num_universe_items,
             std::span<const std::uint32_t> band_breakpoints,
             ShardOptions options, ThreadPool* build_threads)
    : shard_id_(shard_id),
      users_(std::move(users)),
      predictor_(std::move(predictor)),
      options_(options) {
  assert(std::is_sorted(users_.begin(), users_.end()));
  assert(base != nullptr);
  // Generation 1: empty delta log + streaming-built index (one row per
  // owned user, filled straight from the base ratings — no universe-scale
  // prediction matrix ever exists).
  auto overlay = std::make_shared<const RatingsOverlay>(base);
  const RatingsDataset& ratings = *base;
  auto index =
      std::make_shared<const PreferenceIndex>(PreferenceIndex::BuildStreaming(
          users_.size(),
          [&](UserId row, std::span<const ItemId> p, std::span<Score> out) {
            const UserId global = users_[row];
            predictor_(global, ratings.RatingsOfUser(global), p, out);
          },
          scale_max, std::move(pool), num_universe_items, band_breakpoints,
          options_.build_flat_twin, build_threads));
  snapshot_ = MakeSnapshot(/*generation=*/1, std::move(overlay),
                           std::move(index));
}

std::uint32_t Shard::LocalRowOf(UserId u) const {
  const auto it = std::lower_bound(users_.begin(), users_.end(), u);
  assert(it != users_.end() && *it == u && "user not owned by this shard");
  return static_cast<std::uint32_t>(it - users_.begin());
}

bool Shard::Owns(UserId u) const {
  return std::binary_search(users_.begin(), users_.end(), u);
}

std::shared_ptr<const ShardSnapshot> Shard::MakeSnapshot(
    std::uint64_t generation, std::shared_ptr<const RatingsOverlay> ratings,
    std::shared_ptr<const PreferenceIndex> index) {
  auto snap = std::make_shared<ShardSnapshot>();
  snap->generation = generation;
  snap->ratings = std::move(ratings);
  snap->index = std::move(index);
  return snap;
}

Status Shard::Apply(std::span<const RatingEvent> events,
                    UpdateReport* report) {
  if (events.empty()) {
    if (report != nullptr) {
      const std::shared_ptr<const ShardSnapshot> cur = snapshot();
      *report = UpdateReport{};
      report->published_generation = cur->generation;
      report->batches_coalesced = 1;
      report->delta_log_ratings = cur->ratings->delta_ratings();
    }
    return Status::Ok();
  }
  PendingUpdate self;
  self.events = events;
  const Status status =
      commit_.Commit(self, [this](std::span<PendingUpdate* const> round) {
        PublishRound(round);
      });
  if (report != nullptr) *report = self.report;
  return status;
}

void Shard::PublishRound(std::span<PendingUpdate* const> round) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const std::shared_ptr<const ShardSnapshot> cur = snapshot();

  // Fold each coalesced batch in arrival order; per-batch attribution falls
  // out of folding batch by batch (same protocol as the single-index
  // recommender — see GroupRecommender::PublishUpdateRound).
  std::shared_ptr<const RatingsOverlay> overlay = cur->ratings;
  std::vector<UserId> touched;
  std::vector<RatingRecord> records;
  std::size_t round_applied = 0;
  for (PendingUpdate* batch : round) {
    records.clear();
    records.reserve(batch->events.size());
    for (const RatingEvent& e : batch->events) {
      assert(Owns(e.user) && "event routed to the wrong shard");
      records.push_back({e.user, e.item, e.rating, e.timestamp});
    }
    RatingsOverlay::ApplyStats stats;
    overlay = overlay->WithEvents(records, &stats);
    batch->report = UpdateReport{};
    batch->report.events_applied = stats.applied;
    batch->report.events_ignored_stale = stats.ignored_stale;
    batch->report.batches_coalesced = round.size();
    touched.insert(touched.end(), stats.touched_users.begin(),
                   stats.touched_users.end());
    round_applied += stats.applied;
  }
  if (round_applied == 0) {
    for (PendingUpdate* batch : round) {
      batch->report.published_generation = cur->generation;
      batch->report.delta_log_ratings = overlay->delta_ratings();
    }
    return;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  bool compacted = false;
  if ((options_.compact_every_n_publishes > 0 &&
       publishes_since_compaction_ + 1 >=
           options_.compact_every_n_publishes) ||
      (options_.compact_delta_fraction > 0.0 &&
       static_cast<double>(overlay->delta_ratings()) >
           options_.compact_delta_fraction *
               static_cast<double>(overlay->base().num_ratings()))) {
    overlay = std::make_shared<const RatingsOverlay>(
        std::make_shared<const RatingsDataset>(overlay->Compact()));
    compacted = true;
  }

  // Rebuild only the touched local rows: predictor over the merged view →
  // raw pool scores → CloneWithUpdatedPoolRows (wholesale copy of this
  // shard's rows + per-touched-row re-sort). The clone is 1/N of what a
  // monolithic publish would copy — the shard-scaling mechanism.
  const PreferenceIndex& index = *cur->index;
  std::vector<std::uint32_t> rows;
  rows.reserve(touched.size());
  std::vector<Score> scores(touched.size() * index.pool_size());
  std::vector<std::span<const Score>> score_views;
  score_views.reserve(touched.size());
  std::vector<UserRatingEntry> scratch;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    const UserId global = touched[i];
    rows.push_back(LocalRowOf(global));
    const std::span<Score> out(scores.data() + i * index.pool_size(),
                               index.pool_size());
    predictor_(global, overlay->MergedRatingsOfUser(global, scratch),
               index.pool(), out);
    score_views.emplace_back(out);
  }
  auto next_index = std::make_shared<const PreferenceIndex>(
      index.CloneWithUpdatedPoolRows(rows, score_views));

  const std::size_t delta_after = overlay->delta_ratings();
  const std::uint64_t generation = next_generation_++;
  {
    std::lock_guard<std::mutex> swap_lock(snapshot_mu_);
    snapshot_ = MakeSnapshot(generation, std::move(overlay),
                             std::move(next_index));
  }
  publishes_since_compaction_ = compacted ? 0 : publishes_since_compaction_ + 1;
  for (PendingUpdate* batch : round) {
    batch->report.published_generation = generation;
    batch->report.users_rebuilt = touched.size();
    batch->report.compacted = compacted;
    batch->report.delta_log_ratings = delta_after;
  }
}

}  // namespace greca
