// User → shard placement for the shard-per-core engine.
//
// The router is the ONE authority on where a user's serving rows live:
// construction partitions the population with it, update batches are split
// with it, and query assembly gathers member slices with it. It is pure
// arithmetic over (user id, population size, shard count) — stateless,
// trivially copyable, and identical on every thread — so the three call
// sites can never disagree.
//
// Two strategies:
//  * kHash    — SplitMix64(user) % num_shards. Spreads any id distribution
//               evenly; neighboring user ids land on different shards, so
//               locality-clustered workloads see it as the adversarial
//               placement (a group of consecutive ids touches ~min(|G|, N)
//               shards).
//  * kRange   — contiguous blocks of ⌈num_users / num_shards⌉ ids. Preserves
//               id locality: datasets whose communities are id-clustered
//               (the scale generator's locality knob) touch few shards per
//               group.
#ifndef GRECA_SHARD_SHARD_ROUTER_H_
#define GRECA_SHARD_SHARD_ROUTER_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace greca {

enum class ShardStrategy {
  kHash,
  kRange,
};

class ShardRouter {
 public:
  /// `num_shards` >= 1; `num_users` sizes the kRange blocks (and bounds the
  /// ids PartitionUsers enumerates).
  ShardRouter(std::size_t num_shards, std::size_t num_users,
              ShardStrategy strategy = ShardStrategy::kHash)
      : num_shards_(num_shards),
        num_users_(num_users),
        strategy_(strategy),
        block_((num_users + num_shards - 1) / num_shards) {
    assert(num_shards >= 1);
  }

  std::size_t num_shards() const { return num_shards_; }
  std::size_t num_users() const { return num_users_; }
  ShardStrategy strategy() const { return strategy_; }

  std::size_t ShardOf(UserId u) const {
    if (num_shards_ == 1) return 0;
    if (strategy_ == ShardStrategy::kRange) {
      const std::size_t s = u / block_;
      return s < num_shards_ ? s : num_shards_ - 1;
    }
    std::uint64_t state = u;
    return SplitMix64(state) % num_shards_;
  }

  /// All users of [0, num_users) grouped by shard, each list ascending —
  /// the shard construction order (a shard's local row r is its r-th
  /// smallest owned user id).
  std::vector<std::vector<UserId>> PartitionUsers() const {
    std::vector<std::vector<UserId>> owned(num_shards_);
    for (UserId u = 0; u < num_users_; ++u) {
      owned[ShardOf(u)].push_back(u);
    }
    return owned;
  }

 private:
  std::size_t num_shards_;
  std::size_t num_users_;
  ShardStrategy strategy_;
  std::size_t block_;  // kRange block width
};

}  // namespace greca

#endif  // GRECA_SHARD_SHARD_ROUTER_H_
