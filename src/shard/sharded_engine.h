// Shard-per-core serving engine: N independent publishers, one scatter/
// gather query path.
//
// ShardedEngine partitions the user population across N Shards with a
// ShardRouter (hash or range). Each shard owns its slice's PreferenceIndex
// rows, RatingsOverlay delta log and RCU publish cadence; the engine owns
// everything population-global — the popularity pool, the AffinitySource,
// the (group, period) list cache, and the prediction backend behind the
// shards' shared PoolPredictor.
//
// Queries scatter/gather at problem-assembly time, zero-copy: for each
// group member the engine asks the router for the owning shard and slices
// that shard's pinned index/overlay into a MemberSlice; the shared assembly
// (core/problem_assembly.h) then builds EXACTLY the problem a monolithic
// engine would build — every shard speaks the same pool-position key space
// and every row is bit-identical to its monolithic counterpart, so
// recommendations and access counts are bit-identical at any shard count
// (tests/sharded_equivalence_test.cc). A query pins one generation per
// touched shard in a ShardedSnapshotSet; shards publishing mid-query cannot
// perturb it.
//
// Updates scatter by ownership: ApplyUpdates validates the whole batch
// up front (all-or-nothing, like the monolithic path), splits it per shard
// preserving arrival order, and applies the sub-batches shard by shard —
// each touched shard publishes independently, cloning only ITS rows. Under
// locality-routed traffic a batch touches one shard and the publish cost
// drops by the shard count; that per-publish byte reduction is the
// multi-shard throughput mechanism measured by bench/bench_shard.cc.
//
// Sub-batches publish in shard order, so a concurrent reader can observe
// shard A post-batch while shard B is still pre-batch; each shard's
// snapshot is individually consistent, and per-user ordering is preserved
// (a user's events all land on one shard). Callers needing a cross-shard
// fence pin a set AFTER ApplyUpdates returns.
#ifndef GRECA_SHARD_SHARDED_ENGINE_H_
#define GRECA_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "affinity/affinity_source.h"
#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"
#include "api/snapshot.h"
#include "api/update.h"
#include "cf/user_knn.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/group_recommender.h"
#include "dataset/facebook_study.h"
#include "plan/batch_planner.h"
#include "serve/serving_backend.h"
#include "serve/workspace_pool.h"
#include "shard/shard.h"
#include "shard/shard_router.h"

namespace greca {

struct ShardedEngineOptions {
  std::size_t num_shards = 4;
  ShardStrategy strategy = ShardStrategy::kHash;
  /// CF backend config (study-backed construction only).
  UserKnnConfig knn;
  /// Popularity-pool size (study-backed construction only; the generic
  /// constructor takes the pool itself).
  std::size_t max_candidate_items = 3'900;
  bool exclude_group_rated = true;
  IndexLayout index_layout = IndexLayout::kBanded;
  std::size_t min_band_size = 64;
  /// Keep the global-order twin of banded rows (see
  /// RecommenderOptions::build_flat_twin).
  bool build_flat_twin = true;
  /// Per-shard delta-log compaction policy (see RecommenderOptions).
  std::size_t compact_every_n_publishes = 0;
  double compact_delta_fraction = 0.25;
  std::size_t period_cache_max_entries = PeriodListCache::kDefaultMaxEntries;
  /// Residency cap of each pinned set's (group, pool) tombstone-bitmap memo
  /// (0 = unbounded; see ShardedSnapshotSet::tombstone_cache).
  std::size_t tombstone_cache_max_entries = TombstoneCache::kDefaultMaxEntries;
  /// Plan RecommendBatch calls before solving them (see EngineOptions::
  /// plan_batches): duplicate queries share one assembled + solved problem,
  /// bit-identical to the per-query reference path.
  bool plan_batches = true;
  /// Worker threads fanning out the initial per-row index fills at
  /// construction (0 = serial; results are bit-identical either way).
  std::size_t build_threads = 0;
  /// Worker threads for RecommendBatch work units (planner buckets, or
  /// queries on the unplanned path). 0 picks max(2, hardware_concurrency);
  /// 1 runs every unit inline on the calling thread — the serial reference
  /// the parallel path is bit-identical to.
  std::size_t batch_threads = 0;
};

/// The generic (study-free) construction inputs — the million-user scale
/// path, where predictions come from a caller-supplied PoolPredictor
/// instead of a CF model over a study.
struct ShardedEngineInputs {
  /// The population's own ratings (delta-log base; must cover every user).
  std::shared_ptr<const RatingsDataset> ratings;
  /// Population-global affinity backend (ConstantAffinitySource for
  /// populations with no social signal). Must cover num_users.
  std::shared_ptr<const AffinitySource> affinity;
  PoolPredictor predictor;
  /// Raw predictor scores are divided by this before clamping to [0, 1]
  /// (the star-scale max).
  double prediction_scale_max = 5.0;
  /// The shared popularity pool (universe items, popularity order).
  std::vector<ItemId> pool;
  std::size_t num_universe_items = 0;
  std::size_t num_periods = 1;
};

/// One pinned generation per shard — what a query (or an explicit caller
/// fence) holds to keep every touched shard's rows alive and stable.
/// Individual ShardSnapshots are immutable; the set itself is a plain
/// vector pinned via shared_ptr.
///
/// Each set also carries its own (group, pool) tombstone-bitmap memo. A
/// bitmap depends on every member's rated items, i.e. on the WHOLE per-shard
/// generation vector — which is exactly what a set pins and never changes —
/// so scoping the memo to the set makes it correct by construction: queries
/// running on the same set (ShardedEngine::Pin reuses one set object while
/// no shard publishes) share bitmaps, while sets pinned across a publish get
/// a fresh memo. This closes the sharded path's bitmap-per-query gap — the
/// monolithic engine has had a generation-scoped memo since the Snapshot
/// grew one.
class ShardedSnapshotSet {
 public:
  explicit ShardedSnapshotSet(
      std::vector<std::shared_ptr<const ShardSnapshot>> shards,
      std::size_t tombstone_cache_max_entries =
          TombstoneCache::kDefaultMaxEntries)
      : shards_(std::move(shards)),
        tombstone_cache_(tombstone_cache_max_entries) {}

  std::size_t num_shards() const { return shards_.size(); }
  const ShardSnapshot& shard(std::size_t s) const { return *shards_[s]; }
  const std::shared_ptr<const ShardSnapshot>& shard_ptr(std::size_t s) const {
    return shards_[s];
  }

  /// The set-scoped (group, pool) tombstone memo (internally synchronized;
  /// hit/miss/eviction counters like the monolithic caches). Mutable state
  /// on an otherwise-immutable pin, hence the const accessor.
  TombstoneCache& tombstone_cache() const { return tombstone_cache_; }

 private:
  std::vector<std::shared_ptr<const ShardSnapshot>> shards_;
  mutable TombstoneCache tombstone_cache_;
};

/// Cross-shard aggregation of one ApplyUpdates call plus the per-shard
/// attribution behind it.
struct ShardedUpdateReport {
  /// Sums of the per-shard counters (events_applied, events_ignored_stale,
  /// users_rebuilt, delta_log_ratings); published_generation is the max
  /// over touched shards, compacted is true when ANY shard compacted,
  /// batches_coalesced the max over touched shards.
  UpdateReport total;
  /// One report per shard, indexed by shard id (untouched shards carry
  /// their current generation and zero counters).
  std::vector<UpdateReport> per_shard;
  /// Shards that received at least one event of this batch.
  std::size_t shards_touched = 0;
};

class ShardedEngine {
 public:
  /// Study-backed construction: same inputs as GroupRecommender/Engine —
  /// builds the UserKnn CF backend, the affinity tables and one shard per
  /// router slot over the study participants. Both references must outlive
  /// the engine; recommendations are bit-identical to a monolithic Engine
  /// built from the same inputs, at any shard count.
  ShardedEngine(const RatingsDataset& universe, const FacebookStudy& study,
                ShardedEngineOptions options);

  /// Generic construction for populations without a study (the scale
  /// harness): ratings + predictor + pool are taken as-is. The engine must
  /// outlive every problem built from it (the affinity source and period
  /// cache are engine-owned).
  ShardedEngine(ShardedEngineInputs inputs, ShardedEngineOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_users() const { return router_.num_users(); }
  const ShardRouter& router() const { return router_; }
  const Shard& shard(std::size_t s) const { return *shards_[s]; }

  /// Pins the current generation of EVERY shard (queries pin implicitly;
  /// explicit pins give cross-call stability). Shards publishing while the
  /// set is assembled yield a mix of generations — each individually
  /// consistent, see the header comment.
  ///
  /// While no shard publishes, repeated pins return the SAME set object, so
  /// successive queries share its tombstone memo; any publish makes the next
  /// Pin build a fresh set (and fresh memo). Sets pinned before the publish
  /// keep theirs — still correct for the generations they hold.
  std::shared_ptr<const ShardedSnapshotSet> Pin() const;

  /// Validates the whole batch (all-or-nothing), splits it by owning shard
  /// preserving arrival order, and applies each non-empty sub-batch to its
  /// shard (group-committed per shard). Counter semantics match the
  /// monolithic ApplyRatingUpdates: summed over shards, applied + stale ==
  /// batch size and users_rebuilt counts distinct users with applied
  /// events — the partition is by user, so totals are identical to the
  /// single-engine report for the same events
  /// (tests/sharded_equivalence_test.cc).
  Status ApplyUpdates(std::span<const RatingEvent> events,
                      ShardedUpdateReport* report = nullptr);

  /// Scatter/gather recommendation against a freshly pinned set.
  Result<Recommendation> Recommend(std::span<const UserId> group,
                                   const QuerySpec& spec,
                                   QueryWorkspace* workspace = nullptr) const;

  /// Snapshot-set-explicit variant: runs entirely against `set`.
  Result<Recommendation> Recommend(
      const std::shared_ptr<const ShardedSnapshotSet>& set,
      std::span<const UserId> group, const QuerySpec& spec,
      QueryWorkspace* workspace = nullptr) const;

  /// Batch execution against one pinned set (pinned internally; every query
  /// sees the same per-shard generation vector). Planned by default (see
  /// ShardedEngineOptions::plan_batches): duplicate queries share one
  /// assembled + solved problem. Work units run in parallel over the batch
  /// pool (ShardedEngineOptions::batch_threads) through the unified serving
  /// runtime (serve/batch_executor.h), bit-identical to serial execution.
  /// `report`, when non-null, receives planner stats + attribution.
  std::vector<Result<Recommendation>> RecommendBatch(
      std::span<const Query> queries, BatchReport* report = nullptr) const;

  /// Set-explicit variant, e.g. to replay a batch on an older pin.
  std::vector<Result<Recommendation>> RecommendBatch(
      const std::shared_ptr<const ShardedSnapshotSet>& set,
      std::span<const Query> queries, BatchReport* report = nullptr) const;

  Status ValidateQuery(std::span<const UserId> group,
                       const QuerySpec& spec) const;

  std::size_t num_periods() const { return num_periods_; }

  /// Distinct shards owning at least one member of `group` — the scatter
  /// width of a query (bench/bench_shard.cc reports its average per
  /// workload).
  std::size_t ShardsTouched(std::span<const UserId> group) const;

  const AffinitySource& affinity() const { return *affinity_; }
  /// The shared popularity pool (identical in every shard's index).
  std::span<const ItemId> pool() const;

 private:
  // The sharded backend of the unified serving runtime forwards to
  // RecommendOnSet and reads the engine-owned period cache for its
  // counter deltas.
  friend class ShardedSetServingBackend;

  void BuildShards(std::shared_ptr<const RatingsDataset> base,
                   double scale_max, std::vector<ItemId> pool,
                   std::size_t num_universe_items);

  /// The assemble + solve core shared by Recommend and the batch executor's
  /// backend; `outcome`, when non-null, receives the lazy-agreement flags.
  Result<Recommendation> RecommendOnSet(
      const std::shared_ptr<const ShardedSnapshotSet>& set,
      std::span<const UserId> group, const QuerySpec& spec,
      QueryWorkspace& workspace, SolveOutcome* outcome) const;

  ShardedEngineOptions options_;
  ShardRouter router_;
  std::size_t num_universe_items_ = 0;
  std::size_t num_periods_ = 1;

  // Study-backed state (null/empty on the generic path). knn_ backs the
  // shards' PoolPredictor, so it must outlive them (declaration order).
  std::unique_ptr<UserKnn> knn_;
  PairTable static_;
  std::unique_ptr<PeriodicAffinity> periodic_;
  std::unique_ptr<DynamicAffinityIndex> dynamic_;

  std::shared_ptr<const AffinitySource> affinity_;
  PoolPredictor predictor_;
  std::shared_ptr<PeriodListCache> period_cache_;
  /// Engine-owned copy of the shared pool (pool() stays valid without
  /// pinning any shard generation).
  std::vector<ItemId> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Batch parallelism (null when batch_threads == 1) + the workspace pool
  // concurrent batches lease their per-worker scratch from.
  std::unique_ptr<ThreadPool> batch_pool_;
  mutable WorkspacePool workspace_pool_;

  // Pin() reuse: the last set handed out, returned again while every shard's
  // snapshot pointer is unchanged so repeat pins share its tombstone memo.
  // Guarded by pin_mu_ (the per-shard snapshot reads take each shard's own
  // publication mutex, exactly like an un-reused pin).
  mutable std::mutex pin_mu_;
  mutable std::shared_ptr<const ShardedSnapshotSet> last_pin_;
};

}  // namespace greca

#endif  // GRECA_SHARD_SHARDED_ENGINE_H_
