// Affinity-aware user-item preference (paper §2.2).
//
//   rpref(u, i, G, p) = Σ_{u'≠u∈G} aff(u, u', p) · apref(u', i) / (|G|−1)
//   pref(u, i, G, p)  = (apref(u, i) + rpref(u, i, G, p)) / 2
//
// All quantities live on the normalized [0, 1] scale (see
// topk/problem.h for the normalization note). Member preferences are
// functions of the members' absolute preferences for one item and the
// group's pair-wise temporal affinities (local pair indexing, see
// LocalPairIndex in affinity/static_affinity.h).
#ifndef GRECA_PREFERENCE_PREFERENCE_MODEL_H_
#define GRECA_PREFERENCE_PREFERENCE_MODEL_H_

#include <span>

#include "topk/interval.h"

namespace greca {

/// rpref of member `member` given all members' absolute preferences for one
/// item and the group's pair affinities. Returns 0 for singleton groups.
double RelativePreference(std::span<const double> apref,
                          std::span<const double> pair_aff, std::size_t member);

/// pref(u, i, G, p) = (apref + rpref) / 2.
double MemberPreference(std::span<const double> apref,
                        std::span<const double> pair_aff, std::size_t member);

/// Fills `out[u]` with every member's preference. `out.size()` must equal
/// `apref.size()`; `pair_aff.size()` must be g(g−1)/2.
void AllMemberPreferences(std::span<const double> apref,
                          std::span<const double> pair_aff,
                          std::span<double> out);

/// Expands the packed upper-triangular pair affinities into a dense row-major
/// g×g weight matrix with a zero diagonal: `w[u*g + v] = pair_aff[q(u, v)]`
/// for u ≠ v. Exhaustive scorers call AllMemberPreferences once per candidate
/// item with the same pair affinities; pre-expanding turns the per-item pair
/// indexing into a straight-line mat-vec. `w.size()` must be g·g.
void ExpandPairWeights(std::span<const double> pair_aff, std::size_t g,
                       std::span<double> w);

/// AllMemberPreferences against a pre-expanded dense weight matrix. The inner
/// loop is branchless: the zero diagonal contributes an exact `0.0 · apref[u]`
/// term, so results are bit-identical to the packed form for the model's
/// finite non-negative inputs (the summation order is unchanged).
void AllMemberPreferencesDense(std::span<const double> apref,
                               std::span<const double> w,
                               std::span<double> out);

/// Sound interval propagation of the same formula: all components are
/// non-negative, so interval endpoints multiply/add directly.
void AllMemberPreferenceIntervals(std::span<const Interval> apref,
                                  std::span<const Interval> pair_aff,
                                  std::span<Interval> out);

}  // namespace greca

#endif  // GRECA_PREFERENCE_PREFERENCE_MODEL_H_
