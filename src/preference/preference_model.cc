#include "preference/preference_model.h"

#include <algorithm>
#include <cassert>

#include "affinity/static_affinity.h"
#include "common/types.h"

namespace greca {

double RelativePreference(std::span<const double> apref,
                          std::span<const double> pair_aff,
                          std::size_t member) {
  const std::size_t g = apref.size();
  assert(member < g);
  assert(pair_aff.size() == NumUserPairs(g));
  if (g < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < g; ++v) {
    if (v == member) continue;
    const std::size_t q =
        LocalPairIndex(std::min(member, v), std::max(member, v), g);
    sum += pair_aff[q] * apref[v];
  }
  return sum / static_cast<double>(g - 1);
}

double MemberPreference(std::span<const double> apref,
                        std::span<const double> pair_aff,
                        std::size_t member) {
  return (apref[member] + RelativePreference(apref, pair_aff, member)) / 2.0;
}

void AllMemberPreferences(std::span<const double> apref,
                          std::span<const double> pair_aff,
                          std::span<double> out) {
  const std::size_t g = apref.size();
  assert(out.size() == g);
  for (std::size_t u = 0; u < g; ++u) {
    out[u] = MemberPreference(apref, pair_aff, u);
  }
}

void ExpandPairWeights(std::span<const double> pair_aff, std::size_t g,
                       std::span<double> w) {
  assert(pair_aff.size() == NumUserPairs(g));
  assert(w.size() == g * g);
  std::fill(w.begin(), w.end(), 0.0);
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      const double aff = pair_aff[LocalPairIndex(a, b, g)];
      w[a * g + b] = aff;
      w[b * g + a] = aff;
    }
  }
}

void AllMemberPreferencesDense(std::span<const double> apref,
                               std::span<const double> w,
                               std::span<double> out) {
  const std::size_t g = apref.size();
  assert(out.size() == g);
  assert(w.size() == g * g);
  if (g < 2) {
    if (g == 1) out[0] = apref[0] / 2.0;
    return;
  }
  // rpref divides by (g − 1) exactly as the packed form does — multiplying by
  // a precomputed reciprocal would drift by an ulp when g − 1 is not a power
  // of two, breaking the bit-identity contract.
  const double pair_count = static_cast<double>(g - 1);
  for (std::size_t u = 0; u < g; ++u) {
    const double* row = w.data() + u * g;
    double sum = 0.0;
    for (std::size_t v = 0; v < g; ++v) sum += row[v] * apref[v];
    out[u] = (apref[u] + sum / pair_count) / 2.0;
  }
}

void AllMemberPreferenceIntervals(std::span<const Interval> apref,
                                  std::span<const Interval> pair_aff,
                                  std::span<Interval> out) {
  const std::size_t g = apref.size();
  assert(out.size() == g);
  assert(pair_aff.size() == NumUserPairs(g));
  const double pair_norm = g > 1 ? 1.0 / static_cast<double>(g - 1) : 0.0;
  for (std::size_t u = 0; u < g; ++u) {
    Interval rpref{0.0, 0.0};
    for (std::size_t v = 0; v < g; ++v) {
      if (v == u) continue;
      const std::size_t q =
          LocalPairIndex(std::min(u, v), std::max(u, v), g);
      // Non-negative components: endpoint products are the extremes.
      rpref.lb += pair_aff[q].lb * apref[v].lb;
      rpref.ub += pair_aff[q].ub * apref[v].ub;
    }
    out[u] = Interval{(apref[u].lb + rpref.lb * pair_norm) / 2.0,
                      (apref[u].ub + rpref.ub * pair_norm) / 2.0};
  }
}

}  // namespace greca
