#include "plan/batch_planner.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "core/problem_assembly.h"
#include "solver/solver_registry.h"

namespace greca {

namespace {

/// The execution signature of one valid query: everything Recommend's result
/// depends on besides the snapshot. Group order is significant (it IS on the
/// unplanned path: member slot order decides pair indexing), and the period
/// is stored RESOLVED so nullopt and an explicit last period share a bucket.
struct Signature {
  const Query* query;
  PeriodId resolved_period;
};

std::uint64_t HashSignature(const Signature& s) {
  // FNV-1a over the group ids and every result-relevant spec field; doubles
  // go in by bit pattern (bucketing wants exact equality, not numeric fuzz).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_double = [&mix](double v) {
    mix(std::bit_cast<std::uint64_t>(v));
  };
  const QuerySpec& spec = s.query->spec;
  for (const UserId u : s.query->group) mix(u);
  mix(0x5EEDull);
  mix(spec.k);
  mix(static_cast<std::uint64_t>(spec.model.affinity_aware) << 1 |
      static_cast<std::uint64_t>(spec.model.time_aware));
  mix(static_cast<std::uint64_t>(spec.model.time_model));
  mix_double(spec.model.drift_gain);
  mix(static_cast<std::uint64_t>(spec.consensus.aggregator));
  mix(static_cast<std::uint64_t>(spec.consensus.disagreement));
  mix_double(spec.consensus.w1);
  mix_double(spec.consensus.w2);
  mix_double(spec.consensus.disagreement_scale);
  mix(s.resolved_period);
  // Solver identity goes in RESOLVED (solver/solver_registry.h), so the enum
  // alias and its explicit solver_id spelling share a bucket — mirroring the
  // resolved-period convention above.
  for (const char c : ResolveSolverId(spec)) {
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  mix(static_cast<std::uint64_t>(spec.weighting));
  mix(static_cast<std::uint64_t>(spec.termination));
  mix(spec.num_candidate_items);
  return h;
}

bool SameSignature(const Signature& a, const Signature& b) {
  const QuerySpec& x = a.query->spec;
  const QuerySpec& y = b.query->spec;
  return a.resolved_period == b.resolved_period && x.k == y.k &&
         x.model == y.model && x.consensus == y.consensus &&
         ResolveSolverId(x) == ResolveSolverId(y) &&
         x.weighting == y.weighting && x.termination == y.termination &&
         x.num_candidate_items == y.num_candidate_items &&
         std::ranges::equal(a.query->group, b.query->group);
}

struct SignatureHash {
  std::size_t operator()(const Signature& s) const {
    return static_cast<std::size_t>(HashSignature(s));
  }
};
struct SignatureEqual {
  bool operator()(const Signature& a, const Signature& b) const {
    return SameSignature(a, b);
  }
};

}  // namespace

BatchPlan BatchPlanner::Plan(std::span<const Query> queries,
                             const Validator& validate,
                             std::size_t num_periods) {
  BatchPlan plan;
  plan.statuses.reserve(queries.size());
  plan.bucket_of.assign(queries.size(), BatchQueryAttribution::kInvalid);
  std::unordered_map<Signature, std::uint32_t, SignatureHash, SignatureEqual>
      bucket_index;
  bucket_index.reserve(queries.size());
  for (std::uint32_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    Status status = validate(q);
    if (!status.ok()) {
      plan.statuses.push_back(std::move(status));
      continue;
    }
    plan.statuses.push_back(Status::Ok());
    ++plan.num_valid;
    // Validation guarantees the period resolves.
    const Signature sig{&q,
                        ResolveEvalPeriod(q.spec.eval_period, num_periods)
                            .value()};
    const auto [it, inserted] = bucket_index.try_emplace(
        sig, static_cast<std::uint32_t>(plan.buckets.size()));
    if (inserted) plan.buckets.emplace_back();
    plan.buckets[it->second].queries.push_back(i);
    plan.bucket_of[i] = it->second;
  }
  return plan;
}

}  // namespace greca
