// Batch query planning: plan-then-solve cross-query sharing.
//
// Production batch traffic at millions-of-users scale is highly redundant —
// popular groups recur, dashboards re-issue identical queries, and group
// sessions page through the same (group, spec) repeatedly. The snapshot
// caches (period lists, tombstone bitmaps) already share SUB-problem state
// across such repeats; the planner shares the WHOLE problem: before a batch
// executes, queries are bucketed by their execution signature — the ordered
// group plus every solve-relevant QuerySpec field: k, the affinity model,
// the consensus spec, the termination policy, the pool size, the weighting
// mode, and the solver identity, with two fields stored RESOLVED rather than
// as written: the evaluation period (so "nullopt" and an explicit last
// period land in one bucket) and the solver id (so the legacy Algorithm enum
// and its explicit QuerySpec::solver_id spelling land in one bucket, while
// two genuinely different solvers never merge). Any new QuerySpec field that
// can change a result MUST be added to both HashSignature and SameSignature
// — tests/planner_equivalence_test.cc pins this by flipping every field and
// asserting the bucket splits. Each bucket assembles and solves one
// GroupProblem (one arena slot,
// one tombstone bitmap, one affinity/agreement build, one top-k run) and the
// result fans back out to every duplicate; per-query attribution (which
// bucket, who solved) is reported so callers can audit the sharing.
//
// Equivalence contract: the algorithms are deterministic functions of
// (snapshot, group, spec), so a fanned-out copy is bit-identical — items,
// scores, access counts — to solving the duplicate query itself, and invalid
// queries receive exactly the Status the unplanned path would produce
// (planning validates with the same shared ValidateGroupQuery). Enforced by
// tests/planner_equivalence_test.cc on both Engine and ShardedEngine.
//
// Cost model: planning is O(total group ids) hashing + one hash-map probe
// per query, a few hundred ns per query — negligible against a solve (tens
// of µs to ms). With duplicate factor d (queries per distinct signature),
// solve work drops by ~d while plan + fan-out cost stays linear, so planned
// throughput approaches d× on duplicate-heavy batches and parity at d = 1
// (BENCH_batch.json planner_sweep).
#ifndef GRECA_PLAN_BATCH_PLANNER_H_
#define GRECA_PLAN_BATCH_PLANNER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/group_recommender.h"

namespace greca {

/// Where one query of a planned batch landed — enough to audit the sharing:
/// queries with the same bucket id shared one assembled + solved problem,
/// and exactly one of them (the representative) did the work.
struct BatchQueryAttribution {
  /// Bucket ordinal in BatchPlan::buckets, or kInvalid for rejected queries.
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t bucket = kInvalid;
  /// True for the one query per bucket whose problem was actually solved.
  bool representative = false;
};

/// Execution stats of one planned (or unplanned) batch: what the planner
/// shared, what the lazy-agreement path skipped, and what the snapshot
/// caches did while the batch ran. Filled by Engine::RecommendBatch /
/// ShardedEngine::RecommendBatch when the caller passes one.
struct BatchReport {
  /// False when the engine ran the one-problem-per-query reference path
  /// (plan_batches = false); the counters below are still filled.
  bool planned = false;
  std::size_t num_queries = 0;
  /// Queries rejected by validation (non-OK Result, no bucket).
  std::size_t num_invalid = 0;
  /// Distinct execution signatures among the valid queries == problems
  /// assembled and solved on the planned path.
  std::size_t num_buckets = 0;
  /// Valid queries served by another query's solve (num_valid − num_buckets
  /// on the planned path, 0 unplanned).
  std::size_t duplicates_shared = 0;
  /// valid / buckets — the batch's duplicate factor (1.0 when nothing
  /// repeats or the batch is empty).
  double dedup_ratio = 1.0;

  /// Lazy-agreement accounting over the solved problems: pairwise-consensus
  /// problems whose aggregated agreement list was actually built (the
  /// algorithm walked it) vs deferred-and-never-built.
  std::size_t agreement_lists_materialized = 0;
  std::size_t agreement_lists_skipped = 0;

  /// Snapshot-cache counter deltas across the batch (monolithic: the pinned
  /// Snapshot's caches; sharded: the engine period cache + the pinned set's
  /// generation-vector-scoped tombstone memo).
  std::uint64_t period_cache_hits = 0;
  std::uint64_t period_cache_misses = 0;
  std::uint64_t tombstone_cache_hits = 0;
  std::uint64_t tombstone_cache_misses = 0;
  std::uint64_t tombstone_cache_evictions = 0;

  /// Per input query, parallel to the batch (empty when not requested via
  /// RecommendBatch's report parameter being null — callers always get it
  /// when they get the report).
  std::vector<BatchQueryAttribution> per_query;
};

/// The execution plan of one batch against one pinned snapshot: per-query
/// validation statuses plus the duplicate buckets over the valid queries.
struct BatchPlan {
  struct Bucket {
    /// Input indices sharing one execution signature; queries[0] is the
    /// representative whose problem gets assembled and solved.
    std::vector<std::uint32_t> queries;
  };
  /// One entry per distinct signature, in first-appearance order (so the
  /// planned execution order is deterministic).
  std::vector<Bucket> buckets;
  /// One entry per input query: Ok() for bucketed queries, the validation
  /// error otherwise — exactly what the unplanned path would return.
  std::vector<Status> statuses;
  /// Parallel to the input: each valid query's bucket ordinal
  /// (BatchQueryAttribution::kInvalid for rejected queries).
  std::vector<std::uint32_t> bucket_of;
  std::size_t num_valid = 0;

  double DedupRatio() const {
    return buckets.empty()
               ? 1.0
               : static_cast<double>(num_valid) /
                     static_cast<double>(buckets.size());
  }
};

class BatchPlanner {
 public:
  /// Per-query validation hook — the engine passes its own ValidateQuery so
  /// rejected queries carry byte-identical Status messages to the unplanned
  /// path.
  using Validator = std::function<Status(const Query&)>;

  /// Plans `queries`: validates each through `validate`, resolves the
  /// evaluation period against `num_periods`, and buckets the valid ones by
  /// (group order-significant, k, model, consensus, resolved period,
  /// resolved solver id, weighting, termination, pool size). Deterministic:
  /// bucket order is first-appearance order, duplicates keep input order.
  static BatchPlan Plan(std::span<const Query> queries,
                        const Validator& validate, std::size_t num_periods);
};

}  // namespace greca

#endif  // GRECA_PLAN_BATCH_PLANNER_H_
