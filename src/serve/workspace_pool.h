// Checkout pool of per-query scratch buffers — how concurrent batches stop
// queueing behind each other.
//
// A QueryWorkspace (core/group_recommender.h) amortizes hot-path allocations
// across queries but must never be shared by two in-flight queries. The
// engines used to enforce that with a whole-batch mutex over a fixed
// worker-indexed workspace array, which serialized CONCURRENT RecommendBatch
// callers end to end. The WorkspacePool replaces that: each batch checks out
// as many workspaces as it has workers (a mutex-guarded freelist pop, or a
// fresh allocation when the freelist is dry) and returns them when the batch
// finishes, so any number of batches can be in flight at once, each on its
// own scratch. Steady state allocates nothing: the pool's high-water mark is
// the maximum number of simultaneously checked-out workspaces ever reached,
// and every one of them is reused forever after.
//
// Leases are RAII moves — dropping a Lease returns its workspace to the
// pool. The pool must outlive every lease; leases may be destroyed on any
// thread.
#ifndef GRECA_SERVE_WORKSPACE_POOL_H_
#define GRECA_SERVE_WORKSPACE_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/group_recommender.h"

namespace greca {

class WorkspacePool {
 public:
  /// One checked-out workspace; returns it to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(WorkspacePool* pool, std::unique_ptr<QueryWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          ws_(std::move(other.ws_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = std::exchange(other.pool_, nullptr);
        ws_ = std::move(other.ws_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    QueryWorkspace& operator*() const { return *ws_; }
    QueryWorkspace* get() const { return ws_.get(); }

   private:
    void Release() {
      if (pool_ != nullptr && ws_ != nullptr) {
        pool_->Return(std::move(ws_));
      }
      pool_ = nullptr;
      ws_.reset();
    }

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<QueryWorkspace> ws_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Checks a workspace out: reuses an idle one when available, allocates
  /// otherwise. Thread-safe.
  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<QueryWorkspace> ws = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(ws));
      }
      ++created_;
    }
    // Allocate outside the lock — a cold pool under concurrent batches
    // should not serialize its first allocations.
    return Lease(this, std::make_unique<QueryWorkspace>());
  }

  /// Workspaces currently idle in the freelist (observability / tests).
  std::size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  /// Total workspaces ever allocated — the checkout high-water mark.
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return created_;
  }

 private:
  void Return(std::unique_ptr<QueryWorkspace> ws) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(ws));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<QueryWorkspace>> free_;
  std::size_t created_ = 0;
};

}  // namespace greca

#endif  // GRECA_SERVE_WORKSPACE_POOL_H_
