#include "serve/serving_backend.h"

#include "api/snapshot.h"
#include "core/problem_assembly.h"
#include "shard/sharded_engine.h"

namespace greca {

Status SnapshotServingBackend::Validate(const Query& query) const {
  return recommender_.ValidateQuery(*snap_, query.group, query.spec);
}

Result<Recommendation> SnapshotServingBackend::SolveOne(
    const Query& query, QueryWorkspace& ws, SolveOutcome* outcome) const {
  // BuildProblem + SolveGroupProblem is exactly GroupRecommender::Recommend,
  // split so the problem's lazy-agreement flags can be read back after the
  // solve (materialization happens on first walk, i.e. during the solve).
  Result<GroupProblem> problem =
      recommender_.BuildProblem(snap_, query.group, query.spec, nullptr, &ws);
  if (!problem.ok()) return problem.status();
  Result<Recommendation> rec = SolveGroupProblem(problem.value(), query.spec,
                                                 snap_->index().pool(), ws);
  if (outcome != nullptr) {
    outcome->agreement_deferred = problem.value().agreement_deferred();
    outcome->agreement_materialized = problem.value().agreement_materialized();
  }
  return rec;
}

ServingCacheCounters SnapshotServingBackend::Counters() const {
  return {snap_->period_cache_hits(), snap_->period_cache_misses(),
          snap_->tombstone_cache_hits(), snap_->tombstone_cache_misses(),
          snap_->tombstone_cache_evictions()};
}

std::size_t SnapshotServingBackend::num_periods() const {
  return recommender_.num_periods();
}

Status ShardedSetServingBackend::Validate(const Query& query) const {
  return engine_.ValidateQuery(query.group, query.spec);
}

Result<Recommendation> ShardedSetServingBackend::SolveOne(
    const Query& query, QueryWorkspace& ws, SolveOutcome* outcome) const {
  return engine_.RecommendOnSet(set_, query.group, query.spec, ws, outcome);
}

ServingCacheCounters ShardedSetServingBackend::Counters() const {
  const TombstoneCache& tombs = set_->tombstone_cache();
  return {engine_.period_cache_->hits(), engine_.period_cache_->misses(),
          tombs.hits(), tombs.misses(), tombs.evictions()};
}

std::size_t ShardedSetServingBackend::num_periods() const {
  return engine_.num_periods();
}

}  // namespace greca
