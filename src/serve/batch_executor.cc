#include "serve/batch_executor.h"

#include <cstdint>
#include <optional>
#include <thread>
#include <utility>

namespace greca {

std::size_t ResolveBatchThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw > 2 ? hw : 2;
}

namespace {

/// Runs fn(workspace, index) for every index in [0, n): over `pool` with one
/// leased workspace per worker, or inline with a single lease when `pool` is
/// null or there is nothing to parallelize.
template <typename Fn>
void RunUnits(std::size_t n, ThreadPool* pool, WorkspacePool& workspaces,
              Fn&& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    WorkspacePool::Lease lease = workspaces.Acquire();
    for (std::size_t i = 0; i < n; ++i) fn(*lease, i);
    return;
  }
  std::vector<WorkspacePool::Lease> leases;
  leases.reserve(pool->size());
  for (std::size_t w = 0; w < pool->size(); ++w) {
    leases.push_back(workspaces.Acquire());
  }
  pool->ParallelFor(
      n, [&](std::size_t worker, std::size_t i) { fn(*leases[worker], i); });
}

std::vector<Result<Recommendation>> ExecuteUnplanned(
    const ServingBackend& backend, std::span<const Query> queries,
    ThreadPool* pool, WorkspacePool& workspaces,
    const ServingCacheCounters& before, BatchReport* report) {
  // One problem per query; SolveOne validates internally, so invalid queries
  // surface their validation Status in place.
  std::vector<std::optional<Result<Recommendation>>> scratch(queries.size());
  RunUnits(queries.size(), pool, workspaces,
           [&](QueryWorkspace& ws, std::size_t i) {
             scratch[i].emplace(backend.SolveOne(queries[i], ws, nullptr));
           });
  std::vector<Result<Recommendation>> results;
  results.reserve(queries.size());
  for (auto& r : scratch) {
    results.push_back(std::move(*r));
  }
  if (report != nullptr) {
    *report = BatchReport{};
    report->planned = false;
    report->num_queries = queries.size();
    report->per_query.resize(queries.size());
    std::uint32_t bucket = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ++report->num_invalid;
        continue;
      }
      // Every valid query is its own single-member bucket here.
      report->per_query[i] = {bucket++, /*representative=*/true};
    }
    report->num_buckets = bucket;
    backend.Counters().DeltaInto(before, *report);
  }
  return results;
}

std::vector<Result<Recommendation>> ExecutePlanned(
    const ServingBackend& backend, std::span<const Query> queries,
    ThreadPool* pool, WorkspacePool& workspaces,
    const ServingCacheCounters& before, BatchReport* report) {
  BatchPlan plan = BatchPlanner::Plan(
      queries, [&](const Query& q) { return backend.Validate(q); },
      backend.num_periods());

  // Solve one representative problem per bucket. Buckets are independent
  // (distinct execution signatures against one immutable pinned view), so
  // they run over the pool; every fanned-out copy below is bit-identical to
  // solving its query directly.
  struct BucketOutcome {
    std::optional<Result<Recommendation>> result;
    SolveOutcome agreement;
  };
  std::vector<BucketOutcome> solved(plan.buckets.size());
  RunUnits(plan.buckets.size(), pool, workspaces,
           [&](QueryWorkspace& ws, std::size_t b) {
             const Query& q = queries[plan.buckets[b].queries.front()];
             solved[b].result.emplace(
                 backend.SolveOne(q, ws, &solved[b].agreement));
           });

  // Fan the solved results back out to every duplicate, in input order.
  std::vector<Result<Recommendation>> results;
  results.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint32_t b = plan.bucket_of[i];
    if (b == BatchQueryAttribution::kInvalid) {
      results.emplace_back(plan.statuses[i]);
    } else {
      results.push_back(*solved[b].result);
    }
  }

  if (report != nullptr) {
    *report = BatchReport{};
    report->planned = true;
    report->num_queries = queries.size();
    report->num_invalid = queries.size() - plan.num_valid;
    report->num_buckets = plan.buckets.size();
    report->duplicates_shared = plan.num_valid - plan.buckets.size();
    report->dedup_ratio = plan.DedupRatio();
    for (const BucketOutcome& o : solved) {
      if (!o.agreement.agreement_deferred) continue;
      ++(o.agreement.agreement_materialized
             ? report->agreement_lists_materialized
             : report->agreement_lists_skipped);
    }
    report->per_query.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::uint32_t b = plan.bucket_of[i];
      report->per_query[i] = {
          b, b != BatchQueryAttribution::kInvalid &&
                 plan.buckets[b].queries.front() ==
                     static_cast<std::uint32_t>(i)};
    }
    backend.Counters().DeltaInto(before, *report);
  }
  return results;
}

}  // namespace

std::vector<Result<Recommendation>> BatchExecutor::Execute(
    const ServingBackend& backend, std::span<const Query> queries,
    bool planned, ThreadPool* pool, WorkspacePool& workspaces,
    BatchReport* report) {
  const ServingCacheCounters before = backend.Counters();
  return planned ? ExecutePlanned(backend, queries, pool, workspaces, before,
                                  report)
                 : ExecuteUnplanned(backend, queries, pool, workspaces, before,
                                    report);
}

}  // namespace greca
