// The single batch execution path behind Engine::RecommendBatch and
// ShardedEngine::RecommendBatch.
//
// Given a ServingBackend (the pinned view + per-query solve, see
// serving_backend.h), the executor owns everything the two engines used to
// duplicate:
//
//  * the PLANNED path — the sole BatchPlanner::Plan call site in the
//    library: bucket valid queries by execution signature, solve one
//    representative per bucket, fan the result to every duplicate in input
//    order;
//  * the UNPLANNED reference path — one problem per query, kept selectable
//    so the planner's bit-identity contract stays testable against it;
//  * parallelism — work units (buckets when planned, queries when not) run
//    over the caller's thread pool, each worker on its own workspace leased
//    from a WorkspacePool; a null pool runs them inline on the calling
//    thread, which doubles as the serial reference for the parallel path;
//  * BatchReport assembly — dedup ratio, lazy-agreement counters, cache
//    deltas (via the backend's counters), per-query attribution — one
//    builder for all four {engine} × {planned} combinations.
//
// Determinism: work units are independent and the algorithms are
// deterministic functions of (pinned view, query), so parallel and serial
// execution produce bit-identical results — items, scores, access counts,
// statuses. Cache hit/miss counters may differ between the two (racing
// workers can both miss the same key) but cached VALUES never do.
//
// Concurrency: Execute is re-entrant. Workspaces come from the pool per
// call, so concurrent batches on one engine interleave instead of queueing
// behind a whole-batch mutex; the pinned view is backend-owned and
// immutable.
#ifndef GRECA_SERVE_BATCH_EXECUTOR_H_
#define GRECA_SERVE_BATCH_EXECUTOR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/group_recommender.h"
#include "plan/batch_planner.h"
#include "serve/serving_backend.h"
#include "serve/workspace_pool.h"

namespace greca {

/// Shared thread-count default: 0 picks max(2, hardware_concurrency).
std::size_t ResolveBatchThreads(std::size_t requested);

class BatchExecutor {
 public:
  /// Runs `queries` against `backend`'s pinned view and returns one result
  /// per query in input order. `planned` selects plan-then-solve vs the
  /// one-problem-per-query reference path. `pool` is the parallelism source:
  /// null runs every work unit inline on the calling thread (the serial
  /// reference). `report`, when non-null, receives planner stats, cache
  /// deltas, and per-query attribution.
  static std::vector<Result<Recommendation>> Execute(
      const ServingBackend& backend, std::span<const Query> queries,
      bool planned, ThreadPool* pool, WorkspacePool& workspaces,
      BatchReport* report);
};

}  // namespace greca

#endif  // GRECA_SERVE_BATCH_EXECUTOR_H_
