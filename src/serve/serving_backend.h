// The engine-side contract of the unified serving runtime.
//
// Engine (monolithic) and ShardedEngine used to each own a full copy of the
// batch execution path — planner invocation, unplanned fallback, duplicate
// fan-out, per-query attribution, cache-counter deltas — ~300 lines of
// drift-prone duplication. A ServingBackend captures the only parts that
// genuinely differ between them:
//
//  * the pinned consistent view (one Snapshot vs one ShardedSnapshotSet),
//    carried by the concrete backend for its whole lifetime so every query
//    of a batch sees the same generation(s);
//  * how one query is validated and how one representative problem is
//    built + solved on a caller-provided workspace;
//  * where the cache counters live (snapshot-owned vs engine period cache +
//    set-scoped tombstone memo).
//
// Everything else — planning, bucket solving, fan-out, report assembly —
// lives once in BatchExecutor (batch_executor.h) and both engines dispatch
// through it.
//
// Backends are cheap, stack-allocated, and scoped to one batch call; they
// hold a reference to their engine (which must outlive them) and share
// ownership of the pinned view.
#ifndef GRECA_SERVE_SERVING_BACKEND_H_
#define GRECA_SERVE_SERVING_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/status.h"
#include "core/group_recommender.h"
#include "plan/batch_planner.h"

namespace greca {

class ShardedEngine;
class ShardedSnapshotSet;

/// Lazy-agreement outcome of one solved problem, surfaced so the executor
/// can aggregate BatchReport::agreement_lists_{materialized,skipped}.
struct SolveOutcome {
  bool agreement_deferred = false;
  bool agreement_materialized = false;
};

/// Point-in-time snapshot of a backend's cache counters, taken before and
/// after a batch to report the batch's own deltas.
struct ServingCacheCounters {
  std::uint64_t period_hits = 0, period_misses = 0;
  std::uint64_t tomb_hits = 0, tomb_misses = 0, tomb_evictions = 0;

  void DeltaInto(const ServingCacheCounters& before,
                 BatchReport& report) const {
    report.period_cache_hits = period_hits - before.period_hits;
    report.period_cache_misses = period_misses - before.period_misses;
    report.tombstone_cache_hits = tomb_hits - before.tomb_hits;
    report.tombstone_cache_misses = tomb_misses - before.tomb_misses;
    report.tombstone_cache_evictions = tomb_evictions - before.tomb_evictions;
  }
};

/// What an engine provides to the batch executor. Implementations must be
/// safe for concurrent SolveOne calls on distinct workspaces — the executor
/// runs buckets in parallel over a thread pool.
class ServingBackend {
 public:
  virtual ~ServingBackend() = default;

  /// Validates one query against the pinned view. Must produce byte-identical
  /// Status messages to SolveOne's validation failure for the same query —
  /// the planner's rejected-query contract depends on it.
  virtual Status Validate(const Query& query) const = 0;

  /// Builds and solves one query's problem on `ws` against the pinned view.
  /// Invalid queries yield the validation Status; valid ones never fail
  /// (solving is deterministic and total post-validation). `outcome`, when
  /// non-null, receives the problem's lazy-agreement flags.
  virtual Result<Recommendation> SolveOne(const Query& query,
                                          QueryWorkspace& ws,
                                          SolveOutcome* outcome) const = 0;

  /// Current cache counter values (monotonic; the executor reports deltas).
  virtual ServingCacheCounters Counters() const = 0;

  /// Period count the planner resolves optional evaluation periods against.
  virtual std::size_t num_periods() const = 0;
};

/// Monolithic backend: one pinned Snapshot, solved via the recommender's
/// BuildProblem + SolveGroupProblem (exactly GroupRecommender::Recommend).
class SnapshotServingBackend final : public ServingBackend {
 public:
  SnapshotServingBackend(const GroupRecommender& recommender,
                         std::shared_ptr<const Snapshot> snap)
      : recommender_(recommender), snap_(std::move(snap)) {}

  Status Validate(const Query& query) const override;
  Result<Recommendation> SolveOne(const Query& query, QueryWorkspace& ws,
                                  SolveOutcome* outcome) const override;
  ServingCacheCounters Counters() const override;
  std::size_t num_periods() const override;

 private:
  const GroupRecommender& recommender_;
  std::shared_ptr<const Snapshot> snap_;
};

/// Sharded backend: one pinned ShardedSnapshotSet, solved via the engine's
/// scatter/gather core (ShardedEngine::RecommendOnSet). The set must be
/// non-null.
class ShardedSetServingBackend final : public ServingBackend {
 public:
  ShardedSetServingBackend(const ShardedEngine& engine,
                           std::shared_ptr<const ShardedSnapshotSet> set)
      : engine_(engine), set_(std::move(set)) {}

  Status Validate(const Query& query) const override;
  Result<Recommendation> SolveOne(const Query& query, QueryWorkspace& ws,
                                  SolveOutcome* outcome) const override;
  ServingCacheCounters Counters() const override;
  std::size_t num_periods() const override;

 private:
  const ShardedEngine& engine_;
  std::shared_ptr<const ShardedSnapshotSet> set_;
};

}  // namespace greca

#endif  // GRECA_SERVE_SERVING_BACKEND_H_
