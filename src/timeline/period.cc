#include "timeline/period.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace greca {

Timestamp GranularitySeconds(Granularity g) {
  // Exhaustive: -Wswitch flags a new enumerator at compile time, and a
  // corrupted value aborts loudly instead of silently reading as one day.
  switch (g) {
    case Granularity::kWeek:
      return 7 * kSecondsPerDay;
    case Granularity::kMonth:
      return 31 * kSecondsPerDay;
    case Granularity::kTwoMonth:
      return 61 * kSecondsPerDay;
    case Granularity::kSeason:
      return 92 * kSecondsPerDay;
    case Granularity::kHalfYear:
      return 183 * kSecondsPerDay;
  }
  assert(false && "unhandled Granularity value");
  std::abort();
}

std::string GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kWeek:
      return "Week";
    case Granularity::kMonth:
      return "Month";
    case Granularity::kTwoMonth:
      return "Two-Month";
    case Granularity::kSeason:
      return "Season";
    case Granularity::kHalfYear:
      return "Half-Year";
  }
  assert(false && "unhandled Granularity value");
  std::abort();
}

std::vector<Granularity> AllGranularities() {
  return {Granularity::kWeek, Granularity::kMonth, Granularity::kTwoMonth,
          Granularity::kSeason, Granularity::kHalfYear};
}

Timeline Timeline::FixedWindows(Timestamp s0, Timestamp end,
                                Timestamp window) {
  assert(end > s0);
  assert(window > 0);
  std::vector<Period> periods;
  for (Timestamp start = s0; start < end; start += window) {
    periods.push_back(Period{start, std::min(start + window, end)});
  }
  return Timeline(std::move(periods));
}

Timeline Timeline::WithGranularity(Timestamp s0, Timestamp end,
                                   Granularity g) {
  return FixedWindows(s0, end, GranularitySeconds(g));
}

Timeline Timeline::FromBoundaries(const std::vector<Timestamp>& boundaries) {
  assert(boundaries.size() >= 2);
  std::vector<Period> periods;
  periods.reserve(boundaries.size() - 1);
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    assert(boundaries[i] < boundaries[i + 1]);
    periods.push_back(Period{boundaries[i], boundaries[i + 1]});
  }
  return Timeline(std::move(periods));
}

std::size_t Timeline::PeriodOf(Timestamp t) const {
  if (t < start() || t >= end()) return periods_.size();
  // First period whose finish is > t.
  const auto it = std::upper_bound(
      periods_.begin(), periods_.end(), t,
      [](Timestamp value, const Period& p) { return value < p.finish; });
  assert(it != periods_.end());
  return static_cast<std::size_t>(it - periods_.begin());
}

std::size_t Timeline::PeriodsCompletedBy(Timestamp t) const {
  const auto it = std::partition_point(
      periods_.begin(), periods_.end(),
      [t](const Period& p) { return p.finish <= t; });
  return static_cast<std::size_t>(it - periods_.begin());
}

}  // namespace greca
