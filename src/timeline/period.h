// Time periods and timeline discretization (paper §2.1).
//
// Time starts at a dataset-specific "beginning of time" s0 and is segmented
// into consecutive periods p0, ..., pnow. Periods need not have equal length;
// the provided granularities chunk a span into fixed-length windows with a
// possibly-shorter final window (so one year at week granularity yields 53
// periods, matching the paper's Figure 4).
#ifndef GRECA_TIMELINE_PERIOD_H_
#define GRECA_TIMELINE_PERIOD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace greca {

/// Closed-open interval [start, finish). `finish` must be > `start`.
struct Period {
  Timestamp start = 0;
  Timestamp finish = 0;

  bool Contains(Timestamp t) const { return t >= start && t < finish; }
  Timestamp length() const { return finish - start; }

  /// Paper's precedence relation p_i ≼ p_j (s_i <= s_j and f_i <= f_j).
  bool Precedes(const Period& other) const {
    return start <= other.start && finish <= other.finish;
  }

  friend bool operator==(const Period&, const Period&) = default;
};

/// Period lengths studied in the paper's Figure 4.
enum class Granularity {
  kWeek,
  kMonth,
  kTwoMonth,
  kSeason,
  kHalfYear,
};

inline constexpr Timestamp kSecondsPerDay = 86'400;

/// Nominal window length in seconds for a granularity (week=7d, month=31d,
/// two-month=61d, season=92d, half-year=183d). Lengths are chosen so one
/// 365-day year splits into the paper's Figure 4 period counts
/// (53 / 12 / 6 / 4 / 2).
Timestamp GranularitySeconds(Granularity g);

/// Human-readable name, e.g. "Two-Month".
std::string GranularityName(Granularity g);

/// All granularities in Figure 4 order (Week → Half-Year).
std::vector<Granularity> AllGranularities();

/// An ordered sequence of consecutive periods covering [s0, end).
class Timeline {
 public:
  /// Chunks [s0, end) into ceil(span/window) windows of `window` seconds; the
  /// final window is truncated at `end`. Requires end > s0 and window > 0.
  static Timeline FixedWindows(Timestamp s0, Timestamp end, Timestamp window);

  /// Convenience over GranularitySeconds().
  static Timeline WithGranularity(Timestamp s0, Timestamp end, Granularity g);

  /// Builds from explicit boundaries b0 < b1 < ... < bn; periods are
  /// [b0,b1), [b1,b2), ... Used for the paper's varying-length periods.
  static Timeline FromBoundaries(const std::vector<Timestamp>& boundaries);

  std::size_t num_periods() const { return periods_.size(); }
  const Period& period(PeriodId p) const { return periods_[p]; }
  const std::vector<Period>& periods() const { return periods_; }

  Timestamp start() const { return periods_.front().start; }
  Timestamp end() const { return periods_.back().finish; }

  /// Period containing `t`, or num_periods() when t is outside the timeline.
  /// O(log #periods).
  std::size_t PeriodOf(Timestamp t) const;

  /// Index of the latest period whose finish is <= `t`... (exclusive bound);
  /// i.e. the number of whole periods completed by time `t`.
  std::size_t PeriodsCompletedBy(Timestamp t) const;

 private:
  explicit Timeline(std::vector<Period> periods)
      : periods_(std::move(periods)) {}

  std::vector<Period> periods_;
};

}  // namespace greca

#endif  // GRECA_TIMELINE_PERIOD_H_
