// The public, batch-first entry point of the GRECA library.
//
// The paper's GRECA answers one ad-hoc group query at a time; production
// workloads (and the related group-formation literature) issue thousands of
// group queries per experiment. The Engine serves such workloads: a batch of
// queries executes in parallel over an internal thread pool. All workers
// read one shared, immutable PreferenceIndex snapshot (the pre-sorted
// per-user preference lists every query slices zero-copy), while each worker
// owns a reusable QueryWorkspace holding only mutable scratch — the
// problem-assembly arena and GRECA bound buffers — so steady-state queries
// sort nothing and allocate nothing on the hot path.
//
// Failures are per-query: RecommendBatch returns one Result<Recommendation>
// per input query in input order, so one malformed query never poisons the
// rest of the batch. Build queries with QueryBuilder (query_builder.h) to
// surface validation errors before dispatch.
//
//   Engine engine(universe, study, options);
//   std::vector<Query> queries = ...;
//   for (auto& result : engine.RecommendBatch(queries)) {
//     if (result.ok()) Use(result.value());
//   }
#ifndef GRECA_API_ENGINE_H_
#define GRECA_API_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/group_recommender.h"

namespace greca {

/// One group recommendation request: an ad-hoc group of study participants
/// plus the full query configuration.
struct Query {
  std::vector<UserId> group;
  QuerySpec spec;
};

struct EngineOptions {
  /// Worker threads for RecommendBatch. 0 picks
  /// max(2, std::thread::hardware_concurrency()).
  std::size_t num_threads = 0;
};

class Engine {
 public:
  /// Builds and owns the underlying recommender. Construction precomputes CF
  /// predictions and affinity tables (the expensive, query-independent part);
  /// both dataset references must outlive the engine.
  Engine(const RatingsDataset& universe, const FacebookStudy& study,
         RecommenderOptions options = {}, EngineOptions engine_options = {});
  Engine(const SyntheticRatings& universe, const FacebookStudy& study,
         RecommenderOptions options = {}, EngineOptions engine_options = {})
      : Engine(universe.dataset, study, options, engine_options) {}

  /// Wraps an existing recommender (non-owning; must outlive the engine).
  explicit Engine(const GroupRecommender& recommender,
                  EngineOptions engine_options = {});

  /// Runs one query. Invalid queries yield a non-OK status.
  Result<Recommendation> Recommend(const Query& query) const;

  /// Runs a batch of queries in parallel over the internal thread pool and
  /// returns one result per query, in input order. Results are identical to
  /// issuing the queries sequentially (the algorithms are deterministic and
  /// workspaces only amortize allocations). Thread-safe; concurrent batches
  /// are serialized internally.
  std::vector<Result<Recommendation>> RecommendBatch(
      std::span<const Query> queries) const;

  /// Swaps the pluggable affinity backend (see AffinitySource). Returns
  /// kFailedPrecondition on engines that wrap an external recommender (the
  /// wrapped instance is const; swap its source directly instead). Not
  /// thread-safe with respect to in-flight queries.
  Status set_affinity_source(std::shared_ptr<const AffinitySource> source);

  const GroupRecommender& recommender() const { return *recommender_; }
  std::size_t num_threads() const { return pool_->size(); }

  /// The read-only preference snapshot shared by every batch worker.
  const PreferenceIndex& preference_index() const { return *index_; }

 private:
  std::unique_ptr<GroupRecommender> owned_;  // null when wrapping
  const GroupRecommender* recommender_;
  // The one preference snapshot every worker reads. Shared ownership makes
  // the one-copy-for-all-workers contract explicit; lifetime of the
  // recommender itself is still the caller's responsibility on the wrapping
  // path.
  std::shared_ptr<const PreferenceIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::vector<QueryWorkspace> workspaces_;  // one per worker
  mutable std::mutex batch_mutex_;
};

}  // namespace greca

#endif  // GRECA_API_ENGINE_H_
