// The public, batch-first, snapshot-centric entry point of the GRECA
// library.
//
// The paper's GRECA answers one ad-hoc group query at a time over frozen
// data; production workloads issue thousands of group queries per second
// while ratings and affinities keep changing. The Engine serves such
// workloads with an RCU-style split:
//
//  * Reads — Recommend / RecommendBatch — pin the currently published
//    immutable Snapshot (pre-sorted PreferenceIndex + CF predictions +
//    bound AffinitySource + generation id, see snapshot.h) and read nothing
//    else for their whole lifetime. A batch executes in parallel over an
//    internal thread pool through the unified serving runtime
//    (serve/batch_executor.h), all workers sharing the one pinned snapshot;
//    each worker leases a reusable QueryWorkspace holding only mutable
//    scratch from a shared pool, so steady-state queries sort nothing and
//    allocate nothing on the hot path — and concurrent batches interleave
//    instead of serializing.
//  * Writes — ApplyUpdates / UpdateAffinitySource — rebuild the affected
//    index rows and CF state OFF the serving path and publish the result as
//    a new snapshot generation with an atomic pointer swap. Readers never
//    block on writers; a publish mid-batch cannot change the batch's
//    results (it keeps its pinned generation).
//
// Failures are per-query: RecommendBatch returns one Result<Recommendation>
// per input query in input order, so one malformed query never poisons the
// rest of the batch. Build queries with QueryBuilder (query_builder.h) to
// surface validation errors before dispatch.
//
//   Engine engine(universe, study, options);
//   for (auto& result : engine.RecommendBatch(queries)) {
//     if (result.ok()) Use(result.value());
//   }
//   engine.ApplyUpdates(events);   // publishes a new generation
#ifndef GRECA_API_ENGINE_H_
#define GRECA_API_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "api/snapshot.h"
#include "api/update.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/group_recommender.h"
#include "plan/batch_planner.h"
#include "serve/workspace_pool.h"

namespace greca {

struct EngineOptions {
  /// Worker threads for RecommendBatch. 0 picks
  /// max(2, std::thread::hardware_concurrency()).
  std::size_t num_threads = 0;
  /// Plan batches before solving them (plan/batch_planner.h): duplicate
  /// (group, spec-signature) queries share one assembled and solved problem,
  /// with results fanned back out per query. Bit-identical to the unplanned
  /// path (the algorithms are deterministic); disable to force the
  /// one-problem-per-query reference path.
  bool plan_batches = true;
};

class Engine {
 public:
  /// Builds and owns the underlying recommender. Construction precomputes CF
  /// predictions and affinity tables (the expensive, query-independent part)
  /// and publishes snapshot generation 1; both dataset references must
  /// outlive the engine and every snapshot pinned from it.
  Engine(const RatingsDataset& universe, const FacebookStudy& study,
         RecommenderOptions options = {}, EngineOptions engine_options = {});
  Engine(const SyntheticRatings& universe, const FacebookStudy& study,
         RecommenderOptions options = {}, EngineOptions engine_options = {})
      : Engine(universe.dataset, study, options, engine_options) {}

  /// Wraps an existing recommender (non-owning; must outlive the engine).
  /// A wrapping engine serves queries — including against snapshots the
  /// wrapped recommender's owner publishes — but cannot mutate: the
  /// update entry points below return kFailedPrecondition.
  explicit Engine(const GroupRecommender& recommender,
                  EngineOptions engine_options = {});

  // --- Snapshot lifecycle ---

  /// Pins the currently published serving state. Hold the pointer to keep a
  /// generation alive across calls (e.g. a paginated session that must see
  /// stable results); pass it to the snapshot-explicit overloads below.
  std::shared_ptr<const Snapshot> snapshot() const {
    return recommender_->snapshot();
  }

  /// Applies a batch of live rating events and publishes a new snapshot
  /// generation (see GroupRecommender::ApplyRatingUpdates for the exact
  /// fold semantics). The fold is O(delta) — events land in a per-user
  /// delta log, not a re-fold of the whole dataset — and calls arriving
  /// while a publish is in flight group-commit into one generation
  /// (`report->batches_coalesced`). Serving never blocks: in-flight queries
  /// finish on their pinned snapshot. Returns kFailedPrecondition on
  /// engines that wrap an external recommender (the wrapped instance is
  /// const; apply updates through its owner instead).
  Status ApplyUpdates(std::span<const RatingEvent> events,
                      UpdateReport* report = nullptr);

  /// Swaps the pluggable affinity backend (see AffinitySource) by
  /// publishing a new snapshot generation bound to `source`. Same wrapping
  /// restriction as ApplyUpdates. Safe with respect to in-flight queries —
  /// they keep the source their snapshot was bound to.
  Status UpdateAffinitySource(std::shared_ptr<const AffinitySource> source);

  /// Deprecated spelling of UpdateAffinitySource, kept for existing
  /// callers. Routed through the snapshot-swap path, so the historical
  /// "not thread-safe with respect to in-flight queries" caveat no longer
  /// applies.
  Status set_affinity_source(std::shared_ptr<const AffinitySource> source) {
    return UpdateAffinitySource(std::move(source));
  }

  // --- Queries ---

  /// Runs one query against the current snapshot. Invalid queries yield a
  /// non-OK status.
  Result<Recommendation> Recommend(const Query& query) const;

  /// Runs one query against an explicitly pinned snapshot.
  Result<Recommendation> Recommend(const Query& query,
                                   std::shared_ptr<const Snapshot> snap) const;

  /// Runs a batch of queries in parallel over the internal thread pool and
  /// returns one result per query, in input order. The whole batch pins ONE
  /// snapshot, so its results are mutually consistent and unaffected by
  /// concurrent publishes; they are identical to issuing the queries
  /// sequentially against that snapshot (the algorithms are deterministic
  /// and workspaces only amortize allocations). Thread-safe; concurrent
  /// batches interleave (each checks its workspaces out of a shared pool —
  /// see serve/batch_executor.h) rather than queueing on a whole-batch lock.
  ///
  /// With EngineOptions::plan_batches (the default) the batch is PLANNED
  /// first: duplicate (group, spec-signature) queries share one assembled
  /// and solved problem and the result is fanned back out — bit-identical
  /// results at a fraction of the work on duplicate-heavy traffic (see
  /// plan/batch_planner.h). `report`, when non-null, receives the planner's
  /// stats and per-query attribution.
  std::vector<Result<Recommendation>> RecommendBatch(
      std::span<const Query> queries, BatchReport* report = nullptr) const;

  /// Batch execution against an explicitly pinned snapshot — e.g. to replay
  /// a batch on a retired generation, or to split one logical workload
  /// across several RecommendBatch calls that must all see the same data.
  std::vector<Result<Recommendation>> RecommendBatch(
      std::span<const Query> queries, std::shared_ptr<const Snapshot> snap,
      BatchReport* report = nullptr) const;

  const GroupRecommender& recommender() const { return *recommender_; }
  std::size_t num_threads() const { return pool_->size(); }

  /// The preference index of the current snapshot. The reference does not
  /// pin its snapshot: it is safe only while no concurrent writer can
  /// publish. Pin snapshot() and use snapshot()->index() when updates may
  /// race this call.
  const PreferenceIndex& preference_index() const {
    return recommender_->preference_index();
  }

 private:
  std::unique_ptr<GroupRecommender> owned_;  // null when wrapping
  const GroupRecommender* recommender_;
  std::unique_ptr<ThreadPool> pool_;
  const bool plan_batches_;
  mutable WorkspacePool workspace_pool_;
};

}  // namespace greca

#endif  // GRECA_API_ENGINE_H_
