#include "api/engine.h"

#include <cstdint>
#include <optional>
#include <thread>
#include <utility>

#include "core/problem_assembly.h"

namespace greca {

namespace {

std::size_t ResolveNumThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw > 2 ? hw : 2;
}

}  // namespace

Engine::Engine(const RatingsDataset& universe, const FacebookStudy& study,
               RecommenderOptions options, EngineOptions engine_options)
    : owned_(std::make_unique<GroupRecommender>(universe, study, options)),
      recommender_(owned_.get()),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(engine_options.num_threads))),
      plan_batches_(engine_options.plan_batches),
      workspaces_(pool_->size()) {}

Engine::Engine(const GroupRecommender& recommender,
               EngineOptions engine_options)
    : recommender_(&recommender),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(engine_options.num_threads))),
      plan_batches_(engine_options.plan_batches),
      workspaces_(pool_->size()) {}

Status Engine::ApplyUpdates(std::span<const RatingEvent> events,
                            UpdateReport* report) {
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; apply updates through its "
        "owner");
  }
  return owned_->ApplyRatingUpdates(events, report);
}

Status Engine::UpdateAffinitySource(
    std::shared_ptr<const AffinitySource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("affinity source must not be null");
  }
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; swap its affinity source "
        "through its owner");
  }
  return owned_->UpdateAffinitySource(std::move(source));
}

Result<Recommendation> Engine::Recommend(const Query& query) const {
  return recommender_->Recommend(query.group, query.spec);
}

Result<Recommendation> Engine::Recommend(
    const Query& query, std::shared_ptr<const Snapshot> snap) const {
  return recommender_->Recommend(snap, query.group, query.spec);
}

namespace {

/// Snapshot-cache counter snapshot, for the BatchReport deltas.
struct CacheCounters {
  std::uint64_t period_hits, period_misses;
  std::uint64_t tomb_hits, tomb_misses, tomb_evictions;

  static CacheCounters Of(const Snapshot& snap) {
    return {snap.period_cache_hits(), snap.period_cache_misses(),
            snap.tombstone_cache_hits(), snap.tombstone_cache_misses(),
            snap.tombstone_cache_evictions()};
  }
  void DeltaInto(const CacheCounters& before, BatchReport& report) const {
    report.period_cache_hits = period_hits - before.period_hits;
    report.period_cache_misses = period_misses - before.period_misses;
    report.tombstone_cache_hits = tomb_hits - before.tomb_hits;
    report.tombstone_cache_misses = tomb_misses - before.tomb_misses;
    report.tombstone_cache_evictions = tomb_evictions - before.tomb_evictions;
  }
};

}  // namespace

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries, BatchReport* report) const {
  // One snapshot pin per batch: every query in the batch sees the same
  // generation no matter how many updates publish while it runs.
  return RecommendBatch(queries, recommender_->snapshot(), report);
}

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries, std::shared_ptr<const Snapshot> snap,
    BatchReport* report) const {
  // Serialize batches: each worker's QueryWorkspace must belong to exactly
  // one in-flight batch.
  std::lock_guard<std::mutex> lock(batch_mutex_);
  if (plan_batches_) return RecommendBatchPlanned(queries, snap, report);

  // Unplanned reference path: one problem per query. Kept selectable so the
  // planner's bit-identity contract stays testable against it.
  const CacheCounters before = CacheCounters::Of(*snap);
  std::vector<std::optional<Result<Recommendation>>> scratch(queries.size());
  pool_->ParallelFor(
      queries.size(), [&](std::size_t worker, std::size_t i) {
        scratch[i].emplace(recommender_->Recommend(
            snap, queries[i].group, queries[i].spec, &workspaces_[worker]));
      });
  std::vector<Result<Recommendation>> results;
  results.reserve(queries.size());
  for (auto& r : scratch) {
    results.push_back(std::move(*r));
  }
  if (report != nullptr) {
    *report = BatchReport{};
    report->num_queries = queries.size();
    report->per_query.resize(queries.size());
    std::uint32_t bucket = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ++report->num_invalid;
        continue;
      }
      // Every valid query is its own single-member bucket here.
      report->per_query[i] = {bucket++, /*representative=*/true};
    }
    report->num_buckets = bucket;
    CacheCounters::Of(*snap).DeltaInto(before, *report);
  }
  return results;
}

std::vector<Result<Recommendation>> Engine::RecommendBatchPlanned(
    std::span<const Query> queries,
    const std::shared_ptr<const Snapshot>& snap, BatchReport* report) const {
  const CacheCounters before = CacheCounters::Of(*snap);
  BatchPlan plan = BatchPlanner::Plan(
      queries,
      [&](const Query& q) {
        return recommender_->ValidateQuery(*snap, q.group, q.spec);
      },
      recommender_->num_periods());

  // Solve one representative problem per bucket, in parallel. This mirrors
  // GroupRecommender::Recommend exactly (BuildProblem + SolveGroupProblem on
  // a worker workspace), so every fanned-out copy below is bit-identical to
  // solving its query directly.
  struct BucketOutcome {
    std::optional<Result<Recommendation>> result;
    bool agreement_deferred = false;
    bool agreement_materialized = false;
  };
  std::vector<BucketOutcome> solved(plan.buckets.size());
  pool_->ParallelFor(plan.buckets.size(), [&](std::size_t worker,
                                              std::size_t b) {
    const Query& q = queries[plan.buckets[b].queries.front()];
    QueryWorkspace& ws = workspaces_[worker];
    Result<GroupProblem> problem =
        recommender_->BuildProblem(snap, q.group, q.spec, nullptr, &ws);
    if (!problem.ok()) {
      solved[b].result.emplace(problem.status());
      return;
    }
    solved[b].result.emplace(SolveGroupProblem(problem.value(), q.spec,
                                               snap->index().pool(), ws));
    solved[b].agreement_deferred = problem.value().agreement_deferred();
    solved[b].agreement_materialized = problem.value().agreement_materialized();
  });

  // Fan the solved results back out to every duplicate, in input order.
  std::vector<Result<Recommendation>> results;
  results.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint32_t b = plan.bucket_of[i];
    if (b == BatchQueryAttribution::kInvalid) {
      results.emplace_back(plan.statuses[i]);
    } else {
      results.push_back(*solved[b].result);
    }
  }

  if (report != nullptr) {
    *report = BatchReport{};
    report->planned = true;
    report->num_queries = queries.size();
    report->num_invalid = queries.size() - plan.num_valid;
    report->num_buckets = plan.buckets.size();
    report->duplicates_shared = plan.num_valid - plan.buckets.size();
    report->dedup_ratio = plan.DedupRatio();
    for (const BucketOutcome& o : solved) {
      if (!o.agreement_deferred) continue;
      ++(o.agreement_materialized ? report->agreement_lists_materialized
                                  : report->agreement_lists_skipped);
    }
    report->per_query.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::uint32_t b = plan.bucket_of[i];
      report->per_query[i] = {
          b, b != BatchQueryAttribution::kInvalid &&
                 plan.buckets[b].queries.front() == static_cast<std::uint32_t>(
                                                        i)};
    }
    CacheCounters::Of(*snap).DeltaInto(before, *report);
  }
  return results;
}

}  // namespace greca
