#include "api/engine.h"

#include <utility>

#include "serve/batch_executor.h"
#include "serve/serving_backend.h"

namespace greca {

Engine::Engine(const RatingsDataset& universe, const FacebookStudy& study,
               RecommenderOptions options, EngineOptions engine_options)
    : owned_(std::make_unique<GroupRecommender>(universe, study, options)),
      recommender_(owned_.get()),
      pool_(std::make_unique<ThreadPool>(
          ResolveBatchThreads(engine_options.num_threads))),
      plan_batches_(engine_options.plan_batches) {}

Engine::Engine(const GroupRecommender& recommender,
               EngineOptions engine_options)
    : recommender_(&recommender),
      pool_(std::make_unique<ThreadPool>(
          ResolveBatchThreads(engine_options.num_threads))),
      plan_batches_(engine_options.plan_batches) {}

Status Engine::ApplyUpdates(std::span<const RatingEvent> events,
                            UpdateReport* report) {
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; apply updates through its "
        "owner");
  }
  return owned_->ApplyRatingUpdates(events, report);
}

Status Engine::UpdateAffinitySource(
    std::shared_ptr<const AffinitySource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("affinity source must not be null");
  }
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; swap its affinity source "
        "through its owner");
  }
  return owned_->UpdateAffinitySource(std::move(source));
}

Result<Recommendation> Engine::Recommend(const Query& query) const {
  return recommender_->Recommend(query.group, query.spec);
}

Result<Recommendation> Engine::Recommend(
    const Query& query, std::shared_ptr<const Snapshot> snap) const {
  return recommender_->Recommend(snap, query.group, query.spec);
}

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries, BatchReport* report) const {
  // One snapshot pin per batch: every query in the batch sees the same
  // generation no matter how many updates publish while it runs.
  return RecommendBatch(queries, recommender_->snapshot(), report);
}

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries, std::shared_ptr<const Snapshot> snap,
    BatchReport* report) const {
  const SnapshotServingBackend backend(*recommender_, std::move(snap));
  return BatchExecutor::Execute(backend, queries, plan_batches_, pool_.get(),
                                workspace_pool_, report);
}

}  // namespace greca
