#include "api/engine.h"

#include <optional>
#include <thread>
#include <utility>

namespace greca {

namespace {

std::size_t ResolveNumThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw > 2 ? hw : 2;
}

}  // namespace

Engine::Engine(const RatingsDataset& universe, const FacebookStudy& study,
               RecommenderOptions options, EngineOptions engine_options)
    : owned_(std::make_unique<GroupRecommender>(universe, study, options)),
      recommender_(owned_.get()),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(engine_options.num_threads))),
      workspaces_(pool_->size()) {}

Engine::Engine(const GroupRecommender& recommender,
               EngineOptions engine_options)
    : recommender_(&recommender),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(engine_options.num_threads))),
      workspaces_(pool_->size()) {}

Status Engine::ApplyUpdates(std::span<const RatingEvent> events,
                            UpdateReport* report) {
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; apply updates through its "
        "owner");
  }
  return owned_->ApplyRatingUpdates(events, report);
}

Status Engine::UpdateAffinitySource(
    std::shared_ptr<const AffinitySource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("affinity source must not be null");
  }
  if (owned_ == nullptr) {
    return Status::FailedPrecondition(
        "engine wraps an external recommender; swap its affinity source "
        "through its owner");
  }
  return owned_->UpdateAffinitySource(std::move(source));
}

Result<Recommendation> Engine::Recommend(const Query& query) const {
  return recommender_->Recommend(query.group, query.spec);
}

Result<Recommendation> Engine::Recommend(
    const Query& query, std::shared_ptr<const Snapshot> snap) const {
  return recommender_->Recommend(snap, query.group, query.spec);
}

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries) const {
  // One snapshot pin per batch: every query in the batch sees the same
  // generation no matter how many updates publish while it runs.
  return RecommendBatch(queries, recommender_->snapshot());
}

std::vector<Result<Recommendation>> Engine::RecommendBatch(
    std::span<const Query> queries,
    std::shared_ptr<const Snapshot> snap) const {
  // Serialize batches: each worker's QueryWorkspace must belong to exactly
  // one in-flight batch.
  std::lock_guard<std::mutex> lock(batch_mutex_);
  std::vector<std::optional<Result<Recommendation>>> scratch(queries.size());
  pool_->ParallelFor(
      queries.size(), [&](std::size_t worker, std::size_t i) {
        scratch[i].emplace(recommender_->Recommend(
            snap, queries[i].group, queries[i].spec, &workspaces_[worker]));
      });
  std::vector<Result<Recommendation>> results;
  results.reserve(queries.size());
  for (auto& r : scratch) {
    results.push_back(std::move(*r));
  }
  return results;
}

}  // namespace greca
