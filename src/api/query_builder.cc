#include "api/query_builder.h"

#include <cstddef>
#include <utility>

namespace greca {

QueryBuilder& QueryBuilder::Members(std::vector<UserId> members) {
  query_.group = std::move(members);
  return *this;
}

QueryBuilder& QueryBuilder::AddMember(UserId user) {
  query_.group.push_back(user);
  return *this;
}

QueryBuilder& QueryBuilder::TopK(std::size_t k) {
  query_.spec.k = k;
  return *this;
}

QueryBuilder& QueryBuilder::Model(const AffinityModelSpec& model) {
  query_.spec.model = model;
  return *this;
}

QueryBuilder& QueryBuilder::Consensus(const ConsensusSpec& consensus) {
  query_.spec.consensus = consensus;
  return *this;
}

QueryBuilder& QueryBuilder::AtPeriod(PeriodId period) {
  query_.spec.eval_period = period;
  return *this;
}

QueryBuilder& QueryBuilder::AtLastPeriod() {
  query_.spec.eval_period = std::nullopt;
  return *this;
}

QueryBuilder& QueryBuilder::Using(Algorithm algorithm) {
  query_.spec.algorithm = algorithm;
  query_.spec.solver_id.clear();  // last selection wins
  return *this;
}

QueryBuilder& QueryBuilder::Using(std::string solver_id) {
  query_.spec.solver_id = std::move(solver_id);
  return *this;
}

QueryBuilder& QueryBuilder::Weighting(MemberWeighting weighting) {
  query_.spec.weighting = weighting;
  return *this;
}

QueryBuilder& QueryBuilder::Termination(TerminationPolicy policy) {
  query_.spec.termination = policy;
  return *this;
}

QueryBuilder& QueryBuilder::CandidatePool(std::size_t num_items) {
  query_.spec.num_candidate_items = num_items;
  return *this;
}

Result<Query> QueryBuilder::Build() const {
  Query query = query_;
  // Dedupe to first occurrences, preserving order: a duplicate would
  // double-weight that member in every consensus function. O(g²) on a group
  // capped at tens of members.
  auto& group = query.group;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (group[j] == group[i]) {
        group.erase(group.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        break;
      }
    }
  }
  if (Status s = recommender_->ValidateQuery(query.group, query.spec);
      !s.ok()) {
    return s;
  }
  return query;
}

}  // namespace greca
