// The immutable unit of serving state that every query pins.
//
// A Snapshot bundles everything a query reads — the pre-sorted
// PreferenceIndex, the CF predictions it was built from, the study ratings
// (base + live delta log, the tombstone source for §2.4's already-rated
// exclusion) and the bound AffinitySource — under one generation id.
// Queries pin a snapshot for their whole lifetime (one per query via
// Engine::Recommend, one per batch via
// Engine::RecommendBatch), so a concurrently published update can never
// change a running query's inputs: updates build a NEW snapshot off the
// serving path and publish it with a constant-time pointer swap (RCU-style;
// see update.h and GroupRecommender::ApplyRatingUpdates).
//
// Period-list caching: the materialized periodic-affinity pair lists
// consumed by BuildProblem depend only on (group, period) and the bound
// AffinitySource — not on the query's candidate pool and not on ratings —
// and batch workloads repeat groups constantly. PeriodList() memoizes them
// in a PeriodListCache scoped to the affinity binding: rating-update
// generations SHARE the cache of the snapshot they were built from (their
// lists are bit-identical), while an affinity-source swap starts a fresh
// one. Invalidation is therefore free — when the last snapshot sharing a
// cache retires, the cache goes with it — and a steady rating-update stream
// never re-colds the cache. Cached lists are immutable once inserted and
// pointer-stable, so GroupProblem views alias them directly and stay valid
// as long as the snapshot lives (GroupProblem keeps it alive).
//
// Thread-safety: all members are const after construction except the cache,
// which is internally synchronized — any number of threads may call
// PeriodList() concurrently. Cache hits are allocation-free (heterogeneous
// key lookup on the group span).
//
// The cache is BOUNDED: at most max_entries (group, period) lists stay
// resident, evicted least-recently-used once the cap is hit, so a long-lived
// generation under adversarial ad-hoc group churn cannot grow without bound.
// Entries are handed out as shared_ptrs — a problem assembled from a list
// that gets evicted mid-flight keeps its copy alive through the arena's
// period pins (topk/problem.h), so eviction is never a correctness event.
// Eviction counters sit next to the hit/miss counters for observability.
#ifndef GRECA_API_SNAPSHOT_H_
#define GRECA_API_SNAPSHOT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "affinity/affinity_source.h"
#include "common/types.h"
#include "dataset/ratings.h"
#include "dataset/ratings_overlay.h"
#include "index/preference_index.h"
#include "topk/sorted_list.h"

namespace greca {

/// The bounded-LRU machinery shared by the snapshot-scoped memo caches
/// (PeriodListCache, TombstoneCache): (ordered group, uint64 tag) →
/// immutable shared value, internally synchronized, with hit/miss/eviction
/// counters. Values are built OUTSIDE the lock (a lost insert race discards
/// the duplicate build) and handed out as shared_ptrs, so an entry evicted
/// mid-flight stays alive for every holder — eviction is never a
/// correctness event.
template <typename Value>
class BoundedGroupCache {
 public:
  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit BoundedGroupCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// The cached value for (group, tag), built via `build` — a callable
  /// returning std::shared_ptr<const Value> — on first use. The group is
  /// significant in ORDER; the validated query path always presents a
  /// canonical order.
  template <typename Builder>
  std::shared_ptr<const Value> GetOrBuild(std::span<const UserId> group,
                                          std::uint64_t tag, Builder&& build) {
    const KeyView probe{group, tag};
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = cache_.find(probe);  // heterogeneous: no key allocation
      if (it != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        it->second.last_used = ++use_clock_;
        return it->second.value;
      }
    }
    // Build outside the lock so a slow build never stalls other readers'
    // cache hits.
    std::shared_ptr<const Value> built = build();
    Key key{std::vector<UserId>(group.begin(), group.end()), tag};
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = cache_.try_emplace(std::move(key));
    if (inserted) {
      it->second.value = std::move(built);
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    it->second.last_used = ++use_clock_;
    std::shared_ptr<const Value> result = it->second.value;
    // Evict AFTER grabbing the result: even a cap of 1 under heavy churn
    // hands every caller a live value (the shared_ptr outlives residency).
    EvictIfNeededLocked();
    return result;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by the LRU cap (0 while the working set fits).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

  /// Resident bytes: the key/bookkeeping overhead plus `value_bytes(v)` per
  /// resident value, accumulated under the lock.
  template <typename Fn>
  std::size_t MemoryBytes(Fn&& value_bytes) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    for (const auto& [key, entry] : cache_) {
      bytes += key.group.size() * sizeof(UserId) + sizeof(Key) + sizeof(Entry);
      bytes += value_bytes(*entry.value);
    }
    return bytes;
  }

 private:
  struct Key {
    std::vector<UserId> group;
    std::uint64_t tag = 0;
  };
  /// Allocation-free probe key over a caller-owned span.
  struct KeyView {
    std::span<const UserId> group;
    std::uint64_t tag = 0;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t Mix(std::span<const UserId> group, std::uint64_t tag) {
      // FNV-1a over the member ids and the tag.
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      for (const UserId u : group) mix(u);
      mix(0xABCDull);
      mix(tag);
      return static_cast<std::size_t>(h);
    }
    std::size_t operator()(const Key& k) const { return Mix(k.group, k.tag); }
    std::size_t operator()(const KeyView& k) const {
      return Mix(k.group, k.tag);
    }
  };
  struct KeyEqual {
    using is_transparent = void;
    static bool Eq(std::span<const UserId> a, std::uint64_t ta,
                   std::span<const UserId> b, std::uint64_t tb) {
      return ta == tb && std::ranges::equal(a, b);
    }
    bool operator()(const Key& a, const Key& b) const {
      return Eq(a.group, a.tag, b.group, b.tag);
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return Eq(a.group, a.tag, b.group, b.tag);
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return Eq(a.group, a.tag, b.group, b.tag);
    }
  };

  /// One resident value plus its recency stamp. shared_ptr values keep
  /// addresses stable across rehashes AND alive across eviction.
  struct Entry {
    std::shared_ptr<const Value> value;
    std::uint64_t last_used = 0;
  };

  /// Drops least-recently-used entries until size() <= max_entries_.
  /// Requires mu_ held. O(size) per eviction — evictions only happen on
  /// misses, which already pay a full value build.
  void EvictIfNeededLocked() {
    while (max_entries_ > 0 && cache_.size() > max_entries_) {
      auto victim = cache_.begin();
      for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      cache_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const std::size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash, KeyEqual> cache_;
  std::uint64_t use_clock_ = 0;  // guarded by mu_
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Memoized (group, period) → materialized periodic-affinity pair list.
/// Internally synchronized; shared by every snapshot generation bound to
/// the same AffinitySource. Entries are immutable and pointer-stable.
class PeriodListCache {
 public:
  /// Default residency cap: generous for real batch workloads (which repeat
  /// a few hundred groups × a handful of periods) while bounding adversarial
  /// group churn to a few MB of pair lists.
  static constexpr std::size_t kDefaultMaxEntries = 8'192;

  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit PeriodListCache(std::size_t max_entries = kDefaultMaxEntries)
      : cache_(max_entries) {}

  /// The cached list for (group, p), materialized through `source` on first
  /// use. The returned shared_ptr keeps the list alive across eviction —
  /// problem assembly pins it for the problem's lifetime.
  std::shared_ptr<const SortedList> GetShared(std::span<const UserId> group,
                                              PeriodId p,
                                              const AffinitySource& source);

  /// Reference-returning convenience for tests and single-threaded callers:
  /// the reference stays valid only while the entry is resident (or while a
  /// GetShared copy pins it), so code that can churn past max_entries()
  /// between materialization and last use must hold GetShared instead.
  const SortedList& Get(std::span<const UserId> group, PeriodId p,
                        const AffinitySource& source) {
    return *GetShared(group, p, source);
  }

  std::uint64_t hits() const { return cache_.hits(); }
  std::uint64_t misses() const { return cache_.misses(); }
  /// Entries dropped by the LRU cap (0 while the working set fits).
  std::uint64_t evictions() const { return cache_.evictions(); }
  std::size_t max_entries() const { return cache_.max_entries(); }
  std::size_t size() const { return cache_.size(); }
  std::size_t MemoryBytes() const;

 private:
  BoundedGroupCache<SortedList> cache_;
};

/// One group's candidate-pool exclusion state: the §2.4 already-rated
/// tombstone bitmap (1 bit per pool key, set = excluded) plus the live-key
/// count an assembled problem needs alongside it.
struct TombstoneSet {
  std::vector<std::uint64_t> words;
  std::size_t live = 0;
};

/// Memoized (group, pool-prefix) → tombstone bitmap. Bitmaps depend on the
/// group members' rated items — base rows plus the live delta log — so a
/// cache instance is scoped to ONE snapshot generation (Snapshot creates a
/// fresh one per publish; invalidation is free, exactly like the period
/// cache's affinity scoping). Batch workloads repeat groups constantly, and
/// between publishes every repeat skips the per-member rated-item walk.
class TombstoneCache {
 public:
  /// Default residency cap: bitmaps are a few hundred bytes each (pool/8),
  /// so the worst-case resident set stays in the low MB.
  static constexpr std::size_t kDefaultMaxEntries = 4'096;

  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit TombstoneCache(std::size_t max_entries = kDefaultMaxEntries)
      : cache_(max_entries) {}

  /// The cached bitmap for (group, pool), built via `build` — a callable
  /// returning std::shared_ptr<const TombstoneSet> — on first use. The
  /// returned shared_ptr keeps the set alive across eviction; problem
  /// assembly pins it for the problem's lifetime.
  template <typename Builder>
  std::shared_ptr<const TombstoneSet> GetShared(std::span<const UserId> group,
                                                std::size_t pool,
                                                Builder&& build) {
    return cache_.GetOrBuild(group, static_cast<std::uint64_t>(pool),
                             std::forward<Builder>(build));
  }

  std::uint64_t hits() const { return cache_.hits(); }
  std::uint64_t misses() const { return cache_.misses(); }
  /// Entries dropped by the LRU cap (0 while the working set fits).
  std::uint64_t evictions() const { return cache_.evictions(); }
  std::size_t max_entries() const { return cache_.max_entries(); }
  std::size_t size() const { return cache_.size(); }
  std::size_t MemoryBytes() const {
    return cache_.MemoryBytes([](const TombstoneSet& set) {
      return sizeof(TombstoneSet) +
             set.words.size() * sizeof(std::uint64_t);
    });
  }

 private:
  BoundedGroupCache<TombstoneSet> cache_;
};

class Snapshot {
 public:
  /// All parts but `cache` must be non-null; the snapshot shares their
  /// ownership (the overlay's base may alias caller-owned storage on the
  /// initial generation — see GroupRecommender construction). `cache` is
  /// the period-list cache to share — pass the previous generation's cache
  /// when the affinity binding is unchanged (rating updates, delta-log
  /// compactions), null to start cold (construction, affinity swaps). The
  /// tombstone cache is ALWAYS fresh per snapshot (bitmaps depend on the
  /// ratings overlay, which changes every publish);
  /// `tombstone_cache_max_entries` bounds it.
  Snapshot(std::uint64_t generation,
           std::shared_ptr<const RatingsOverlay> ratings,
           std::shared_ptr<const std::vector<std::vector<Score>>> predictions,
           std::shared_ptr<const PreferenceIndex> index,
           std::shared_ptr<const AffinitySource> affinity,
           std::shared_ptr<PeriodListCache> cache = nullptr,
           std::size_t tombstone_cache_max_entries =
               TombstoneCache::kDefaultMaxEntries);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Monotonically increasing publish id; 1 is the construction-time state.
  std::uint64_t generation() const { return generation_; }

  const PreferenceIndex& index() const { return *index_; }
  const AffinitySource& affinity() const { return *affinity_; }
  /// The study participants' own ratings as of this generation: the
  /// immutable base plus the live per-user delta log, merged on read
  /// (tombstone source for the group-rated exclusion). Use
  /// ratings().base() for the base alone.
  const RatingsOverlay& ratings() const { return *ratings_; }
  /// CF-predicted ratings (universe scale) per study participant.
  std::span<const Score> predictions(UserId study_user) const {
    return (*predictions_)[study_user];
  }
  std::size_t num_users() const { return predictions_->size(); }

  /// Shared handles (what the next generation's builder reuses for the
  /// untouched parts).
  const std::shared_ptr<const RatingsOverlay>& ratings_ptr() const {
    return ratings_;
  }
  const std::shared_ptr<const std::vector<std::vector<Score>>>&
  predictions_ptr() const {
    return predictions_;
  }
  const std::shared_ptr<const PreferenceIndex>& index_ptr() const {
    return index_;
  }
  const std::shared_ptr<const AffinitySource>& affinity_ptr() const {
    return affinity_;
  }
  const std::shared_ptr<PeriodListCache>& period_cache_ptr() const {
    return cache_;
  }
  /// The generation-scoped (group, pool) → tombstone-bitmap memo (never
  /// null; see TombstoneCache for the scoping rationale).
  const std::shared_ptr<TombstoneCache>& tombstone_cache_ptr() const {
    return tombstone_cache_;
  }

  /// The materialized periodic-affinity list of `group` (ordered; local pair
  /// key order, see LocalPairIndex) at period `p`, served from the shared
  /// PeriodListCache. Thread-safe; the returned list is immutable and valid
  /// while it stays resident in the bounded cache (or while a
  /// PeriodListShared copy pins it) — hot-path consumers pin via
  /// PeriodListShared, tests may use this convenience.
  const SortedList& PeriodList(std::span<const UserId> group,
                               PeriodId p) const {
    return cache_->Get(group, p, *affinity_);
  }

  /// Ownership-sharing variant: the returned list stays valid even if the
  /// cache evicts it (problem assembly pins these for the problem lifetime).
  std::shared_ptr<const SortedList> PeriodListShared(
      std::span<const UserId> group, PeriodId p) const {
    return cache_->GetShared(group, p, *affinity_);
  }

  /// Cache observability (counters are cache-lifetime, i.e. shared across
  /// the rating-update generations bound to the same affinity source).
  /// hits + misses == PeriodList() calls.
  std::uint64_t period_cache_hits() const { return cache_->hits(); }
  std::uint64_t period_cache_misses() const { return cache_->misses(); }
  /// Entries the bounded cache has dropped (LRU; 0 while the working set
  /// fits max_entries).
  std::uint64_t period_cache_evictions() const { return cache_->evictions(); }
  /// Number of distinct (group, period) lists currently materialized.
  std::size_t period_cache_size() const { return cache_->size(); }
  /// Resident bytes of the cached period lists (excludes the shared index).
  std::size_t PeriodCacheMemoryBytes() const { return cache_->MemoryBytes(); }

  /// Tombstone-cache observability (counters are generation-scoped — every
  /// publish starts a fresh cache). hits + misses == cached assemblies with
  /// the group-rated exclusion on.
  std::uint64_t tombstone_cache_hits() const {
    return tombstone_cache_->hits();
  }
  std::uint64_t tombstone_cache_misses() const {
    return tombstone_cache_->misses();
  }
  std::uint64_t tombstone_cache_evictions() const {
    return tombstone_cache_->evictions();
  }
  /// Number of distinct (group, pool) bitmaps currently materialized.
  std::size_t tombstone_cache_size() const { return tombstone_cache_->size(); }
  /// Resident bytes of the cached tombstone bitmaps.
  std::size_t TombstoneCacheMemoryBytes() const {
    return tombstone_cache_->MemoryBytes();
  }

 private:
  const std::uint64_t generation_;
  const std::shared_ptr<const RatingsOverlay> ratings_;
  const std::shared_ptr<const std::vector<std::vector<Score>>> predictions_;
  const std::shared_ptr<const PreferenceIndex> index_;
  const std::shared_ptr<const AffinitySource> affinity_;
  const std::shared_ptr<PeriodListCache> cache_;  // never null
  const std::shared_ptr<TombstoneCache> tombstone_cache_;  // never null
};

}  // namespace greca

#endif  // GRECA_API_SNAPSHOT_H_
