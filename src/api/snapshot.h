// The immutable unit of serving state that every query pins.
//
// A Snapshot bundles everything a query reads — the pre-sorted
// PreferenceIndex, the CF predictions it was built from, the study ratings
// (base + live delta log, the tombstone source for §2.4's already-rated
// exclusion) and the bound AffinitySource — under one generation id.
// Queries pin a snapshot for their whole lifetime (one per query via
// Engine::Recommend, one per batch via
// Engine::RecommendBatch), so a concurrently published update can never
// change a running query's inputs: updates build a NEW snapshot off the
// serving path and publish it with a constant-time pointer swap (RCU-style;
// see update.h and GroupRecommender::ApplyRatingUpdates).
//
// Period-list caching: the materialized periodic-affinity pair lists
// consumed by BuildProblem depend only on (group, period) and the bound
// AffinitySource — not on the query's candidate pool and not on ratings —
// and batch workloads repeat groups constantly. PeriodList() memoizes them
// in a PeriodListCache scoped to the affinity binding: rating-update
// generations SHARE the cache of the snapshot they were built from (their
// lists are bit-identical), while an affinity-source swap starts a fresh
// one. Invalidation is therefore free — when the last snapshot sharing a
// cache retires, the cache goes with it — and a steady rating-update stream
// never re-colds the cache. Cached lists are immutable once inserted and
// pointer-stable, so GroupProblem views alias them directly and stay valid
// as long as the snapshot lives (GroupProblem keeps it alive).
//
// Thread-safety: all members are const after construction except the cache,
// which is internally synchronized — any number of threads may call
// PeriodList() concurrently. Cache hits are allocation-free (heterogeneous
// key lookup on the group span).
//
// The cache is BOUNDED: at most max_entries (group, period) lists stay
// resident, evicted least-recently-used once the cap is hit, so a long-lived
// generation under adversarial ad-hoc group churn cannot grow without bound.
// Entries are handed out as shared_ptrs — a problem assembled from a list
// that gets evicted mid-flight keeps its copy alive through the arena's
// period pins (topk/problem.h), so eviction is never a correctness event.
// Eviction counters sit next to the hit/miss counters for observability.
#ifndef GRECA_API_SNAPSHOT_H_
#define GRECA_API_SNAPSHOT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "affinity/affinity_source.h"
#include "common/types.h"
#include "dataset/ratings.h"
#include "dataset/ratings_overlay.h"
#include "index/preference_index.h"
#include "topk/sorted_list.h"

namespace greca {

/// Memoized (group, period) → materialized periodic-affinity pair list.
/// Internally synchronized; shared by every snapshot generation bound to
/// the same AffinitySource. Entries are immutable and pointer-stable.
class PeriodListCache {
 public:
  /// Default residency cap: generous for real batch workloads (which repeat
  /// a few hundred groups × a handful of periods) while bounding adversarial
  /// group churn to a few MB of pair lists.
  static constexpr std::size_t kDefaultMaxEntries = 8'192;

  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit PeriodListCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// The cached list for (group, p), materialized through `source` on first
  /// use. The group is significant in ORDER (lists are keyed by local pair
  /// index); the validated Query path always presents a canonical order.
  /// The returned shared_ptr keeps the list alive across eviction — problem
  /// assembly pins it for the problem's lifetime.
  std::shared_ptr<const SortedList> GetShared(std::span<const UserId> group,
                                              PeriodId p,
                                              const AffinitySource& source);

  /// Reference-returning convenience for tests and single-threaded callers:
  /// the reference stays valid only while the entry is resident (or while a
  /// GetShared copy pins it), so code that can churn past max_entries()
  /// between materialization and last use must hold GetShared instead.
  const SortedList& Get(std::span<const UserId> group, PeriodId p,
                        const AffinitySource& source) {
    return *GetShared(group, p, source);
  }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by the LRU cap (0 while the working set fits).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t size() const;
  std::size_t MemoryBytes() const;

 private:
  struct Key {
    std::vector<UserId> group;
    PeriodId period = 0;
  };
  /// Allocation-free probe key over a caller-owned span.
  struct KeyView {
    std::span<const UserId> group;
    PeriodId period = 0;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t Mix(std::span<const UserId> group, PeriodId period) {
      // FNV-1a over the member ids and the period.
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      for (const UserId u : group) mix(u);
      mix(0xABCDull);
      mix(period);
      return static_cast<std::size_t>(h);
    }
    std::size_t operator()(const Key& k) const {
      return Mix(k.group, k.period);
    }
    std::size_t operator()(const KeyView& k) const {
      return Mix(k.group, k.period);
    }
  };
  struct KeyEqual {
    using is_transparent = void;
    static bool Eq(std::span<const UserId> a, PeriodId pa,
                   std::span<const UserId> b, PeriodId pb) {
      return pa == pb && std::ranges::equal(a, b);
    }
    bool operator()(const Key& a, const Key& b) const {
      return Eq(a.group, a.period, b.group, b.period);
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return Eq(a.group, a.period, b.group, b.period);
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return Eq(a.group, a.period, b.group, b.period);
    }
  };

  /// One resident list plus its recency stamp. shared_ptr values keep list
  /// addresses stable across rehashes AND alive across eviction for holders
  /// of a GetShared copy; lists are built outside the lock (a lost insert
  /// race discards the duplicate build).
  struct Entry {
    std::shared_ptr<const SortedList> list;
    std::uint64_t last_used = 0;
  };

  /// Drops least-recently-used entries until size() <= max_entries_.
  /// Requires mu_ held. O(size) per eviction — evictions only happen on
  /// misses, which already pay a full list materialization.
  void EvictIfNeededLocked();

  const std::size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash, KeyEqual> cache_;
  std::uint64_t use_clock_ = 0;  // guarded by mu_
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

class Snapshot {
 public:
  /// All parts but `cache` must be non-null; the snapshot shares their
  /// ownership (the overlay's base may alias caller-owned storage on the
  /// initial generation — see GroupRecommender construction). `cache` is
  /// the period-list cache to share — pass the previous generation's cache
  /// when the affinity binding is unchanged (rating updates, delta-log
  /// compactions), null to start cold (construction, affinity swaps).
  Snapshot(std::uint64_t generation,
           std::shared_ptr<const RatingsOverlay> ratings,
           std::shared_ptr<const std::vector<std::vector<Score>>> predictions,
           std::shared_ptr<const PreferenceIndex> index,
           std::shared_ptr<const AffinitySource> affinity,
           std::shared_ptr<PeriodListCache> cache = nullptr);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Monotonically increasing publish id; 1 is the construction-time state.
  std::uint64_t generation() const { return generation_; }

  const PreferenceIndex& index() const { return *index_; }
  const AffinitySource& affinity() const { return *affinity_; }
  /// The study participants' own ratings as of this generation: the
  /// immutable base plus the live per-user delta log, merged on read
  /// (tombstone source for the group-rated exclusion). Use
  /// ratings().base() for the base alone.
  const RatingsOverlay& ratings() const { return *ratings_; }
  /// CF-predicted ratings (universe scale) per study participant.
  std::span<const Score> predictions(UserId study_user) const {
    return (*predictions_)[study_user];
  }
  std::size_t num_users() const { return predictions_->size(); }

  /// Shared handles (what the next generation's builder reuses for the
  /// untouched parts).
  const std::shared_ptr<const RatingsOverlay>& ratings_ptr() const {
    return ratings_;
  }
  const std::shared_ptr<const std::vector<std::vector<Score>>>&
  predictions_ptr() const {
    return predictions_;
  }
  const std::shared_ptr<const PreferenceIndex>& index_ptr() const {
    return index_;
  }
  const std::shared_ptr<const AffinitySource>& affinity_ptr() const {
    return affinity_;
  }
  const std::shared_ptr<PeriodListCache>& period_cache_ptr() const {
    return cache_;
  }

  /// The materialized periodic-affinity list of `group` (ordered; local pair
  /// key order, see LocalPairIndex) at period `p`, served from the shared
  /// PeriodListCache. Thread-safe; the returned list is immutable and valid
  /// while it stays resident in the bounded cache (or while a
  /// PeriodListShared copy pins it) — hot-path consumers pin via
  /// PeriodListShared, tests may use this convenience.
  const SortedList& PeriodList(std::span<const UserId> group,
                               PeriodId p) const {
    return cache_->Get(group, p, *affinity_);
  }

  /// Ownership-sharing variant: the returned list stays valid even if the
  /// cache evicts it (problem assembly pins these for the problem lifetime).
  std::shared_ptr<const SortedList> PeriodListShared(
      std::span<const UserId> group, PeriodId p) const {
    return cache_->GetShared(group, p, *affinity_);
  }

  /// Cache observability (counters are cache-lifetime, i.e. shared across
  /// the rating-update generations bound to the same affinity source).
  /// hits + misses == PeriodList() calls.
  std::uint64_t period_cache_hits() const { return cache_->hits(); }
  std::uint64_t period_cache_misses() const { return cache_->misses(); }
  /// Entries the bounded cache has dropped (LRU; 0 while the working set
  /// fits max_entries).
  std::uint64_t period_cache_evictions() const { return cache_->evictions(); }
  /// Number of distinct (group, period) lists currently materialized.
  std::size_t period_cache_size() const { return cache_->size(); }
  /// Resident bytes of the cached period lists (excludes the shared index).
  std::size_t PeriodCacheMemoryBytes() const { return cache_->MemoryBytes(); }

 private:
  const std::uint64_t generation_;
  const std::shared_ptr<const RatingsOverlay> ratings_;
  const std::shared_ptr<const std::vector<std::vector<Score>>> predictions_;
  const std::shared_ptr<const PreferenceIndex> index_;
  const std::shared_ptr<const AffinitySource> affinity_;
  const std::shared_ptr<PeriodListCache> cache_;  // never null
};

}  // namespace greca

#endif  // GRECA_API_SNAPSHOT_H_
