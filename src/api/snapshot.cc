#include "api/snapshot.h"

#include <cassert>
#include <utility>

namespace greca {

void PeriodListCache::EvictIfNeededLocked() {
  while (max_entries_ > 0 && cache_.size() > max_entries_) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    cache_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const SortedList> PeriodListCache::GetShared(
    std::span<const UserId> group, PeriodId p, const AffinitySource& source) {
  const KeyView probe{group, p};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(probe);  // heterogeneous: no key allocation
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_used = ++use_clock_;
      return it->second.list;
    }
  }
  // Materialize outside the lock so a slow build never stalls other readers'
  // cache hits; concurrent builders of the same key race benignly (the loser
  // drops its copy).
  auto list = std::make_shared<SortedList>();
  std::vector<ListEntry> scratch;
  source.MaterializePeriodListInto(group, p, scratch, *list);
  Key key{std::vector<UserId>(group.begin(), group.end()), p};
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = cache_.try_emplace(std::move(key));
  if (inserted) {
    it->second.list = std::move(list);
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  it->second.last_used = ++use_clock_;
  std::shared_ptr<const SortedList> result = it->second.list;
  // Evict AFTER grabbing the result: even a cap of 1 under heavy churn hands
  // every caller a live list (the shared_ptr outlives residency).
  EvictIfNeededLocked();
  return result;
}

std::size_t PeriodListCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::size_t PeriodListCache::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [key, entry] : cache_) {
    bytes += key.group.size() * sizeof(UserId) + sizeof(Key) + sizeof(Entry);
    bytes += sizeof(SortedList) + entry.list->size() * sizeof(ListEntry) +
             entry.list->key_space() * sizeof(std::uint32_t);
  }
  return bytes;
}

Snapshot::Snapshot(
    std::uint64_t generation,
    std::shared_ptr<const RatingsOverlay> ratings,
    std::shared_ptr<const std::vector<std::vector<Score>>> predictions,
    std::shared_ptr<const PreferenceIndex> index,
    std::shared_ptr<const AffinitySource> affinity,
    std::shared_ptr<PeriodListCache> cache)
    : generation_(generation),
      ratings_(std::move(ratings)),
      predictions_(std::move(predictions)),
      index_(std::move(index)),
      affinity_(std::move(affinity)),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<PeriodListCache>()) {
  assert(ratings_ != nullptr);
  assert(predictions_ != nullptr);
  assert(index_ != nullptr);
  assert(affinity_ != nullptr);
}

}  // namespace greca
