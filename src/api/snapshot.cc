#include "api/snapshot.h"

#include <cassert>
#include <utility>

namespace greca {

const SortedList& PeriodListCache::Get(std::span<const UserId> group,
                                       PeriodId p,
                                       const AffinitySource& source) {
  const KeyView probe{group, p};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(probe);  // heterogeneous: no key allocation
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *it->second;
    }
  }
  // Materialize outside the lock so a slow build never stalls other readers'
  // cache hits; concurrent builders of the same key race benignly (the loser
  // drops its copy).
  auto list = std::make_unique<SortedList>();
  std::vector<ListEntry> scratch;
  source.MaterializePeriodListInto(group, p, scratch, *list);
  Key key{std::vector<UserId>(group.begin(), group.end()), p};
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      cache_.try_emplace(std::move(key), std::move(list));
  (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  return *it->second;
}

std::size_t PeriodListCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::size_t PeriodListCache::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [key, list] : cache_) {
    bytes += key.group.size() * sizeof(UserId) + sizeof(Key);
    bytes += sizeof(SortedList) + list->size() * sizeof(ListEntry) +
             list->key_space() * sizeof(std::uint32_t);
  }
  return bytes;
}

Snapshot::Snapshot(
    std::uint64_t generation,
    std::shared_ptr<const RatingsOverlay> ratings,
    std::shared_ptr<const std::vector<std::vector<Score>>> predictions,
    std::shared_ptr<const PreferenceIndex> index,
    std::shared_ptr<const AffinitySource> affinity,
    std::shared_ptr<PeriodListCache> cache)
    : generation_(generation),
      ratings_(std::move(ratings)),
      predictions_(std::move(predictions)),
      index_(std::move(index)),
      affinity_(std::move(affinity)),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<PeriodListCache>()) {
  assert(ratings_ != nullptr);
  assert(predictions_ != nullptr);
  assert(index_ != nullptr);
  assert(affinity_ != nullptr);
}

}  // namespace greca
