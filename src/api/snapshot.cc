#include "api/snapshot.h"

#include <cassert>
#include <utility>

namespace greca {

std::shared_ptr<const SortedList> PeriodListCache::GetShared(
    std::span<const UserId> group, PeriodId p, const AffinitySource& source) {
  return cache_.GetOrBuild(
      group, static_cast<std::uint64_t>(p),
      [&]() -> std::shared_ptr<const SortedList> {
        // Materialized outside the cache lock (see BoundedGroupCache);
        // concurrent builders of the same key race benignly (the loser
        // drops its copy).
        auto list = std::make_shared<SortedList>();
        std::vector<ListEntry> scratch;
        source.MaterializePeriodListInto(group, p, scratch, *list);
        return list;
      });
}

std::size_t PeriodListCache::MemoryBytes() const {
  return cache_.MemoryBytes([](const SortedList& list) {
    // SoA rows: 4-byte keys + 8-byte scores per entry, 4-byte positions per
    // key-space slot.
    return sizeof(SortedList) +
           list.size() * (sizeof(ListKey) + sizeof(Score)) +
           list.key_space() * sizeof(std::uint32_t);
  });
}

Snapshot::Snapshot(
    std::uint64_t generation,
    std::shared_ptr<const RatingsOverlay> ratings,
    std::shared_ptr<const std::vector<std::vector<Score>>> predictions,
    std::shared_ptr<const PreferenceIndex> index,
    std::shared_ptr<const AffinitySource> affinity,
    std::shared_ptr<PeriodListCache> cache,
    std::size_t tombstone_cache_max_entries)
    : generation_(generation),
      ratings_(std::move(ratings)),
      predictions_(std::move(predictions)),
      index_(std::move(index)),
      affinity_(std::move(affinity)),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<PeriodListCache>()),
      tombstone_cache_(
          std::make_shared<TombstoneCache>(tombstone_cache_max_entries)) {
  assert(ratings_ != nullptr);
  assert(predictions_ != nullptr);
  assert(index_ != nullptr);
  assert(affinity_ != nullptr);
}

}  // namespace greca
