// Fluent construction of validated queries.
//
// QueryBuilder front-loads validation: Build() checks the group, k, the
// candidate pool and the evaluation period against the engine's datasets and
// returns either a ready-to-run Query or the first greca::Status error —
// before any per-query work happens. A query that Build() returned OK
// cannot fail validation against the snapshot generation Build() validated
// on. Execution pins its own (possibly newer) snapshot, so an intervening
// UpdateAffinitySource to a source covering fewer periods can still fail a
// time-aware query at Recommend time — callers serving across live affinity
// swaps should pin engine.snapshot() and pass it to the snapshot-explicit
// overloads alongside the built query.
//
// Duplicate members: a repeated UserId in a group would double-weight that
// member in every consensus function (their preference list would be counted
// twice), so duplicates are never executed. The builder DEDUPES — Build()
// keeps the first occurrence of each member, preserving order — because
// callers assembling groups from event streams or invitation lists hit
// benign repeats constantly. Hand-built Query structs that bypass the
// builder are REJECTED instead (ValidateQuery returns kInvalidArgument):
// code constructing raw groups is expected to know its membership.
//
//   const Result<Query> query = QueryBuilder(engine)
//                                   .Members({4, 17, 29})
//                                   .TopK(5)
//                                   .Consensus(ConsensusSpec::AveragePreference())
//                                   .AtLastPeriod()
//                                   .Build();
//   if (!query.ok()) { /* bad k / empty group / unknown user / bad period */ }
#ifndef GRECA_API_QUERY_BUILDER_H_
#define GRECA_API_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "api/engine.h"

namespace greca {

class QueryBuilder {
 public:
  explicit QueryBuilder(const Engine& engine)
      : QueryBuilder(engine.recommender()) {}
  explicit QueryBuilder(const GroupRecommender& recommender)
      : recommender_(&recommender) {}

  /// Replaces the group (study participant ids). Repeats are allowed here;
  /// Build() dedupes to first occurrences (see file comment).
  QueryBuilder& Members(std::vector<UserId> members);
  /// Appends one member (repeats allowed; deduped at Build()).
  QueryBuilder& AddMember(UserId user);
  QueryBuilder& TopK(std::size_t k);
  QueryBuilder& Model(const AffinityModelSpec& model);
  QueryBuilder& Consensus(const ConsensusSpec& consensus);
  /// Evaluates at an explicit period (must be in range at Build() time).
  QueryBuilder& AtPeriod(PeriodId period);
  /// Evaluates at the last study period (the default).
  QueryBuilder& AtLastPeriod();
  /// Selects a solver by legacy enum alias. Clears any solver id a previous
  /// Using(std::string) set — last call wins, like every builder setter.
  QueryBuilder& Using(Algorithm algorithm);
  /// Selects a registered solver by id (solver/solver_registry.h). Unknown
  /// ids fail at Build() with kInvalidArgument.
  QueryBuilder& Using(std::string solver_id);
  /// Per-member consensus weighting (kUniform default; kInfluence derives
  /// weights from social-graph centrality through the bound AffinitySource).
  QueryBuilder& Weighting(MemberWeighting weighting);
  QueryBuilder& Termination(TerminationPolicy policy);
  QueryBuilder& CandidatePool(std::size_t num_items);

  /// Dedupes the group (first occurrence wins, order preserved), validates
  /// against the engine's datasets and returns the query or the first
  /// validation error.
  Result<Query> Build() const;

 private:
  const GroupRecommender* recommender_;
  Query query_;
};

}  // namespace greca

#endif  // GRECA_API_QUERY_BUILDER_H_
