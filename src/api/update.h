// The mutation surface of the snapshot-centric serving API.
//
// The paper's GRECA assumes a frozen ratings matrix and a frozen affinity
// study; a serving system does not get that luxury — members keep rating
// items while queries are in flight. Updates enter the engine as batches of
// RatingEvents through Engine::ApplyUpdates (or
// GroupRecommender::ApplyRatingUpdates); the writer rebuilds the affected
// per-user CF predictions and index rows OFF the serving path and publishes
// the result as a brand-new immutable Snapshot (snapshot.h). Queries that
// pinned the previous snapshot keep it until they finish — reads never block
// on writes, writes never corrupt reads.
#ifndef GRECA_API_UPDATE_H_
#define GRECA_API_UPDATE_H_

#include <cstdint>

#include "common/types.h"

namespace greca {

/// One live rating by a study participant on a universe item. Matches the
/// dataset semantics of RatingsDataset::FromRecords: a (user, item) pair
/// keeps its latest-timestamped rating, so an event older than the stored
/// rating of the same pair is ignored.
struct RatingEvent {
  /// Study participant id (NOT a universe user id).
  UserId user = kInvalidUser;
  /// Universe item id.
  ItemId item = kInvalidItem;
  /// Rating on the universe's star scale.
  Score rating = 0.0;
  Timestamp timestamp = 0;

  friend bool operator==(const RatingEvent&, const RatingEvent&) = default;
};

/// What one ApplyUpdates call did — filled for observability and benches.
struct UpdateReport {
  /// Generation id of the snapshot the call published.
  std::uint64_t published_generation = 0;
  /// Distinct study users whose CF predictions + index rows were rebuilt.
  std::size_t users_rebuilt = 0;
  /// Events applied (== the input batch size once validation passed).
  std::size_t events_applied = 0;
};

}  // namespace greca

#endif  // GRECA_API_UPDATE_H_
