// The mutation surface of the snapshot-centric serving API.
//
// The paper's GRECA assumes a frozen ratings matrix and a frozen affinity
// study; a serving system does not get that luxury — members keep rating
// items while queries are in flight. Updates enter the engine as batches of
// RatingEvents through Engine::ApplyUpdates (or
// GroupRecommender::ApplyRatingUpdates); the writer folds the batch into the
// per-user delta log (dataset/ratings_overlay.h — O(delta), never a full
// re-fold), rebuilds the affected per-user CF predictions and index rows OFF
// the serving path and publishes the result as a brand-new immutable
// Snapshot (snapshot.h). Queries that pinned the previous snapshot keep it
// until they finish — reads never block on writes, writes never corrupt
// reads. Batches that arrive while a publish is in flight coalesce into ONE
// next generation (group commit): every caller still blocks until its events
// are live, but under write pressure the expensive rebuild is paid once per
// coalesced round, not once per caller.
#ifndef GRECA_API_UPDATE_H_
#define GRECA_API_UPDATE_H_

#include <cstdint>

#include "common/types.h"

namespace greca {

/// One live rating by a study participant on a universe item. Matches the
/// dataset semantics of RatingsDataset::FromRecords: a (user, item) pair
/// keeps its latest-(timestamp, rating) rating, so an event no newer than
/// the stored rating of the same pair — exact redelivered duplicates
/// included — is ignored (and counted as stale).
struct RatingEvent {
  /// Study participant id (NOT a universe user id).
  UserId user = kInvalidUser;
  /// Universe item id.
  ItemId item = kInvalidItem;
  /// Rating on the universe's star scale.
  Score rating = 0.0;
  Timestamp timestamp = 0;

  friend bool operator==(const RatingEvent&, const RatingEvent&) = default;
};

/// What one ApplyUpdates call did — filled for observability and benches.
struct UpdateReport {
  /// Generation id of the snapshot that carries this call's events. When the
  /// call published nothing (empty batch, or every event stale), this is the
  /// CURRENT generation at return — never 0 after a successful call, so it
  /// is always distinguishable from "never published".
  std::uint64_t published_generation = 0;
  /// Distinct study users whose CF predictions + index rows were rebuilt by
  /// the publish that carried this call's events. Under group commit this is
  /// the coalesced round's union, shared by every coalesced caller.
  std::size_t users_rebuilt = 0;
  /// Events from THIS batch that took effect (new (user, item) pair, or won
  /// latest-(timestamp, rating)-wins against the stored rating).
  std::size_t events_applied = 0;
  /// Events from THIS batch that changed nothing: no newer than the stored
  /// rating for the same (user, item) — exact duplicates included.
  /// events_applied + events_ignored_stale == batch size once validation
  /// passed.
  std::size_t events_ignored_stale = 0;
  /// ApplyUpdates calls whose events this call's publish carried (>= 1; > 1
  /// means group commit coalesced concurrent callers into one generation).
  std::size_t batches_coalesced = 0;
  /// True when this publish folded the delta log back into a fresh immutable
  /// base (see RecommenderOptions::compact_every_n_publishes /
  /// compact_delta_fraction).
  bool compacted = false;
  /// Delta-log entries resident after this call (0 right after compaction).
  std::size_t delta_log_ratings = 0;
};

}  // namespace greca

#endif  // GRECA_API_UPDATE_H_
