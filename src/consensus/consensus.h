// Group consensus functions (paper §2.3).
//
// gpref(G, i, p): Average Preference or Least-Misery over the members'
//                 affinity-aware preferences pref(u, i, G, p).
// dis(G, i, p):   Average pair-wise disagreement or disagreement variance.
// F(G, i, p) = w1·gpref + w2·(1 − dis),  w1 + w2 = 1.
//
// All inputs are on the normalized [0, 1] preference scale, so F ∈ [0, 1].
// Every function also propagates score intervals; the interval versions are
// sound (exact ∈ [lb, ub]) which is what GRECA's early termination requires.
#ifndef GRECA_CONSENSUS_CONSENSUS_H_
#define GRECA_CONSENSUS_CONSENSUS_H_

#include <span>
#include <string>

#include "topk/interval.h"

namespace greca {

enum class GroupAggregator {
  kAverage,      // AP
  kLeastMisery,  // MO
};

enum class DisagreementKind {
  kNone,
  kPairwise,  // average |pref_u − pref_v| over member pairs
  kVariance,  // population variance of member preferences
};

struct ConsensusSpec {
  GroupAggregator aggregator = GroupAggregator::kAverage;
  DisagreementKind disagreement = DisagreementKind::kNone;
  double w1 = 1.0;  ///< weight of gpref
  double w2 = 0.0;  ///< weight of (1 − dis); w1 + w2 must equal 1
  /// Pairwise disagreement is measured on the original star scale: the
  /// paper's walk-through computes scores on raw ratings ("by ignoring
  /// normalization", §3.2), so a one-star prediction gap counts as 1.0 of
  /// disagreement rather than 0.2. With preferences normalized to [0, 1]
  /// this means dis = scale·|Δapref|; the 1..5 star scale gives 4... the
  /// conventional value 5 maps the full preference range onto [0, 5].
  double disagreement_scale = 5.0;

  /// AP — average of member preferences.
  static ConsensusSpec AveragePreference() { return {}; }
  /// MO — least misery (minimum member preference).
  static ConsensusSpec LeastMisery() {
    return {.aggregator = GroupAggregator::kLeastMisery};
  }
  /// PD — average preference combined with pair-wise disagreement.
  /// The paper's PD V1 uses w1 = 0.8, PD V2 uses w1 = 0.2 (§4.2.5).
  static ConsensusSpec PairwiseDisagreement(double w1_weight = 0.8) {
    return {.aggregator = GroupAggregator::kAverage,
            .disagreement = DisagreementKind::kPairwise,
            .w1 = w1_weight,
            .w2 = 1.0 - w1_weight};
  }
  /// Variance-based disagreement variant.
  static ConsensusSpec VarianceDisagreement(double w1_weight = 0.8) {
    return {.aggregator = GroupAggregator::kAverage,
            .disagreement = DisagreementKind::kVariance,
            .w1 = w1_weight,
            .w2 = 1.0 - w1_weight};
  }

  std::string Name() const;

  friend bool operator==(const ConsensusSpec&, const ConsensusSpec&) = default;
};

/// Per-member consensus weights (influence-aware aggregation). `member`
/// holds one weight per group member, normalized to sum 1; `pair` holds one
/// weight per local pair (LocalPairIndex order), normalized to sum 1, used
/// for pairwise disagreement. Both spans EMPTY means uniform weighting —
/// every weighted function below delegates to its unweighted twin in that
/// case, so the uniform path stays bit-identical to the historical code.
struct ConsensusWeights {
  std::span<const double> member;
  std::span<const double> pair;

  bool uniform() const { return member.empty(); }
};

/// gpref over exact member preferences. `prefs` must be non-empty.
double GroupPreferenceScore(GroupAggregator aggregator,
                            std::span<const double> prefs);
/// Weighted gpref: Σ w_u·pref_u for kAverage (weights sum to 1); least
/// misery ignores weights (the minimum is the minimum for any positive
/// weighting).
double GroupPreferenceScore(GroupAggregator aggregator,
                            std::span<const double> prefs,
                            const ConsensusWeights& weights);

/// dis over exact member preferences; 0 for kNone or singleton groups.
double DisagreementScore(DisagreementKind kind, std::span<const double> prefs);
/// Weighted dis: pairwise uses the per-pair weights (Σ pw_q·|Δpref_q|);
/// variance uses the weighted mean and weighted second moment.
double DisagreementScore(DisagreementKind kind, std::span<const double> prefs,
                         const ConsensusWeights& weights);

/// F(G, i, p) = w1·gpref + w2·(1 − dis).
double ConsensusScore(const ConsensusSpec& spec, std::span<const double> prefs);
double ConsensusScore(const ConsensusSpec& spec, std::span<const double> prefs,
                      const ConsensusWeights& weights);

/// Interval versions (sound bound propagation).
Interval GroupPreferenceInterval(GroupAggregator aggregator,
                                 std::span<const Interval> prefs);
Interval GroupPreferenceInterval(GroupAggregator aggregator,
                                 std::span<const Interval> prefs,
                                 const ConsensusWeights& weights);
Interval DisagreementInterval(DisagreementKind kind,
                              std::span<const Interval> prefs);
/// Weighted intervals stay sound: the weighted average of intervals is a
/// convex combination (weights >= 0, sum 1), and the weighted variance of
/// points inside an envelope of range R is still bounded by (R/2)²
/// (Bhatia–Davis: σ²_w <= (M−μ_w)(μ_w−m) <= (R/2)² for any convex weights).
Interval DisagreementInterval(DisagreementKind kind,
                              std::span<const Interval> prefs,
                              const ConsensusWeights& weights);
Interval ConsensusInterval(const ConsensusSpec& spec,
                           std::span<const Interval> prefs);
Interval ConsensusInterval(const ConsensusSpec& spec,
                           std::span<const Interval> prefs,
                           const ConsensusWeights& weights);

/// List-decomposable pairwise disagreement (Lemma 1's "pair-wise
/// disagreement lists"): the paper's index transforms group disagreement
/// into per-pair components that live in their own sorted lists. An
/// *agreement* value ag_q(i) = 1 − |apref_u(i) − apref_v(i)| ∈ [0, 1] is
/// stored per pair q so that all list entries are descending-is-better:
///
///   F(G, i, p) = w1·gpref(prefs) + w2·mean_q ag_q(i)
///
/// (equivalently w2·(1 − dis) with dis = mean pairwise |apref difference|).
/// Only used when spec.disagreement == kPairwise; other kinds ignore
/// `agreements`.
double ConsensusScoreWithAgreements(const ConsensusSpec& spec,
                                    std::span<const double> prefs,
                                    std::span<const double> agreements);
Interval ConsensusIntervalWithAgreements(
    const ConsensusSpec& spec, std::span<const Interval> prefs,
    std::span<const Interval> agreements);
/// Weighted agreement aggregation: when `agreements` is in the per-pair
/// layout (one entry per local pair) the pair weights apply directly; a
/// single pre-aggregated group list must already carry the weighted mean
/// (BuildGroupAgreementListInto's pair_weights parameter) and is consumed
/// as-is.
double ConsensusScoreWithAgreements(const ConsensusSpec& spec,
                                    std::span<const double> prefs,
                                    std::span<const double> agreements,
                                    const ConsensusWeights& weights);
Interval ConsensusIntervalWithAgreements(const ConsensusSpec& spec,
                                         std::span<const Interval> prefs,
                                         std::span<const Interval> agreements,
                                         const ConsensusWeights& weights);

/// ag = 1 − scale·|a − b| for apref values a, b on the [0, 1] scale
/// (see ConsensusSpec::disagreement_scale). In [1 − scale, 1].
double PairAgreement(double apref_a, double apref_b, double scale);

}  // namespace greca

#endif  // GRECA_CONSENSUS_CONSENSUS_H_
