#include "consensus/consensus.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace greca {

std::string ConsensusSpec::Name() const {
  if (disagreement == DisagreementKind::kNone) {
    return aggregator == GroupAggregator::kAverage ? "AP" : "MO";
  }
  const std::string base =
      disagreement == DisagreementKind::kPairwise ? "PD" : "VD";
  return base + "(w1=" + FormatDouble(w1, 1) + ")";
}

double GroupPreferenceScore(GroupAggregator aggregator,
                            std::span<const double> prefs) {
  assert(!prefs.empty());
  if (aggregator == GroupAggregator::kLeastMisery) {
    return *std::min_element(prefs.begin(), prefs.end());
  }
  double sum = 0.0;
  for (const double p : prefs) sum += p;
  return sum / static_cast<double>(prefs.size());
}

double DisagreementScore(DisagreementKind kind,
                         std::span<const double> prefs) {
  const std::size_t g = prefs.size();
  if (kind == DisagreementKind::kNone || g < 2) return 0.0;
  if (kind == DisagreementKind::kPairwise) {
    double sum = 0.0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        sum += std::abs(prefs[a] - prefs[b]);
      }
    }
    return 2.0 * sum / (static_cast<double>(g) * static_cast<double>(g - 1));
  }
  // Variance.
  double mean = 0.0;
  for (const double p : prefs) mean += p;
  mean /= static_cast<double>(g);
  double var = 0.0;
  for (const double p : prefs) var += (p - mean) * (p - mean);
  return var / static_cast<double>(g);
}

double ConsensusScore(const ConsensusSpec& spec,
                      std::span<const double> prefs) {
  const double gpref = GroupPreferenceScore(spec.aggregator, prefs);
  if (spec.disagreement == DisagreementKind::kNone) {
    return spec.w1 * gpref + spec.w2;  // dis = 0
  }
  const double dis = DisagreementScore(spec.disagreement, prefs);
  return spec.w1 * gpref + spec.w2 * (1.0 - dis);
}

Interval GroupPreferenceInterval(GroupAggregator aggregator,
                                 std::span<const Interval> prefs) {
  assert(!prefs.empty());
  if (aggregator == GroupAggregator::kLeastMisery) {
    Interval result{1.0, 1.0};
    for (const Interval& p : prefs) result = Min(result, p);
    return result;
  }
  Interval sum{0.0, 0.0};
  for (const Interval& p : prefs) sum = sum + p;
  const double inv = 1.0 / static_cast<double>(prefs.size());
  return inv * sum;
}

Interval DisagreementInterval(DisagreementKind kind,
                              std::span<const Interval> prefs) {
  const std::size_t g = prefs.size();
  if (kind == DisagreementKind::kNone || g < 2) return Interval::Exact(0.0);
  if (kind == DisagreementKind::kPairwise) {
    Interval sum{0.0, 0.0};
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        sum = sum + AbsDifference(prefs[a], prefs[b]);
      }
    }
    const double norm =
        2.0 / (static_cast<double>(g) * static_cast<double>(g - 1));
    return norm * sum;
  }
  // Variance bounds. Lower bound: 0 is always sound (and tight whenever all
  // member intervals share a point). Upper bound: all values lie within the
  // global envelope [min lb, max ub]; a set of points inside a range R has
  // variance at most (R/2)^2.
  double lo = 1.0, hi = 0.0;
  for (const Interval& p : prefs) {
    lo = std::min(lo, p.lb);
    hi = std::max(hi, p.ub);
  }
  const double half_range = std::max(0.0, (hi - lo) / 2.0);
  return {0.0, half_range * half_range};
}

double PairAgreement(double apref_a, double apref_b, double scale) {
  return 1.0 - scale * std::abs(apref_a - apref_b);
}

double ConsensusScoreWithAgreements(const ConsensusSpec& spec,
                                    std::span<const double> prefs,
                                    std::span<const double> agreements) {
  if (spec.disagreement != DisagreementKind::kPairwise) {
    return ConsensusScore(spec, prefs);
  }
  const double gpref = GroupPreferenceScore(spec.aggregator, prefs);
  double agreement = 1.0;  // singleton groups have no disagreement
  if (!agreements.empty()) {
    agreement = 0.0;
    for (const double a : agreements) agreement += a;
    agreement /= static_cast<double>(agreements.size());
  }
  return spec.w1 * gpref + spec.w2 * agreement;
}

Interval ConsensusIntervalWithAgreements(
    const ConsensusSpec& spec, std::span<const Interval> prefs,
    std::span<const Interval> agreements) {
  if (spec.disagreement != DisagreementKind::kPairwise) {
    return ConsensusInterval(spec, prefs);
  }
  const Interval gpref = GroupPreferenceInterval(spec.aggregator, prefs);
  Interval agreement{1.0, 1.0};
  if (!agreements.empty()) {
    agreement = {0.0, 0.0};
    for (const Interval& a : agreements) agreement = agreement + a;
    const double inv = 1.0 / static_cast<double>(agreements.size());
    agreement = inv * agreement;
  }
  return {spec.w1 * gpref.lb + spec.w2 * agreement.lb,
          spec.w1 * gpref.ub + spec.w2 * agreement.ub};
}

Interval ConsensusInterval(const ConsensusSpec& spec,
                           std::span<const Interval> prefs) {
  const Interval gpref = GroupPreferenceInterval(spec.aggregator, prefs);
  if (spec.disagreement == DisagreementKind::kNone) {
    return {spec.w1 * gpref.lb + spec.w2, spec.w1 * gpref.ub + spec.w2};
  }
  const Interval dis = DisagreementInterval(spec.disagreement, prefs);
  return {spec.w1 * gpref.lb + spec.w2 * (1.0 - dis.ub),
          spec.w1 * gpref.ub + spec.w2 * (1.0 - dis.lb)};
}

// --- Weighted variants. Every function delegates to its unweighted twin on
// uniform weights, so the default path stays bit-identical to the historical
// code; least misery additionally ignores weights outright (the minimum is
// the minimum under any positive weighting).

double GroupPreferenceScore(GroupAggregator aggregator,
                            std::span<const double> prefs,
                            const ConsensusWeights& weights) {
  if (weights.uniform() || aggregator == GroupAggregator::kLeastMisery) {
    return GroupPreferenceScore(aggregator, prefs);
  }
  assert(weights.member.size() == prefs.size());
  double sum = 0.0;
  for (std::size_t u = 0; u < prefs.size(); ++u) {
    sum += weights.member[u] * prefs[u];
  }
  return sum;  // member weights sum to 1
}

double DisagreementScore(DisagreementKind kind, std::span<const double> prefs,
                         const ConsensusWeights& weights) {
  if (weights.uniform()) return DisagreementScore(kind, prefs);
  const std::size_t g = prefs.size();
  if (kind == DisagreementKind::kNone || g < 2) return 0.0;
  if (kind == DisagreementKind::kPairwise) {
    assert(weights.pair.size() == g * (g - 1) / 2);
    double sum = 0.0;
    std::size_t q = 0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b, ++q) {
        sum += weights.pair[q] * std::abs(prefs[a] - prefs[b]);
      }
    }
    return sum;  // pair weights sum to 1
  }
  // Weighted population variance around the weighted mean.
  assert(weights.member.size() == g);
  double mean = 0.0;
  for (std::size_t u = 0; u < g; ++u) mean += weights.member[u] * prefs[u];
  double var = 0.0;
  for (std::size_t u = 0; u < g; ++u) {
    var += weights.member[u] * (prefs[u] - mean) * (prefs[u] - mean);
  }
  return var;
}

double ConsensusScore(const ConsensusSpec& spec, std::span<const double> prefs,
                      const ConsensusWeights& weights) {
  if (weights.uniform()) return ConsensusScore(spec, prefs);
  const double gpref = GroupPreferenceScore(spec.aggregator, prefs, weights);
  if (spec.disagreement == DisagreementKind::kNone) {
    return spec.w1 * gpref + spec.w2;  // dis = 0
  }
  const double dis = DisagreementScore(spec.disagreement, prefs, weights);
  return spec.w1 * gpref + spec.w2 * (1.0 - dis);
}

Interval GroupPreferenceInterval(GroupAggregator aggregator,
                                 std::span<const Interval> prefs,
                                 const ConsensusWeights& weights) {
  if (weights.uniform() || aggregator == GroupAggregator::kLeastMisery) {
    return GroupPreferenceInterval(aggregator, prefs);
  }
  assert(weights.member.size() == prefs.size());
  Interval sum{0.0, 0.0};
  for (std::size_t u = 0; u < prefs.size(); ++u) {
    sum = sum + weights.member[u] * prefs[u];
  }
  return sum;
}

Interval DisagreementInterval(DisagreementKind kind,
                              std::span<const Interval> prefs,
                              const ConsensusWeights& weights) {
  if (weights.uniform()) return DisagreementInterval(kind, prefs);
  const std::size_t g = prefs.size();
  if (kind == DisagreementKind::kNone || g < 2) return Interval::Exact(0.0);
  if (kind == DisagreementKind::kPairwise) {
    assert(weights.pair.size() == g * (g - 1) / 2);
    Interval sum{0.0, 0.0};
    std::size_t q = 0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b, ++q) {
        sum = sum + weights.pair[q] * AbsDifference(prefs[a], prefs[b]);
      }
    }
    return sum;
  }
  // The unweighted envelope bound is sound for any convex weighting
  // (Bhatia–Davis), so weighted variance reuses it unchanged.
  return DisagreementInterval(kind, prefs);
}

Interval ConsensusInterval(const ConsensusSpec& spec,
                           std::span<const Interval> prefs,
                           const ConsensusWeights& weights) {
  if (weights.uniform()) return ConsensusInterval(spec, prefs);
  const Interval gpref =
      GroupPreferenceInterval(spec.aggregator, prefs, weights);
  if (spec.disagreement == DisagreementKind::kNone) {
    return {spec.w1 * gpref.lb + spec.w2, spec.w1 * gpref.ub + spec.w2};
  }
  const Interval dis = DisagreementInterval(spec.disagreement, prefs, weights);
  return {spec.w1 * gpref.lb + spec.w2 * (1.0 - dis.ub),
          spec.w1 * gpref.ub + spec.w2 * (1.0 - dis.lb)};
}

double ConsensusScoreWithAgreements(const ConsensusSpec& spec,
                                    std::span<const double> prefs,
                                    std::span<const double> agreements,
                                    const ConsensusWeights& weights) {
  if (weights.uniform()) {
    return ConsensusScoreWithAgreements(spec, prefs, agreements);
  }
  if (spec.disagreement != DisagreementKind::kPairwise) {
    return ConsensusScore(spec, prefs, weights);
  }
  const double gpref = GroupPreferenceScore(spec.aggregator, prefs, weights);
  double agreement = 1.0;  // singleton groups have no disagreement
  if (agreements.size() == weights.pair.size() && !agreements.empty()) {
    // Per-pair layout: apply the pair weights directly.
    agreement = 0.0;
    for (std::size_t q = 0; q < agreements.size(); ++q) {
      agreement += weights.pair[q] * agreements[q];
    }
  } else if (!agreements.empty()) {
    // Pre-aggregated group list(s): entries already carry the weighted mean.
    agreement = 0.0;
    for (const double a : agreements) agreement += a;
    agreement /= static_cast<double>(agreements.size());
  }
  return spec.w1 * gpref + spec.w2 * agreement;
}

Interval ConsensusIntervalWithAgreements(const ConsensusSpec& spec,
                                         std::span<const Interval> prefs,
                                         std::span<const Interval> agreements,
                                         const ConsensusWeights& weights) {
  if (weights.uniform()) {
    return ConsensusIntervalWithAgreements(spec, prefs, agreements);
  }
  if (spec.disagreement != DisagreementKind::kPairwise) {
    return ConsensusInterval(spec, prefs, weights);
  }
  const Interval gpref =
      GroupPreferenceInterval(spec.aggregator, prefs, weights);
  Interval agreement{1.0, 1.0};
  if (agreements.size() == weights.pair.size() && !agreements.empty()) {
    agreement = {0.0, 0.0};
    for (std::size_t q = 0; q < agreements.size(); ++q) {
      agreement = agreement + weights.pair[q] * agreements[q];
    }
  } else if (!agreements.empty()) {
    agreement = {0.0, 0.0};
    for (const Interval& a : agreements) agreement = agreement + a;
    const double inv = 1.0 / static_cast<double>(agreements.size());
    agreement = inv * agreement;
  }
  return {spec.w1 * gpref.lb + spec.w2 * agreement.lb,
          spec.w1 * gpref.ub + spec.w2 * agreement.ub};
}

}  // namespace greca
