#include "eval/study_groups.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>

namespace greca {

std::string CharacteristicName(GroupCharacteristic c) {
  switch (c) {
    case GroupCharacteristic::kSim:
      return "Sim";
    case GroupCharacteristic::kDiss:
      return "Diss";
    case GroupCharacteristic::kSmall:
      return "Small";
    case GroupCharacteristic::kLarge:
      return "Large";
    case GroupCharacteristic::kHighAff:
      return "High Aff";
    case GroupCharacteristic::kLowAff:
      return "Low Aff";
  }
  return "?";
}

std::vector<GroupCharacteristic> AllCharacteristics() {
  return {GroupCharacteristic::kSim,   GroupCharacteristic::kDiss,
          GroupCharacteristic::kSmall, GroupCharacteristic::kLarge,
          GroupCharacteristic::kHighAff, GroupCharacteristic::kLowAff};
}

bool HasCharacteristic(const StudyGroupSpec& spec, GroupCharacteristic c) {
  switch (c) {
    case GroupCharacteristic::kSim:
      return spec.similar;
    case GroupCharacteristic::kDiss:
      return !spec.similar;
    case GroupCharacteristic::kSmall:
      return spec.size <= 3;
    case GroupCharacteristic::kLarge:
      return spec.size > 3;
    case GroupCharacteristic::kHighAff:
      return spec.high_affinity;
    case GroupCharacteristic::kLowAff:
      return !spec.high_affinity;
  }
  return false;
}

namespace {

/// Greedy formation with a composite objective: mean pair-wise rating
/// similarity (sign per cohesiveness) plus the weakest/strongest affinity
/// link (sign per affinity class).
Group FormOne(const StudyGroupSpec& spec,
              const std::vector<UserId>& eligible,
              const std::function<double(UserId, UserId)>& sim,
              const std::function<double(UserId, UserId)>& aff) {
  assert(eligible.size() >= spec.size);
  const double cohesion_sign = spec.similar ? 1.0 : -1.0;

  const auto marginal = [&](const Group& group, UserId u) {
    double sim_sum = 0.0;
    double weakest = std::numeric_limits<double>::infinity();
    double strongest = 0.0;
    for (const UserId v : group) {
      sim_sum += sim(u, v);
      weakest = std::min(weakest, aff(u, v));
      strongest = std::max(strongest, aff(u, v));
    }
    const double cohesion =
        cohesion_sign * sim_sum / static_cast<double>(group.size());
    const double affinity = spec.high_affinity ? weakest : -strongest;
    return cohesion + affinity;
  };

  // Best seed pair.
  Group group;
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    for (std::size_t j = i + 1; j < eligible.size(); ++j) {
      const Group single{eligible[i]};
      const double value = marginal(single, eligible[j]);
      if (value > best) {
        best = value;
        group = {eligible[i], eligible[j]};
      }
    }
  }
  while (group.size() < spec.size) {
    double best_gain = -std::numeric_limits<double>::infinity();
    UserId best_user = kInvalidUser;
    for (const UserId u : eligible) {
      if (std::find(group.begin(), group.end(), u) != group.end()) continue;
      const double gain = marginal(group, u);
      if (gain > best_gain) {
        best_gain = gain;
        best_user = u;
      }
    }
    group.push_back(best_user);
  }
  std::sort(group.begin(), group.end());
  return group;
}

}  // namespace

std::vector<StudyGroup> FormStudyGroups(const GroupRecommender& recommender) {
  const FacebookStudy& study = recommender.study();
  const std::size_t n = study.num_participants();

  // Cache the pair-wise signals once.
  std::vector<double> sim_cache(n * n, 0.0);
  std::vector<double> aff_cache(n * n, 0.0);
  const AffinityModelSpec model;  // discrete temporal model
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = static_cast<UserId>(a + 1); b < n; ++b) {
      const double s = recommender.RatingSimilarity(a, b);
      const double f =
          recommender.ModelAffinity(a, b, std::nullopt, model);
      sim_cache[a * n + b] = sim_cache[b * n + a] = s;
      aff_cache[a * n + b] = aff_cache[b * n + a] = f;
    }
  }
  const auto sim = [&](UserId a, UserId b) { return sim_cache[a * n + b]; };
  const auto aff = [&](UserId a, UserId b) { return aff_cache[a * n + b]; };

  std::vector<UserId> rated_similar, rated_dissimilar;
  for (UserId u = 0; u < n; ++u) {
    (study.rated_dissimilar[u] ? rated_dissimilar : rated_similar)
        .push_back(u);
  }

  std::vector<StudyGroup> groups;
  for (const std::size_t size : {std::size_t{3}, std::size_t{6}}) {
    for (const bool similar : {true, false}) {
      for (const bool high_affinity : {true, false}) {
        StudyGroup sg;
        sg.spec = {size, similar, high_affinity};
        const auto& eligible = similar ? rated_similar : rated_dissimilar;
        sg.members = FormOne(sg.spec, eligible, sim, aff);
        for (std::size_t i = 0; i < sg.members.size(); ++i) {
          for (std::size_t j = i + 1; j < sg.members.size(); ++j) {
            const double s = sim(sg.members[i], sg.members[j]);
            const double f = aff(sg.members[i], sg.members[j]);
            sg.sum_similarity += s;
            sg.min_affinity =
                (i == 0 && j == 1) ? f : std::min(sg.min_affinity, f);
            sg.max_affinity = std::max(sg.max_affinity, f);
          }
        }
        groups.push_back(std::move(sg));
      }
    }
  }
  return groups;
}

double CharacteristicMean(
    const std::vector<StudyGroup>& groups, GroupCharacteristic c,
    const std::function<double(const StudyGroup&)>& value) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const StudyGroup& g : groups) {
    if (!HasCharacteristic(g.spec, c)) continue;
    sum += value(g);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace greca
