#include "eval/experiments.h"

#include <algorithm>
#include <cassert>

#include "api/query_builder.h"
#include "common/distributions.h"
#include "common/stats.h"
#include "solver/solver_registry.h"

namespace greca {

RecommendationVariant RecommendationVariant::Default() {
  return {"default (affinity-aware, discrete, AP)", AffinityModelSpec::Default(),
          ConsensusSpec::AveragePreference()};
}

RecommendationVariant RecommendationVariant::AffinityAgnostic() {
  return {"affinity-agnostic", AffinityModelSpec::AffinityAgnostic(),
          ConsensusSpec::AveragePreference()};
}

RecommendationVariant RecommendationVariant::TimeAgnostic() {
  return {"time-agnostic", AffinityModelSpec::TimeAgnostic(),
          ConsensusSpec::AveragePreference()};
}

RecommendationVariant RecommendationVariant::ContinuousModel() {
  return {"continuous time model", AffinityModelSpec::Continuous(),
          ConsensusSpec::AveragePreference()};
}

RecommendationVariant RecommendationVariant::WithConsensus(
    std::string label, ConsensusSpec consensus) {
  return {std::move(label), AffinityModelSpec::Default(), consensus};
}

QualityHarness::QualityHarness(const GroupRecommender& recommender,
                               const SatisfactionOracle& oracle,
                               std::vector<StudyGroup> groups, std::size_t k)
    : recommender_(&recommender),
      oracle_(&oracle),
      groups_(std::move(groups)),
      k_(k) {}

std::vector<ItemId> QualityHarness::RecommendList(
    const StudyGroup& group, const RecommendationVariant& v) const {
  // The naive solver gives the exact, totally-ordered list; quality results
  // must not depend on GRECA's partial order. Selected through the registry
  // id (the builder path) rather than the legacy enum.
  const Result<Query> query = QueryBuilder(*recommender_)
                                  .Members(group.members)
                                  .TopK(k_)
                                  .Model(v.model)
                                  .Consensus(v.consensus)
                                  .Using(std::string(kNaiveSolverId))
                                  .Build();
  return recommender_->Recommend(query.value().group, query.value().spec)
      .value()
      .items;
}

std::vector<double> QualityHarness::IndependentEval(
    const RecommendationVariant& v) const {
  const auto last =
      static_cast<PeriodId>(recommender_->num_periods() - 1);
  std::vector<double> per_group;
  per_group.reserve(groups_.size());
  for (const StudyGroup& g : groups_) {
    const auto list = RecommendList(g, v);
    per_group.push_back(
        oracle_->GroupSatisfactionPercent(g.members, list, last));
  }
  std::vector<double> out;
  for (const GroupCharacteristic c : AllCharacteristics()) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      if (HasCharacteristic(groups_[i].spec, c)) {
        sum += per_group[i];
        ++count;
      }
    }
    out.push_back(count == 0 ? 0.0 : sum / static_cast<double>(count));
  }
  return out;
}

std::vector<double> QualityHarness::ComparativeEval(
    const RecommendationVariant& v1, const RecommendationVariant& v2) const {
  const auto last =
      static_cast<PeriodId>(recommender_->num_periods() - 1);
  std::vector<double> per_group;
  per_group.reserve(groups_.size());
  for (const StudyGroup& g : groups_) {
    const auto l1 = RecommendList(g, v1);
    const auto l2 = RecommendList(g, v2);
    per_group.push_back(
        oracle_->PreferenceSharePercent(g.members, l1, l2, last));
  }
  std::vector<double> out;
  for (const GroupCharacteristic c : AllCharacteristics()) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      if (HasCharacteristic(groups_[i].spec, c)) {
        sum += per_group[i];
        ++count;
      }
    }
    out.push_back(count == 0 ? 0.0 : sum / static_cast<double>(count));
  }
  return out;
}

std::vector<std::vector<double>> QualityHarness::VoteShares(
    std::span<const RecommendationVariant> variants) const {
  const auto last =
      static_cast<PeriodId>(recommender_->num_periods() - 1);
  std::vector<std::vector<double>> result(
      variants.size(), std::vector<double>(kNumCharacteristics, 0.0));
  std::vector<std::size_t> bucket_counts(kNumCharacteristics, 0);

  for (const StudyGroup& g : groups_) {
    std::vector<std::vector<ItemId>> lists;
    lists.reserve(variants.size());
    for (const auto& v : variants) lists.push_back(RecommendList(g, v));
    const std::vector<double> shares =
        oracle_->VoteShares(g.members, lists, last);
    const auto characteristics = AllCharacteristics();
    for (std::size_t c = 0; c < characteristics.size(); ++c) {
      if (!HasCharacteristic(g.spec, characteristics[c])) continue;
      ++bucket_counts[c];
      for (std::size_t v = 0; v < variants.size(); ++v) {
        result[v][c] += shares[v];
      }
    }
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t c = 0; c < kNumCharacteristics; ++c) {
      if (bucket_counts[c] > 0) {
        result[v][c] /= static_cast<double>(bucket_counts[c]);
      }
    }
  }
  return result;
}

PerformanceHarness::PerformanceHarness(const GroupRecommender& recommender,
                                       std::uint64_t seed)
    : recommender_(&recommender), seed_(seed) {}

QuerySpec PerformanceHarness::DefaultSpec() {
  QuerySpec spec;
  spec.k = 10;
  spec.model = AffinityModelSpec::Default();
  spec.consensus = ConsensusSpec::AveragePreference();
  // Registry id rather than the legacy enum (no engine in scope here, so the
  // spec carries the id directly instead of going through QueryBuilder).
  spec.solver_id = std::string(kGrecaSolverId);
  spec.num_candidate_items = 3'900;
  return spec;
}

std::vector<Group> PerformanceHarness::RandomGroups(std::size_t count,
                                                    std::size_t size) const {
  Rng rng(seed_ ^ (size * 0x9E3779B97F4A7C15ULL));
  const std::size_t n = recommender_->study().num_participants();
  assert(size <= n);
  std::vector<Group> groups;
  groups.reserve(count);
  std::vector<UserId> all(n);
  for (UserId u = 0; u < n; ++u) all[u] = u;
  for (std::size_t i = 0; i < count; ++i) {
    Shuffle(rng, all);
    Group g(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(size));
    std::sort(g.begin(), g.end());
    groups.push_back(std::move(g));
  }
  return groups;
}

PerformanceHarness::SaMeasurement PerformanceHarness::Measure(
    std::span<const Group> groups, const QuerySpec& spec) const {
  OnlineStats sa;
  OnlineStats saveup;
  OnlineStats rounds;
  for (const Group& g : groups) {
    const Recommendation rec = recommender_->Recommend(g, spec).value();
    sa.Add(rec.raw.SequentialAccessPercent());
    saveup.Add(rec.raw.SaveupPercent());
    rounds.Add(static_cast<double>(rec.raw.rounds));
  }
  return {sa.mean(), sa.standard_error(), saveup.mean(), rounds.mean()};
}

PerformanceHarness::SaMeasurement PerformanceHarness::MeasureRandomGroups(
    const QuerySpec& spec, std::size_t group_size,
    std::size_t num_groups) const {
  const auto groups = RandomGroups(num_groups, group_size);
  return Measure(groups, spec);
}

}  // namespace greca
