// The eight user-study groups of §4.1.4 and the six characteristic buckets
// used on every quality-figure x-axis (Sim, Diss, Small, Large, High Aff,
// Low Aff).
#ifndef GRECA_EVAL_STUDY_GROUPS_H_
#define GRECA_EVAL_STUDY_GROUPS_H_

#include <string>
#include <vector>

#include "core/group_recommender.h"
#include "groups/group_formation.h"

namespace greca {

struct StudyGroupSpec {
  std::size_t size = 3;       // small = 3, large = 6 (§4.1.3)
  bool similar = true;        // cohesive vs dissimilar ratings
  bool high_affinity = true;  // pair-wise affinity >= 0.4 vs minimized
};

struct StudyGroup {
  StudyGroupSpec spec;
  Group members;
  double sum_similarity = 0.0;
  double min_affinity = 0.0;
  double max_affinity = 0.0;
};

/// The x-axis buckets of Figures 1–3.
enum class GroupCharacteristic {
  kSim,
  kDiss,
  kSmall,
  kLarge,
  kHighAff,
  kLowAff,
};

inline constexpr std::size_t kNumCharacteristics = 6;

std::string CharacteristicName(GroupCharacteristic c);
std::vector<GroupCharacteristic> AllCharacteristics();
bool HasCharacteristic(const StudyGroupSpec& spec, GroupCharacteristic c);

/// Forms the 2×2×2 study groups (size × cohesiveness × affinity) greedily
/// from the study participants. Cohesiveness is optimized among users who
/// rated the matching movie set; affinity uses the recommender's discrete
/// temporal model at the last period with the paper's 0.4 aspiration for
/// high-affinity groups.
std::vector<StudyGroup> FormStudyGroups(const GroupRecommender& recommender);

/// Mean of `value(group)` over the study groups having characteristic `c`.
double CharacteristicMean(const std::vector<StudyGroup>& groups,
                          GroupCharacteristic c,
                          const std::function<double(const StudyGroup&)>& value);

}  // namespace greca

#endif  // GRECA_EVAL_STUDY_GROUPS_H_
