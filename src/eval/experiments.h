// Experiment drivers shared by the bench harnesses: the quality study
// (Figures 1–3, §4.1) and the scalability study (Figures 5–8, §4.2).
#ifndef GRECA_EVAL_EXPERIMENTS_H_
#define GRECA_EVAL_EXPERIMENTS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/group_recommender.h"
#include "eval/satisfaction.h"
#include "eval/study_groups.h"

namespace greca {

/// One recommendation configuration compared in the quality study.
struct RecommendationVariant {
  std::string label;
  AffinityModelSpec model;
  ConsensusSpec consensus;

  /// The study's default: affinity-aware, discrete time model, AP (§4.1.4).
  static RecommendationVariant Default();
  static RecommendationVariant AffinityAgnostic();
  static RecommendationVariant TimeAgnostic();
  static RecommendationVariant ContinuousModel();
  static RecommendationVariant WithConsensus(std::string label,
                                             ConsensusSpec consensus);
};

/// Quality study driver. All judgments come from the SatisfactionOracle at
/// the last study period.
class QualityHarness {
 public:
  QualityHarness(const GroupRecommender& recommender,
                 const SatisfactionOracle& oracle,
                 std::vector<StudyGroup> groups, std::size_t k = 10);

  /// Independent evaluation (Figure 1): mean group satisfaction % per
  /// characteristic bucket, ordered as AllCharacteristics().
  std::vector<double> IndependentEval(const RecommendationVariant& v) const;

  /// Comparative evaluation (Figure 3): % of members preferring v1's list
  /// over v2's, per characteristic bucket.
  std::vector<double> ComparativeEval(const RecommendationVariant& v1,
                                      const RecommendationVariant& v2) const;

  /// Multi-way comparison (Figure 2): vote share of each variant per
  /// characteristic; result[variant][characteristic].
  std::vector<std::vector<double>> VoteShares(
      std::span<const RecommendationVariant> variants) const;

  /// The exact recommendation list a variant produces for one study group.
  std::vector<ItemId> RecommendList(const StudyGroup& group,
                                    const RecommendationVariant& v) const;

  const std::vector<StudyGroup>& groups() const { return groups_; }

 private:
  const GroupRecommender* recommender_;
  const SatisfactionOracle* oracle_;
  std::vector<StudyGroup> groups_;
  std::size_t k_;
};

/// Scalability study driver: measures GRECA's %SA over random groups of
/// study participants (the paper's setup: 20 random groups, size 6, k = 10,
/// 3 900 items, AP, discrete model).
class PerformanceHarness {
 public:
  PerformanceHarness(const GroupRecommender& recommender, std::uint64_t seed);

  struct SaMeasurement {
    double mean_sa_percent = 0.0;
    double std_error = 0.0;
    double mean_saveup_percent = 0.0;
    double mean_rounds = 0.0;
  };

  /// Deterministic random groups of study participants.
  std::vector<Group> RandomGroups(std::size_t count, std::size_t size) const;

  SaMeasurement Measure(std::span<const Group> groups,
                        const QuerySpec& spec) const;

  /// Convenience: measure over `num_groups` fresh random groups.
  SaMeasurement MeasureRandomGroups(const QuerySpec& spec,
                                    std::size_t group_size,
                                    std::size_t num_groups) const;

  /// The paper's default scalability query (AP, discrete, k=10, 3 900 items).
  static QuerySpec DefaultSpec();

 private:
  const GroupRecommender* recommender_;
  std::uint64_t seed_;
};

}  // namespace greca

#endif  // GRECA_EVAL_EXPERIMENTS_H_
