// Simulated quality judge replacing the paper's human evaluation (§4.1.4).
//
// The paper asked 72 Facebook users how satisfied they were with watching a
// recommended list together with their group (0–5 scale) and which of two
// lists they preferred. Human judgments cannot be reproduced offline, so the
// oracle derives satisfaction from the *generators' hidden ground truth*:
//
//   satisfaction(u, i, G, p) =
//       w_ind · tp(u, i)  +  w_soc · Σ_{u'≠u} trueAff(u, u', p)·tp(u', i)/(|G|−1)
//
// where tp is the noise-free latent preference behind the observed star
// ratings and trueAff is the generators' community-mixture affinity at the
// evaluation period. Recommenders only ever see the *observed* ratings,
// friendships and page-likes — a recommender that models affinity and its
// temporal drift aligns better with this ground truth, which is exactly the
// effect the paper's user study measures.
#ifndef GRECA_EVAL_SATISFACTION_H_
#define GRECA_EVAL_SATISFACTION_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dataset/page_likes.h"
#include "dataset/synthetic.h"

namespace greca {

struct OracleWeights {
  /// Weight of the user's own latent preference.
  double individual = 0.5;
  /// Weight of the affinity-weighted companions' preferences.
  double social = 0.5;
  /// Exponent applied to the true affinity before weighting companions:
  /// community-mixture cosines have a high floor (shared background mass),
  /// so sharpening separates genuinely close pairs from incidental ones.
  double affinity_sharpness = 3.0;
};

class SatisfactionOracle {
 public:
  /// `universe_user` maps study participants to universe users (their latent
  /// tastes); empty means identity (study ids ARE universe ids). All
  /// referenced objects must outlive the oracle.
  SatisfactionOracle(const RatingGroundTruth& rating_truth,
                     const PageLikeGroundTruth& like_truth,
                     std::vector<UserId> universe_user, OracleWeights weights);

  /// Scale-population oracle: no page-like ground truth exists (the scale
  /// generator emits ratings only), so true affinity is taken as 1.0 — the
  /// social term reduces to the companions' mean latent preference — and
  /// users map to themselves.
  explicit SatisfactionOracle(const RatingGroundTruth& rating_truth,
                              OracleWeights weights = {});

  /// Satisfaction of study user `u` with item `i` in group `group` at period
  /// `p`, in [0, 1].
  double ItemSatisfaction(UserId u, std::span<const UserId> group, ItemId item,
                          PeriodId p) const;

  /// Mean item satisfaction over a recommended list, in [0, 1].
  double ListSatisfaction(UserId u, std::span<const UserId> group,
                          std::span<const ItemId> items, PeriodId p) const;

  /// Group-mean list satisfaction as a percentage (the paper reports a 0–5
  /// score scaled to % — "a result with an average score of 5 gets 100%").
  double GroupSatisfactionPercent(std::span<const UserId> group,
                                  std::span<const ItemId> items,
                                  PeriodId p) const;

  /// Comparative evaluation (§4.1.4): every member picks exactly one of the
  /// two lists (the closed-world forced choice); returns the percentage of
  /// members preferring `list1`. Exact ties split evenly.
  double PreferenceSharePercent(std::span<const UserId> group,
                                std::span<const ItemId> list1,
                                std::span<const ItemId> list2,
                                PeriodId p) const;

  /// Three-way vote shares (Figure 2): percentage of members whose most
  /// satisfying list is lists[j]; ties split evenly among the tied lists.
  std::vector<double> VoteShares(
      std::span<const UserId> group,
      std::span<const std::vector<ItemId>> lists, PeriodId p) const;

 private:
  /// Latent preference on [0, 1].
  double TruePref01(UserId study_user, ItemId item) const;

  const RatingGroundTruth* rating_truth_;
  const PageLikeGroundTruth* like_truth_;  // null => true affinity == 1.0
  std::vector<UserId> universe_user_;      // empty => identity mapping
  OracleWeights weights_;
};

}  // namespace greca

#endif  // GRECA_EVAL_SATISFACTION_H_
