#include "eval/satisfaction.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greca {

SatisfactionOracle::SatisfactionOracle(const RatingGroundTruth& rating_truth,
                                       const PageLikeGroundTruth& like_truth,
                                       std::vector<UserId> universe_user,
                                       OracleWeights weights)
    : rating_truth_(&rating_truth),
      like_truth_(&like_truth),
      universe_user_(std::move(universe_user)),
      weights_(weights) {}

SatisfactionOracle::SatisfactionOracle(const RatingGroundTruth& rating_truth,
                                       OracleWeights weights)
    : rating_truth_(&rating_truth), like_truth_(nullptr), weights_(weights) {}

double SatisfactionOracle::TruePref01(UserId study_user, ItemId item) const {
  UserId universe_user = study_user;
  if (!universe_user_.empty()) {
    assert(study_user < universe_user_.size());
    universe_user = universe_user_[study_user];
  }
  const double stars = rating_truth_->TruePreference(universe_user, item);
  return (stars - 1.0) / 4.0;  // 1..5 stars -> [0, 1]
}

double SatisfactionOracle::ItemSatisfaction(UserId u,
                                            std::span<const UserId> group,
                                            ItemId item, PeriodId p) const {
  const double own = TruePref01(u, item);
  double social = 0.0;
  std::size_t companions = 0;
  for (const UserId v : group) {
    if (v == u) continue;
    const double affinity =
        like_truth_ == nullptr
            ? 1.0
            : std::pow(like_truth_->TrueAffinity(u, v, p),
                       weights_.affinity_sharpness);
    social += affinity * TruePref01(v, item);
    ++companions;
  }
  if (companions == 0) return own;
  social /= static_cast<double>(companions);
  return std::clamp(
      weights_.individual * own + weights_.social * social, 0.0, 1.0);
}

double SatisfactionOracle::ListSatisfaction(UserId u,
                                            std::span<const UserId> group,
                                            std::span<const ItemId> items,
                                            PeriodId p) const {
  if (items.empty()) return 0.0;
  double sum = 0.0;
  for (const ItemId i : items) sum += ItemSatisfaction(u, group, i, p);
  return sum / static_cast<double>(items.size());
}

double SatisfactionOracle::GroupSatisfactionPercent(
    std::span<const UserId> group, std::span<const ItemId> items,
    PeriodId p) const {
  double sum = 0.0;
  for (const UserId u : group) sum += ListSatisfaction(u, group, items, p);
  return 100.0 * sum / static_cast<double>(group.size());
}

double SatisfactionOracle::PreferenceSharePercent(
    std::span<const UserId> group, std::span<const ItemId> list1,
    std::span<const ItemId> list2, PeriodId p) const {
  double votes = 0.0;
  for (const UserId u : group) {
    const double s1 = ListSatisfaction(u, group, list1, p);
    const double s2 = ListSatisfaction(u, group, list2, p);
    if (s1 > s2) {
      votes += 1.0;
    } else if (s1 == s2) {
      votes += 0.5;
    }
  }
  return 100.0 * votes / static_cast<double>(group.size());
}

std::vector<double> SatisfactionOracle::VoteShares(
    std::span<const UserId> group,
    std::span<const std::vector<ItemId>> lists, PeriodId p) const {
  std::vector<double> votes(lists.size(), 0.0);
  for (const UserId u : group) {
    double best = -1.0;
    std::vector<std::size_t> winners;
    for (std::size_t j = 0; j < lists.size(); ++j) {
      const double s = ListSatisfaction(u, group, lists[j], p);
      if (s > best) {
        best = s;
        winners.assign(1, j);
      } else if (s == best) {
        winners.push_back(j);
      }
    }
    for (const std::size_t j : winners) {
      votes[j] += 1.0 / static_cast<double>(winners.size());
    }
  }
  for (auto& v : votes) v = 100.0 * v / static_cast<double>(group.size());
  return votes;
}

}  // namespace greca
