// Per-user delta log over an immutable RatingsDataset base.
//
// The live-update path used to re-fold the ENTIRE study-ratings dataset into
// a fresh CSR on every publish, so publish latency grew linearly as live
// ratings accumulated. RatingsOverlay keeps the base immutable and overlays a
// compact per-user delta log instead: each touched user owns one small row of
// live ratings (sorted by item, latest-(timestamp, rating)-wins already
// applied), and every read merges base + delta on the fly. Applying a batch
// of events is O(delta) — it rebuilds only the touched users' delta rows and
// shares everything else — and a periodic Compact() folds the log back into a
// fresh immutable base off the serving path (see the compaction policy knobs
// in RecommenderOptions).
//
// Merge semantics are EXACTLY RatingsDataset::FromRecords: per (user, item)
// the winner is the lexicographic max of (timestamp, rating), so replaying
// any event sequence through overlays — with or without intermediate
// compactions — yields bit-identical state to one full re-fold
// (tests/delta_log_test.cc enforces this, recommendations included). An
// event EQUAL to the stored rating is a no-op and counts as stale (the
// folded value is identical either way), so redelivered duplicate batches
// change nothing and publish nothing.
//
// Instances are immutable after construction; WithEvents() returns a new
// overlay that shares the base and all untouched delta rows (shared_ptr per
// row), which is what lets snapshot generations stay cheap: publishing a
// batch copies one pointer per user, not one rating.
#ifndef GRECA_DATASET_RATINGS_OVERLAY_H_
#define GRECA_DATASET_RATINGS_OVERLAY_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "dataset/ratings.h"

namespace greca {

class RatingsOverlay {
 public:
  /// What one WithEvents() fold did, per input batch.
  struct ApplyStats {
    /// Events that took effect (new (user, item) pair, or strictly won
    /// latest-wins against the stored rating).
    std::size_t applied = 0;
    /// Events silently superseded: a (timestamp, rating) no newer than the
    /// stored rating of the same (user, item) pair — including exact
    /// duplicates, which change nothing.
    std::size_t ignored_stale = 0;
    /// Distinct users with at least one applied event, ascending. Users all
    /// of whose events were stale are NOT listed — nothing about them
    /// changed, so nothing needs rebuilding.
    std::vector<UserId> touched_users;
  };

  /// An empty delta log over `base` (must be non-null).
  explicit RatingsOverlay(std::shared_ptr<const RatingsDataset> base);

  /// A new overlay with `events` folded in, latest-(timestamp, rating) wins
  /// per (user, item) — the RatingsDataset::FromRecords rule, applied
  /// sequentially in event order (deterministic for coalesced batches).
  /// Only the touched users' delta rows are rebuilt; the base and every
  /// other row are shared with this overlay. Event ids must be in range
  /// (callers validate; asserts in debug builds).
  std::shared_ptr<const RatingsOverlay> WithEvents(
      std::span<const RatingRecord> events, ApplyStats* stats = nullptr) const;

  /// Folds base + delta into one fresh immutable dataset — the compaction
  /// step. Bit-identical to FromRecords over the base records plus every
  /// winning live event.
  RatingsDataset Compact() const;

  const RatingsDataset& base() const { return *base_; }
  const std::shared_ptr<const RatingsDataset>& base_ptr() const {
    return base_;
  }

  std::size_t num_users() const { return base_->num_users(); }
  std::size_t num_items() const { return base_->num_items(); }

  /// Total delta-row entries (the resident size of the log).
  std::size_t delta_ratings() const { return delta_entries_; }
  /// Merged rating count: base plus delta entries for pairs new to the base.
  std::size_t num_ratings() const {
    return base_->num_ratings() + delta_only_entries_;
  }

  /// User `u`'s live delta row (sorted ascending by item; empty when the
  /// user has no live ratings). Every entry wins latest-(timestamp, rating)
  /// against its base counterpart by construction.
  std::span<const UserRatingEntry> DeltaOfUser(UserId u) const {
    const auto& row = delta_[u];
    return row == nullptr ? std::span<const UserRatingEntry>()      // empty
                          : std::span<const UserRatingEntry>(*row);
  }

  /// User `u`'s merged ratings (base with delta overrides), sorted ascending
  /// by item — identical to RatingsOfUser on the compacted dataset. Returns
  /// the base row directly when the user has no delta (no copy); otherwise
  /// materializes into `scratch` and returns a span over it.
  std::span<const UserRatingEntry> MergedRatingsOfUser(
      UserId u, std::vector<UserRatingEntry>& scratch) const;

  /// Merged O(log) lookup: the delta row first, then the base.
  std::optional<Score> GetRating(UserId u, ItemId i) const;
  bool HasRating(UserId u, ItemId i) const {
    return GetRating(u, i).has_value();
  }

 private:
  std::shared_ptr<const RatingsDataset> base_;  // never null
  /// One shared immutable row per user; null = no live ratings. Rows are
  /// sorted ascending by item and deduplicated (one entry per item).
  std::vector<std::shared_ptr<const std::vector<UserRatingEntry>>> delta_;
  std::size_t delta_entries_ = 0;       // Σ row sizes
  std::size_t delta_only_entries_ = 0;  // Σ entries whose item is not in base
};

}  // namespace greca

#endif  // GRECA_DATASET_RATINGS_OVERLAY_H_
