// Synthetic twin of the paper's Facebook user study (§4.1).
//
// The paper recruited 13 seed users who invited 10–20 friends each (72 users
// total), collected ≥30 MovieLens ratings per user over either the "Similar
// Set" (top-50 popular movies) or the "Dissimilar Set" (top-25 popular + 25
// high-variance movies), anonymized friend lists, and one year of page-like
// history across 197 categories.
//
// GenerateFacebookStudy reproduces every one of those artifacts on top of a
// synthetic MovieLens universe: each study participant is mapped to a latent
// universe user (their "true" movie taste), rates movies from their assigned
// set according to that taste, and produces page-likes from drifting
// community mixtures. All hidden state is exported for the quality judge.
#ifndef GRECA_DATASET_FACEBOOK_STUDY_H_
#define GRECA_DATASET_FACEBOOK_STUDY_H_

#include <cstdint>
#include <vector>

#include "dataset/page_likes.h"
#include "dataset/ratings.h"
#include "dataset/social_graph.h"
#include "dataset/synthetic.h"
#include "timeline/period.h"

namespace greca {

struct FacebookStudyConfig {
  SeedAndInviteConfig graph;  // 13 seeds, 72 users by default
  PageLikeGenConfig likes;    // num_users is overwritten from `graph`
  /// Every participant rates at least this many movies (paper: 30).
  std::size_t min_ratings_per_user = 30;
  /// Popular set size (paper: top-50 by popularity).
  std::size_t popular_set_size = 50;
  /// Diversity set: top `diversity_set_size` variance among the
  /// `diversity_pool` most popular (paper: 25 of top-200).
  std::size_t diversity_set_size = 25;
  std::size_t diversity_pool = 200;
  /// Star-rating noise when participants rate movies.
  double rating_noise_sigma = 0.45;
  /// Community homophily of friendships: beyond the seed-and-invite
  /// recruitment edges, a pair is befriended with probability
  /// homophily · trueAff(u, v, p0)², tying the friend graph (and hence
  /// static affinity) to the interest communities — without it the
  /// common-friend counts would carry no signal about actual closeness.
  double friendship_homophily = 0.5;
  /// Study window start/length; likes and ratings fall inside it.
  Timestamp study_start = 0;
  Timestamp study_length = 365 * kSecondsPerDay;
  std::uint64_t seed = 2015;
};

struct FacebookStudy {
  SocialGraph graph;
  PageLikeLog likes;
  PageLikeGroundTruth like_truth{0, 0, 0};
  /// The study window discretized at the granularity used for `like_truth`
  /// (two-month periods by default, per the paper's Figure 4 choice).
  Timeline periods = Timeline::FixedWindows(0, 1, 1);
  /// study user -> universe user whose latent taste they carry.
  std::vector<UserId> universe_user;
  std::vector<ItemId> similar_set;     // 50 popular movies
  std::vector<ItemId> dissimilar_set;  // 25 popular + 25 high-variance
  /// True when the participant rated the Dissimilar set.
  std::vector<bool> rated_dissimilar;
  /// The participants' own ratings (study users × universe items).
  RatingsDataset study_ratings;

  std::size_t num_participants() const { return universe_user.size(); }
};

/// Builds the study on top of a synthetic universe. Deterministic in
/// `config.seed`. The universe must have at least
/// `config.graph.total_users` users and `diversity_pool` items.
FacebookStudy GenerateFacebookStudy(const FacebookStudyConfig& config,
                                    const SyntheticRatings& universe);

}  // namespace greca

#endif  // GRECA_DATASET_FACEBOOK_STUDY_H_
