#include "dataset/page_likes.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/distributions.h"

namespace greca {

PageLikeLog PageLikeLog::FromEvents(std::size_t num_users,
                                    std::size_t num_categories,
                                    std::vector<PageLikeEvent> events) {
  PageLikeLog log;
  log.num_categories_ = num_categories;
  std::sort(events.begin(), events.end(),
            [](const PageLikeEvent& a, const PageLikeEvent& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.category < b.category;
            });
  log.offsets_.assign(num_users + 1, 0);
  for (const auto& e : events) {
    assert(e.user < num_users);
    assert(e.category < num_categories);
    ++log.offsets_[e.user + 1];
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    log.offsets_[u + 1] += log.offsets_[u];
  }
  log.events_ = std::move(events);
  return log;
}

std::span<const PageLikeEvent> PageLikeLog::LikesOfUser(UserId u) const {
  assert(u < num_users());
  return {events_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::vector<CategoryId> PageLikeLog::CategoriesInPeriod(
    UserId u, const Period& p) const {
  const auto likes = LikesOfUser(u);
  const auto lo = std::lower_bound(
      likes.begin(), likes.end(), p.start,
      [](const PageLikeEvent& e, Timestamp t) { return e.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, likes.end(), p.finish,
      [](const PageLikeEvent& e, Timestamp t) { return e.timestamp < t; });
  std::vector<CategoryId> cats;
  for (auto it = lo; it != hi; ++it) cats.push_back(it->category);
  std::sort(cats.begin(), cats.end());
  cats.erase(std::unique(cats.begin(), cats.end()), cats.end());
  return cats;
}

std::size_t PageLikeLog::EventCountInPeriod(UserId u, const Period& p) const {
  const auto likes = LikesOfUser(u);
  const auto lo = std::lower_bound(
      likes.begin(), likes.end(), p.start,
      [](const PageLikeEvent& e, Timestamp t) { return e.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, likes.end(), p.finish,
      [](const PageLikeEvent& e, Timestamp t) { return e.timestamp < t; });
  return static_cast<std::size_t>(hi - lo);
}

double PageLikeGroundTruth::TrueAffinity(UserId u, UserId v,
                                         PeriodId p) const {
  double dot = 0.0, nu = 0.0, nv = 0.0;
  for (std::size_t c = 0; c < num_communities_; ++c) {
    const double wu = Weight(u, c, p);
    const double wv = Weight(v, c, p);
    dot += wu * wv;
    nu += wu * wu;
    nv += wv * wv;
  }
  if (nu == 0.0 || nv == 0.0) return 0.0;
  return dot / std::sqrt(nu * nv);
}

GeneratedPageLikes GeneratePageLikes(const PageLikeGenConfig& config,
                                     const Timeline& timeline) {
  assert(config.num_communities >= 1);
  assert(config.categories_per_community <= config.num_categories);
  Rng rng(config.seed);
  Rng profile_rng = rng.Fork(1);
  Rng mixture_rng = rng.Fork(2);
  Rng event_rng = rng.Fork(3);

  const std::size_t num_periods = timeline.num_periods();
  GeneratedPageLikes out{PageLikeLog(),
                         PageLikeGroundTruth(config.num_users,
                                             config.num_communities,
                                             num_periods)};
  PageLikeGroundTruth& truth = out.truth;

  // Community -> favored categories (with sampling weights).
  std::vector<std::vector<CategoryId>> community_cats(config.num_communities);
  for (auto& cats : community_cats) {
    const auto chosen = SampleDistinct(profile_rng, config.num_categories,
                                       config.categories_per_community);
    cats.assign(chosen.begin(), chosen.end());
    std::vector<CategoryId> as_ids(chosen.begin(), chosen.end());
    cats = std::move(as_ids);
  }

  // Initial mixtures: one dominant community plus background mass.
  std::vector<double> mix(config.num_users * config.num_communities);
  for (UserId u = 0; u < config.num_users; ++u) {
    const std::size_t home = mixture_rng.NextBounded(config.num_communities);
    double total = 0.0;
    for (std::size_t c = 0; c < config.num_communities; ++c) {
      double w = mixture_rng.NextDouble(0.02, 0.25);
      if (c == home) w += 1.0;
      mix[u * config.num_communities + c] = w;
      total += w;
    }
    for (std::size_t c = 0; c < config.num_communities; ++c) {
      mix[u * config.num_communities + c] /= total;
    }
  }

  // Per-user like rate (events per second).
  const double monthly_mu = std::log(config.monthly_like_rate) -
                            config.rate_sigma * config.rate_sigma / 2.0;
  LogNormalSampler rate_sampler(monthly_mu, config.rate_sigma, 0.02, 60.0);
  std::vector<double> per_second_rate(config.num_users);
  for (auto& r : per_second_rate) {
    r = rate_sampler.Sample(mixture_rng) / (30.0 * kSecondsPerDay);
  }

  std::vector<PageLikeEvent> events;
  for (PeriodId p = 0; p < num_periods; ++p) {
    const Period& period = timeline.period(p);
    for (UserId u = 0; u < config.num_users; ++u) {
      double* w = &mix[u * config.num_communities];
      if (p > 0) {
        // Random-walk drift, renormalized; floors keep mixtures valid.
        double total = 0.0;
        for (std::size_t c = 0; c < config.num_communities; ++c) {
          w[c] = std::max(
              0.005, w[c] + config.drift_rate * mixture_rng.NextGaussian() *
                                w[c]);
          total += w[c];
        }
        for (std::size_t c = 0; c < config.num_communities; ++c) {
          w[c] /= total;
        }
      }
      for (std::size_t c = 0; c < config.num_communities; ++c) {
        truth.Weight(u, c, p) = w[c];
      }

      // Expected likes this period; sample a Poisson count via inversion
      // (rates are small, so the loop is short).
      const double lambda =
          per_second_rate[u] * static_cast<double>(period.length());
      std::size_t count = 0;
      double threshold = std::exp(-lambda);
      double prod = event_rng.NextDouble();
      while (prod > threshold && count < 500) {
        ++count;
        prod *= event_rng.NextDouble();
      }
      for (std::size_t e = 0; e < count; ++e) {
        // Choose a community by mixture weight, then one of its categories.
        double pick = event_rng.NextDouble();
        std::size_t community = config.num_communities - 1;
        for (std::size_t c = 0; c < config.num_communities; ++c) {
          if (pick < w[c]) {
            community = c;
            break;
          }
          pick -= w[c];
        }
        const auto& cats = community_cats[community];
        const CategoryId cat = cats[event_rng.NextBounded(cats.size())];
        const Timestamp ts =
            period.start +
            event_rng.NextInt(0, std::max<Timestamp>(1, period.length()) - 1);
        events.push_back(PageLikeEvent{u, cat, ts});
      }
    }
  }

  out.log = PageLikeLog::FromEvents(config.num_users, config.num_categories,
                                    std::move(events));
  return out;
}

}  // namespace greca
