#include "dataset/social_graph.h"

#include <algorithm>
#include <cassert>

#include "common/distributions.h"

namespace greca {

SocialGraph SocialGraph::FromEdges(
    std::size_t num_users, std::vector<std::pair<UserId, UserId>> edges) {
  // Canonicalize, drop self-loops, dedupe.
  std::vector<UserPair> canon;
  canon.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    assert(a < num_users && b < num_users);
    if (a == b) continue;
    canon.emplace_back(a, b);
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  SocialGraph g;
  g.num_edges_ = canon.size();
  g.offsets_.assign(num_users + 1, 0);
  for (const auto& e : canon) {
    ++g.offsets_[e.first + 1];
    ++g.offsets_[e.second + 1];
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    g.offsets_[u + 1] += g.offsets_[u];
  }
  g.adjacency_.resize(2 * canon.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : canon) {
    g.adjacency_[cursor[e.first]++] = e.second;
    g.adjacency_[cursor[e.second]++] = e.first;
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[u + 1]));
  }
  return g;
}

std::size_t SocialGraph::num_users() const {
  return offsets_.empty() ? 0 : offsets_.size() - 1;
}

std::span<const UserId> SocialGraph::FriendsOf(UserId u) const {
  assert(u < num_users());
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

bool SocialGraph::AreFriends(UserId u, UserId v) const {
  const auto friends = FriendsOf(u);
  return std::binary_search(friends.begin(), friends.end(), v);
}

std::size_t SocialGraph::CommonFriends(UserId u, UserId v) const {
  const auto fu = FriendsOf(u);
  const auto fv = FriendsOf(v);
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < fu.size() && j < fv.size()) {
    if (fu[i] == fv[j]) {
      ++count;
      ++i;
      ++j;
    } else if (fu[i] < fv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

double SocialGraph::AverageDegree() const {
  if (num_users() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_users());
}

std::vector<double> DegreeCentrality(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  std::vector<double> weights(n, 1.0);
  std::size_t max_degree = 0;
  for (UserId u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, graph.FriendsOf(u).size());
  }
  const double denom = 1.0 + static_cast<double>(max_degree);
  for (UserId u = 0; u < n; ++u) {
    weights[u] = (1.0 + static_cast<double>(graph.FriendsOf(u).size())) / denom;
  }
  return weights;
}

std::vector<double> PropagationCentrality(const SocialGraph& graph,
                                          double damping,
                                          std::size_t iterations) {
  assert(damping > 0.0 && damping < 1.0);
  const std::size_t n = graph.num_users();
  std::vector<double> x(n, 1.0);
  if (n == 0) return x;
  std::size_t max_degree = 0;
  for (UserId u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, graph.FriendsOf(u).size());
  }
  // β < 1/max_deg keeps the affine iteration a contraction, so the fixed
  // point exists and the fixed iteration count lands effectively on it.
  const double beta = damping / (static_cast<double>(max_degree) + 1.0);
  std::vector<double> next(n);
  for (std::size_t it = 0; it < iterations; ++it) {
    for (UserId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (const UserId v : graph.FriendsOf(u)) sum += x[v];
      next[u] = 1.0 + beta * sum;
    }
    x.swap(next);
  }
  const double max_x = *std::max_element(x.begin(), x.end());
  for (double& w : x) w /= max_x;  // max_x >= 1, so weights land in (0, 1]
  return x;
}

SocialGraph GenerateSeedAndInvite(const SeedAndInviteConfig& config) {
  assert(config.num_seeds < config.total_users);
  assert(config.min_invites <= config.max_invites);
  Rng rng(config.seed);
  std::vector<std::pair<UserId, UserId>> edges;

  const std::size_t pool_size = config.total_users - config.num_seeds;
  // Seeds are users [0, num_seeds); invitees are [num_seeds, total_users).
  for (UserId s = 0; s < config.num_seeds; ++s) {
    const auto invites = static_cast<std::size_t>(std::min<std::int64_t>(
        rng.NextInt(static_cast<std::int64_t>(config.min_invites),
                    static_cast<std::int64_t>(config.max_invites)),
        static_cast<std::int64_t>(pool_size)));
    const auto chosen = SampleDistinct(rng, pool_size, invites);
    for (const std::size_t off : chosen) {
      edges.emplace_back(s, static_cast<UserId>(config.num_seeds + off));
    }
  }
  // Peer links among invitees create common-friend triangles.
  for (UserId a = static_cast<UserId>(config.num_seeds);
       a < config.total_users; ++a) {
    for (UserId b = a + 1; b < config.total_users; ++b) {
      if (rng.NextBool(config.peer_link_prob)) edges.emplace_back(a, b);
    }
  }
  // Seeds of the same lab know each other with moderate probability.
  for (UserId a = 0; a < config.num_seeds; ++a) {
    for (UserId b = a + 1; b < config.num_seeds; ++b) {
      if (rng.NextBool(0.3)) edges.emplace_back(a, b);
    }
  }
  return SocialGraph::FromEdges(config.total_users, std::move(edges));
}

SocialGraph GeneratePreferentialAttachment(std::size_t num_users,
                                           std::size_t edges_per_node,
                                           std::uint64_t seed) {
  assert(num_users >= 2);
  assert(edges_per_node >= 1);
  Rng rng(seed);
  std::vector<std::pair<UserId, UserId>> edges;
  // Repeated-endpoint list: sampling uniformly from it is proportional to
  // degree (the standard BA construction).
  std::vector<UserId> endpoints;
  edges.emplace_back(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (UserId v = 2; v < num_users; ++v) {
    const std::size_t m = std::min<std::size_t>(edges_per_node, v);
    std::vector<UserId> targets;
    while (targets.size() < m) {
      const UserId t = endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const UserId t : targets) {
      edges.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return SocialGraph::FromEdges(num_users, std::move(edges));
}

}  // namespace greca
