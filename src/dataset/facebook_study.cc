#include "dataset/facebook_study.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/distributions.h"

namespace greca {

FacebookStudy GenerateFacebookStudy(const FacebookStudyConfig& config,
                                    const SyntheticRatings& universe) {
  const std::size_t n = config.graph.total_users;
  assert(universe.dataset.num_users() >= n);
  assert(universe.dataset.num_items() >= config.diversity_pool);
  Rng rng(config.seed);
  Rng map_rng = rng.Fork(1);
  Rng rate_rng = rng.Fork(2);
  Rng edge_rng = rng.Fork(3);

  FacebookStudy study;

  // Study window at two-month granularity (the paper's working choice).
  study.periods = Timeline::WithGranularity(
      config.study_start, config.study_start + config.study_length,
      Granularity::kTwoMonth);

  // Page likes first: the hidden community mixtures also shape friendships.
  PageLikeGenConfig like_config = config.likes;
  like_config.num_users = n;
  like_config.seed = rng.NextU64();
  GeneratedPageLikes likes = GeneratePageLikes(like_config, study.periods);
  study.likes = std::move(likes.log);
  study.like_truth = std::move(likes.truth);

  // Friendships: the seed-and-invite recruitment skeleton plus homophily
  // edges between users who start out in similar communities.
  const SocialGraph skeleton = GenerateSeedAndInvite(config.graph);
  std::vector<std::pair<UserId, UserId>> edges;
  for (UserId u = 0; u < n; ++u) {
    for (const UserId v : skeleton.FriendsOf(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = static_cast<UserId>(u + 1); v < n; ++v) {
      const double aff0 = study.like_truth.TrueAffinity(u, v, 0);
      if (edge_rng.NextBool(config.friendship_homophily * aff0 * aff0)) {
        edges.emplace_back(u, v);
      }
    }
  }
  study.graph = SocialGraph::FromEdges(n, std::move(edges));

  // Map each participant to a distinct universe user (their latent taste).
  const auto chosen =
      SampleDistinct(map_rng, universe.dataset.num_users(), n);
  study.universe_user.assign(chosen.begin(), chosen.end());
  std::vector<UserId> as_users(chosen.begin(), chosen.end());
  study.universe_user = std::move(as_users);
  Shuffle(map_rng, study.universe_user);

  // Movie sets (paper §4.1.1): popular = top-50 by #ratings; diversity = 25
  // highest-variance among the top-200 popular.
  study.similar_set = universe.dataset.TopPopularItems(config.popular_set_size);
  study.dissimilar_set.assign(
      study.similar_set.begin(),
      study.similar_set.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              config.diversity_set_size, study.similar_set.size())));
  // Fill up with high-variance movies; ask for extra candidates because the
  // variance ranking may overlap the popular prefix already taken.
  const std::size_t target =
      study.dissimilar_set.size() + config.diversity_set_size;
  const std::vector<ItemId> diverse = universe.dataset.HighVarianceItems(
      config.diversity_set_size + config.popular_set_size,
      config.diversity_pool);
  for (const ItemId i : diverse) {
    if (study.dissimilar_set.size() >= target) break;
    if (std::find(study.dissimilar_set.begin(), study.dissimilar_set.end(),
                  i) == study.dissimilar_set.end()) {
      study.dissimilar_set.push_back(i);
    }
  }

  // Each participant rates >= min_ratings movies from their assigned set,
  // star = true latent preference + noise, timestamp inside the study window.
  study.rated_dissimilar.assign(n, false);
  std::vector<RatingRecord> records;
  for (UserId su = 0; su < n; ++su) {
    const bool dissimilar = (su % 2 == 1);  // half and half, deterministic
    study.rated_dissimilar[su] = dissimilar;
    const auto& set = dissimilar ? study.dissimilar_set : study.similar_set;
    const std::size_t want =
        std::min(config.min_ratings_per_user +
                     static_cast<std::size_t>(rate_rng.NextInt(0, 10)),
                 set.size());
    const auto picks = SampleDistinct(rate_rng, set.size(), want);
    const UserId uu = study.universe_user[su];
    for (const std::size_t off : picks) {
      const ItemId item = set[off];
      const double star_raw =
          universe.truth.TruePreference(uu, item) +
          config.rating_noise_sigma * rate_rng.NextGaussian();
      const double star = std::clamp(std::round(star_raw), 1.0, 5.0);
      const Timestamp ts =
          config.study_start +
          rate_rng.NextInt(0, std::max<Timestamp>(1, config.study_length) - 1);
      records.push_back(RatingRecord{su, item, star, ts});
    }
  }
  study.study_ratings = RatingsDataset::FromRecords(
      n, universe.dataset.num_items(), std::move(records));
  return study;
}

}  // namespace greca
