// Collaborative-rating dataset storage (the MovieLens substrate, paper §4).
//
// RatingsDataset stores a user×item rating matrix in compressed sparse form,
// indexed both by user and by item, with per-rating timestamps. It backs the
// collaborative-filtering engine, group formation, and all experiments.
#ifndef GRECA_DATASET_RATINGS_H_
#define GRECA_DATASET_RATINGS_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace greca {

/// One observed rating event.
struct RatingRecord {
  UserId user = kInvalidUser;
  ItemId item = kInvalidItem;
  Score rating = 0.0;
  Timestamp timestamp = 0;

  friend bool operator==(const RatingRecord&, const RatingRecord&) = default;
};

/// Per-user view entry: which item, what rating, when.
struct UserRatingEntry {
  ItemId item;
  Score rating;
  Timestamp timestamp;
};

/// Per-item view entry: which user, what rating, when.
struct ItemRatingEntry {
  UserId user;
  Score rating;
  Timestamp timestamp;
};

/// Summary statistics (Table 5 of the paper).
struct DatasetStats {
  std::size_t num_users = 0;
  std::size_t num_items = 0;
  std::size_t num_ratings = 0;
  double mean_rating = 0.0;
  double min_rating = 0.0;
  double max_rating = 0.0;
  /// Fraction of the user×item matrix that is filled.
  double density = 0.0;
};

class RatingsDataset {
 public:
  RatingsDataset() = default;

  /// Builds the double index from raw records. Duplicate (user, item) pairs
  /// keep the latest-timestamped rating. Ids must be < the given bounds.
  static RatingsDataset FromRecords(std::size_t num_users,
                                    std::size_t num_items,
                                    std::vector<RatingRecord> records);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_ratings() const { return by_user_flat_.size(); }

  /// Ratings of `u`, sorted ascending by item id.
  std::span<const UserRatingEntry> RatingsOfUser(UserId u) const;

  /// Ratings of `i`, sorted ascending by user id.
  std::span<const ItemRatingEntry> RatingsOfItem(ItemId i) const;

  /// O(log deg(u)) rating lookup.
  std::optional<Score> GetRating(UserId u, ItemId i) const;
  bool HasRating(UserId u, ItemId i) const { return GetRating(u, i).has_value(); }

  DatasetStats Stats() const;

  /// Items sorted by descending popularity (#ratings); ties by ascending id.
  /// Returns at most `n` items. Used for the paper's "popular set".
  std::vector<ItemId> TopPopularItems(std::size_t n) const;

  /// Among the `popularity_pool` most popular items, the `n` items with the
  /// highest rating variance. Used for the paper's "diversity set"
  /// (top-200 popularity, 25 highest-variance).
  std::vector<ItemId> HighVarianceItems(std::size_t n,
                                        std::size_t popularity_pool) const;

  /// Mean of all ratings of item `i`; `fallback` when unrated.
  double ItemMeanRating(ItemId i, double fallback) const;

  /// Mean of all ratings by user `u`; `fallback` when the user rated nothing.
  double UserMeanRating(UserId u, double fallback) const;

 private:
  std::size_t num_users_ = 0;
  std::size_t num_items_ = 0;
  // CSR layout over users.
  std::vector<std::size_t> user_offsets_;  // size num_users_+1
  std::vector<UserRatingEntry> by_user_flat_;
  // CSR layout over items.
  std::vector<std::size_t> item_offsets_;  // size num_items_+1
  std::vector<ItemRatingEntry> by_item_flat_;
};

}  // namespace greca

#endif  // GRECA_DATASET_RATINGS_H_
