// Timestamped page-like events (the dynamic-affinity signal, paper §4.1.2).
//
// The paper records, for every user, the categories of Facebook pages they
// liked and when (197 categories). Periodic affinity between two users is the
// number of common categories liked within a period. The generator simulates
// users as drifting mixtures over interest communities, so some user pairs
// grow closer over time and others grow apart — exactly the phenomenon the
// temporal affinity model is designed to capture. The generator's hidden
// community mixtures are exported as ground truth for the quality judge.
#ifndef GRECA_DATASET_PAGE_LIKES_H_
#define GRECA_DATASET_PAGE_LIKES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "timeline/period.h"

namespace greca {

using CategoryId = std::uint32_t;

struct PageLikeEvent {
  UserId user = kInvalidUser;
  CategoryId category = 0;
  Timestamp timestamp = 0;

  friend bool operator==(const PageLikeEvent&, const PageLikeEvent&) = default;
};

class PageLikeLog {
 public:
  PageLikeLog() = default;

  static PageLikeLog FromEvents(std::size_t num_users,
                                std::size_t num_categories,
                                std::vector<PageLikeEvent> events);

  std::size_t num_users() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_categories() const { return num_categories_; }
  std::size_t num_events() const { return events_.size(); }

  /// Events of `u` sorted ascending by timestamp.
  std::span<const PageLikeEvent> LikesOfUser(UserId u) const;

  /// Distinct categories liked by `u` within `p`, sorted ascending.
  std::vector<CategoryId> CategoriesInPeriod(UserId u, const Period& p) const;

  /// Number of events of `u` within `p` (O(log deg) by binary search).
  std::size_t EventCountInPeriod(UserId u, const Period& p) const;

 private:
  std::size_t num_categories_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<PageLikeEvent> events_;  // grouped by user, sorted by time
};

/// The generator's hidden state: per-period community mixtures per user.
/// True pairwise affinity at a period is the mixtures' cosine similarity —
/// the quality oracle treats it as the real (unobservable) social closeness.
class PageLikeGroundTruth {
 public:
  PageLikeGroundTruth(std::size_t num_users, std::size_t num_communities,
                      std::size_t num_periods)
      : num_users_(num_users),
        num_communities_(num_communities),
        num_periods_(num_periods),
        mixtures_(num_users * num_communities * num_periods, 0.0) {}

  double& Weight(UserId u, std::size_t community, PeriodId p) {
    return mixtures_[(static_cast<std::size_t>(p) * num_users_ + u) *
                         num_communities_ +
                     community];
  }
  double Weight(UserId u, std::size_t community, PeriodId p) const {
    return mixtures_[(static_cast<std::size_t>(p) * num_users_ + u) *
                         num_communities_ +
                     community];
  }

  /// Cosine similarity of the two users' community mixtures at period `p`,
  /// in [0, 1] (mixtures are non-negative).
  double TrueAffinity(UserId u, UserId v, PeriodId p) const;

  std::size_t num_users() const { return num_users_; }
  std::size_t num_communities() const { return num_communities_; }
  std::size_t num_periods() const { return num_periods_; }

 private:
  std::size_t num_users_;
  std::size_t num_communities_;
  std::size_t num_periods_;
  std::vector<double> mixtures_;
};

struct PageLikeGenConfig {
  std::size_t num_users = 72;
  /// Facebook exposes 197 page categories (paper §4.1.2).
  std::size_t num_categories = 197;
  std::size_t num_communities = 6;
  /// Distinct categories favored per community.
  std::size_t categories_per_community = 18;
  /// Mean likes per user per 30 days; individual rates are log-normal around
  /// this (liking pages is infrequent and bursty — paper Figure 4).
  double monthly_like_rate = 1.6;
  /// Log-sigma of the per-user rate spread.
  double rate_sigma = 1.1;
  /// Per-period random-walk step applied to community mixtures; larger means
  /// faster interest drift (more temporal-affinity signal).
  double drift_rate = 0.4;
  std::uint64_t seed = 11;
};

struct GeneratedPageLikes {
  PageLikeLog log;
  PageLikeGroundTruth truth;
};

/// Simulates likes over `timeline` (the drift step is per timeline period).
GeneratedPageLikes GeneratePageLikes(const PageLikeGenConfig& config,
                                     const Timeline& timeline);

}  // namespace greca

#endif  // GRECA_DATASET_PAGE_LIKES_H_
