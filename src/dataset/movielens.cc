#include "dataset/movielens.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace greca {

namespace {

std::string_view FormatSeparator(MovieLensFormat format) {
  switch (format) {
    case MovieLensFormat::kMl1m:
      return "::";
    case MovieLensFormat::kMl100k:
      return "\t";
    case MovieLensFormat::kCsv:
      return ",";
  }
  return "::";
}

}  // namespace

Result<MovieLensData> ParseRatings(std::istream& in,
                                   const MovieLensParseOptions& options) {
  const std::string_view sep = FormatSeparator(options.format);
  MovieLensData data;
  std::vector<RatingRecord> records;
  std::string line;
  std::size_t line_no = 0;
  bool skipped_header = false;

  const auto fail = [&](const std::string& why) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    // CSV files carry a header row ("userId,movieId,rating,timestamp").
    if (options.format == MovieLensFormat::kCsv && !skipped_header) {
      skipped_header = true;
      if (!ParseInt64(Split(trimmed, sep)[0]).has_value()) continue;
      // First row was already data; fall through and parse it.
    }
    const auto fields = Split(trimmed, sep);
    if (fields.size() != 4) {
      if (options.strict) return fail("expected 4 fields, got " +
                                      std::to_string(fields.size()));
      ++data.skipped_lines;
      continue;
    }
    const auto user = ParseInt64(fields[0]);
    const auto item = ParseInt64(fields[1]);
    const auto rating = ParseDouble(fields[2]);
    const auto ts = ParseInt64(fields[3]);
    if (!user || !item || !rating || !ts) {
      if (options.strict) return fail("non-numeric field");
      ++data.skipped_lines;
      continue;
    }
    if (*rating < options.min_rating || *rating > options.max_rating) {
      if (options.strict) {
        return fail("rating " + FormatDouble(*rating, 2) + " out of range");
      }
      ++data.skipped_lines;
      continue;
    }

    const auto [uit, uinserted] = data.user_id_map.try_emplace(
        *user, static_cast<UserId>(data.user_external_ids.size()));
    if (uinserted) data.user_external_ids.push_back(*user);
    const auto [iit, iinserted] = data.item_id_map.try_emplace(
        *item, static_cast<ItemId>(data.item_external_ids.size()));
    if (iinserted) data.item_external_ids.push_back(*item);

    records.push_back(RatingRecord{uit->second, iit->second, *rating, *ts});
  }
  if (records.empty()) {
    return Status::ParseError("no valid rating lines found");
  }
  data.ratings =
      RatingsDataset::FromRecords(data.user_external_ids.size(),
                                  data.item_external_ids.size(),
                                  std::move(records));
  return data;
}

Result<MovieLensData> ParseRatingsFile(const std::string& path,
                                       const MovieLensParseOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  return ParseRatings(in, options);
}

Result<std::vector<MovieInfo>> ParseMovies(std::istream& in,
                                           MovieLensFormat format,
                                           bool strict) {
  const std::string_view sep = FormatSeparator(format);
  std::vector<MovieInfo> movies;
  std::string line;
  std::size_t line_no = 0;
  bool skipped_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (format == MovieLensFormat::kCsv && !skipped_header) {
      skipped_header = true;
      if (!ParseInt64(Split(trimmed, sep)[0]).has_value()) continue;
    }
    const auto fields = Split(trimmed, sep);
    if (fields.size() < 3) {
      if (strict) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 3 fields");
      }
      continue;
    }
    const auto id = ParseInt64(fields[0]);
    if (!id) {
      if (strict) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad movie id");
      }
      continue;
    }
    MovieInfo info;
    info.external_id = *id;
    info.title = std::string(fields[1]);
    for (const auto genre : Split(fields[2], "|")) {
      if (!Trim(genre).empty()) info.genres.emplace_back(Trim(genre));
    }
    movies.push_back(std::move(info));
  }
  return movies;
}

void WriteRatingsMl1m(const RatingsDataset& ds, std::ostream& out) {
  for (UserId u = 0; u < ds.num_users(); ++u) {
    for (const auto& e : ds.RatingsOfUser(u)) {
      out << u << "::" << e.item << "::" << e.rating << "::" << e.timestamp
          << '\n';
    }
  }
}

}  // namespace greca
