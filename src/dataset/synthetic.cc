#include "dataset/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/distributions.h"

namespace greca {

double RatingGroundTruth::TruePreference(UserId u, ItemId i) const {
  double dot = 0.0;
  const double* uf = &user_factors[u * latent_dim];
  const double* itf = &item_factors[i * latent_dim];
  for (std::size_t d = 0; d < latent_dim; ++d) dot += uf[d] * itf[d];
  const double raw = item_quality[i] + user_bias[u] + taste_weight * dot;
  return std::clamp(raw, 1.0, 5.0);
}

SyntheticRatings GenerateSyntheticRatings(
    const SyntheticRatingsConfig& config) {
  assert(config.num_users > 0);
  assert(config.num_items > 0);
  assert(config.min_ratings_per_user <= config.num_items);
  Rng rng(config.seed);
  Rng factor_rng = rng.Fork(1);
  Rng activity_rng = rng.Fork(2);
  Rng choice_rng = rng.Fork(3);
  Rng time_rng = rng.Fork(4);

  SyntheticRatings out;
  RatingGroundTruth& truth = out.truth;
  truth.latent_dim = config.latent_dim;
  truth.taste_weight = config.taste_weight;
  truth.user_factors.resize(config.num_users * config.latent_dim);
  truth.item_factors.resize(config.num_items * config.latent_dim);
  truth.item_quality.resize(config.num_items);
  truth.user_bias.resize(config.num_users);

  const double factor_scale = 1.0 / std::sqrt(static_cast<double>(
                                        std::max<std::size_t>(1, config.latent_dim)));
  for (auto& f : truth.user_factors) {
    f = factor_rng.NextGaussian() * factor_scale;
  }
  for (auto& f : truth.item_factors) {
    f = factor_rng.NextGaussian() * factor_scale;
  }
  // MovieLens 1M item means cluster around 3.2 with spread ~0.6.
  for (auto& q : truth.item_quality) {
    q = std::clamp(3.2 + 0.6 * factor_rng.NextGaussian(), 1.5, 4.8);
  }
  for (auto& b : truth.user_bias) {
    b = 0.35 * factor_rng.NextGaussian();
  }

  // Per-user activity: log-normal scaled so the sum lands near the target.
  const double mean_activity = static_cast<double>(config.target_ratings) /
                               static_cast<double>(config.num_users);
  // For a log-normal, E[X] = exp(mu + sigma^2/2); solve mu for the target mean.
  const double mu = std::log(mean_activity) -
                    config.activity_sigma * config.activity_sigma / 2.0;
  LogNormalSampler activity(mu, config.activity_sigma,
                            static_cast<double>(config.min_ratings_per_user),
                            static_cast<double>(config.num_items));
  std::vector<std::size_t> counts(config.num_users);
  for (auto& c : counts) {
    c = static_cast<std::size_t>(std::llround(activity.Sample(activity_rng)));
  }

  ZipfSampler popularity(config.num_items, config.popularity_exponent);

  std::vector<RatingRecord> records;
  records.reserve(static_cast<std::size_t>(
      static_cast<double>(config.target_ratings) * 1.1));
  std::unordered_set<ItemId> seen;
  for (UserId u = 0; u < config.num_users; ++u) {
    const std::size_t want = counts[u];
    seen.clear();
    // Each user is active inside a window of the global span (people join and
    // leave the platform); this makes timestamps realistic for the timeline.
    const auto window_len = static_cast<Timestamp>(
        static_cast<double>(config.span_seconds) *
        time_rng.NextDouble(0.25, 1.0));
    const Timestamp window_start =
        config.epoch +
        time_rng.NextInt(0, std::max<Timestamp>(
                                0, config.span_seconds - window_len));
    std::size_t attempts = 0;
    const std::size_t max_attempts = want * 30 + 100;
    while (seen.size() < want && attempts < max_attempts) {
      ++attempts;
      const auto item = static_cast<ItemId>(popularity.Sample(choice_rng));
      if (!seen.insert(item).second) continue;
      const double star_raw =
          truth.TruePreference(u, item) +
          config.noise_sigma * choice_rng.NextGaussian();
      const double star = std::clamp(std::round(star_raw), 1.0, 5.0);
      const Timestamp ts =
          window_start +
          time_rng.NextInt(0, std::max<Timestamp>(1, window_len) - 1);
      records.push_back(RatingRecord{u, item, star, ts});
    }
  }

  out.dataset = RatingsDataset::FromRecords(config.num_users, config.num_items,
                                            std::move(records));
  return out;
}

SyntheticRatings GenerateScaleRatings(const ScaleRatingsConfig& config) {
  assert(config.num_users > 0);
  assert(config.num_items > 0);
  assert(config.min_ratings_per_user >= 1);
  assert(config.min_ratings_per_user <= config.max_ratings_per_user);
  assert(config.max_ratings_per_user <= config.num_items);
  assert(config.pareto_alpha > 1.0);
  Rng rng(config.seed);
  Rng factor_rng = rng.Fork(1);
  Rng activity_rng = rng.Fork(2);
  Rng choice_rng = rng.Fork(3);
  Rng time_rng = rng.Fork(4);

  SyntheticRatings out;
  RatingGroundTruth& truth = out.truth;
  truth.latent_dim = config.latent_dim;
  truth.taste_weight = config.taste_weight;
  truth.user_factors.resize(config.num_users * config.latent_dim);
  truth.item_factors.resize(config.num_items * config.latent_dim);
  truth.item_quality.resize(config.num_items);
  truth.user_bias.resize(config.num_users);

  const double factor_scale =
      1.0 / std::sqrt(
                static_cast<double>(std::max<std::size_t>(1, config.latent_dim)));
  for (auto& f : truth.user_factors) {
    f = factor_rng.NextGaussian() * factor_scale;
  }
  for (auto& f : truth.item_factors) {
    f = factor_rng.NextGaussian() * factor_scale;
  }
  for (auto& q : truth.item_quality) {
    q = std::clamp(3.2 + 0.6 * factor_rng.NextGaussian(), 1.5, 4.8);
  }
  for (auto& b : truth.user_bias) {
    b = 0.35 * factor_rng.NextGaussian();
  }

  // Truncated-Pareto activity by inverse CDF; the mean stays O(min) however
  // heavy the tail, which is what keeps million-user datasets generable.
  const double tail_index = config.pareto_alpha - 1.0;
  const auto pareto_count = [&](Rng& r) {
    const double u = 1.0 - r.NextDouble();  // (0, 1]
    const double raw = static_cast<double>(config.min_ratings_per_user) *
                       std::pow(u, -1.0 / tail_index);
    return static_cast<std::size_t>(std::llround(
        std::clamp(raw, static_cast<double>(config.min_ratings_per_user),
                   static_cast<double>(config.max_ratings_per_user))));
  };

  ZipfSampler popularity(config.num_items, config.popularity_exponent);

  std::vector<RatingRecord> records;
  records.reserve(config.num_users * config.min_ratings_per_user * 2);
  std::unordered_set<ItemId> seen;
  for (UserId u = 0; u < config.num_users; ++u) {
    const std::size_t want = pareto_count(activity_rng);
    seen.clear();
    std::size_t attempts = 0;
    const std::size_t max_attempts = want * 30 + 100;
    while (seen.size() < want && attempts < max_attempts) {
      ++attempts;
      const auto item = static_cast<ItemId>(popularity.Sample(choice_rng));
      if (!seen.insert(item).second) continue;
      const double star_raw = truth.TruePreference(u, item) +
                              config.noise_sigma * choice_rng.NextGaussian();
      const double star = std::clamp(std::round(star_raw), 1.0, 5.0);
      const Timestamp ts =
          config.epoch +
          time_rng.NextInt(0, std::max<Timestamp>(1, config.span_seconds) - 1);
      records.push_back(RatingRecord{u, item, star, ts});
    }
  }

  out.dataset = RatingsDataset::FromRecords(config.num_users, config.num_items,
                                            std::move(records));
  return out;
}

std::vector<std::vector<UserId>> GenerateScaleGroups(
    const ScaleGroupsConfig& config, std::size_t num_users,
    std::size_t num_shards,
    const std::function<std::size_t(UserId)>& shard_of) {
  assert(config.group_size >= 1);
  assert(config.group_size <= num_users);
  assert(num_shards >= 1);
  Rng rng(config.seed);
  std::vector<std::vector<UserId>> groups;
  groups.reserve(config.num_groups);
  std::vector<UserId> group;
  for (std::size_t g = 0; g < config.num_groups; ++g) {
    group.clear();
    const bool local = num_shards > 1 && rng.NextBool(config.locality);
    const std::size_t target = local ? rng.NextBounded(num_shards) : 0;
    // Rejection-draw distinct members (shard-restricted for local groups);
    // the attempt cap guards degenerate placements (a shard smaller than
    // the group) by falling back to population-uniform fill.
    std::size_t attempts = 0;
    const std::size_t max_attempts =
        config.group_size * (local ? num_shards * 30 : 30) + 100;
    while (group.size() < config.group_size && attempts < max_attempts) {
      ++attempts;
      const auto u = static_cast<UserId>(rng.NextBounded(num_users));
      if (local && shard_of(u) != target) continue;
      if (std::find(group.begin(), group.end(), u) != group.end()) continue;
      group.push_back(u);
    }
    while (group.size() < config.group_size) {
      const auto u = static_cast<UserId>(rng.NextBounded(num_users));
      if (std::find(group.begin(), group.end(), u) != group.end()) continue;
      group.push_back(u);
    }
    groups.push_back(group);
  }
  return groups;
}

}  // namespace greca
