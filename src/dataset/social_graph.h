// Undirected friendship graph (the Facebook substrate).
//
// Static affinity in the paper is |friends(u) ∩ friends(u')| normalized; this
// class stores adjacency and answers common-neighbor counts. Two generators
// are provided: the seed-and-invite process that mirrors the paper's user
// study recruitment (13 seeds inviting 10–20 friends each), and a
// preferential-attachment process for scalability experiments.
#ifndef GRECA_DATASET_SOCIAL_GRAPH_H_
#define GRECA_DATASET_SOCIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace greca {

class SocialGraph {
 public:
  SocialGraph() = default;

  /// Builds from an edge list. Self-loops are dropped; duplicate edges are
  /// collapsed. Endpoints must be < num_users.
  static SocialGraph FromEdges(std::size_t num_users,
                               std::vector<std::pair<UserId, UserId>> edges);

  std::size_t num_users() const;
  std::size_t num_edges() const { return num_edges_; }

  /// Neighbors of `u`, sorted ascending.
  std::span<const UserId> FriendsOf(UserId u) const;

  bool AreFriends(UserId u, UserId v) const;

  /// |friends(u) ∩ friends(v)| via sorted merge — the paper's raw static
  /// affinity signal (§4.1.2).
  std::size_t CommonFriends(UserId u, UserId v) const;

  double AverageDegree() const;

 private:
  std::vector<std::size_t> offsets_;  // size num_users+1
  std::vector<UserId> adjacency_;
  std::size_t num_edges_ = 0;
};

/// Recruitment process of the paper's user study: `num_seeds` seed users each
/// invite between min_invites and max_invites friends from the remaining
/// pool (invitees may be shared between seeds); invitees are additionally
/// linked to each other with `peer_link_prob` to create realistic triangles
/// (common friends).
struct SeedAndInviteConfig {
  std::size_t num_seeds = 13;
  std::size_t total_users = 72;
  std::size_t min_invites = 10;
  std::size_t max_invites = 20;
  double peer_link_prob = 0.12;
  std::uint64_t seed = 7;
};

SocialGraph GenerateSeedAndInvite(const SeedAndInviteConfig& config);

/// Barabási–Albert style preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes with probability proportional to degree.
SocialGraph GeneratePreferentialAttachment(std::size_t num_users,
                                           std::size_t edges_per_node,
                                           std::uint64_t seed);

// --- Influence centrality (per-member consensus weighting) ---
//
// Both return one weight per user in (0, 1], deterministic for a given graph
// and equivariant under node relabeling (a permuted graph yields the
// permuted weights — exactly for degree, within fp round-off for
// propagation, whose neighbor sums accumulate in adjacency order). Isolated
// nodes get the smoothed floor rather than 0, so normalizing a group's
// weights never divides by zero.

/// Smoothed degree centrality (1 + deg(u)) / (1 + max_v deg(v)).
std::vector<double> DegreeCentrality(const SocialGraph& graph);

/// Katz-style propagation centrality: `iterations` rounds of
///   x'(u) = 1 + β·Σ_{v ∈ N(u)} x(v),  β = damping / (max_deg + 1),
/// normalized by the maximum. β < 1/max_deg guarantees the iteration
/// contracts for damping < 1, so a handful of rounds is effectively
/// converged. Captures who is connected to well-connected members, not just
/// how many friends someone has.
std::vector<double> PropagationCentrality(const SocialGraph& graph,
                                          double damping = 0.85,
                                          std::size_t iterations = 16);

}  // namespace greca

#endif  // GRECA_DATASET_SOCIAL_GRAPH_H_
