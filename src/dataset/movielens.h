// Parsers for the on-disk MovieLens formats.
//
// Supported formats:
//  * ml-1m   — "UserID::MovieID::Rating::Timestamp" (ratings.dat), plus
//              movies.dat ("MovieID::Title::Genres") and users.dat.
//  * ml-100k — tab-separated "user item rating timestamp" (u.data).
//  * csv     — "userId,movieId,rating,timestamp" with a header row
//              (ml-latest style).
//
// External ids are arbitrary and sparse; parsers remap them to dense 0-based
// UserId/ItemId and report the mapping so callers can translate back.
#ifndef GRECA_DATASET_MOVIELENS_H_
#define GRECA_DATASET_MOVIELENS_H_

#include <cstdint>
#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataset/ratings.h"

namespace greca {

enum class MovieLensFormat {
  kMl1m,    // "::"-separated
  kMl100k,  // tab-separated
  kCsv,     // comma-separated with header
};

/// Movie metadata from movies.dat / movies.csv.
struct MovieInfo {
  std::int64_t external_id = 0;
  std::string title;
  std::vector<std::string> genres;
};

/// A parsed ratings file plus the external→dense id mappings.
struct MovieLensData {
  RatingsDataset ratings;
  std::vector<std::int64_t> user_external_ids;  // dense UserId -> external
  std::vector<std::int64_t> item_external_ids;  // dense ItemId -> external
  std::unordered_map<std::int64_t, UserId> user_id_map;
  std::unordered_map<std::int64_t, ItemId> item_id_map;
  /// Number of malformed lines skipped (strict=false) — surfaced so callers
  /// can decide whether the file was mostly garbage.
  std::size_t skipped_lines = 0;
};

struct MovieLensParseOptions {
  MovieLensFormat format = MovieLensFormat::kMl1m;
  /// When true, any malformed line fails the parse; when false malformed
  /// lines are counted in `skipped_lines` and skipped.
  bool strict = true;
  /// Ratings outside [min_rating, max_rating] are malformed.
  double min_rating = 0.5;
  double max_rating = 5.0;
};

/// Parses a ratings stream. Lines are "<user><sep><item><sep><rating><sep><ts>".
Result<MovieLensData> ParseRatings(std::istream& in,
                                   const MovieLensParseOptions& options);

/// Parses a ratings file from disk.
Result<MovieLensData> ParseRatingsFile(const std::string& path,
                                       const MovieLensParseOptions& options);

/// Parses movies.dat (ml-1m, "MovieID::Title::Genre1|Genre2") or movies.csv.
Result<std::vector<MovieInfo>> ParseMovies(std::istream& in,
                                           MovieLensFormat format,
                                           bool strict = true);

/// Serializes a dataset back to ml-1m ratings.dat format (round-trip support
/// and test fixture generation). External ids are the dense ids unless a
/// mapping is given.
void WriteRatingsMl1m(const RatingsDataset& ds, std::ostream& out);

}  // namespace greca

#endif  // GRECA_DATASET_MOVIELENS_H_
