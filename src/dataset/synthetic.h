// Statistics-calibrated synthetic twin of the MovieLens 1M ratings dataset.
//
// The real dataset cannot be redistributed with this repository, so all
// experiments run on a generator that matches its shape: 6 040 users,
// 3 952 movies, ~1 M ratings on a 1..5 star scale, Zipfian item popularity,
// log-normally distributed user activity, and a latent-factor rating model.
// The generator also exposes its ground truth (latent user/item factors),
// which the quality-experiment oracle uses as the simulated human judge.
#ifndef GRECA_DATASET_SYNTHETIC_H_
#define GRECA_DATASET_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dataset/ratings.h"

namespace greca {

struct SyntheticRatingsConfig {
  std::size_t num_users = 6'040;
  std::size_t num_items = 3'952;
  /// Target rating count; achieved count is within a few percent (per-user
  /// activities are rounded and clamped). MovieLens 1M has 1 000 209.
  std::size_t target_ratings = 1'000'209;
  /// Zipf exponent of item popularity. ~0.9 matches MovieLens.
  double popularity_exponent = 0.9;
  /// Log-normal user-activity spread (sigma of ln #ratings).
  double activity_sigma = 0.9;
  /// Every user rates at least this many items (MovieLens guarantees 20).
  std::size_t min_ratings_per_user = 20;
  /// Latent taste dimensionality shared by users and items.
  std::size_t latent_dim = 8;
  /// Strength of the latent-taste term relative to quality/bias/noise.
  double taste_weight = 1.8;
  /// Std-dev of observation noise added before rounding to stars.
  double noise_sigma = 0.35;
  /// Rating timestamps span [epoch, epoch + span_seconds).
  Timestamp epoch = 0;
  Timestamp span_seconds = 3 * 365 * kSecondsPerDayForRatings;
  std::uint64_t seed = 42;

  static constexpr Timestamp kSecondsPerDayForRatings = 86'400;
};

/// The generator's hidden state: the "true" tastes behind the observed stars.
/// TruePreference() is the noise-free utility a user has for an item, mapped
/// to the rating scale; the quality experiments use it as the judge.
struct RatingGroundTruth {
  std::size_t latent_dim = 0;
  std::vector<double> user_factors;  // num_users × latent_dim, row-major
  std::vector<double> item_factors;  // num_items × latent_dim
  std::vector<double> item_quality;  // per-item intercept
  std::vector<double> user_bias;     // per-user intercept
  double taste_weight = 0.0;

  /// Noise-free utility on the 1..5 scale (clamped).
  double TruePreference(UserId u, ItemId i) const;
};

struct SyntheticRatings {
  RatingsDataset dataset;
  RatingGroundTruth truth;
};

/// Generates the dataset. Deterministic in `config.seed`.
SyntheticRatings GenerateSyntheticRatings(const SyntheticRatingsConfig& config);

}  // namespace greca

#endif  // GRECA_DATASET_SYNTHETIC_H_
