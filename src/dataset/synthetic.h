// Statistics-calibrated synthetic twin of the MovieLens 1M ratings dataset.
//
// The real dataset cannot be redistributed with this repository, so all
// experiments run on a generator that matches its shape: 6 040 users,
// 3 952 movies, ~1 M ratings on a 1..5 star scale, Zipfian item popularity,
// log-normally distributed user activity, and a latent-factor rating model.
// The generator also exposes its ground truth (latent user/item factors),
// which the quality-experiment oracle uses as the simulated human judge.
#ifndef GRECA_DATASET_SYNTHETIC_H_
#define GRECA_DATASET_SYNTHETIC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "dataset/ratings.h"

namespace greca {

struct SyntheticRatingsConfig {
  std::size_t num_users = 6'040;
  std::size_t num_items = 3'952;
  /// Target rating count; achieved count is within a few percent (per-user
  /// activities are rounded and clamped). MovieLens 1M has 1 000 209.
  std::size_t target_ratings = 1'000'209;
  /// Zipf exponent of item popularity. ~0.9 matches MovieLens.
  double popularity_exponent = 0.9;
  /// Log-normal user-activity spread (sigma of ln #ratings).
  double activity_sigma = 0.9;
  /// Every user rates at least this many items (MovieLens guarantees 20).
  std::size_t min_ratings_per_user = 20;
  /// Latent taste dimensionality shared by users and items.
  std::size_t latent_dim = 8;
  /// Strength of the latent-taste term relative to quality/bias/noise.
  double taste_weight = 1.8;
  /// Std-dev of observation noise added before rounding to stars.
  double noise_sigma = 0.35;
  /// Rating timestamps span [epoch, epoch + span_seconds).
  Timestamp epoch = 0;
  Timestamp span_seconds = 3 * 365 * kSecondsPerDayForRatings;
  std::uint64_t seed = 42;

  static constexpr Timestamp kSecondsPerDayForRatings = 86'400;
};

/// The generator's hidden state: the "true" tastes behind the observed stars.
/// TruePreference() is the noise-free utility a user has for an item, mapped
/// to the rating scale; the quality experiments use it as the judge.
struct RatingGroundTruth {
  std::size_t latent_dim = 0;
  std::vector<double> user_factors;  // num_users × latent_dim, row-major
  std::vector<double> item_factors;  // num_items × latent_dim
  std::vector<double> item_quality;  // per-item intercept
  std::vector<double> user_bias;     // per-user intercept
  double taste_weight = 0.0;

  /// Noise-free utility on the 1..5 scale (clamped).
  double TruePreference(UserId u, ItemId i) const;
};

struct SyntheticRatings {
  RatingsDataset dataset;
  RatingGroundTruth truth;
};

/// Generates the dataset. Deterministic in `config.seed`.
SyntheticRatings GenerateSyntheticRatings(const SyntheticRatingsConfig& config);

// --- Scale-up generation (the shard-per-core harness, src/shard/) ---
//
// The MovieLens twin above targets study-sized experiments; the sharded
// engine needs MILLIONS of users, where per-user log-normal activity with a
// 20-rating floor would cost tens of millions of ratings per million users
// just in floors. The scale generator keeps the same latent-factor truth
// model but swaps the activity model for a truncated Pareto (few ratings
// for almost everyone, a heavy tail of power raters) and keeps items
// Zipf-popular — the canonical web-scale shape on both axes.

struct ScaleRatingsConfig {
  std::size_t num_users = 1'000'000;
  std::size_t num_items = 100'000;
  /// Zipf exponent of item popularity (P(rank r) ∝ 1/(r+1)^s).
  double popularity_exponent = 1.05;
  /// Per-user rating counts follow a Pareto with tail index
  /// `pareto_alpha` − 1, truncated to [min, max]:
  /// count = clamp(min · U^(−1/(α−1)), min, max) for uniform U in (0, 1].
  std::size_t min_ratings_per_user = 4;
  std::size_t max_ratings_per_user = 512;
  double pareto_alpha = 2.2;
  /// Latent truth model — same semantics as SyntheticRatingsConfig.
  std::size_t latent_dim = 4;
  double taste_weight = 1.8;
  double noise_sigma = 0.35;
  Timestamp epoch = 0;
  Timestamp span_seconds =
      365 * SyntheticRatingsConfig::kSecondsPerDayForRatings;
  std::uint64_t seed = 7;
};

/// Generates the scale dataset. Deterministic in `config.seed`; the truth
/// factors back the scale harness's PoolPredictor (no CF model is trained
/// at this scale).
SyntheticRatings GenerateScaleRatings(const ScaleRatingsConfig& config);

/// Ad-hoc query groups with a tunable shard-locality knob.
struct ScaleGroupsConfig {
  std::size_t num_groups = 1'000;
  std::size_t group_size = 5;
  /// Probability that a group is drawn entirely from ONE shard (the rest
  /// are drawn population-uniform). 1.0 models community-local groups that
  /// touch a single shard; 0.0 models adversarial scatter. Monotone by
  /// construction: raising it can only lower the expected shards-touched
  /// per group (tests/synthetic_test.cc).
  double locality = 1.0;
  std::uint64_t seed = 11;
};

/// Generates groups of distinct users. `shard_of` is the router's placement
/// function (kept as a callback so dataset/ stays independent of shard/);
/// `num_shards` scopes the local draw. Deterministic in `config.seed`.
std::vector<std::vector<UserId>> GenerateScaleGroups(
    const ScaleGroupsConfig& config, std::size_t num_users,
    std::size_t num_shards,
    const std::function<std::size_t(UserId)>& shard_of);

}  // namespace greca

#endif  // GRECA_DATASET_SYNTHETIC_H_
