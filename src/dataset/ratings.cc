#include "dataset/ratings.h"

#include <algorithm>
#include <cassert>

#include "common/stats.h"

namespace greca {

RatingsDataset RatingsDataset::FromRecords(std::size_t num_users,
                                           std::size_t num_items,
                                           std::vector<RatingRecord> records) {
  // Deduplicate (user, item): keep the latest timestamp (then highest rating
  // for full determinism on timestamp ties).
  std::sort(records.begin(), records.end(),
            [](const RatingRecord& a, const RatingRecord& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.item != b.item) return a.item < b.item;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.rating < b.rating;
            });
  std::vector<RatingRecord> unique;
  unique.reserve(records.size());
  for (const auto& r : records) {
    assert(r.user < num_users);
    assert(r.item < num_items);
    if (!unique.empty() && unique.back().user == r.user &&
        unique.back().item == r.item) {
      unique.back() = r;  // later (timestamp, rating) wins
    } else {
      unique.push_back(r);
    }
  }

  RatingsDataset ds;
  ds.num_users_ = num_users;
  ds.num_items_ = num_items;

  // By-user CSR (records already sorted by user then item).
  ds.user_offsets_.assign(num_users + 1, 0);
  for (const auto& r : unique) ++ds.user_offsets_[r.user + 1];
  for (std::size_t u = 0; u < num_users; ++u) {
    ds.user_offsets_[u + 1] += ds.user_offsets_[u];
  }
  ds.by_user_flat_.reserve(unique.size());
  for (const auto& r : unique) {
    ds.by_user_flat_.push_back({r.item, r.rating, r.timestamp});
  }

  // By-item CSR.
  ds.item_offsets_.assign(num_items + 1, 0);
  for (const auto& r : unique) ++ds.item_offsets_[r.item + 1];
  for (std::size_t i = 0; i < num_items; ++i) {
    ds.item_offsets_[i + 1] += ds.item_offsets_[i];
  }
  ds.by_item_flat_.resize(unique.size());
  std::vector<std::size_t> cursor(ds.item_offsets_.begin(),
                                  ds.item_offsets_.end() - 1);
  for (const auto& r : unique) {
    ds.by_item_flat_[cursor[r.item]++] = {r.user, r.rating, r.timestamp};
  }
  return ds;
}

std::span<const UserRatingEntry> RatingsDataset::RatingsOfUser(UserId u) const {
  assert(u < num_users_);
  return {by_user_flat_.data() + user_offsets_[u],
          user_offsets_[u + 1] - user_offsets_[u]};
}

std::span<const ItemRatingEntry> RatingsDataset::RatingsOfItem(ItemId i) const {
  assert(i < num_items_);
  return {by_item_flat_.data() + item_offsets_[i],
          item_offsets_[i + 1] - item_offsets_[i]};
}

std::optional<Score> RatingsDataset::GetRating(UserId u, ItemId i) const {
  const auto ratings = RatingsOfUser(u);
  const auto it = std::lower_bound(
      ratings.begin(), ratings.end(), i,
      [](const UserRatingEntry& e, ItemId item) { return e.item < item; });
  if (it == ratings.end() || it->item != i) return std::nullopt;
  return it->rating;
}

DatasetStats RatingsDataset::Stats() const {
  DatasetStats stats;
  stats.num_users = num_users_;
  stats.num_items = num_items_;
  stats.num_ratings = num_ratings();
  OnlineStats acc;
  for (const auto& e : by_user_flat_) acc.Add(e.rating);
  stats.mean_rating = acc.mean();
  stats.min_rating = acc.count() == 0 ? 0.0 : acc.min();
  stats.max_rating = acc.count() == 0 ? 0.0 : acc.max();
  const double cells =
      static_cast<double>(num_users_) * static_cast<double>(num_items_);
  stats.density = cells == 0.0 ? 0.0 : static_cast<double>(num_ratings()) / cells;
  return stats;
}

std::vector<ItemId> RatingsDataset::TopPopularItems(std::size_t n) const {
  std::vector<ItemId> items(num_items_);
  for (std::size_t i = 0; i < num_items_; ++i) {
    items[i] = static_cast<ItemId>(i);
  }
  std::stable_sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    const std::size_t da = item_offsets_[a + 1] - item_offsets_[a];
    const std::size_t db = item_offsets_[b + 1] - item_offsets_[b];
    if (da != db) return da > db;
    return a < b;
  });
  if (items.size() > n) items.resize(n);
  return items;
}

std::vector<ItemId> RatingsDataset::HighVarianceItems(
    std::size_t n, std::size_t popularity_pool) const {
  const std::vector<ItemId> pool = TopPopularItems(popularity_pool);
  std::vector<std::pair<double, ItemId>> scored;
  scored.reserve(pool.size());
  for (const ItemId i : pool) {
    OnlineStats acc;
    for (const auto& e : RatingsOfItem(i)) acc.Add(e.rating);
    scored.emplace_back(acc.variance(), i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<ItemId> out;
  out.reserve(std::min(n, scored.size()));
  for (std::size_t i = 0; i < scored.size() && i < n; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

double RatingsDataset::ItemMeanRating(ItemId i, double fallback) const {
  const auto ratings = RatingsOfItem(i);
  if (ratings.empty()) return fallback;
  double sum = 0.0;
  for (const auto& e : ratings) sum += e.rating;
  return sum / static_cast<double>(ratings.size());
}

double RatingsDataset::UserMeanRating(UserId u, double fallback) const {
  const auto ratings = RatingsOfUser(u);
  if (ratings.empty()) return fallback;
  double sum = 0.0;
  for (const auto& e : ratings) sum += e.rating;
  return sum / static_cast<double>(ratings.size());
}

}  // namespace greca
