#include "dataset/ratings_overlay.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

namespace greca {

namespace {

/// The FromRecords dedup rule: of two ratings for the same (user, item), the
/// lexicographic max of (timestamp, rating) wins. An incoming event that
/// TIES the stored key loses here: the two are the same value (the key is
/// the whole payload), so dropping the newcomer folds to the identical state
/// while keeping exact duplicates no-ops — redelivered batches must not
/// publish phantom generations.
bool WinsOver(Timestamp ts_a, Score rating_a, Timestamp ts_b, Score rating_b) {
  if (ts_a != ts_b) return ts_a > ts_b;
  return rating_a > rating_b;
}

/// Binary search a sorted-by-item rating row.
const UserRatingEntry* FindItem(std::span<const UserRatingEntry> row,
                                ItemId item) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), item,
      [](const UserRatingEntry& e, ItemId i) { return e.item < i; });
  return (it != row.end() && it->item == item) ? &*it : nullptr;
}

}  // namespace

RatingsOverlay::RatingsOverlay(std::shared_ptr<const RatingsDataset> base)
    : base_(std::move(base)) {
  assert(base_ != nullptr);
  delta_.resize(base_->num_users());
}

std::shared_ptr<const RatingsOverlay> RatingsOverlay::WithEvents(
    std::span<const RatingRecord> events, ApplyStats* stats) const {
  auto next = std::make_shared<RatingsOverlay>(base_);
  next->delta_ = delta_;  // one shared_ptr per user, not one rating
  next->delta_entries_ = delta_entries_;
  next->delta_only_entries_ = delta_only_entries_;
  if (stats != nullptr) *stats = ApplyStats{};

  // Group the events by user, preserving arrival order within a user (the
  // fold is sequential: each event competes against the state left by its
  // predecessors, so coalesced batches replay deterministically).
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].user < events[b].user;
                   });

  std::vector<UserRatingEntry> row;  // working copy of one delta row
  for (std::size_t run = 0; run < order.size();) {
    const UserId user = events[order[run]].user;
    assert(user < num_users());
    const std::span<const UserRatingEntry> base_row =
        base_->RatingsOfUser(user);

    row.clear();
    const auto& old_row = next->delta_[user];
    if (old_row != nullptr) row = *old_row;
    bool changed = false;
    std::size_t added_entries = 0;  // events inserted as new delta entries
    std::size_t added_only = 0;     // ... whose item the base never rated

    for (; run < order.size() && events[order[run]].user == user; ++run) {
      const RatingRecord& e = events[order[run]];
      assert(e.item < num_items());
      // The stored rating this event competes with: the live delta entry if
      // one exists (it already beat the base), else the base entry.
      const auto it = std::lower_bound(
          row.begin(), row.end(), e.item,
          [](const UserRatingEntry& entry, ItemId i) {
            return entry.item < i;
          });
      if (it != row.end() && it->item == e.item) {
        if (WinsOver(e.timestamp, e.rating, it->timestamp, it->rating)) {
          it->rating = e.rating;
          it->timestamp = e.timestamp;
          changed = true;
          if (stats != nullptr) ++stats->applied;
        } else if (stats != nullptr) {
          ++stats->ignored_stale;
        }
        continue;
      }
      const UserRatingEntry* stored = FindItem(base_row, e.item);
      if (stored != nullptr &&
          !WinsOver(e.timestamp, e.rating, stored->timestamp,
                    stored->rating)) {
        if (stats != nullptr) ++stats->ignored_stale;
        continue;
      }
      row.insert(it, UserRatingEntry{e.item, e.rating, e.timestamp});
      changed = true;
      ++added_entries;
      if (stored == nullptr) ++added_only;
      if (stats != nullptr) ++stats->applied;
    }

    if (!changed) continue;  // every event for this user was stale
    // Replacements change neither count; only insertions do (rows never
    // shrink), so the batch's increments were tallied during insertion.
    next->delta_entries_ += added_entries;
    next->delta_only_entries_ += added_only;
    next->delta_[user] =
        std::make_shared<const std::vector<UserRatingEntry>>(row);
    if (stats != nullptr) stats->touched_users.push_back(user);
  }
  return next;
}

std::span<const UserRatingEntry> RatingsOverlay::MergedRatingsOfUser(
    UserId u, std::vector<UserRatingEntry>& scratch) const {
  const std::span<const UserRatingEntry> base_row = base_->RatingsOfUser(u);
  const std::span<const UserRatingEntry> delta_row = DeltaOfUser(u);
  if (delta_row.empty()) return base_row;

  scratch.clear();
  scratch.reserve(base_row.size() + delta_row.size());
  std::size_t b = 0, d = 0;
  while (b < base_row.size() && d < delta_row.size()) {
    if (base_row[b].item < delta_row[d].item) {
      scratch.push_back(base_row[b++]);
    } else if (delta_row[d].item < base_row[b].item) {
      scratch.push_back(delta_row[d++]);
    } else {
      scratch.push_back(delta_row[d++]);  // delta overrides base
      ++b;
    }
  }
  scratch.insert(scratch.end(), base_row.begin() + b, base_row.end());
  scratch.insert(scratch.end(), delta_row.begin() + d, delta_row.end());
  return scratch;
}

std::optional<Score> RatingsOverlay::GetRating(UserId u, ItemId i) const {
  if (const UserRatingEntry* e = FindItem(DeltaOfUser(u), i)) return e->rating;
  return base_->GetRating(u, i);
}

RatingsDataset RatingsOverlay::Compact() const {
  std::vector<RatingRecord> records;
  records.reserve(num_ratings());
  std::vector<UserRatingEntry> scratch;
  for (UserId u = 0; u < num_users(); ++u) {
    for (const UserRatingEntry& e : MergedRatingsOfUser(u, scratch)) {
      records.push_back({u, e.item, e.rating, e.timestamp});
    }
  }
  // Rows are already merged latest-wins, so FromRecords finds no duplicates;
  // going through it anyway keeps one single authority for the CSR layout.
  return RatingsDataset::FromRecords(num_users(), num_items(),
                                     std::move(records));
}

}  // namespace greca
