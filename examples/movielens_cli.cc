// Command-line group recommender over a real MovieLens ratings file.
//
//   movielens_cli <ratings-file> [format] [user1 user2 ...]
//
// `format` is one of ml-1m ("::"-separated, the default), ml-100k (tabs) or
// csv. Users are dense ids printed by this tool (external ids are remapped).
// The social layer (friendships, page likes) is not part of MovieLens, so it
// is synthesized over the loaded users — exactly the substitution DESIGN.md
// documents for offline reproduction.
//
// Without arguments, a bundled sample file is used.
#include <iostream>
#include <string>

#include "core/group_recommender.h"
#include "groups/group_formation.h"
#include "dataset/movielens.h"

int main(int argc, char** argv) {
  using namespace greca;

  std::string path = "data/ml-sample/ratings.dat";
  MovieLensParseOptions parse_options;
  parse_options.strict = false;
  parse_options.min_rating = 0.5;
  if (argc > 1) path = argv[1];
  if (argc > 2) {
    const std::string format = argv[2];
    if (format == "ml-100k") {
      parse_options.format = MovieLensFormat::kMl100k;
    } else if (format == "csv") {
      parse_options.format = MovieLensFormat::kCsv;
    } else if (format != "ml-1m") {
      std::cerr << "unknown format '" << format
                << "' (expected ml-1m, ml-100k or csv)\n";
      return 1;
    }
  }

  const auto parsed = ParseRatingsFile(path, parse_options);
  if (!parsed.ok()) {
    std::cerr << "cannot load " << path << ": "
              << parsed.status().ToString() << '\n'
              << "usage: movielens_cli <ratings-file> [ml-1m|ml-100k|csv] "
                 "[user ids...]\n";
    return 1;
  }
  const MovieLensData& data = parsed.value();
  const DatasetStats stats = data.ratings.Stats();
  std::cout << "Loaded " << path << ": " << stats.num_users << " users, "
            << stats.num_items << " movies, " << stats.num_ratings
            << " ratings";
  if (data.skipped_lines > 0) {
    std::cout << " (" << data.skipped_lines << " malformed lines skipped)";
  }
  std::cout << ".\n";

  // Synthesize the social layer over the first up-to-72 loaded users, then
  // rebuild their study ratings from the real data (their actual MovieLens
  // histories double as "study" profiles).
  const std::size_t participants =
      std::min<std::size_t>(72, stats.num_users);
  FacebookStudyConfig study_config;
  study_config.graph.total_users = participants;
  study_config.graph.num_seeds =
      std::max<std::size_t>(1, std::min<std::size_t>(13, participants / 4));
  study_config.popular_set_size =
      std::min<std::size_t>(50, stats.num_items);
  study_config.diversity_set_size =
      std::min<std::size_t>(25, stats.num_items / 2);
  study_config.diversity_pool =
      std::min<std::size_t>(200, stats.num_items);
  study_config.min_ratings_per_user =
      std::min<std::size_t>(30, study_config.popular_set_size);

  // The study generator needs a universe; reuse the parsed ratings through a
  // shell SyntheticRatings (the generator only reads popularity/variance).
  SyntheticRatingsConfig tiny;
  tiny.num_users = std::max<std::size_t>(stats.num_users, participants);
  tiny.num_items = stats.num_items;
  tiny.target_ratings = tiny.num_users * 20;
  tiny.min_ratings_per_user =
      std::min<std::size_t>(20, stats.num_items);
  SyntheticRatings shell = GenerateSyntheticRatings(tiny);
  shell.dataset = data.ratings;  // real ratings drive everything observable
  const FacebookStudy study =
      GenerateFacebookStudy(study_config, shell);

  RecommenderOptions options;
  options.max_candidate_items = std::min<std::size_t>(3'900, stats.num_items);
  const GroupRecommender recommender(data.ratings, study, options);

  Group group;
  for (int a = 3; a < argc; ++a) {
    const auto user = static_cast<UserId>(std::stoul(argv[a]));
    if (user >= participants) {
      std::cerr << "user " << user << " out of range (0.."
                << participants - 1 << ")\n";
      return 1;
    }
    group.push_back(user);
  }
  if (group.empty()) group = {0, 1, 2};

  QuerySpec spec;
  spec.k = 10;
  spec.num_candidate_items = options.max_candidate_items;
  const Result<Recommendation> result = recommender.Recommend(group, spec);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << '\n';
    return 1;
  }
  const Recommendation& rec = result.value();

  std::cout << "\nTop-" << spec.k << " for group {";
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << group[i];
  }
  std::cout << "}:\n";
  for (std::size_t i = 0; i < rec.items.size(); ++i) {
    std::cout << "  " << i + 1 << ". movie (external id "
              << data.item_external_ids[rec.items[i]] << ", dense "
              << rec.items[i] << ") score " << rec.scores[i] << '\n';
  }
  std::cout << "\nAccesses: " << rec.raw.accesses.sequential << " SAs of "
            << rec.raw.total_entries << " entries ("
            << rec.raw.SaveupPercent() << "% saveup).\n";
  return 0;
}
