// Movie night planner: one ad-hoc group, every consensus function and
// affinity model side by side — the decision a real deployment has to make
// (paper §4.1's comparison, as an application).
#include <iostream>
#include <vector>

#include "common/table_printer.h"
#include "core/group_recommender.h"
#include "groups/group_formation.h"

int main() {
  using namespace greca;

  SyntheticRatingsConfig universe_config;
  universe_config.num_users = 1'500;
  universe_config.num_items = 1'200;
  universe_config.target_ratings = 150'000;
  const SyntheticRatings universe = GenerateSyntheticRatings(universe_config);
  const FacebookStudy study =
      GenerateFacebookStudy(FacebookStudyConfig{}, universe);

  RecommenderOptions options;
  options.max_candidate_items = 1'200;
  const GroupRecommender recommender(universe, study, options);

  // Form a high-affinity friend group of four — the people most likely to
  // plan a movie night together.
  std::vector<UserId> everyone;
  for (UserId u = 0; u < study.num_participants(); ++u) {
    everyone.push_back(u);
  }
  const GroupFormer former(
      everyone,
      [&](UserId a, UserId b) { return recommender.RatingSimilarity(a, b); },
      [&](UserId a, UserId b) {
        return recommender.ModelAffinity(a, b, std::nullopt,
                                         AffinityModelSpec::Default());
      });
  const Group group = former.FormHighAffinity(4);

  std::cout << "Movie night group:";
  for (const UserId u : group) std::cout << " u" << u;
  std::cout << "  (weakest pairwise affinity "
            << former.MinPairAffinity(group) << ")\n\n";

  struct Choice {
    std::string label;
    ConsensusSpec consensus;
    AffinityModelSpec model;
  };
  const std::vector<Choice> choices{
      {"AP + discrete affinity", ConsensusSpec::AveragePreference(),
       AffinityModelSpec::Default()},
      {"AP + continuous affinity", ConsensusSpec::AveragePreference(),
       AffinityModelSpec::Continuous()},
      {"AP, no affinity", ConsensusSpec::AveragePreference(),
       AffinityModelSpec::AffinityAgnostic()},
      {"Least misery (MO)", ConsensusSpec::LeastMisery(),
       AffinityModelSpec::Default()},
      {"Low-conflict (PD, w1=0.2)", ConsensusSpec::PairwiseDisagreement(0.2),
       AffinityModelSpec::Default()},
  };

  TablePrinter table("Movie night: top-5 under each strategy");
  table.SetColumns({"strategy", "#1", "#2", "#3", "#4", "#5", "saveup %"});
  for (const Choice& choice : choices) {
    QuerySpec spec;
    spec.k = 5;
    spec.consensus = choice.consensus;
    spec.model = choice.model;
    spec.num_candidate_items = 1'200;
    const Recommendation rec = recommender.Recommend(group, spec).value();
    std::vector<std::string> row{choice.label};
    for (std::size_t i = 0; i < 5; ++i) {
      row.push_back(i < rec.items.size()
                        ? "#" + std::to_string(rec.items[i])
                        : "-");
    }
    row.push_back(TablePrinter::Cell(rec.raw.SaveupPercent(), 1));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nEach strategy is an exact top-k under its own semantics; "
               "GRECA terminates early in every case.\n";
  return 0;
}
