// Quickstart: the smallest end-to-end use of the GRECA library.
//
// 1. Generate a MovieLens-like rating universe (or parse a real one).
// 2. Generate the social substrate: a 72-user study with friendships and a
//    year of page-like history.
// 3. Build a GroupRecommender and ask for the top-5 movies for an ad-hoc
//    group of three users under the default temporal-affinity model.
#include <iostream>

#include "core/group_recommender.h"
#include "groups/group_formation.h"

int main() {
  using namespace greca;

  // A small universe keeps the quickstart instant; scale the numbers up (or
  // load a real ratings file via ParseRatingsFile) for real use.
  SyntheticRatingsConfig universe_config;
  universe_config.num_users = 800;
  universe_config.num_items = 1'000;
  universe_config.target_ratings = 80'000;
  const SyntheticRatings universe = GenerateSyntheticRatings(universe_config);

  const FacebookStudy study =
      GenerateFacebookStudy(FacebookStudyConfig{}, universe);

  RecommenderOptions options;
  options.max_candidate_items = 1'000;
  const GroupRecommender recommender(universe, study, options);

  // An ad-hoc group of three study participants.
  const Group group{4, 17, 29};

  QuerySpec spec;
  spec.k = 5;
  spec.model = AffinityModelSpec::Default();              // discrete temporal
  spec.consensus = ConsensusSpec::AveragePreference();    // AP
  spec.num_candidate_items = 1'000;

  const Recommendation rec = recommender.Recommend(group, spec);

  std::cout << "Top-" << spec.k << " movies for group {4, 17, 29} "
            << "(discrete temporal affinity, AP consensus):\n";
  for (std::size_t i = 0; i < rec.items.size(); ++i) {
    std::cout << "  " << i + 1 << ". movie #" << rec.items[i]
              << "  (consensus score " << rec.scores[i] << ")\n";
  }
  std::cout << "\nGRECA read " << rec.raw.accesses.sequential << " of "
            << rec.raw.total_entries << " list entries ("
            << rec.raw.SequentialAccessPercent() << "% — a "
            << rec.raw.SaveupPercent() << "% saveup vs a full scan).\n";
  return 0;
}
