// Quickstart: the smallest end-to-end use of the GRECA library through the
// batch-first Engine API.
//
// 1. Generate a MovieLens-like rating universe (or parse a real one).
// 2. Generate the social substrate: a 72-user study with friendships and a
//    year of page-like history.
// 3. Build an Engine, construct a validated query with QueryBuilder, and ask
//    for the top-5 movies for an ad-hoc group of three users under the
//    default temporal-affinity model.
// 4. Run a small batch to show the parallel entry point.
#include <iostream>

#include "api/engine.h"
#include "api/query_builder.h"

int main() {
  using namespace greca;

  // A small universe keeps the quickstart instant; scale the numbers up (or
  // load a real ratings file via ParseRatingsFile) for real use.
  SyntheticRatingsConfig universe_config;
  universe_config.num_users = 800;
  universe_config.num_items = 1'000;
  universe_config.target_ratings = 80'000;
  const SyntheticRatings universe = GenerateSyntheticRatings(universe_config);

  const FacebookStudy study =
      GenerateFacebookStudy(FacebookStudyConfig{}, universe);

  RecommenderOptions options;
  options.max_candidate_items = 1'000;
  const Engine engine(universe, study, options);

  // An ad-hoc group of three study participants. Build() validates the query
  // up front — bad k, empty groups, unknown users and out-of-range periods
  // all surface as a greca::Status here, before any work happens.
  const Result<Query> query = QueryBuilder(engine)
                                  .Members({4, 17, 29})
                                  .TopK(5)
                                  .Model(AffinityModelSpec::Default())
                                  .Consensus(ConsensusSpec::AveragePreference())
                                  .AtLastPeriod()
                                  .CandidatePool(1'000)
                                  .Build();
  if (!query.ok()) {
    std::cerr << "invalid query: " << query.status().ToString() << '\n';
    return 1;
  }

  const Recommendation rec = engine.Recommend(query.value()).value();

  std::cout << "Top-5 movies for group {4, 17, 29} "
            << "(discrete temporal affinity, AP consensus):\n";
  for (std::size_t i = 0; i < rec.items.size(); ++i) {
    std::cout << "  " << i + 1 << ". movie #" << rec.items[i]
              << "  (consensus score " << rec.scores[i] << ")\n";
  }
  std::cout << "\nGRECA read " << rec.raw.accesses.sequential << " of "
            << rec.raw.total_entries << " list entries ("
            << rec.raw.SequentialAccessPercent() << "% — a "
            << rec.raw.SaveupPercent() << "% saveup vs a full scan).\n";

  // Batches execute in parallel over the engine's thread pool, one result
  // per query in input order.
  std::vector<Query> batch;
  for (UserId u = 0; u + 2 < 12; u += 3) {
    batch.push_back(Query{{u, u + 1, u + 2}, query.value().spec});
  }
  const auto results = engine.RecommendBatch(batch);
  std::cout << "\nBatch of " << batch.size() << " group queries on "
            << engine.num_threads() << " threads:\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "  group {" << batch[i].group[0] << ", " << batch[i].group[1]
              << ", " << batch[i].group[2] << "} -> top movie #"
              << results[i].value().items.front() << '\n';
  }
  return 0;
}
