// The paper's motivating scenario (§1): interns join a lab's Facebook group;
// after the internship the group becomes alumni and the members' affinities
// drift apart (or together). Recommending events to the alumni group must
// account for how those affinities evolved — this example shows the same
// group receiving different recommendations at different evaluation periods,
// and inspects the underlying pair affinities.
#include <cmath>
#include <iostream>

#include "common/distributions.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/group_recommender.h"
#include "groups/group_formation.h"

int main() {
  using namespace greca;

  SyntheticRatingsConfig universe_config;
  universe_config.num_users = 1'000;
  universe_config.num_items = 900;
  universe_config.target_ratings = 90'000;
  const SyntheticRatings universe = GenerateSyntheticRatings(universe_config);

  FacebookStudyConfig study_config;
  study_config.likes.drift_rate = 0.5;  // alumni drift apart faster
  const FacebookStudy study = GenerateFacebookStudy(study_config, universe);

  RecommenderOptions options;
  options.max_candidate_items = 900;
  const GroupRecommender recommender(universe, study, options);

  const auto last = static_cast<PeriodId>(recommender.num_periods() - 1);

  // Find the intern cohort whose affinities drifted the most over the year —
  // the group for which temporal awareness matters most.
  Rng rng(99);
  Group alumni;
  double best_drift = -1.0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto picks =
        SampleDistinct(rng, study.num_participants(), 4);
    Group candidate(picks.begin(), picks.end());
    // Consensus weights members by their mean affinity from the others, so
    // what re-ranks recommendations is *asymmetric* drift: some members
    // becoming closer to the group while others drift away.
    std::vector<double> delta(candidate.size(), 0.0);
    for (std::size_t a = 0; a < candidate.size(); ++a) {
      for (std::size_t b = 0; b < candidate.size(); ++b) {
        if (a == b) continue;
        delta[a] +=
            recommender.ModelAffinity(candidate[a], candidate[b], last,
                                      AffinityModelSpec::Default()) -
            recommender.ModelAffinity(candidate[a], candidate[b], 0,
                                      AffinityModelSpec::Default());
      }
    }
    double mean_delta = 0.0;
    for (const double d : delta) mean_delta += d;
    mean_delta /= static_cast<double>(delta.size());
    double asymmetry = 0.0;
    for (const double d : delta) asymmetry += std::abs(d - mean_delta);
    if (asymmetry > best_drift) {
      best_drift = asymmetry;
      alumni = std::move(candidate);
    }
  }

  // 1. How did the pair affinities evolve over the year?
  {
    TablePrinter table("Alumni pair affinities (discrete model) per period");
    std::vector<std::string> columns{"pair"};
    for (PeriodId p = 0; p <= last; ++p) {
      columns.push_back("p" + std::to_string(p));
    }
    table.SetColumns(columns);
    for (std::size_t a = 0; a < alumni.size(); ++a) {
      for (std::size_t b = a + 1; b < alumni.size(); ++b) {
        std::vector<std::string> row{"u" + std::to_string(alumni[a]) + "-u" +
                                     std::to_string(alumni[b])};
        for (PeriodId p = 0; p <= last; ++p) {
          row.push_back(FormatDouble(
              recommender.ModelAffinity(alumni[a], alumni[b], p,
                                        AffinityModelSpec::Default()),
              3));
        }
        table.AddRow(row);
      }
    }
    table.Print(std::cout);
  }

  // 2. Recommend events right after the internship vs a year later.
  const auto recommend_at = [&](PeriodId period) {
    QuerySpec spec;
    spec.k = 5;
    spec.eval_period = period;
    spec.num_candidate_items = 900;
    return recommender.Recommend(alumni, spec).value();
  };
  const Recommendation at_start = recommend_at(0);
  const Recommendation at_end = recommend_at(last);

  TablePrinter table("Top-5 events for the alumni group, then vs now");
  table.SetColumns({"rank", "during internship (p0)",
                    "one year later (p" + std::to_string(last) + ")"});
  for (std::size_t i = 0; i < 5; ++i) {
    table.AddRow({std::to_string(i + 1),
                  i < at_start.items.size()
                      ? "event #" + std::to_string(at_start.items[i])
                      : "-",
                  i < at_end.items.size()
                      ? "event #" + std::to_string(at_end.items[i])
                      : "-"});
  }
  table.Print(std::cout);

  std::size_t common = 0;
  for (const ItemId i : at_start.items) {
    for (const ItemId j : at_end.items) common += (i == j);
  }
  std::cout << "\n" << common
            << " of 5 recommendations survive the year; the rest shift with "
               "the group's drifting affinities.\n";
  return 0;
}
