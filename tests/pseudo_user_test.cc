// Tests for the pseudo-user group recommendation baseline.
#include <gtest/gtest.h>

#include <set>

#include "core/pseudo_user.h"
#include "groups/group_formation.h"
#include "dataset/synthetic.h"

namespace greca {
namespace {

RatingsDataset MemberRatings() {
  // Two members: overlap on item 1 (ratings 2 and 4 -> pseudo 3).
  std::vector<RatingRecord> records{
      {0, 0, 5.0, 10},
      {0, 1, 2.0, 20},
      {1, 1, 4.0, 30},
      {1, 2, 1.0, 40},
  };
  return RatingsDataset::FromRecords(2, 5, std::move(records));
}

TEST(MergeGroupProfileTest, AveragesOverlapsAndSortsByItem) {
  const RatingsDataset ratings = MemberRatings();
  const Group group{0, 1};
  const auto profile = MergeGroupProfile(ratings, group);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].item, 0u);
  EXPECT_DOUBLE_EQ(profile[0].rating, 5.0);
  EXPECT_EQ(profile[1].item, 1u);
  EXPECT_DOUBLE_EQ(profile[1].rating, 3.0);  // (2+4)/2
  EXPECT_EQ(profile[1].timestamp, 30);       // latest
  EXPECT_EQ(profile[2].item, 2u);
  EXPECT_DOUBLE_EQ(profile[2].rating, 1.0);
}

TEST(MergeGroupProfileTest, SingletonGroupIsIdentity) {
  const RatingsDataset ratings = MemberRatings();
  const Group solo{0};
  const auto profile = MergeGroupProfile(ratings, solo);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[0].rating, 5.0);
  EXPECT_DOUBLE_EQ(profile[1].rating, 2.0);
}

class PseudoUserRecommendTest : public ::testing::Test {
 protected:
  PseudoUserRecommendTest() {
    SyntheticRatingsConfig config;
    config.num_users = 250;
    config.num_items = 150;
    config.target_ratings = 10'000;
    config.seed = 23;
    synthetic_ = GenerateSyntheticRatings(config);
  }
  SyntheticRatings synthetic_;
};

TEST_F(PseudoUserRecommendTest, ExcludesRatedItemsAndRanksDescending) {
  const UserKnn knn(synthetic_.dataset, {});
  // Use two dataset users' own histories as the "member ratings".
  std::vector<RatingRecord> records;
  for (const UserId u : {UserId{3}, UserId{9}}) {
    const UserId dense = u == 3 ? 0u : 1u;
    for (const auto& e : synthetic_.dataset.RatingsOfUser(u)) {
      records.push_back({dense, e.item, e.rating, e.timestamp});
    }
  }
  const auto members = RatingsDataset::FromRecords(
      2, synthetic_.dataset.num_items(), std::move(records));

  std::vector<ItemId> candidates(synthetic_.dataset.num_items());
  for (ItemId i = 0; i < candidates.size(); ++i) candidates[i] = i;

  const Group group{0, 1};
  const auto recs = RecommendPseudoUser(knn, members, group, candidates, 10);
  ASSERT_EQ(recs.size(), 10u);
  std::set<ItemId> result_items;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    result_items.insert(recs[i].id);
    EXPECT_FALSE(members.HasRating(0, recs[i].id));
    EXPECT_FALSE(members.HasRating(1, recs[i].id));
    if (i > 0) {
      EXPECT_GE(recs[i - 1].score, recs[i].score);
    }
  }
  EXPECT_EQ(result_items.size(), 10u);
}

TEST_F(PseudoUserRecommendTest, RespectsCandidatePool) {
  const UserKnn knn(synthetic_.dataset, {});
  const RatingsDataset members =
      RatingsDataset::FromRecords(1, synthetic_.dataset.num_items(), {});
  const std::vector<ItemId> candidates{5, 6, 7};
  const Group group{0};
  const auto recs = RecommendPseudoUser(knn, members, group, candidates, 10);
  ASSERT_EQ(recs.size(), 3u);
  for (const auto& r : recs) {
    EXPECT_TRUE(r.id == 5 || r.id == 6 || r.id == 7);
  }
}

}  // namespace
}  // namespace greca
