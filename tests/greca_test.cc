// Tests for GRECA: correctness against the exhaustive baseline across models,
// consensus functions, group sizes and k (the Lemma 2 property), the paper's
// running example, termination-policy ablation, and access savings.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/greca.h"
#include "test_util.h"
#include "topk/naive.h"

namespace greca {
namespace {

struct SweepCase {
  std::string name;
  ConsensusSpec consensus;
  AffinityModelSpec model;
  std::size_t group_size;
  std::size_t num_items;
  std::size_t num_periods;
  std::size_t k;
};

class GrecaSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GrecaSweepTest, MatchesNaiveTopKScores) {
  const SweepCase& c = GetParam();
  Rng rng(1'000 + std::hash<std::string>{}(c.name) % 1'000);
  for (int trial = 0; trial < 8; ++trial) {
    const GroupProblem problem = testing::MakeRandomProblem(
        rng, c.group_size, c.num_items, c.num_periods, c.consensus, c.model);
    const TopKResult naive = NaiveTopK(problem, c.k);
    GrecaConfig config;
    config.k = c.k;
    const TopKResult greca = Greca(problem, config);

    ASSERT_EQ(greca.items.size(), c.k) << c.name << " trial " << trial;
    const auto naive_scores = testing::ExactScoresSorted(problem, naive.items);
    const auto greca_scores = testing::ExactScoresSorted(problem, greca.items);
    for (std::size_t i = 0; i < c.k; ++i) {
      EXPECT_NEAR(greca_scores[i], naive_scores[i], 1e-9)
          << c.name << " trial " << trial << " rank " << i;
    }
  }
}

TEST_P(GrecaSweepTest, LowerBoundsNeverExceedExactScores) {
  const SweepCase& c = GetParam();
  Rng rng(2'000 + std::hash<std::string>{}(c.name) % 1'000);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, c.group_size, c.num_items, c.num_periods, c.consensus, c.model);
  GrecaConfig config;
  config.k = c.k;
  const TopKResult result = Greca(problem, config);
  for (const ListEntry& e : result.items) {
    EXPECT_LE(e.score, problem.ExactScore(e.id) + 1e-9) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrecaSweepTest,
    ::testing::Values(
        SweepCase{"ap_discrete_g3", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::Default(), 3, 60, 2, 5},
        SweepCase{"ap_continuous_g3", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::Continuous(), 3, 60, 2, 5},
        SweepCase{"mo_discrete_g3", ConsensusSpec::LeastMisery(),
                  AffinityModelSpec::Default(), 3, 60, 2, 5},
        SweepCase{"pd08_discrete_g4", ConsensusSpec::PairwiseDisagreement(0.8),
                  AffinityModelSpec::Default(), 4, 50, 3, 4},
        SweepCase{"pd02_discrete_g4", ConsensusSpec::PairwiseDisagreement(0.2),
                  AffinityModelSpec::Default(), 4, 50, 3, 4},
        SweepCase{"vd_discrete_g3", ConsensusSpec::VarianceDisagreement(0.8),
                  AffinityModelSpec::Default(), 3, 40, 2, 3},
        SweepCase{"ap_affinity_agnostic", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::AffinityAgnostic(), 3, 60, 0, 5},
        SweepCase{"ap_time_agnostic", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::TimeAgnostic(), 3, 60, 0, 5},
        SweepCase{"ap_large_group", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::Default(), 8, 40, 2, 5},
        SweepCase{"mo_continuous_many_periods", ConsensusSpec::LeastMisery(),
                  AffinityModelSpec::Continuous(), 3, 40, 6, 5},
        SweepCase{"ap_k1", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::Default(), 3, 50, 2, 1},
        SweepCase{"ap_k_equals_m", ConsensusSpec::AveragePreference(),
                  AffinityModelSpec::Default(), 3, 12, 2, 12}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return param_info.param.name;
    });

TEST(GrecaTest, RunningExampleReturnsI1AsTop1) {
  // Paper §3.1/§3.2: for the Tables 1–4 instance, the top-1 item is i1
  // (key 0) under the default AP + discrete configuration.
  for (const auto spec :
       {AffinityModelSpec::Default(), AffinityModelSpec::Continuous(),
        AffinityModelSpec::TimeAgnostic()}) {
    const GroupProblem problem = testing::MakeRunningExampleProblem(
        ConsensusSpec::AveragePreference(), spec);
    GrecaConfig config;
    config.k = 1;
    const TopKResult result = Greca(problem, config);
    ASSERT_EQ(result.items.size(), 1u) << spec.Name();
    EXPECT_EQ(result.items[0].id, 0u) << spec.Name();
  }
}

TEST(GrecaTest, RunningExamplePreferenceConsensusAgreesOnI1) {
  for (const auto consensus :
       {ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery()}) {
    const GroupProblem problem = testing::MakeRunningExampleProblem(
        consensus, AffinityModelSpec::Default());
    GrecaConfig config;
    config.k = 1;
    const TopKResult result = Greca(problem, config);
    ASSERT_EQ(result.items.size(), 1u);
    EXPECT_EQ(result.items[0].id, 0u) << consensus.Name();
  }
}

TEST(GrecaTest, RunningExamplePdFavorsZeroDisagreementItem) {
  // Under PD the star-scale disagreement penalty (dis(i1) averages 2 stars:
  // u3 rates i1 three stars below u1/u2) outweighs i1's popularity, so the
  // consensus-friendly i2 (all members rate it 1 star, zero disagreement)
  // wins — the intended least-conflict semantics of PD (§2.3).
  for (const double w1 : {0.8, 0.2}) {
    const GroupProblem problem = testing::MakeRunningExampleProblem(
        ConsensusSpec::PairwiseDisagreement(w1), AffinityModelSpec::Default());
    GrecaConfig config;
    config.k = 1;
    const TopKResult result = Greca(problem, config);
    ASSERT_EQ(result.items.size(), 1u);
    EXPECT_EQ(result.items[0].id, 1u) << "w1=" << w1;
    // And GRECA matches the exhaustive scan either way.
    const TopKResult naive = NaiveTopK(problem, 1);
    EXPECT_EQ(result.items[0].id, naive.items[0].id);
  }
}

TEST(GrecaTest, SavesAccessesOnSkewedInputs) {
  // Strongly skewed lists let GRECA stop early; verify a real saveup.
  std::vector<SortedList> pref_lists;
  const std::size_t m = 500;
  for (std::size_t u = 0; u < 3; ++u) {
    std::vector<ListEntry> entries;
    for (std::size_t i = 0; i < m; ++i) {
      // A handful of strong items, long flat tail. Each member ranks a
      // different key permutation so the buffer fills past k and pruning
      // kicks in.
      const double score = i < 5 ? 1.0 - 0.01 * static_cast<double>(i)
                                 : 0.3 / (1.0 + static_cast<double>(i));
      const auto key = static_cast<ListKey>((i + u * 17) % m);
      entries.push_back({key, score});
    }
    pref_lists.push_back(SortedList::FromUnsorted(std::move(entries), m));
  }
  SortedList static_list =
      SortedList::FromUnsorted({{0, 1.0}, {1, 0.5}, {2, 0.2}}, 3);
  std::vector<SortedList> period_lists{
      SortedList::FromUnsorted({{0, 0.9}, {1, 0.4}, {2, 0.1}}, 3)};
  AffinityCombiner combiner(AffinityModelSpec::Default(), {0.2});
  const GroupProblem problem(m, std::move(pref_lists), std::move(static_list),
                             std::move(period_lists), std::move(combiner),
                             ConsensusSpec::AveragePreference());
  GrecaConfig config;
  config.k = 3;
  GrecaStats stats;
  const TopKResult result = Greca(problem, config, &stats);
  EXPECT_TRUE(result.early_terminated);
  EXPECT_LT(result.SequentialAccessPercent(), 50.0);
  EXPECT_GT(result.SaveupPercent(), 50.0);
  EXPECT_GT(stats.pruned_items, 0u);
  EXPECT_TRUE(stats.stopped_by_buffer_condition);
  // And the result is still exact.
  const TopKResult naive = NaiveTopK(problem, 3);
  const auto ns = testing::ExactScoresSorted(problem, naive.items);
  const auto gs = testing::ExactScoresSorted(problem, result.items);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(gs[i], ns[i], 1e-9);
}

TEST(GrecaTest, ThresholdOnlyPolicyIsCorrectButSlower) {
  Rng rng(3'001);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 100, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  GrecaConfig buffer_config;
  buffer_config.k = 5;
  GrecaConfig threshold_config = buffer_config;
  threshold_config.termination = TerminationPolicy::kThresholdOnly;

  const TopKResult with_buffer = Greca(problem, buffer_config);
  const TopKResult threshold_only = Greca(problem, threshold_config);

  // Same answer...
  const auto a = testing::ExactScoresSorted(problem, with_buffer.items);
  const auto b = testing::ExactScoresSorted(problem, threshold_only.items);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  // ... but the buffer condition never needs more accesses (Theorem 1).
  EXPECT_LE(with_buffer.accesses.sequential,
            threshold_only.accesses.sequential);
}

TEST(GrecaTest, CheckIntervalDoesNotChangeResult) {
  Rng rng(3'003);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 4, 80, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  GrecaConfig c1;
  c1.k = 6;
  c1.check_interval = 1;
  GrecaConfig c8 = c1;
  c8.check_interval = 8;
  const auto s1 = testing::ExactScoresSorted(problem, Greca(problem, c1).items);
  const auto s8 = testing::ExactScoresSorted(problem, Greca(problem, c8).items);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s8[i], 1e-9);
}

TEST(GrecaTest, KLargerThanDistinctItemsReturnsAll) {
  Rng rng(3'005);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 8, 1, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  GrecaConfig config;
  config.k = 20;  // more than the 8 candidates
  const TopKResult result = Greca(problem, config);
  EXPECT_EQ(result.items.size(), 8u);
  EXPECT_FALSE(result.early_terminated);
}

TEST(GrecaTest, StatsArepopulated) {
  Rng rng(3'007);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 60, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  GrecaConfig config;
  config.k = 5;
  GrecaStats stats;
  const TopKResult result = Greca(problem, config, &stats);
  EXPECT_GT(stats.stop_checks, 0u);
  EXPECT_GE(stats.peak_buffer_size, config.k);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_LE(result.accesses.sequential, problem.TotalEntries());
  EXPECT_EQ(result.accesses.random, 0u);  // GRECA makes SAs only
}

TEST(GrecaTest, PartialOrderScoresAreDescending) {
  Rng rng(3'009);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 60, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  GrecaConfig config;
  config.k = 10;
  const TopKResult result = Greca(problem, config);
  for (std::size_t i = 1; i < result.items.size(); ++i) {
    EXPECT_GE(result.items[i - 1].score, result.items[i].score);
  }
}

TEST(GrecaTest, DistinctItemsInResult) {
  Rng rng(3'011);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 5, 70, 3, ConsensusSpec::PairwiseDisagreement(0.2),
      AffinityModelSpec::Default());
  GrecaConfig config;
  config.k = 12;
  const TopKResult result = Greca(problem, config);
  std::set<ListKey> keys;
  for (const ListEntry& e : result.items) keys.insert(e.id);
  EXPECT_EQ(keys.size(), result.items.size());
}

}  // namespace
}  // namespace greca
