// Shared helpers for the GRECA test suite.
#ifndef GRECA_TESTS_TEST_UTIL_H_
#define GRECA_TESTS_TEST_UTIL_H_

#include <vector>

#include "affinity/temporal_model.h"
#include "common/rng.h"
#include "consensus/consensus.h"
#include "topk/problem.h"

namespace greca::testing {

/// Builds a randomized but fully valid GroupProblem: `g` members over `m`
/// candidate items and `num_periods` periods, every list covering its whole
/// key space with scores in [0, 1]. Deterministic in `rng`.
GroupProblem MakeRandomProblem(Rng& rng, std::size_t g, std::size_t m,
                               std::size_t num_periods,
                               const ConsensusSpec& consensus,
                               const AffinityModelSpec& model);

/// The paper's running example (§3.1, Tables 1–4): three users, three items,
/// two periods. Preferences are normalized to [0, 1] by the 5-star scale.
GroupProblem MakeRunningExampleProblem(const ConsensusSpec& consensus,
                                       const AffinityModelSpec& model);

/// Sorted exact consensus scores of the given keys (descending).
std::vector<double> ExactScoresSorted(const GroupProblem& problem,
                                      const std::vector<ListEntry>& items);

}  // namespace greca::testing

#endif  // GRECA_TESTS_TEST_UTIL_H_
