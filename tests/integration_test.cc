// End-to-end integration tests: the full pipeline from synthetic data through
// the GroupRecommender facade, cross-checking all three algorithms.
#include <gtest/gtest.h>

#include <set>

#include "core/group_recommender.h"
#include "eval/experiments.h"

namespace greca {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 350;
    uc.num_items = 450;
    uc.target_ratings = 30'000;
    uc.seed = 33;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
    RecommenderOptions options;
    options.max_candidate_items = 400;
    recommender_ = new GroupRecommender(*universe_, *study_, options);
  }
  static void TearDownTestSuite() {
    delete recommender_;
    delete study_;
    delete universe_;
    recommender_ = nullptr;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
  static GroupRecommender* recommender_;
};

SyntheticRatings* IntegrationTest::universe_ = nullptr;
FacebookStudy* IntegrationTest::study_ = nullptr;
GroupRecommender* IntegrationTest::recommender_ = nullptr;

QuerySpec BaseSpec(std::size_t items = 400) {
  QuerySpec spec;
  spec.k = 8;
  spec.num_candidate_items = items;
  return spec;
}

TEST_F(IntegrationTest, GrecaMatchesNaiveThroughFacade) {
  const Group group{2, 7, 19, 30, 44, 61};
  for (const auto model :
       {AffinityModelSpec::Default(), AffinityModelSpec::Continuous(),
        AffinityModelSpec::TimeAgnostic(),
        AffinityModelSpec::AffinityAgnostic()}) {
    QuerySpec spec = BaseSpec();
    spec.model = model;
    spec.algorithm = Algorithm::kGreca;
    const Recommendation greca = recommender_->Recommend(group, spec).value();
    spec.algorithm = Algorithm::kNaive;
    const Recommendation naive = recommender_->Recommend(group, spec).value();
    ASSERT_EQ(greca.items.size(), naive.items.size()) << model.Name();
    const std::set<ItemId> gs(greca.items.begin(), greca.items.end());
    const std::set<ItemId> ns(naive.items.begin(), naive.items.end());
    EXPECT_EQ(gs, ns) << model.Name();
  }
}

TEST_F(IntegrationTest, TaMatchesNaiveThroughFacade) {
  const Group group{1, 5, 23};
  QuerySpec spec = BaseSpec();
  spec.algorithm = Algorithm::kTa;
  const Recommendation ta = recommender_->Recommend(group, spec).value();
  spec.algorithm = Algorithm::kNaive;
  const Recommendation naive = recommender_->Recommend(group, spec).value();
  const std::set<ItemId> ts(ta.items.begin(), ta.items.end());
  const std::set<ItemId> ns(naive.items.begin(), naive.items.end());
  EXPECT_EQ(ts, ns);
}

TEST_F(IntegrationTest, ExcludesItemsRatedByMembers) {
  const Group group{0, 1};
  const Recommendation rec = recommender_->Recommend(group, BaseSpec()).value();
  for (const ItemId item : rec.items) {
    EXPECT_FALSE(study_->study_ratings.HasRating(0, item));
    EXPECT_FALSE(study_->study_ratings.HasRating(1, item));
  }
}

TEST_F(IntegrationTest, GrecaSavesAccesses) {
  PerformanceHarness perf(*recommender_, 7);
  QuerySpec spec = BaseSpec();
  const auto groups = perf.RandomGroups(5, 6);
  const auto m = perf.Measure(groups, spec);
  // The headline claim: substantial saveup vs the naive full scan.
  EXPECT_GT(m.mean_saveup_percent, 40.0);
}

TEST_F(IntegrationTest, EvalPeriodControlsPeriodListCount) {
  const Group group{3, 9, 15};
  QuerySpec spec = BaseSpec();
  spec.eval_period = 0;
  const GroupProblem p0 = recommender_->BuildProblem(group, spec).value();
  EXPECT_EQ(p0.num_periods(), 1u);
  spec.eval_period = std::nullopt;
  const GroupProblem pl = recommender_->BuildProblem(group, spec).value();
  EXPECT_EQ(pl.num_periods(), recommender_->num_periods());
  // Time-agnostic problems carry no period lists.
  spec.model = AffinityModelSpec::TimeAgnostic();
  const GroupProblem pt = recommender_->BuildProblem(group, spec).value();
  EXPECT_EQ(pt.num_periods(), 0u);
}

TEST_F(IntegrationTest, CandidatePoolSizeControlsProblemSize) {
  const Group group{3, 9, 15};
  QuerySpec spec = BaseSpec(100);
  std::vector<ItemId> candidates;
  const GroupProblem p = recommender_->BuildProblem(group, spec, &candidates).value();
  EXPECT_LE(p.num_items(), 100u);
  EXPECT_EQ(p.num_items(), candidates.size());
  // Tombstoning the group's rated items shrinks the live set, never the key
  // space.
  EXPECT_LE(p.num_candidates(), p.num_items());
  EXPECT_GT(p.num_candidates(), 0u);
  // Candidate keys map back to universe items.
  for (const ItemId item : candidates) {
    EXPECT_LT(item, universe_->dataset.num_items());
  }
}

TEST_F(IntegrationTest, RecommendationsDifferAcrossModels) {
  // Affinity must actually change outcomes for at least some groups.
  PerformanceHarness perf(*recommender_, 11);
  const auto groups = perf.RandomGroups(6, 5);
  std::size_t differing = 0;
  for (const Group& group : groups) {
    QuerySpec spec = BaseSpec();
    spec.algorithm = Algorithm::kNaive;
    const auto with_affinity = recommender_->Recommend(group, spec).value().items;
    spec.model = AffinityModelSpec::AffinityAgnostic();
    const auto without = recommender_->Recommend(group, spec).value().items;
    if (std::set<ItemId>(with_affinity.begin(), with_affinity.end()) !=
        std::set<ItemId>(without.begin(), without.end())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(IntegrationTest, ModelAffinityInUnitInterval) {
  for (UserId a = 0; a < 10; ++a) {
    for (UserId b = a + 1; b < 10; ++b) {
      for (const auto model :
           {AffinityModelSpec::Default(), AffinityModelSpec::Continuous()}) {
        const double aff =
            recommender_->ModelAffinity(a, b, std::nullopt, model);
        EXPECT_GE(aff, 0.0);
        EXPECT_LE(aff, 1.0);
      }
    }
  }
}

TEST_F(IntegrationTest, PredictionsCoverEveryItem) {
  const auto preds = recommender_->Predictions(0);
  EXPECT_EQ(preds.size(), universe_->dataset.num_items());
}

TEST_F(IntegrationTest, GrecaMatchesNaiveForEveryConsensusThroughFacade) {
  const Group group{6, 14, 33, 50};
  for (const auto consensus :
       {ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
        ConsensusSpec::PairwiseDisagreement(0.8),
        ConsensusSpec::PairwiseDisagreement(0.2),
        ConsensusSpec::VarianceDisagreement(0.8)}) {
    QuerySpec spec = BaseSpec();
    spec.consensus = consensus;
    spec.algorithm = Algorithm::kGreca;
    const Recommendation greca = recommender_->Recommend(group, spec).value();
    spec.algorithm = Algorithm::kNaive;
    const Recommendation naive = recommender_->Recommend(group, spec).value();
    const std::set<ItemId> gs(greca.items.begin(), greca.items.end());
    const std::set<ItemId> ns(naive.items.begin(), naive.items.end());
    EXPECT_EQ(gs, ns) << consensus.Name();
  }
}

TEST_F(IntegrationTest, PairwiseConsensusCarriesAgreementList) {
  const Group group{2, 8, 21};
  QuerySpec spec = BaseSpec();
  spec.consensus = ConsensusSpec::PairwiseDisagreement(0.5);
  const GroupProblem problem = recommender_->BuildProblem(group, spec).value();
  // The facade pre-aggregates the pair components into one list covering
  // exactly the live (non-tombstoned) candidates.
  ASSERT_EQ(problem.agreement_lists().size(), 1u);
  EXPECT_EQ(problem.agreement_lists()[0].size(), problem.num_candidates());
  // Total entries include it (the %SA denominator is honest), counting live
  // entries only.
  EXPECT_EQ(problem.TotalEntries(),
            problem.num_candidates() * (group.size() + 1) +
                problem.num_pairs() * (1 + problem.num_periods()));
}

TEST_F(IntegrationTest, ResolvePeriodValidatesRange) {
  EXPECT_EQ(recommender_->ResolvePeriod(0).value(), 0u);
  EXPECT_EQ(recommender_->ResolvePeriod(std::nullopt).value(),
            recommender_->num_periods() - 1);
  // Out-of-range periods are rejected, not clamped.
  const auto bad = recommender_->ResolvePeriod(10'000);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST_F(IntegrationTest, ThresholdOnlyFacadePathStillCorrect) {
  const Group group{5, 12, 28};
  QuerySpec spec = BaseSpec();
  spec.termination = TerminationPolicy::kThresholdOnly;
  const Recommendation slow = recommender_->Recommend(group, spec).value();
  spec.termination = TerminationPolicy::kBufferCondition;
  const Recommendation fast = recommender_->Recommend(group, spec).value();
  const std::set<ItemId> ss(slow.items.begin(), slow.items.end());
  const std::set<ItemId> fs(fast.items.begin(), fast.items.end());
  EXPECT_EQ(ss, fs);
  EXPECT_LE(fast.raw.accesses.sequential, slow.raw.accesses.sequential);
}

}  // namespace
}  // namespace greca
