// Unit tests for dataset/ratings: CSR construction, lookups, stats, item sets.
#include <gtest/gtest.h>

#include "dataset/ratings.h"

namespace greca {
namespace {

RatingsDataset SmallDataset() {
  // 3 users, 4 items.
  std::vector<RatingRecord> records{
      {0, 0, 5.0, 10}, {0, 1, 3.0, 11}, {0, 2, 1.0, 12},
      {1, 0, 4.0, 20}, {1, 2, 2.0, 21},
      {2, 0, 5.0, 30}, {2, 3, 4.0, 31},
  };
  return RatingsDataset::FromRecords(3, 4, std::move(records));
}

TEST(RatingsDatasetTest, BasicCounts) {
  const RatingsDataset ds = SmallDataset();
  EXPECT_EQ(ds.num_users(), 3u);
  EXPECT_EQ(ds.num_items(), 4u);
  EXPECT_EQ(ds.num_ratings(), 7u);
}

TEST(RatingsDatasetTest, UserViewSortedByItem) {
  const RatingsDataset ds = SmallDataset();
  const auto r0 = ds.RatingsOfUser(0);
  ASSERT_EQ(r0.size(), 3u);
  EXPECT_EQ(r0[0].item, 0u);
  EXPECT_EQ(r0[1].item, 1u);
  EXPECT_EQ(r0[2].item, 2u);
  EXPECT_DOUBLE_EQ(r0[0].rating, 5.0);
}

TEST(RatingsDatasetTest, ItemViewSortedByUser) {
  const RatingsDataset ds = SmallDataset();
  const auto i0 = ds.RatingsOfItem(0);
  ASSERT_EQ(i0.size(), 3u);
  EXPECT_EQ(i0[0].user, 0u);
  EXPECT_EQ(i0[1].user, 1u);
  EXPECT_EQ(i0[2].user, 2u);
  EXPECT_TRUE(ds.RatingsOfItem(3).size() == 1);
}

TEST(RatingsDatasetTest, GetRating) {
  const RatingsDataset ds = SmallDataset();
  EXPECT_DOUBLE_EQ(ds.GetRating(1, 2).value(), 2.0);
  EXPECT_FALSE(ds.GetRating(1, 3).has_value());
  EXPECT_TRUE(ds.HasRating(2, 3));
}

TEST(RatingsDatasetTest, DuplicateKeepsLatestTimestamp) {
  std::vector<RatingRecord> records{
      {0, 0, 2.0, 100},
      {0, 0, 5.0, 50},  // earlier; must lose
  };
  const auto ds = RatingsDataset::FromRecords(1, 1, std::move(records));
  EXPECT_EQ(ds.num_ratings(), 1u);
  EXPECT_DOUBLE_EQ(ds.GetRating(0, 0).value(), 2.0);
}

TEST(RatingsDatasetTest, StatsTable5Shape) {
  const RatingsDataset ds = SmallDataset();
  const DatasetStats stats = ds.Stats();
  EXPECT_EQ(stats.num_users, 3u);
  EXPECT_EQ(stats.num_items, 4u);
  EXPECT_EQ(stats.num_ratings, 7u);
  EXPECT_NEAR(stats.mean_rating, 24.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min_rating, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_rating, 5.0);
  EXPECT_NEAR(stats.density, 7.0 / 12.0, 1e-12);
}

TEST(RatingsDatasetTest, TopPopularOrdersByCount) {
  const RatingsDataset ds = SmallDataset();
  const auto top = ds.TopPopularItems(4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], 0u);  // 3 ratings
  EXPECT_EQ(top[1], 2u);  // 2 ratings
  // items 1 and 3 have 1 rating each; ties by ascending id.
  EXPECT_EQ(top[2], 1u);
  EXPECT_EQ(top[3], 3u);
  EXPECT_EQ(ds.TopPopularItems(2).size(), 2u);
}

TEST(RatingsDatasetTest, HighVarianceItems) {
  // Item 0 ratings {5,4,5} low variance; item 2 ratings {1,2} higher.
  const RatingsDataset ds = SmallDataset();
  const auto diverse = ds.HighVarianceItems(1, 2);
  ASSERT_EQ(diverse.size(), 1u);
  EXPECT_EQ(diverse[0], 2u);
}

TEST(RatingsDatasetTest, MeanHelpers) {
  const RatingsDataset ds = SmallDataset();
  EXPECT_NEAR(ds.ItemMeanRating(0, 0.0), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ds.UserMeanRating(1, 0.0), 3.0);
  // Empty fallbacks.
  std::vector<RatingRecord> none;
  const auto empty = RatingsDataset::FromRecords(1, 1, std::move(none));
  EXPECT_DOUBLE_EQ(empty.ItemMeanRating(0, 3.3), 3.3);
  EXPECT_DOUBLE_EQ(empty.UserMeanRating(0, 2.2), 2.2);
}

TEST(RatingsDatasetTest, EmptyDataset) {
  std::vector<RatingRecord> none;
  const auto ds = RatingsDataset::FromRecords(2, 2, std::move(none));
  EXPECT_EQ(ds.num_ratings(), 0u);
  EXPECT_TRUE(ds.RatingsOfUser(0).empty());
  EXPECT_TRUE(ds.RatingsOfItem(1).empty());
  EXPECT_DOUBLE_EQ(ds.Stats().density, 0.0);
}

}  // namespace
}  // namespace greca
