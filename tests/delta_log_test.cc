// Tests for the per-user delta log behind live updates: fold semantics
// (latest-(timestamp, rating) wins, stale events counted but not applied),
// group commit (concurrent ApplyUpdates callers coalesce into one
// generation), the compaction policy, and the load-bearing equivalence — a
// stream of event batches applied through the delta log must produce
// BIT-IDENTICAL recommendations and PeriodListCache behavior to a full
// re-fold, with or without compactions in between.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "dataset/ratings_overlay.h"

namespace greca {
namespace {

class DeltaLogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 300;
    uc.num_items = 420;
    uc.target_ratings = 26'000;
    uc.seed = 91;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static RecommenderOptions BaseOptions() {
    RecommenderOptions options;
    options.max_candidate_items = 380;
    return options;
  }

  static std::unique_ptr<Engine> MakeEngine(const RecommenderOptions& options) {
    EngineOptions eopts;
    eopts.num_threads = 2;
    return std::make_unique<Engine>(*universe_, *study_, options, eopts);
  }

  /// A deterministic query mix covering all algorithms, models and periods.
  static std::vector<Query> QueryMix() {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto num_periods =
        static_cast<PeriodId>(study_->periods.num_periods());
    const AffinityModelSpec models[] = {AffinityModelSpec::Default(),
                                        AffinityModelSpec::Continuous(),
                                        AffinityModelSpec::TimeAgnostic()};
    const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                    Algorithm::kTa};
    Rng rng(515);
    std::vector<Query> queries;
    for (std::size_t i = 0; i < 18; ++i) {
      Query q;
      const std::size_t size = 2 + rng.NextBounded(4);
      while (q.group.size() < size) {
        const auto u = static_cast<UserId>(rng.NextBounded(participants));
        if (std::find(q.group.begin(), q.group.end(), u) == q.group.end()) {
          q.group.push_back(u);
        }
      }
      q.spec.k = 4 + i % 5;
      q.spec.model = models[i % 3];
      q.spec.algorithm = algorithms[(i / 3) % 3];
      q.spec.num_candidate_items = 380;
      q.spec.eval_period = static_cast<PeriodId>(i % num_periods);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  /// Random events with a timestamp mix that produces both fresh and stale
  /// outcomes once pairs start colliding.
  static std::vector<RatingEvent> RandomEvents(std::size_t count,
                                               std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto items = static_cast<ItemId>(universe_->dataset.num_items());
    Rng rng(seed);
    std::vector<RatingEvent> events;
    for (std::size_t i = 0; i < count; ++i) {
      RatingEvent e;
      e.user = static_cast<UserId>(rng.NextBounded(participants));
      e.item = static_cast<ItemId>(rng.NextBounded(items));
      e.rating = static_cast<Score>(1 + rng.NextBounded(5));
      e.timestamp = static_cast<Timestamp>(rng.NextBounded(3'000'000'000));
      events.push_back(e);
    }
    return events;
  }

  /// Runs the mix sequentially against the engine's current snapshot.
  static std::vector<Recommendation> RunMix(const Engine& engine,
                                            const std::vector<Query>& mix) {
    std::vector<Recommendation> out;
    const auto snap = engine.snapshot();
    for (const Query& q : mix) {
      auto r = engine.Recommend(q, snap);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(r.value()));
    }
    return out;
  }

  static void ExpectSameRecommendations(const std::vector<Recommendation>& a,
                                        const std::vector<Recommendation>& b,
                                        const char* label) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].items, b[i].items) << label << " query " << i;
      EXPECT_EQ(a[i].scores, b[i].scores) << label << " query " << i;
    }
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* DeltaLogTest::universe_ = nullptr;
FacebookStudy* DeltaLogTest::study_ = nullptr;

// --- RatingsOverlay unit semantics -----------------------------------------

TEST(RatingsOverlayTest, MergesAndCompactsLikeFromRecords) {
  std::vector<RatingRecord> base_records = {
      {0, 1, 3.0, 100}, {0, 3, 4.0, 200}, {1, 0, 2.0, 150}, {2, 4, 5.0, 50},
  };
  auto base = std::make_shared<const RatingsDataset>(
      RatingsDataset::FromRecords(3, 5, base_records));
  const RatingsOverlay empty(base);
  EXPECT_EQ(empty.delta_ratings(), 0u);
  EXPECT_EQ(empty.num_ratings(), base->num_ratings());

  const std::vector<RatingRecord> events = {
      {0, 1, 5.0, 300},  // overrides base (newer)
      {0, 2, 1.0, 10},   // new pair, old timestamp: still applied
      {1, 0, 4.0, 120},  // older than base: stale
      {2, 4, 1.0, 50},   // same timestamp, lower rating: stale (tie rule)
      {2, 4, 5.0, 50},   // exact duplicate of the base entry: stale (no-op)
      {0, 1, 2.0, 400},  // second override of the same pair in one batch
  };
  RatingsOverlay::ApplyStats stats;
  const auto overlay = empty.WithEvents(events, &stats);
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(stats.ignored_stale, 3u);
  EXPECT_EQ(stats.touched_users, (std::vector<UserId>{0}));

  // Redelivering the whole batch is a no-op: every event now ties or loses
  // against the stored state, so nothing is applied and no row is touched.
  RatingsOverlay::ApplyStats redelivery;
  const auto replayed = overlay->WithEvents(events, &redelivery);
  EXPECT_EQ(redelivery.applied, 0u);
  EXPECT_EQ(redelivery.ignored_stale, events.size());
  EXPECT_TRUE(redelivery.touched_users.empty());
  EXPECT_EQ(replayed->delta_ratings(), overlay->delta_ratings());

  EXPECT_EQ(overlay->delta_ratings(), 2u);           // (0,1) + (0,2)
  EXPECT_EQ(overlay->num_ratings(), base->num_ratings() + 1);  // (0,2) is new
  EXPECT_EQ(overlay->GetRating(0, 1), std::make_optional(2.0));
  EXPECT_EQ(overlay->GetRating(0, 2), std::make_optional(1.0));
  EXPECT_EQ(overlay->GetRating(1, 0), std::make_optional(2.0));  // base wins
  EXPECT_EQ(overlay->GetRating(2, 4), std::make_optional(5.0));  // base wins
  EXPECT_FALSE(overlay->GetRating(1, 4).has_value());

  // A user without a delta row reads straight from the base (no copy).
  std::vector<UserRatingEntry> scratch;
  const auto row1 = overlay->MergedRatingsOfUser(1, scratch);
  EXPECT_EQ(row1.data(), base->RatingsOfUser(1).data());

  // Compact() must equal one full FromRecords fold of base + all events.
  std::vector<RatingRecord> all = base_records;
  all.insert(all.end(), events.begin(), events.end());
  const RatingsDataset folded = RatingsDataset::FromRecords(3, 5, all);
  const RatingsDataset compacted = overlay->Compact();
  ASSERT_EQ(compacted.num_ratings(), folded.num_ratings());
  for (UserId u = 0; u < 3; ++u) {
    const auto lhs = compacted.RatingsOfUser(u);
    const auto rhs = folded.RatingsOfUser(u);
    ASSERT_EQ(lhs.size(), rhs.size()) << "user " << u;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].item, rhs[i].item);
      EXPECT_EQ(lhs[i].rating, rhs[i].rating);
      EXPECT_EQ(lhs[i].timestamp, rhs[i].timestamp);
    }
    // The merged view reads the same as the fold, entry for entry.
    const auto merged = overlay->MergedRatingsOfUser(u, scratch);
    ASSERT_EQ(merged.size(), rhs.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].item, rhs[i].item);
      EXPECT_EQ(merged[i].rating, rhs[i].rating);
    }
  }
}

// --- Report semantics (satellite regressions) ------------------------------

TEST_F(DeltaLogTest, StaleEventsCountedSeparatelyAndPublishNothing) {
  auto engine = MakeEngine(BaseOptions());

  UpdateReport report;
  const std::vector<RatingEvent> fresh = {{4, 7, 4.0, 2'000'000'000}};
  ASSERT_TRUE(engine->ApplyUpdates(fresh, &report).ok());
  EXPECT_EQ(report.events_applied, 1u);
  EXPECT_EQ(report.events_ignored_stale, 0u);
  EXPECT_EQ(report.published_generation, 2u);
  EXPECT_EQ(report.batches_coalesced, 1u);
  EXPECT_EQ(report.users_rebuilt, 1u);
  EXPECT_EQ(report.delta_log_ratings, 1u);

  // An older event for the same (user, item) is stale: counted, not applied,
  // and — since nothing changed — nothing publishes.
  const std::vector<RatingEvent> stale = {{4, 7, 5.0, 1'000'000'000}};
  ASSERT_TRUE(engine->ApplyUpdates(stale, &report).ok());
  EXPECT_EQ(report.events_applied, 0u);
  EXPECT_EQ(report.events_ignored_stale, 1u);
  EXPECT_EQ(report.published_generation, 2u) << "carries the current gen";
  EXPECT_EQ(report.users_rebuilt, 0u);
  EXPECT_EQ(engine->snapshot()->generation(), 2u) << "no state change";
  EXPECT_EQ(engine->snapshot()->ratings().GetRating(4, 7),
            std::make_optional(4.0));

  // Equal timestamp, higher rating wins (the FromRecords tie rule).
  const std::vector<RatingEvent> tie = {{4, 7, 5.0, 2'000'000'000}};
  ASSERT_TRUE(engine->ApplyUpdates(tie, &report).ok());
  EXPECT_EQ(report.events_applied, 1u);
  EXPECT_EQ(engine->snapshot()->generation(), 3u);
  EXPECT_EQ(engine->snapshot()->ratings().GetRating(4, 7),
            std::make_optional(5.0));

  // Redelivering the identical batch (at-least-once delivery) changes
  // nothing: stale, and no phantom generation.
  ASSERT_TRUE(engine->ApplyUpdates(tie, &report).ok());
  EXPECT_EQ(report.events_applied, 0u);
  EXPECT_EQ(report.events_ignored_stale, 1u);
  EXPECT_EQ(engine->snapshot()->generation(), 3u);

  // A mixed batch publishes, with exact attribution.
  const std::vector<RatingEvent> mixed = {{4, 7, 1.0, 10},  // stale
                                          {9, 3, 2.0, 2'000'000'001}};
  ASSERT_TRUE(engine->ApplyUpdates(mixed, &report).ok());
  EXPECT_EQ(report.events_applied, 1u);
  EXPECT_EQ(report.events_ignored_stale, 1u);
  EXPECT_EQ(report.users_rebuilt, 1u) << "stale-only users are not rebuilt";
  EXPECT_EQ(report.published_generation, 4u);
}

TEST_F(DeltaLogTest, EmptyBatchReportsCurrentGeneration) {
  auto engine = MakeEngine(BaseOptions());
  const std::vector<RatingEvent> one = {{2, 5, 3.0, 2'000'000'000}};
  ASSERT_TRUE(engine->ApplyUpdates(one).ok());
  ASSERT_EQ(engine->snapshot()->generation(), 2u);

  UpdateReport report;
  ASSERT_TRUE(engine->ApplyUpdates({}, &report).ok());
  EXPECT_EQ(report.events_applied, 0u);
  EXPECT_EQ(report.events_ignored_stale, 0u);
  EXPECT_EQ(report.published_generation, 2u)
      << "an empty batch must be distinguishable from 'never published'";
  EXPECT_EQ(report.delta_log_ratings, 1u)
      << "the report carries the resident log size, not a zeroed field";
  EXPECT_EQ(engine->snapshot()->generation(), 2u);
}

// --- The tentpole equivalence ----------------------------------------------

// N event batches applied through the delta log must match (1) compaction on
// every publish — the old full-re-fold behavior — and (2) periodic forced
// compactions, bit for bit: recommendations, reports and period-cache
// counters. Finally the delta-log engine must match a FRESH engine built
// over the offline fold of all events.
TEST_F(DeltaLogTest, RandomizedDeltaLogEquivalence) {
  RecommenderOptions pure = BaseOptions();  // delta log only, never compacts
  pure.compact_every_n_publishes = 0;
  pure.compact_delta_fraction = 0.0;
  RecommenderOptions refold = BaseOptions();  // compacts on every publish
  refold.compact_every_n_publishes = 1;
  refold.compact_delta_fraction = 0.0;
  RecommenderOptions periodic = BaseOptions();  // forced compaction cadence
  periodic.compact_every_n_publishes = 3;
  periodic.compact_delta_fraction = 0.0;

  auto engine_pure = MakeEngine(pure);
  auto engine_refold = MakeEngine(refold);
  auto engine_periodic = MakeEngine(periodic);
  const std::vector<Query> mix = QueryMix();

  std::vector<RatingEvent> all_events;
  for (std::uint64_t batch = 0; batch < 8; ++batch) {
    const std::vector<RatingEvent> events = RandomEvents(24, 900 + batch);
    all_events.insert(all_events.end(), events.begin(), events.end());

    UpdateReport rp, rr, rc;
    ASSERT_TRUE(engine_pure->ApplyUpdates(events, &rp).ok());
    ASSERT_TRUE(engine_refold->ApplyUpdates(events, &rr).ok());
    ASSERT_TRUE(engine_periodic->ApplyUpdates(events, &rc).ok());

    // Attribution is identical on every path (it precedes compaction).
    EXPECT_EQ(rp.events_applied, rr.events_applied) << "batch " << batch;
    EXPECT_EQ(rp.events_ignored_stale, rr.events_ignored_stale);
    EXPECT_EQ(rp.users_rebuilt, rr.users_rebuilt);
    EXPECT_EQ(rp.events_applied, rc.events_applied);
    EXPECT_EQ(rp.events_applied + rp.events_ignored_stale, events.size());
    // The re-fold engine never accumulates a log; the pure engine never
    // drops one.
    if (rr.events_applied > 0) {
      EXPECT_TRUE(rr.compacted);
      EXPECT_EQ(rr.delta_log_ratings, 0u);
      EXPECT_FALSE(rp.compacted);
      EXPECT_GE(rp.delta_log_ratings, 1u);
    }

    const auto recs_pure = RunMix(*engine_pure, mix);
    ExpectSameRecommendations(recs_pure, RunMix(*engine_refold, mix),
                              "pure-vs-refold");
    ExpectSameRecommendations(recs_pure, RunMix(*engine_periodic, mix),
                              "pure-vs-periodic");
  }

  // The periodic engine really did compact mid-stream.
  EXPECT_LT(engine_periodic->snapshot()->ratings().delta_ratings(),
            engine_pure->snapshot()->ratings().delta_ratings());

  // Identical query sequences produced identical period-cache behavior —
  // the cache carries across delta publishes AND compactions.
  const auto& sp = *engine_pure->snapshot();
  const auto& sr = *engine_refold->snapshot();
  const auto& sc = *engine_periodic->snapshot();
  EXPECT_EQ(sp.period_cache_hits(), sr.period_cache_hits());
  EXPECT_EQ(sp.period_cache_misses(), sr.period_cache_misses());
  EXPECT_EQ(sp.period_cache_size(), sr.period_cache_size());
  EXPECT_EQ(sp.period_cache_hits(), sc.period_cache_hits());
  EXPECT_EQ(sp.period_cache_misses(), sc.period_cache_misses());
  EXPECT_EQ(sp.period_cache_size(), sc.period_cache_size());

  // Ground truth: a fresh engine over the offline fold of every event sees
  // the exact same world as the delta-log engine that never compacted.
  FacebookStudy folded = *study_;
  std::vector<RatingRecord> records;
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    for (const UserRatingEntry& e : study_->study_ratings.RatingsOfUser(u)) {
      records.push_back({u, e.item, e.rating, e.timestamp});
    }
  }
  for (const RatingEvent& e : all_events) {
    records.push_back({e.user, e.item, e.rating, e.timestamp});
  }
  folded.study_ratings = RatingsDataset::FromRecords(
      study_->num_participants(), universe_->dataset.num_items(),
      std::move(records));
  EngineOptions eopts;
  eopts.num_threads = 2;
  const Engine oracle(universe_->dataset, folded, BaseOptions(), eopts);
  ExpectSameRecommendations(RunMix(*engine_pure, mix), RunMix(oracle, mix),
                            "delta-vs-fresh-fold");
}

// --- Parallel touched-row rebuild ------------------------------------------

// ApplyRatingUpdates with update_threads > 0 fans the per-row CF predict +
// index re-sort over an internal pool. Rows are independent, so the
// published snapshots must be BIT-IDENTICAL to the serial path: same
// predictions, same index rows, same recommendations, same reports.
TEST_F(DeltaLogTest, ParallelRebuildMatchesSerialBitForBit) {
  RecommenderOptions serial = BaseOptions();
  serial.update_threads = 0;
  RecommenderOptions parallel = BaseOptions();
  parallel.update_threads = 3;

  auto engine_serial = MakeEngine(serial);
  auto engine_parallel = MakeEngine(parallel);
  const std::vector<Query> mix = QueryMix();

  for (std::uint64_t batch = 0; batch < 5; ++batch) {
    // Wide batches so every round rebuilds many rows (the parallel path
    // only engages past one touched row).
    const std::vector<RatingEvent> events = RandomEvents(48, 6'200 + batch);
    UpdateReport rs, rp;
    ASSERT_TRUE(engine_serial->ApplyUpdates(events, &rs).ok());
    ASSERT_TRUE(engine_parallel->ApplyUpdates(events, &rp).ok());
    EXPECT_EQ(rs.events_applied, rp.events_applied) << "batch " << batch;
    EXPECT_EQ(rs.events_ignored_stale, rp.events_ignored_stale);
    EXPECT_EQ(rs.users_rebuilt, rp.users_rebuilt);
    EXPECT_EQ(rs.published_generation, rp.published_generation);
    EXPECT_EQ(rs.delta_log_ratings, rp.delta_log_ratings);

    // Snapshot-level bit-identity: every touched user's full prediction row.
    const auto ss = engine_serial->snapshot();
    const auto sp = engine_parallel->snapshot();
    for (const RatingEvent& e : events) {
      const auto a = ss->predictions(e.user);
      const auto b = sp->predictions(e.user);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "user " << e.user << " item " << i;
      }
    }
    ExpectSameRecommendations(RunMix(*engine_serial, mix),
                              RunMix(*engine_parallel, mix),
                              "serial-vs-parallel-rebuild");
  }
}

// --- Group commit ----------------------------------------------------------

// Concurrent ApplyUpdates callers must all land (possibly coalesced into
// shared generations), with exact per-batch attribution and a final state
// identical to the offline fold of every event. Globally unique timestamps
// make the final state independent of arrival order. The TSan CI job runs
// this against the real race.
TEST_F(DeltaLogTest, ConcurrentCallersGroupCommit) {
  auto engine = MakeEngine(BaseOptions());
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kBatches = 6;
  constexpr std::size_t kEvents = 8;

  std::vector<std::vector<std::vector<RatingEvent>>> batches(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng rng(3'000 + t);
    batches[t].resize(kBatches);
    for (std::size_t b = 0; b < kBatches; ++b) {
      for (std::size_t i = 0; i < kEvents; ++i) {
        RatingEvent e;
        e.user = static_cast<UserId>(
            rng.NextBounded(study_->num_participants()));
        e.item = static_cast<ItemId>(
            rng.NextBounded(universe_->dataset.num_items()));
        e.rating = static_cast<Score>(1 + rng.NextBounded(5));
        e.timestamp = static_cast<Timestamp>(
            2'000'000'000 + ((t * kBatches + b) * kEvents + i));
        batches[t][b].push_back(e);
      }
    }
  }

  std::vector<std::vector<UpdateReport>> reports(
      kThreads, std::vector<UpdateReport>(kBatches));
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t b = 0; b < kBatches; ++b) {
        EXPECT_TRUE(
            engine->ApplyUpdates(batches[t][b], &reports[t][b]).ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  const std::uint64_t final_generation = engine->snapshot()->generation();
  EXPECT_GE(final_generation, 2u);
  EXPECT_LE(final_generation, 1u + kThreads * kBatches);
  std::size_t total_accounted = 0;
  for (const auto& per_thread : reports) {
    for (const UpdateReport& r : per_thread) {
      EXPECT_GE(r.published_generation, 2u);
      EXPECT_LE(r.published_generation, final_generation);
      EXPECT_GE(r.batches_coalesced, 1u);
      EXPECT_EQ(r.events_applied + r.events_ignored_stale, kEvents);
      total_accounted += r.events_applied + r.events_ignored_stale;
    }
  }
  EXPECT_EQ(total_accounted, kThreads * kBatches * kEvents);

  // Final state oracle: fold base + every event offline; every touched pair
  // must read back the same rating through the merged view.
  std::vector<RatingRecord> records;
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    for (const UserRatingEntry& e : study_->study_ratings.RatingsOfUser(u)) {
      records.push_back({u, e.item, e.rating, e.timestamp});
    }
  }
  std::map<std::pair<UserId, ItemId>, int> touched_pairs;
  for (const auto& per_thread : batches) {
    for (const auto& batch : per_thread) {
      for (const RatingEvent& e : batch) {
        records.push_back({e.user, e.item, e.rating, e.timestamp});
        touched_pairs[{e.user, e.item}] = 1;
      }
    }
  }
  const RatingsDataset folded = RatingsDataset::FromRecords(
      study_->num_participants(), universe_->dataset.num_items(),
      std::move(records));
  const RatingsOverlay& live = engine->snapshot()->ratings();
  for (const auto& [pair, unused] : touched_pairs) {
    (void)unused;
    EXPECT_EQ(live.GetRating(pair.first, pair.second),
              folded.GetRating(pair.first, pair.second))
        << "pair (" << pair.first << ", " << pair.second << ")";
  }

  // Serving still works on the coalesced result.
  for (const auto& rec : RunMix(*engine, QueryMix())) {
    EXPECT_FALSE(rec.items.empty());
  }
}

// --- Compaction policy -----------------------------------------------------

TEST_F(DeltaLogTest, CompactionCadenceAndPinnedSnapshots) {
  RecommenderOptions options = BaseOptions();
  options.compact_every_n_publishes = 2;
  options.compact_delta_fraction = 0.0;
  auto engine = MakeEngine(options);
  const std::vector<Query> mix = QueryMix();

  const auto pinned = engine->snapshot();
  const auto before = RunMix(*engine, mix);

  bool saw_compaction = false;
  for (std::uint64_t batch = 0; batch < 4; ++batch) {
    UpdateReport report;
    ASSERT_TRUE(
        engine->ApplyUpdates(RandomEvents(16, 4'000 + batch), &report).ok());
    // Every 2nd rating publish folds the log into a fresh base.
    EXPECT_EQ(report.compacted, batch % 2 == 1) << "batch " << batch;
    if (report.compacted) {
      saw_compaction = true;
      EXPECT_EQ(report.delta_log_ratings, 0u);
    }
  }
  ASSERT_TRUE(saw_compaction);

  // Pinned pre-compaction snapshots replay bit-identically: compaction must
  // never mutate retired generations.
  std::vector<Recommendation> replay;
  for (const Query& q : mix) {
    auto r = engine->Recommend(q, pinned);
    ASSERT_TRUE(r.ok());
    replay.push_back(std::move(r.value()));
  }
  ExpectSameRecommendations(before, replay, "pinned-across-compactions");

  // The compacted base subsumed the log: merged reads keep working.
  EXPECT_EQ(engine->snapshot()->ratings().base().num_ratings(),
            engine->snapshot()->ratings().num_ratings());
}

}  // namespace
}  // namespace greca
