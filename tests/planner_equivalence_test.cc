// The batch planner's load-bearing contract: a PLANNED RecommendBatch —
// duplicate queries bucketed by execution signature, one assembled + solved
// problem per bucket, results fanned back out — is BIT-IDENTICAL to the
// unplanned one-problem-per-query reference path, on both the monolithic
// Engine and the ShardedEngine, with invalid queries mixed in, and across
// publishes landing around a pinned snapshot / snapshot set. "Bit-identical"
// covers the full observable surface: per-query ok/status, recommended
// items, scores, raw access counters, rounds, and early termination. The
// planner's report (buckets, attribution, dedup ratio, lazy-agreement and
// cache counters) is audited alongside.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "plan/batch_planner.h"
#include "shard/sharded_engine.h"
#include "solver/solver_registry.h"

namespace greca {
namespace {

// --- BatchPlanner unit tests ------------------------------------------------

QuerySpec SmallSpec() {
  QuerySpec spec;
  spec.k = 5;
  spec.num_candidate_items = 360;
  return spec;
}

Query MakeQuery(std::vector<UserId> group, QuerySpec spec) {
  Query q;
  q.group = std::move(group);
  q.spec = std::move(spec);
  return q;
}

constexpr std::size_t kUnitNumPeriods = 4;

BatchPlan PlanAllValid(const std::vector<Query>& queries) {
  return BatchPlanner::Plan(
      queries, [](const Query&) { return Status::Ok(); }, kUnitNumPeriods);
}

TEST(BatchPlannerTest, BucketsDuplicatesInFirstAppearanceOrder) {
  const Query a = MakeQuery({1, 2}, SmallSpec());
  QuerySpec bigger = SmallSpec();
  bigger.k = 7;
  const Query b = MakeQuery({1, 2}, bigger);
  const Query c = MakeQuery({3, 4, 5}, SmallSpec());
  const std::vector<Query> queries = {a, b, a, c, b, a};

  const BatchPlan plan = PlanAllValid(queries);
  ASSERT_EQ(plan.buckets.size(), 3u);
  EXPECT_EQ(plan.buckets[0].queries, (std::vector<std::uint32_t>{0, 2, 5}));
  EXPECT_EQ(plan.buckets[1].queries, (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(plan.buckets[2].queries, (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(plan.bucket_of,
            (std::vector<std::uint32_t>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(plan.num_valid, 6u);
  EXPECT_DOUBLE_EQ(plan.DedupRatio(), 2.0);
  for (const Status& s : plan.statuses) EXPECT_TRUE(s.ok());
}

// The planner buckets on RESOLVED periods: "default period" and "explicitly
// the last period" are the same execution and must share one solve.
TEST(BatchPlannerTest, NulloptAndExplicitLastPeriodShareABucket) {
  QuerySpec implicit_last = SmallSpec();
  implicit_last.eval_period = std::nullopt;
  QuerySpec explicit_last = SmallSpec();
  explicit_last.eval_period = static_cast<PeriodId>(kUnitNumPeriods - 1);
  QuerySpec earlier = SmallSpec();
  earlier.eval_period = 0;

  const BatchPlan plan = PlanAllValid({MakeQuery({1, 2}, implicit_last),
                                       MakeQuery({1, 2}, explicit_last),
                                       MakeQuery({1, 2}, earlier)});
  ASSERT_EQ(plan.buckets.size(), 2u);
  EXPECT_EQ(plan.buckets[0].queries, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(plan.buckets[1].queries, (std::vector<std::uint32_t>{2}));
}

// Likewise the solver id is bucketed RESOLVED: the legacy enum alias and the
// explicit QuerySpec::solver_id spelling of the same solver are the same
// execution — one solve — while genuinely different solvers never merge.
TEST(BatchPlannerTest, EnumAliasAndExplicitSolverIdShareABucket) {
  QuerySpec via_enum = SmallSpec();
  via_enum.algorithm = Algorithm::kNaive;
  QuerySpec via_id = SmallSpec();
  via_id.algorithm = Algorithm::kGreca;  // overridden by the explicit id
  via_id.solver_id = std::string(kNaiveSolverId);
  QuerySpec other_solver = SmallSpec();
  other_solver.solver_id = std::string(kSubmodularSolverId);
  QuerySpec other_weighting = via_enum;
  other_weighting.weighting = MemberWeighting::kInfluence;

  const BatchPlan plan = PlanAllValid(
      {MakeQuery({1, 2}, via_enum), MakeQuery({1, 2}, via_id),
       MakeQuery({1, 2}, other_solver), MakeQuery({1, 2}, other_weighting)});
  ASSERT_EQ(plan.buckets.size(), 3u);
  EXPECT_EQ(plan.buckets[0].queries, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(plan.buckets[1].queries, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(plan.buckets[2].queries, (std::vector<std::uint32_t>{3}));
}

// Group order is part of the signature (members map to problem rows by
// position), and every spec field that reaches the solve must split buckets.
TEST(BatchPlannerTest, SignatureCoversGroupOrderAndEverySpecField) {
  std::vector<Query> queries = {MakeQuery({1, 2, 3}, SmallSpec())};
  queries.push_back(MakeQuery({3, 2, 1}, SmallSpec()));  // order flipped
  auto add = [&queries](auto mutate) {
    QuerySpec spec = SmallSpec();
    mutate(spec);
    queries.push_back(MakeQuery({1, 2, 3}, std::move(spec)));
  };
  add([](QuerySpec& s) { s.k = 9; });
  add([](QuerySpec& s) { s.algorithm = Algorithm::kNaive; });
  add([](QuerySpec& s) { s.solver_id = std::string(kSubmodularSolverId); });
  add([](QuerySpec& s) { s.weighting = MemberWeighting::kInfluence; });
  add([](QuerySpec& s) { s.eval_period = 0; });
  add([](QuerySpec& s) { s.termination = TerminationPolicy::kThresholdOnly; });
  add([](QuerySpec& s) { s.num_candidate_items = 200; });
  add([](QuerySpec& s) { s.model = AffinityModelSpec::TimeAgnostic(); });
  add([](QuerySpec& s) { s.model.drift_gain = 0.5; });
  add([](QuerySpec& s) { s.consensus = ConsensusSpec::LeastMisery(); });
  add([](QuerySpec& s) { s.consensus = ConsensusSpec::PairwiseDisagreement(); });
  add([](QuerySpec& s) {
    s.consensus = ConsensusSpec::PairwiseDisagreement(0.2);
  });
  add([](QuerySpec& s) {
    s.consensus = ConsensusSpec::PairwiseDisagreement();
    s.consensus.disagreement_scale = 4.0;
  });

  const BatchPlan plan = PlanAllValid(queries);
  EXPECT_EQ(plan.buckets.size(), queries.size())
      << "two distinct signatures collapsed into one bucket";
}

TEST(BatchPlannerTest, RejectedQueriesCarryTheValidatorStatus) {
  const std::vector<Query> queries = {MakeQuery({1, 2}, SmallSpec()),
                                      MakeQuery({}, SmallSpec()),
                                      MakeQuery({1, 2}, SmallSpec())};
  const BatchPlan plan = BatchPlanner::Plan(
      queries,
      [](const Query& q) {
        return q.group.empty() ? Status::InvalidArgument("group is empty")
                               : Status::Ok();
      },
      kUnitNumPeriods);
  ASSERT_EQ(plan.buckets.size(), 1u);
  EXPECT_EQ(plan.buckets[0].queries, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(plan.bucket_of[1], BatchQueryAttribution::kInvalid);
  EXPECT_EQ(plan.statuses[1].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.statuses[1].message(), "group is empty");
  EXPECT_EQ(plan.num_valid, 2u);
}

// --- End-to-end equivalence on both engines ---------------------------------

class PlannerEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 240;
    uc.num_items = 400;
    uc.target_ratings = 18'000;
    uc.seed = 88;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 180;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static RecommenderOptions MonoOptions() {
    RecommenderOptions options;
    options.max_candidate_items = 360;
    return options;
  }

  static std::unique_ptr<Engine> MakePlanned() {
    EngineOptions eopts;
    eopts.num_threads = 2;
    return std::make_unique<Engine>(universe_->dataset, *study_, MonoOptions(),
                                    eopts);
  }

  /// The unplanned reference engine: wraps the SAME recommender (and so
  /// serves the same snapshots) with planning disabled.
  static std::unique_ptr<Engine> WrapUnplanned(const Engine& planned) {
    EngineOptions eopts;
    eopts.num_threads = 2;
    eopts.plan_batches = false;
    return std::make_unique<Engine>(planned.recommender(), eopts);
  }

  static std::unique_ptr<ShardedEngine> MakeSharded(bool plan_batches) {
    return MakeShardedN(4, plan_batches, /*batch_threads=*/0);
  }

  /// `batch_threads == 1` is the serial reference the executor's parallel
  /// path must be bit-identical to.
  static std::unique_ptr<ShardedEngine> MakeShardedN(
      std::size_t num_shards, bool plan_batches, std::size_t batch_threads) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.max_candidate_items = 360;
    options.plan_batches = plan_batches;
    options.batch_threads = batch_threads;
    return std::make_unique<ShardedEngine>(universe_->dataset, *study_,
                                           options);
  }

  /// A duplicate-heavy batch: `num_base` distinct valid queries across
  /// algorithms, models and consensus functions (pairwise included — the
  /// lazy-agreement path must be exercised), each repeated `dup` times, the
  /// whole batch shuffled, with invalid queries interleaved.
  static std::vector<Query> DuplicateHeavyBatch(std::size_t num_base,
                                                std::size_t dup,
                                                std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto num_periods =
        static_cast<PeriodId>(study_->periods.num_periods());
    const AffinityModelSpec models[] = {AffinityModelSpec::Default(),
                                        AffinityModelSpec::Continuous(),
                                        AffinityModelSpec::TimeAgnostic()};
    const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                    Algorithm::kTa};
    const ConsensusSpec consensus[] = {ConsensusSpec::AveragePreference(),
                                       ConsensusSpec::PairwiseDisagreement(),
                                       ConsensusSpec::LeastMisery()};
    Rng rng(seed);
    std::vector<Query> queries;
    for (std::size_t i = 0; i < num_base; ++i) {
      Query q;
      const std::size_t size = 2 + rng.NextBounded(4);
      while (q.group.size() < size) {
        const auto u = static_cast<UserId>(rng.NextBounded(participants));
        if (std::find(q.group.begin(), q.group.end(), u) == q.group.end()) {
          q.group.push_back(u);
        }
      }
      q.spec.k = 4 + i % 5;
      q.spec.model = models[i % 3];
      q.spec.algorithm = algorithms[(i / 3) % 3];
      q.spec.consensus = consensus[i % 3];
      q.spec.num_candidate_items = 360;
      if (i % 4 == 0) {
        q.spec.eval_period = std::nullopt;  // resolves to the last period
      } else {
        q.spec.eval_period = static_cast<PeriodId>(i % num_periods);
      }
      for (std::size_t d = 0; d < dup; ++d) queries.push_back(q);
    }
    // Invalid queries ride along and must fail identically on every path.
    queries.push_back(MakeQuery({}, SmallSpec()));                // empty
    queries.push_back(MakeQuery({1, 1}, SmallSpec()));            // duplicate
    queries.push_back(MakeQuery({1, participants}, SmallSpec())); // unknown
    QuerySpec bad_k = SmallSpec();
    bad_k.k = 0;
    queries.push_back(MakeQuery({1, 2}, bad_k));
    QuerySpec bad_period = SmallSpec();
    bad_period.eval_period = num_periods;
    queries.push_back(MakeQuery({1, 2}, bad_period));
    // Fisher–Yates with the deterministic Rng.
    for (std::size_t i = queries.size(); i > 1; --i) {
      std::swap(queries[i - 1], queries[rng.NextBounded(i)]);
    }
    return queries;
  }

  static std::vector<RatingEvent> RandomEvents(std::size_t count,
                                               std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto items = static_cast<ItemId>(universe_->dataset.num_items());
    Rng rng(seed);
    std::vector<RatingEvent> events;
    for (std::size_t i = 0; i < count; ++i) {
      RatingEvent e;
      e.user = static_cast<UserId>(rng.NextBounded(participants));
      e.item = static_cast<ItemId>(rng.NextBounded(items));
      e.rating = static_cast<Score>(1 + rng.NextBounded(5));
      e.timestamp = static_cast<Timestamp>(rng.NextBounded(3'000'000'000));
      events.push_back(e);
    }
    return events;
  }

  /// The full observable surface must match per query: status parity for
  /// rejected queries, and for accepted ones equal access counters prove the
  /// fanned-out problems were identical — not merely same-ranking.
  static void ExpectBatchIdentical(
      const std::vector<Result<Recommendation>>& a,
      const std::vector<Result<Recommendation>>& b, const char* label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].ok(), b[i].ok()) << label << " query " << i;
      if (!a[i].ok()) {
        EXPECT_EQ(a[i].status().code(), b[i].status().code())
            << label << " query " << i;
        EXPECT_EQ(a[i].status().message(), b[i].status().message())
            << label << " query " << i;
        continue;
      }
      const Recommendation& x = a[i].value();
      const Recommendation& y = b[i].value();
      EXPECT_EQ(x.items, y.items) << label << " query " << i;
      EXPECT_EQ(x.scores, y.scores) << label << " query " << i;
      EXPECT_EQ(x.raw.accesses.sequential, y.raw.accesses.sequential)
          << label << " query " << i;
      EXPECT_EQ(x.raw.accesses.random, y.raw.accesses.random)
          << label << " query " << i;
      EXPECT_EQ(x.raw.total_entries, y.raw.total_entries)
          << label << " query " << i;
      EXPECT_EQ(x.raw.rounds, y.raw.rounds) << label << " query " << i;
      EXPECT_EQ(x.raw.early_terminated, y.raw.early_terminated)
          << label << " query " << i;
    }
  }

  /// Attribution invariants every planned report must satisfy against its
  /// batch: buckets partition the valid queries, exactly one representative
  /// per bucket, and the representative is the bucket's first appearance.
  static void CheckPlannedReport(const BatchReport& report,
                                 std::size_t num_queries, const char* label) {
    EXPECT_TRUE(report.planned) << label;
    EXPECT_EQ(report.num_queries, num_queries) << label;
    ASSERT_EQ(report.per_query.size(), num_queries) << label;
    const std::size_t valid = report.num_queries - report.num_invalid;
    EXPECT_EQ(report.duplicates_shared, valid - report.num_buckets) << label;
    EXPECT_NEAR(report.dedup_ratio,
                static_cast<double>(valid) /
                    static_cast<double>(report.num_buckets),
                1e-12)
        << label;
    std::vector<std::size_t> members(report.num_buckets, 0);
    std::vector<std::size_t> representatives(report.num_buckets, 0);
    std::vector<bool> seen(report.num_buckets, false);
    std::size_t invalid = 0;
    for (const BatchQueryAttribution& at : report.per_query) {
      if (at.bucket == BatchQueryAttribution::kInvalid) {
        ++invalid;
        EXPECT_FALSE(at.representative) << label;
        continue;
      }
      ASSERT_LT(at.bucket, report.num_buckets) << label;
      ++members[at.bucket];
      if (at.representative) ++representatives[at.bucket];
      // The representative is the first query of its bucket in input order.
      EXPECT_EQ(at.representative, !seen[at.bucket]) << label;
      seen[at.bucket] = true;
    }
    EXPECT_EQ(invalid, report.num_invalid) << label;
    for (std::size_t b = 0; b < report.num_buckets; ++b) {
      EXPECT_GE(members[b], 1u) << label << " bucket " << b;
      EXPECT_EQ(representatives[b], 1u) << label << " bucket " << b;
    }
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* PlannerEquivalenceTest::universe_ = nullptr;
FacebookStudy* PlannerEquivalenceTest::study_ = nullptr;

TEST_F(PlannerEquivalenceTest, PlannedMatchesUnplannedOnTheMonolithicEngine) {
  const auto planned = MakePlanned();
  const auto unplanned = WrapUnplanned(*planned);

  for (const std::size_t dup : {1u, 4u, 16u}) {
    const std::vector<Query> batch = DuplicateHeavyBatch(12, dup, 900 + dup);
    BatchReport planned_report, unplanned_report;
    const auto a = planned->RecommendBatch(batch, &planned_report);
    const auto b = unplanned->RecommendBatch(batch, &unplanned_report);
    ExpectBatchIdentical(a, b, "mono");

    CheckPlannedReport(planned_report, batch.size(), "mono-planned");
    EXPECT_EQ(planned_report.num_invalid, 5u);
    const std::size_t valid = batch.size() - 5;
    EXPECT_EQ(planned_report.num_buckets, valid / dup)
        << "every duplicate must share its base query's bucket";
    EXPECT_NEAR(planned_report.dedup_ratio, static_cast<double>(dup), 1e-12);
    // Pairwise-consensus problems were solved, so their agreement lists
    // must have been built (every algorithm scores through them).
    EXPECT_GT(planned_report.agreement_lists_materialized, 0u);

    // The reference path reports one bucket per valid query, no sharing.
    EXPECT_FALSE(unplanned_report.planned);
    EXPECT_EQ(unplanned_report.num_invalid, 5u);
    EXPECT_EQ(unplanned_report.num_buckets, valid);
    EXPECT_EQ(unplanned_report.duplicates_shared, 0u);
    EXPECT_DOUBLE_EQ(unplanned_report.dedup_ratio, 1.0);
  }
}

// A batch replayed on a pinned snapshot must ignore publishes entirely —
// planned and unplanned alike — while fresh batches see the new generation,
// still identically across the two paths.
TEST_F(PlannerEquivalenceTest, PinnedSnapshotSurvivesPublishesOnBothPaths) {
  const auto planned = MakePlanned();
  const auto unplanned = WrapUnplanned(*planned);
  const std::vector<Query> batch = DuplicateHeavyBatch(10, 4, 911);

  const auto pin = planned->snapshot();
  const auto before = planned->RecommendBatch(batch, pin, nullptr);
  ExpectBatchIdentical(before, unplanned->RecommendBatch(batch, pin, nullptr),
                       "pinned-before");

  for (std::uint64_t round = 0; round < 3; ++round) {
    ASSERT_TRUE(planned->ApplyUpdates(RandomEvents(24, 1'300 + round)).ok());
    ExpectBatchIdentical(before, planned->RecommendBatch(batch, pin, nullptr),
                         "pinned-replay-planned");
    ExpectBatchIdentical(before,
                         unplanned->RecommendBatch(batch, pin, nullptr),
                         "pinned-replay-unplanned");
  }
  ExpectBatchIdentical(planned->RecommendBatch(batch),
                       unplanned->RecommendBatch(batch), "fresh-after");
}

// Sharded planned == sharded unplanned == monolithic, from fresh engines and
// after every batch of a shared update stream.
TEST_F(PlannerEquivalenceTest, ShardedPlannedMatchesUnplannedAndMonolithic) {
  const auto mono = MakePlanned();
  const auto sharded_planned = MakeSharded(/*plan_batches=*/true);
  const auto sharded_unplanned = MakeSharded(/*plan_batches=*/false);

  for (std::uint64_t round = 0; round < 3; ++round) {
    const std::vector<Query> batch = DuplicateHeavyBatch(10, 4, 1'500 + round);
    BatchReport sp_report, su_report;
    const auto sp = sharded_planned->RecommendBatch(batch, &sp_report);
    const auto su = sharded_unplanned->RecommendBatch(batch, &su_report);
    ExpectBatchIdentical(sp, su, "sharded-planned-vs-unplanned");
    ExpectBatchIdentical(sp, mono->RecommendBatch(batch),
                         "sharded-vs-mono");
    CheckPlannedReport(sp_report, batch.size(), "sharded-planned");
    EXPECT_NEAR(sp_report.dedup_ratio, 4.0, 1e-12);
    EXPECT_FALSE(su_report.planned);
    EXPECT_EQ(su_report.num_buckets,
              batch.size() - su_report.num_invalid);

    const std::vector<RatingEvent> events = RandomEvents(20, 2'700 + round);
    ASSERT_TRUE(mono->ApplyUpdates(events).ok());
    ASSERT_TRUE(sharded_planned->ApplyUpdates(events).ok());
    ASSERT_TRUE(sharded_unplanned->ApplyUpdates(events).ok());
  }
}

// Pin() reuse and the set-scoped tombstone memo: while no shard publishes,
// repeated pins return the same set object and repeated batches on it hit
// the memo; a publish retires the set (fresh pin, fresh memo) without
// perturbing batches replayed on the old one.
TEST_F(PlannerEquivalenceTest, PinnedSetReuseAndTombstoneMemo) {
  const auto sharded = MakeSharded(/*plan_batches=*/true);
  const std::vector<Query> batch = DuplicateHeavyBatch(10, 4, 1'777);

  const auto set = sharded->Pin();
  EXPECT_EQ(set.get(), sharded->Pin().get())
      << "no publish landed, so Pin() must reuse the set";

  BatchReport first_report;
  const auto first = sharded->RecommendBatch(set, batch, &first_report);
  CheckPlannedReport(first_report, batch.size(), "set-first");
  // Duplicate groups across specs share (group, pool) bitmaps within the
  // first batch already; the memo must have been consulted.
  EXPECT_GT(first_report.tombstone_cache_misses, 0u);

  BatchReport second_report;
  ExpectBatchIdentical(first,
                       sharded->RecommendBatch(set, batch, &second_report),
                       "set-repeat");
  EXPECT_GT(second_report.tombstone_cache_hits, 0u)
      << "the second batch on the same set must hit the memo";
  EXPECT_EQ(second_report.tombstone_cache_misses, 0u)
      << "every bitmap of the repeat batch was already memoized";

  ASSERT_TRUE(sharded->ApplyUpdates(RandomEvents(24, 3'900)).ok());
  const auto fresh = sharded->Pin();
  EXPECT_NE(set.get(), fresh.get())
      << "a publish must retire the reused set";
  // The retired set still answers exactly as before, from its own memo.
  ExpectBatchIdentical(first, sharded->RecommendBatch(set, batch, nullptr),
                       "set-replay-after-publish");
  EXPECT_EQ(fresh.get(), sharded->Pin().get());
}

// The unified executor's parallel sharded path: planned buckets solved over
// the batch pool must be bit-identical to the serial reference
// (batch_threads = 1, inline on the calling thread) AND to the unplanned
// per-query path, at every shard count, on duplicate-heavy batches with
// invalid queries mixed in, and across publishes landing around pinned sets.
TEST_F(PlannerEquivalenceTest, ShardedParallelPlannedMatchesSerialReference) {
  for (const std::size_t num_shards : {1u, 2u, 4u}) {
    const auto parallel =
        MakeShardedN(num_shards, /*plan_batches=*/true, /*batch_threads=*/4);
    const auto serial =
        MakeShardedN(num_shards, /*plan_batches=*/true, /*batch_threads=*/1);
    const auto unplanned =
        MakeShardedN(num_shards, /*plan_batches=*/false, /*batch_threads=*/1);

    for (const std::size_t dup : {4u, 16u}) {
      const std::vector<Query> batch =
          DuplicateHeavyBatch(10, dup, 5'000 + 10 * num_shards + dup);
      BatchReport parallel_report, serial_report;
      const auto p = parallel->RecommendBatch(batch, &parallel_report);
      const auto s = serial->RecommendBatch(batch, &serial_report);
      ExpectBatchIdentical(p, s, "sharded-parallel-vs-serial");
      ExpectBatchIdentical(p, unplanned->RecommendBatch(batch),
                           "sharded-parallel-vs-unplanned");
      CheckPlannedReport(parallel_report, batch.size(), "sharded-parallel");
      CheckPlannedReport(serial_report, batch.size(), "sharded-serial");
      // Attribution is deterministic (the plan is computed before any solve
      // runs), so the parallel report matches the serial one bucket-for-
      // bucket; only cache hit/miss counters may differ under racing
      // workers, never the attribution.
      ASSERT_EQ(parallel_report.per_query.size(),
                serial_report.per_query.size());
      for (std::size_t i = 0; i < parallel_report.per_query.size(); ++i) {
        EXPECT_EQ(parallel_report.per_query[i].bucket,
                  serial_report.per_query[i].bucket)
            << "query " << i;
        EXPECT_EQ(parallel_report.per_query[i].representative,
                  serial_report.per_query[i].representative)
            << "query " << i;
      }
      EXPECT_EQ(parallel_report.num_buckets, serial_report.num_buckets);
    }

    // Publishes around a pinned set: the pinned replay ignores them on both
    // paths, fresh batches see the new generation identically.
    const std::vector<Query> batch = DuplicateHeavyBatch(8, 4, 5'500);
    const auto pin_parallel = parallel->Pin();
    const auto pin_serial = serial->Pin();
    const auto before =
        parallel->RecommendBatch(pin_parallel, batch, nullptr);
    ExpectBatchIdentical(
        before, serial->RecommendBatch(pin_serial, batch, nullptr),
        "pinned-before");
    for (std::uint64_t round = 0; round < 2; ++round) {
      const std::vector<RatingEvent> events =
          RandomEvents(24, 6'100 + round);
      ASSERT_TRUE(parallel->ApplyUpdates(events).ok());
      ASSERT_TRUE(serial->ApplyUpdates(events).ok());
      ExpectBatchIdentical(
          before, parallel->RecommendBatch(pin_parallel, batch, nullptr),
          "pinned-replay-parallel");
      ExpectBatchIdentical(
          before, serial->RecommendBatch(pin_serial, batch, nullptr),
          "pinned-replay-serial");
    }
    ExpectBatchIdentical(parallel->RecommendBatch(batch),
                         serial->RecommendBatch(batch), "fresh-after");
  }
}

// The lazy aggregated agreement list: deferred at assembly, materialized
// only when an algorithm walks it, with TotalEntries (the paper's EDA cost
// surface) exact in both states.
TEST_F(PlannerEquivalenceTest, LazyAgreementDeferAndMaterialize) {
  const auto engine = MakePlanned();
  const GroupRecommender& rec = engine->recommender();

  QuerySpec pairwise = SmallSpec();
  pairwise.consensus = ConsensusSpec::PairwiseDisagreement();
  const std::vector<UserId> group = {1, 2, 3};

  // Build WITHOUT solving: the agreement list must stay unbuilt.
  auto problem = rec.BuildProblem(group, pairwise);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  EXPECT_TRUE(problem.value().agreement_deferred());
  EXPECT_FALSE(problem.value().agreement_materialized());
  EXPECT_TRUE(problem.value().uses_agreement_lists());
  EXPECT_EQ(problem.value().num_agreement_lists(), 1u);
  const std::size_t entries_deferred = problem.value().TotalEntries();

  // First walk materializes; the observable surface must not move.
  const auto lists = problem.value().agreement_lists();
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_TRUE(problem.value().agreement_materialized());
  EXPECT_EQ(problem.value().num_agreement_lists(), 1u);
  EXPECT_EQ(problem.value().TotalEntries(), entries_deferred)
      << "deferred-entry accounting must equal the built list's size";
  EXPECT_GT(lists[0].size(), 0u);

  // Non-pairwise consensus never defers (nothing to build).
  auto plain = rec.BuildProblem(group, SmallSpec());
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().agreement_deferred());
  EXPECT_FALSE(plain.value().uses_agreement_lists());
  EXPECT_EQ(plain.value().num_agreement_lists(), 0u);
}

}  // namespace
}  // namespace greca
