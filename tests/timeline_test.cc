// Unit tests for src/timeline: period semantics and timeline discretization.
#include <gtest/gtest.h>

#include "timeline/period.h"

namespace greca {
namespace {

constexpr Timestamp kYear = 365 * kSecondsPerDay;

TEST(PeriodTest, ContainsIsClosedOpen) {
  const Period p{100, 200};
  EXPECT_TRUE(p.Contains(100));
  EXPECT_TRUE(p.Contains(199));
  EXPECT_FALSE(p.Contains(200));
  EXPECT_FALSE(p.Contains(99));
  EXPECT_EQ(p.length(), 100);
}

TEST(PeriodTest, PrecedenceMatchesPaperDefinition) {
  const Period p1{0, 10};
  const Period p2{5, 20};
  EXPECT_TRUE(p1.Precedes(p2));
  EXPECT_FALSE(p2.Precedes(p1));
  EXPECT_TRUE(p1.Precedes(p1));  // s <= s and f <= f
}

TEST(TimelineTest, OneYearPeriodCountsMatchFigure4) {
  // The paper's Figure 4 reports 53 / 12 / 6 / 4 / 2 periods for one year.
  const auto count = [](Granularity g) {
    return Timeline::WithGranularity(0, kYear, g).num_periods();
  };
  EXPECT_EQ(count(Granularity::kWeek), 53u);
  EXPECT_EQ(count(Granularity::kMonth), 12u);
  EXPECT_EQ(count(Granularity::kTwoMonth), 6u);
  EXPECT_EQ(count(Granularity::kSeason), 4u);
  EXPECT_EQ(count(Granularity::kHalfYear), 2u);
}

TEST(TimelineTest, PeriodsAreConsecutiveAndCoverSpan) {
  const Timeline t = Timeline::WithGranularity(0, kYear, Granularity::kTwoMonth);
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), kYear);
  for (std::size_t p = 1; p < t.num_periods(); ++p) {
    EXPECT_EQ(t.period(static_cast<PeriodId>(p - 1)).finish,
              t.period(static_cast<PeriodId>(p)).start);
  }
}

TEST(TimelineTest, LastPeriodTruncated) {
  const Timeline t = Timeline::FixedWindows(0, 25, 10);
  ASSERT_EQ(t.num_periods(), 3u);
  EXPECT_EQ(t.period(2).start, 20);
  EXPECT_EQ(t.period(2).finish, 25);
}

TEST(TimelineTest, PeriodOfFindsContainingPeriod) {
  const Timeline t = Timeline::FixedWindows(0, 100, 10);
  EXPECT_EQ(t.PeriodOf(0), 0u);
  EXPECT_EQ(t.PeriodOf(9), 0u);
  EXPECT_EQ(t.PeriodOf(10), 1u);
  EXPECT_EQ(t.PeriodOf(95), 9u);
  EXPECT_EQ(t.PeriodOf(100), t.num_periods());  // outside
  EXPECT_EQ(t.PeriodOf(-1), t.num_periods());
}

TEST(TimelineTest, PeriodsCompletedBy) {
  const Timeline t = Timeline::FixedWindows(0, 100, 10);
  EXPECT_EQ(t.PeriodsCompletedBy(0), 0u);
  EXPECT_EQ(t.PeriodsCompletedBy(10), 1u);
  EXPECT_EQ(t.PeriodsCompletedBy(15), 1u);
  EXPECT_EQ(t.PeriodsCompletedBy(100), 10u);
  EXPECT_EQ(t.PeriodsCompletedBy(1'000), 10u);
}

TEST(TimelineTest, FromBoundariesVaryingLengths) {
  const Timeline t = Timeline::FromBoundaries({0, 5, 50, 51});
  ASSERT_EQ(t.num_periods(), 3u);
  EXPECT_EQ(t.period(0).length(), 5);
  EXPECT_EQ(t.period(1).length(), 45);
  EXPECT_EQ(t.period(2).length(), 1);
  EXPECT_EQ(t.PeriodOf(49), 1u);
}

TEST(GranularityTest, NamesAndOrder) {
  EXPECT_EQ(GranularityName(Granularity::kTwoMonth), "Two-Month");
  const auto all = AllGranularities();
  ASSERT_EQ(all.size(), 5u);
  // Figure 4 order: Week first, Half-Year last.
  EXPECT_EQ(all.front(), Granularity::kWeek);
  EXPECT_EQ(all.back(), Granularity::kHalfYear);
  // Lengths strictly increase along the figure's x-axis.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(GranularitySeconds(all[i - 1]), GranularitySeconds(all[i]));
  }
}

// Every enumerator maps through both switches — no silent fallthrough to a
// default (the old code read an unhandled value as one day / "Unknown";
// both functions are now exhaustive and abort on a corrupted value).
TEST(GranularityTest, EveryEnumeratorMapsExplicitly) {
  const std::vector<std::pair<Granularity, Timestamp>> seconds = {
      {Granularity::kWeek, 7 * kSecondsPerDay},
      {Granularity::kMonth, 31 * kSecondsPerDay},
      {Granularity::kTwoMonth, 61 * kSecondsPerDay},
      {Granularity::kSeason, 92 * kSecondsPerDay},
      {Granularity::kHalfYear, 183 * kSecondsPerDay},
  };
  const std::vector<std::pair<Granularity, std::string>> names = {
      {Granularity::kWeek, "Week"},
      {Granularity::kMonth, "Month"},
      {Granularity::kTwoMonth, "Two-Month"},
      {Granularity::kSeason, "Season"},
      {Granularity::kHalfYear, "Half-Year"},
  };
  ASSERT_EQ(seconds.size(), AllGranularities().size())
      << "new enumerator: extend the switches and this table";
  for (const auto& [g, s] : seconds) EXPECT_EQ(GranularitySeconds(g), s);
  for (const auto& [g, n] : names) {
    EXPECT_EQ(GranularityName(g), n);
    EXPECT_NE(GranularityName(g), "Unknown");
  }
}

}  // namespace
}  // namespace greca
