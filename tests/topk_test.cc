// Tests for the top-k framework: sorted lists, the problem encoding, the
// naive baseline, and the TA baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "test_util.h"
#include "topk/list_view.h"
#include "topk/naive.h"
#include "topk/problem.h"
#include "topk/sorted_list.h"
#include "topk/ta.h"

namespace greca {
namespace {

TEST(SortedListTest, SortsDescendingWithTiesById) {
  SortedList list = SortedList::FromUnsorted(
      {{2, 0.5}, {0, 0.9}, {3, 0.5}, {1, 0.1}}, 4);
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list.entry(0).id, 0u);
  EXPECT_EQ(list.entry(1).id, 2u);  // tie 0.5 -> lower id first
  EXPECT_EQ(list.entry(2).id, 3u);
  EXPECT_EQ(list.entry(3).id, 1u);
  EXPECT_DOUBLE_EQ(list.MaxScore(), 0.9);
}

TEST(SortedListTest, AccessCounting) {
  SortedList list = SortedList::FromUnsorted({{0, 0.9}, {1, 0.5}}, 2);
  AccessCounter counter;
  EXPECT_DOUBLE_EQ(list.ReadSequential(0, counter).score, 0.9);
  EXPECT_DOUBLE_EQ(list.RandomAccess(1, counter), 0.5);
  EXPECT_EQ(counter.sequential, 1u);
  EXPECT_EQ(counter.random, 1u);
  EXPECT_EQ(counter.total(), 2u);
}

TEST(SortedListTest, ScoreOfMissingKeyIsZero) {
  SortedList list = SortedList::FromUnsorted({{1, 0.5}}, 3);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(1), 0.5);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(0), 0.0);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(2), 0.0);
}

TEST(SortedListTest, ScoreOfKeyBeyondKeySpaceIsZeroNotUb) {
  // Regression: keys >= key_space used to index past position_of_key_.
  SortedList list = SortedList::FromUnsorted({{0, 0.9}, {1, 0.5}}, 2);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(2), 0.0);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(1'000'000), 0.0);
  AccessCounter counter;
  EXPECT_DOUBLE_EQ(list.RandomAccess(999, counter), 0.0);
  EXPECT_EQ(counter.random, 1u);
  // Empty lists are safe for any key.
  const SortedList empty;
  EXPECT_DOUBLE_EQ(empty.ScoreOfKey(0), 0.0);
}

TEST(SortedListTest, AssignUnsortedRebuildsInPlace) {
  SortedList list = SortedList::FromUnsorted({{0, 0.1}, {1, 0.2}, {2, 0.3}}, 3);
  const std::uint64_t before = SortedList::FromUnsortedCalls();
  const std::vector<ListEntry> entries{{0, 0.4}, {1, 0.9}};
  list.AssignUnsorted(entries, 4);
  EXPECT_EQ(SortedList::FromUnsortedCalls(), before);  // no FromUnsorted
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.key_space(), 4u);
  EXPECT_EQ(list.entry(0).id, 1u);
  EXPECT_EQ(list.entry(1).id, 0u);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(1), 0.9);
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(2), 0.0);  // stale entry gone
  EXPECT_DOUBLE_EQ(list.ScoreOfKey(3), 0.0);  // missing in new key space
}

TEST(ListViewTest, AdapterMatchesSortedList) {
  const SortedList list =
      SortedList::FromUnsorted({{2, 0.5}, {0, 0.9}, {1, 0.1}}, 3);
  const ListView view(list);
  EXPECT_EQ(view.size(), list.size());
  EXPECT_EQ(view.key_space(), 3u);
  EXPECT_DOUBLE_EQ(view.MaxScore(), list.MaxScore());
  for (ListKey key = 0; key < 3; ++key) {
    EXPECT_FALSE(view.IsTombstoned(key));
    EXPECT_DOUBLE_EQ(view.ScoreOfKey(key), list.ScoreOfKey(key));
  }
  EXPECT_TRUE(view.IsTombstoned(3));
  EXPECT_DOUBLE_EQ(view.ScoreOfKey(7), 0.0);
  AccessCounter counter;
  std::size_t cursor = 0;
  for (std::size_t pos = 0; pos < list.size(); ++pos) {
    ASSERT_TRUE(view.SkipToLive(cursor));
    EXPECT_EQ(view.ReadSequential(cursor, counter), list.entry(pos));
  }
  EXPECT_FALSE(view.SkipToLive(cursor));
  EXPECT_EQ(counter.sequential, 3u);
}

TEST(GroupProblemTest, TotalEntriesSumsAllLists) {
  Rng rng(81);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 20, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  // 3 lists × 20 items + 3 pairs static + 2 × 3 pairs periodic = 69.
  EXPECT_EQ(problem.TotalEntries(), 69u);
  EXPECT_EQ(problem.num_pairs(), 3u);
  EXPECT_EQ(problem.num_periods(), 2u);
}

TEST(GroupProblemTest, MemberPreferencesMatchFormula) {
  // Hand-checkable 2-member group: pref_u = (apref_u + aff*apref_v)/2.
  Rng rng(83);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 2, 5, 0, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::TimeAgnostic());
  const std::vector<double> apref{0.8, 0.4};
  const std::vector<double> aff{0.5};
  std::vector<double> prefs(2);
  problem.MemberPreferences(apref, aff, prefs);
  EXPECT_NEAR(prefs[0], (0.8 + 0.5 * 0.4) / 2.0, 1e-12);
  EXPECT_NEAR(prefs[1], (0.4 + 0.5 * 0.8) / 2.0, 1e-12);
}

TEST(GroupProblemTest, ExactScoreIsConsensusOfMemberPreferences) {
  Rng rng(87);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 4, 10, 3, ConsensusSpec::PairwiseDisagreement(0.8),
      AffinityModelSpec::Default());
  ASSERT_TRUE(problem.uses_agreement_lists());
  // Recompute by hand through public pieces.
  const std::vector<double> pair_aff = problem.ExactPairAffinities();
  std::vector<double> apref(4), prefs(4);
  std::vector<double> agreements(problem.agreement_lists().size());
  for (ListKey item = 0; item < 10; ++item) {
    for (std::size_t u = 0; u < 4; ++u) {
      apref[u] = problem.preference_lists()[u].ScoreOfKey(item);
    }
    problem.MemberPreferences(apref, pair_aff, prefs);
    for (std::size_t q = 0; q < agreements.size(); ++q) {
      agreements[q] = problem.agreement_lists()[q].ScoreOfKey(item);
    }
    EXPECT_NEAR(problem.ExactScore(item),
                ConsensusScoreWithAgreements(problem.consensus(), prefs,
                                             agreements),
                1e-12);
  }
}

TEST(GroupProblemTest, AgreementListsMatchPreferenceDifferences) {
  Rng rng(89);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 12, 1, ConsensusSpec::PairwiseDisagreement(0.2),
      AffinityModelSpec::Default());
  ASSERT_EQ(problem.agreement_lists().size(), 3u);
  for (ListKey item = 0; item < 12; ++item) {
    std::size_t q = 0;
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b, ++q) {
        const double expected =
            1.0 - problem.consensus().disagreement_scale *
                      std::abs(problem.preference_lists()[a].ScoreOfKey(item) -
                               problem.preference_lists()[b].ScoreOfKey(item));
        EXPECT_NEAR(problem.agreement_lists()[q].ScoreOfKey(item), expected,
                    1e-12);
      }
    }
  }
}

TEST(GroupProblemTest, AggregatedAgreementListEqualsPairMean) {
  Rng rng(90);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 4, 10, 1, ConsensusSpec::PairwiseDisagreement(0.5),
      AffinityModelSpec::Default());
  const SortedList aggregated = BuildGroupAgreementList(
      problem.preference_lists(), 10, problem.consensus().disagreement_scale);
  for (ListKey item = 0; item < 10; ++item) {
    double mean = 0.0;
    for (const auto& list : problem.agreement_lists()) {
      mean += list.ScoreOfKey(item);
    }
    mean /= static_cast<double>(problem.agreement_lists().size());
    EXPECT_NEAR(aggregated.ScoreOfKey(item), mean, 1e-12);
  }
}

TEST(NaiveTopKTest, ReadsEverythingAndRanksExactly) {
  Rng rng(91);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 30, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  const TopKResult result = NaiveTopK(problem, 5);
  EXPECT_EQ(result.accesses.sequential, problem.TotalEntries());
  EXPECT_DOUBLE_EQ(result.SequentialAccessPercent(), 100.0);
  EXPECT_DOUBLE_EQ(result.SaveupPercent(), 0.0);
  EXPECT_FALSE(result.early_terminated);
  ASSERT_EQ(result.items.size(), 5u);
  // Scores descending and equal to exact scores.
  for (std::size_t i = 0; i < result.items.size(); ++i) {
    EXPECT_NEAR(result.items[i].score, problem.ExactScore(result.items[i].id),
                1e-12);
    if (i > 0) {
      EXPECT_GE(result.items[i - 1].score, result.items[i].score);
    }
  }
  // Verify against brute force over all items.
  std::vector<double> all;
  for (ListKey item = 0; item < 30; ++item) {
    all.push_back(problem.ExactScore(item));
  }
  std::sort(all.begin(), all.end(), std::greater<>());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.items[i].score, all[i], 1e-12);
  }
}

TEST(TaTopKTest, FindsSameItemsetAsNaive) {
  Rng rng(93);
  for (int trial = 0; trial < 20; ++trial) {
    const GroupProblem problem = testing::MakeRandomProblem(
        rng, 3, 40, 2, ConsensusSpec::AveragePreference(),
        AffinityModelSpec::Default());
    const TopKResult naive = NaiveTopK(problem, 5);
    const TopKResult ta = TaTopK(problem, 5);
    ASSERT_EQ(ta.items.size(), 5u);
    const auto naive_scores = testing::ExactScoresSorted(problem, naive.items);
    const auto ta_scores = testing::ExactScoresSorted(problem, ta.items);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(ta_scores[i], naive_scores[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(TaTopKTest, ChargesRandomAccesses) {
  Rng rng(97);
  const GroupProblem problem = testing::MakeRandomProblem(
      rng, 3, 50, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  const TopKResult ta = TaTopK(problem, 3);
  // TA must have charged affinity + preference RAs for each scored item:
  // per item 2 apref RAs + 3 users × 2 pairs × 3 lists = 18 affinity RAs.
  EXPECT_GT(ta.accesses.random, ta.accesses.sequential);
}

TEST(TaTopKTest, RunningExampleChargesPaperRaCount) {
  // Paper §3.1: scoring one item of the 3-user, 2-period example costs
  // ~21 RAs (3 apref + 18 affinity; we charge 2 apref since the item was
  // found via SA in one list, plus 18 affinity = 20 per item).
  const GroupProblem problem = testing::MakeRunningExampleProblem(
      ConsensusSpec::AveragePreference(), AffinityModelSpec::Default());
  const TopKResult ta = TaTopK(problem, 1);
  ASSERT_FALSE(ta.items.empty());
  // First round scores up to 3 distinct items -> RA count is a multiple of 20.
  EXPECT_EQ(ta.accesses.random % 20, 0u);
  EXPECT_GE(ta.accesses.random, 20u);
}

}  // namespace
}  // namespace greca
