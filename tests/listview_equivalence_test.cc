// Equivalence suite for the zero-copy access layer: GRECA, TA and the naive
// scan over tombstone-masked, prefix-sliced ListViews must return exactly the
// top-k sets and access counts the seed's owning-SortedList path returns on
// the same logical problem. Also pins the facade-level guarantees: BuildProblem
// performs no per-query preference-list sort (no SortedList::FromUnsorted),
// and a prefix slice of a large pool behaves like a dedicated small pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/greca.h"
#include "core/group_recommender.h"
#include "topk/list_view.h"
#include "topk/naive.h"
#include "topk/problem.h"
#include "topk/ta.h"

namespace greca {
namespace {

// One randomized logical problem realized twice: through restricted views
// over full-pool lists (pool keys, dead entries skipped) and through owning
// lists materialized over exactly the live keys (dense keys, seed-style).
struct EquivalenceCase {
  // View-path storage (must outlive view_problem).
  std::vector<SortedList> full_pref;
  std::vector<std::uint64_t> tombstones;
  std::vector<ListView> pref_views;
  SortedList view_static;
  std::vector<SortedList> view_periods;
  std::vector<ListView> period_views;
  SortedList view_agreement;
  std::vector<ListView> agreement_views;

  /// Dense owning key -> pool view key (ascending).
  std::vector<ListKey> live_keys;

  std::optional<GroupProblem> view_problem;
  std::optional<GroupProblem> owning_problem;
};

EquivalenceCase MakeCase(Rng& rng, std::size_t g, std::size_t pool,
                         std::size_t prefix, double tombstone_prob,
                         std::size_t num_periods,
                         const ConsensusSpec& consensus,
                         const AffinityModelSpec& model) {
  EquivalenceCase c;

  // Member scores over the full pool.
  std::vector<std::vector<double>> scores(g, std::vector<double>(pool));
  for (auto& row : scores) {
    for (double& s : row) s = rng.NextDouble();
  }
  for (std::size_t u = 0; u < g; ++u) {
    std::vector<ListEntry> entries;
    entries.reserve(pool);
    for (ListKey key = 0; key < pool; ++key) {
      entries.push_back({key, scores[u][key]});
    }
    c.full_pref.push_back(SortedList::FromUnsorted(
        std::move(entries), static_cast<ListKey>(pool)));
  }

  // Tombstones over the prefix; keep at least one live key.
  c.tombstones.assign((prefix + 63) / 64, 0);
  for (ListKey key = 0; key < prefix; ++key) {
    if (rng.NextBool(tombstone_prob)) {
      c.tombstones[key >> 6] |= 1ull << (key & 63u);
    }
  }
  c.tombstones[0] &= ~1ull;  // key 0 always live
  for (ListKey key = 0; key < prefix; ++key) {
    if (!((c.tombstones[key >> 6] >> (key & 63u)) & 1u)) {
      c.live_keys.push_back(key);
    }
  }
  const std::size_t live = c.live_keys.size();

  for (std::size_t u = 0; u < g; ++u) {
    c.pref_views.emplace_back(c.full_pref[u].keys(), c.full_pref[u].scores(),
                              c.full_pref[u].key_positions(), prefix, live,
                              c.tombstones);
  }

  // Affinity lists (pair-keyed, identical on both paths).
  const auto pairs = static_cast<ListKey>(NumUserPairs(g));
  std::vector<ListEntry> pair_entries;
  for (ListKey q = 0; q < pairs; ++q) {
    pair_entries.push_back({q, rng.NextDouble()});
  }
  c.view_static = SortedList::FromUnsorted(pair_entries, pairs);
  SortedList own_static = c.view_static;

  std::vector<double> averages;
  std::vector<SortedList> own_periods;
  const bool temporal = model.affinity_aware && model.time_aware;
  for (std::size_t t = 0; temporal && t < num_periods; ++t) {
    std::vector<ListEntry> entries;
    for (ListKey q = 0; q < pairs; ++q) {
      entries.push_back({q, rng.NextDouble()});
    }
    c.view_periods.push_back(SortedList::FromUnsorted(entries, pairs));
    own_periods.push_back(c.view_periods.back());
    averages.push_back(rng.NextDouble(0.0, 0.5));
  }
  for (const SortedList& list : c.view_periods) {
    c.period_views.emplace_back(list);
  }

  // Owning preference lists: dense re-key of the live keys, seed-style.
  std::vector<SortedList> own_pref;
  for (std::size_t u = 0; u < g; ++u) {
    std::vector<ListEntry> entries;
    entries.reserve(live);
    for (ListKey dense = 0; dense < live; ++dense) {
      entries.push_back({dense, scores[u][c.live_keys[dense]]});
    }
    own_pref.push_back(SortedList::FromUnsorted(std::move(entries),
                                                static_cast<ListKey>(live)));
  }

  // Aggregated group-agreement list (the facade layout) on both paths.
  std::vector<SortedList> own_agreement;
  const bool pairwise =
      consensus.disagreement == DisagreementKind::kPairwise && g >= 2;
  if (pairwise) {
    std::vector<ListEntry> scratch;
    BuildGroupAgreementListInto(c.pref_views, prefix,
                                consensus.disagreement_scale, scratch,
                                c.view_agreement);
    c.agreement_views.emplace_back(c.view_agreement);
    own_agreement.push_back(BuildGroupAgreementList(
        own_pref, live, consensus.disagreement_scale));
  }

  c.view_problem.emplace(prefix, live, c.pref_views,
                         ListView(c.view_static), c.period_views,
                         AffinityCombiner(model, averages), consensus,
                         c.agreement_views);
  c.owning_problem.emplace(live, std::move(own_pref), std::move(own_static),
                           std::move(own_periods),
                           AffinityCombiner(model, std::move(averages)),
                           consensus, std::move(own_agreement));
  return c;
}

void ExpectEquivalent(const TopKResult& view, const TopKResult& owning,
                      const std::vector<ListKey>& live_keys,
                      const std::string& label) {
  EXPECT_EQ(view.accesses.sequential, owning.accesses.sequential) << label;
  EXPECT_EQ(view.accesses.random, owning.accesses.random) << label;
  EXPECT_EQ(view.total_entries, owning.total_entries) << label;
  EXPECT_EQ(view.rounds, owning.rounds) << label;
  EXPECT_EQ(view.early_terminated, owning.early_terminated) << label;
  ASSERT_EQ(view.items.size(), owning.items.size()) << label;
  for (std::size_t i = 0; i < view.items.size(); ++i) {
    ASSERT_LT(owning.items[i].id, live_keys.size()) << label;
    EXPECT_EQ(view.items[i].id, live_keys[owning.items[i].id])
        << label << " item " << i;
    EXPECT_DOUBLE_EQ(view.items[i].score, owning.items[i].score)
        << label << " item " << i;
  }
}

TEST(ListViewEquivalenceTest, AllAlgorithmsMatchOwningPathOnRandomProblems) {
  Rng rng(20'150'317);
  const ConsensusSpec consensus_menu[] = {
      ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
      ConsensusSpec::PairwiseDisagreement(0.6),
      ConsensusSpec::VarianceDisagreement(0.8)};
  const AffinityModelSpec model_menu[] = {
      AffinityModelSpec::Default(), AffinityModelSpec::Continuous(),
      AffinityModelSpec::TimeAgnostic(), AffinityModelSpec::AffinityAgnostic()};

  for (int trial = 0; trial < 60; ++trial) {
    const auto g = static_cast<std::size_t>(rng.NextInt(1, 5));
    const auto pool = static_cast<std::size_t>(rng.NextInt(12, 60));
    const auto prefix = static_cast<std::size_t>(
        rng.NextInt(4, static_cast<std::int64_t>(pool)));
    const double tombstone_prob = rng.NextDouble(0.0, 0.5);
    const auto periods = static_cast<std::size_t>(rng.NextInt(1, 3));
    const ConsensusSpec& consensus = consensus_menu[rng.NextBounded(4)];
    const AffinityModelSpec& model = model_menu[rng.NextBounded(4)];

    EquivalenceCase c = MakeCase(rng, g, pool, prefix, tombstone_prob,
                                 periods, consensus, model);
    const GroupProblem& vp = *c.view_problem;
    const GroupProblem& op = *c.owning_problem;
    const std::size_t k = 1 + rng.NextBounded(5);
    const std::string label = "trial " + std::to_string(trial) + " g=" +
                              std::to_string(g) + " prefix=" +
                              std::to_string(prefix) + " live=" +
                              std::to_string(c.live_keys.size()) + " k=" +
                              std::to_string(k) + " " + consensus.Name() +
                              "/" + model.Name();

    EXPECT_EQ(vp.TotalEntries(), op.TotalEntries()) << label;
    EXPECT_EQ(vp.num_candidates(), op.num_candidates()) << label;

    ExpectEquivalent(NaiveTopK(vp, k), NaiveTopK(op, k), c.live_keys,
                     "naive " + label);
    ExpectEquivalent(TaTopK(vp, k), TaTopK(op, k), c.live_keys, "ta " + label);
    for (const TerminationPolicy policy :
         {TerminationPolicy::kBufferCondition,
          TerminationPolicy::kThresholdOnly}) {
      GrecaConfig config;
      config.k = k;
      config.termination = policy;
      ExpectEquivalent(Greca(vp, config), Greca(op, config), c.live_keys,
                       "greca " + label);
    }
  }
}

TEST(ListViewEquivalenceTest, ExactScoresMatchAcrossPaths) {
  Rng rng(77);
  EquivalenceCase c =
      MakeCase(rng, 3, 30, 20, 0.3, 2, ConsensusSpec::PairwiseDisagreement(0.5),
               AffinityModelSpec::Default());
  for (std::size_t dense = 0; dense < c.live_keys.size(); ++dense) {
    EXPECT_DOUBLE_EQ(c.view_problem->ExactScore(c.live_keys[dense]),
                     c.owning_problem->ExactScore(static_cast<ListKey>(dense)))
        << "dense key " << dense;
  }
}

// ---- Facade-level guarantees --------------------------------------------

class ZeroCopyFacadeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 200;
    uc.num_items = 260;
    uc.target_ratings = 16'000;
    uc.seed = 71;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 120;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* ZeroCopyFacadeTest::universe_ = nullptr;
FacebookStudy* ZeroCopyFacadeTest::study_ = nullptr;

TEST_F(ZeroCopyFacadeTest, BuildProblemPerformsNoPreferenceListSort) {
  RecommenderOptions options;
  options.max_candidate_items = 220;
  const GroupRecommender recommender(*universe_, *study_, options);
  const std::vector<UserId> group{1, 4, 9, 16};

  QueryWorkspace workspace;
  for (const ConsensusSpec& consensus :
       {ConsensusSpec::AveragePreference(),
        ConsensusSpec::PairwiseDisagreement(0.5)}) {
    QuerySpec spec;
    spec.k = 5;
    spec.num_candidate_items = 200;
    spec.consensus = consensus;
    // The acceptance hook: zero-copy assembly never calls FromUnsorted —
    // preference lists are index slices and affinity/agreement lists rebuild
    // arena-owned storage in place.
    const std::uint64_t before = SortedList::FromUnsortedCalls();
    const auto with_ws =
        recommender.BuildProblem(group, spec, nullptr, &workspace);
    ASSERT_TRUE(with_ws.ok());
    EXPECT_EQ(SortedList::FromUnsortedCalls(), before) << consensus.Name();
    // The workspace-less path allocates its own arena but still never sorts
    // a preference list.
    const auto owned = recommender.BuildProblem(group, spec);
    ASSERT_TRUE(owned.ok());
    EXPECT_EQ(SortedList::FromUnsortedCalls(), before) << consensus.Name();
  }
}

TEST_F(ZeroCopyFacadeTest, PrefixSliceMatchesDedicatedPool) {
  // Querying a 120-item prefix of a 220-item index must behave exactly like
  // a recommender whose whole pool is those 120 items.
  RecommenderOptions wide;
  wide.max_candidate_items = 220;
  RecommenderOptions narrow;
  narrow.max_candidate_items = 120;
  const GroupRecommender big(*universe_, *study_, wide);
  const GroupRecommender small(*universe_, *study_, narrow);

  QuerySpec spec;
  spec.k = 6;
  spec.num_candidate_items = 120;
  const std::vector<std::vector<UserId>> groups = {
      {0, 3, 7}, {2, 5, 11, 19}, {13}};
  for (const std::vector<UserId>& group : groups) {
    const Recommendation sliced = big.Recommend(group, spec).value();
    const Recommendation dedicated = small.Recommend(group, spec).value();
    EXPECT_EQ(sliced.items, dedicated.items);
    EXPECT_EQ(sliced.scores, dedicated.scores);
    EXPECT_EQ(sliced.raw.accesses.sequential,
              dedicated.raw.accesses.sequential);
    EXPECT_EQ(sliced.raw.accesses.random, dedicated.raw.accesses.random);
  }
}

TEST_F(ZeroCopyFacadeTest, WorkspaceProblemViewsStayValidUntilReuse) {
  RecommenderOptions options;
  options.max_candidate_items = 180;
  const GroupRecommender recommender(*universe_, *study_, options);
  QuerySpec spec;
  spec.k = 4;
  spec.num_candidate_items = 150;

  QueryWorkspace workspace;
  const std::vector<UserId> group{2, 6, 10};
  const auto ws_problem =
      recommender.BuildProblem(group, spec, nullptr, &workspace);
  ASSERT_TRUE(ws_problem.ok());
  const auto owned_problem = recommender.BuildProblem(group, spec);
  ASSERT_TRUE(owned_problem.ok());
  // Identical problems whether the arena is the workspace's or owned.
  EXPECT_EQ(ws_problem.value().TotalEntries(),
            owned_problem.value().TotalEntries());
  const TopKResult a = NaiveTopK(ws_problem.value(), spec.k);
  const TopKResult b = NaiveTopK(owned_problem.value(), spec.k);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].id, b.items[i].id);
    EXPECT_DOUBLE_EQ(a.items[i].score, b.items[i].score);
  }
}

}  // namespace
}  // namespace greca
