// Tests for item-based collaborative filtering.
#include <gtest/gtest.h>

#include <cmath>

#include "cf/item_knn.h"
#include "dataset/synthetic.h"

namespace greca {
namespace {

class ItemKnnTest : public ::testing::Test {
 protected:
  ItemKnnTest() {
    SyntheticRatingsConfig config;
    config.num_users = 200;
    config.num_items = 120;
    config.target_ratings = 8'000;
    config.min_ratings_per_user = 15;
    config.seed = 15;
    synthetic_ = GenerateSyntheticRatings(config);
  }
  SyntheticRatings synthetic_;
};

TEST_F(ItemKnnTest, NeighborsSortedAndSymmetricallyStored) {
  const ItemKnn model(synthetic_.dataset, {});
  std::size_t total = 0;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    const auto neighbors = model.Neighbors(i);
    total += neighbors.size();
    for (std::size_t n = 1; n < neighbors.size(); ++n) {
      EXPECT_GE(neighbors[n - 1].score, neighbors[n].score);
    }
    for (const auto& nb : neighbors) {
      EXPECT_NE(nb.id, i);  // no self-neighbors
      EXPECT_GE(nb.score, 0.05);
    }
  }
  EXPECT_GT(total, 0u);
}

TEST_F(ItemKnnTest, PredictionsOnRatingScale) {
  const ItemKnn model(synthetic_.dataset, {});
  const auto profile = synthetic_.dataset.RatingsOfUser(0);
  const auto preds = model.PredictAll(profile);
  ASSERT_EQ(preds.size(), synthetic_.dataset.num_items());
  for (const double p : preds) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 6.0);
  }
}

TEST_F(ItemKnnTest, EmptyProfilePredictsItemMeans) {
  const ItemKnn model(synthetic_.dataset, {});
  const ItemId top = synthetic_.dataset.TopPopularItems(1)[0];
  EXPECT_NEAR(model.Predict({}, top),
              synthetic_.dataset.ItemMeanRating(top, 3.5), 1e-9);
}

TEST_F(ItemKnnTest, ReconstructsHeldRatingsBetterThanMeans) {
  const ItemKnn model(synthetic_.dataset, {});
  double model_err = 0.0, mean_err = 0.0;
  std::size_t count = 0;
  for (UserId u = 0; u < 40; ++u) {
    const auto profile = synthetic_.dataset.RatingsOfUser(u);
    for (const auto& e : profile) {
      model_err += std::abs(model.Predict(profile, e.item) - e.rating);
      mean_err += std::abs(
          synthetic_.dataset.ItemMeanRating(e.item, 3.5) - e.rating);
      ++count;
    }
  }
  EXPECT_LT(model_err / static_cast<double>(count),
            mean_err / static_cast<double>(count));
}

TEST_F(ItemKnnTest, MinOverlapFiltersSparsePairs) {
  ItemKnnConfig strict;
  strict.min_overlap = 1'000;  // impossible at this scale
  const ItemKnn model(synthetic_.dataset, strict);
  for (ItemId i = 0; i < model.num_items(); ++i) {
    EXPECT_TRUE(model.Neighbors(i).empty());
  }
}

TEST_F(ItemKnnTest, NeighborCountRespectsConfig) {
  ItemKnnConfig narrow;
  narrow.num_neighbors = 3;
  const ItemKnn model(synthetic_.dataset, narrow);
  for (ItemId i = 0; i < model.num_items(); ++i) {
    EXPECT_LE(model.Neighbors(i).size(), 3u);
  }
}

}  // namespace
}  // namespace greca
