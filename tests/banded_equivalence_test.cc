// Banded-vs-flat layout equivalence: popularity-banded index rows must be
// observationally identical to the globally sorted flat layout — bit-identical
// recommendations AND identical sequential/random access counts across all
// three algorithms — while cutting the raw entries an exhaustive scan over a
// prefix-restricted view walks from ~full-row to within 2x of the prefix.
//
// Three levels:
//  * ListView: randomized banded rows walked head-to-head against flat rows
//    (merged order, counters, MaxScore/PeekScore/ScoreOfKey, cursor rewind);
//  * facade: two GroupRecommenders differing only in RecommenderOptions::
//    index_layout, randomized groups/pools/specs, all algorithms — including
//    after ApplyRatingUpdates rebuilds rows through CloneWithUpdatedRows;
//  * cost model: scan_footprint() of small-prefix views (the acceptance
//    criterion the bench_batch layout sweep measures as qps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/greca.h"
#include "core/group_recommender.h"
#include "index/preference_index.h"
#include "topk/list_view.h"
#include "topk/naive.h"
#include "topk/simd.h"
#include "topk/ta.h"

namespace greca {
namespace {

// ---- View-level equivalence ----------------------------------------------

/// One user row realized in a given band layout: SoA keys/scores in band
/// order (per-band descending score, ties ascending key), key→position map,
/// and the band boundary array. Empty `breakpoints` = flat (one band).
struct LayoutRow {
  std::vector<ListKey> keys;
  std::vector<Score> scores;
  std::vector<std::uint32_t> positions;
  std::vector<std::uint32_t> bounds;
};

LayoutRow MakeRow(const std::vector<double>& scores,
                  const std::vector<std::uint32_t>& breakpoints) {
  LayoutRow row;
  const auto n = static_cast<std::uint32_t>(scores.size());
  row.bounds.push_back(0);
  for (const std::uint32_t b : breakpoints) {
    if (b > 0 && b < n) row.bounds.push_back(b);
  }
  row.bounds.push_back(n);

  std::vector<ListEntry> entries;
  entries.reserve(n);
  for (std::uint32_t key = 0; key < n; ++key) {
    entries.push_back({key, scores[key]});
  }
  for (std::size_t b = 0; b + 1 < row.bounds.size(); ++b) {
    std::sort(entries.begin() + row.bounds[b],
              entries.begin() + row.bounds[b + 1], ListEntryOrder{});
  }
  row.keys.resize(n);
  row.scores.resize(n);
  row.positions.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    row.keys[p] = entries[p].id;
    row.scores[p] = entries[p].score;
    row.positions[entries[p].id] = p;
  }
  return row;
}

/// The covered-band view over a banded row, mirroring
/// PreferenceIndex::UserView's band selection.
ListView BandedView(const LayoutRow& row, std::size_t prefix,
                    std::span<const std::uint64_t> tombstones,
                    std::size_t live) {
  std::size_t nb = 1;
  while (row.bounds[nb] < prefix) ++nb;
  const std::span<const ListKey> keys{row.keys.data(), row.bounds[nb]};
  const std::span<const Score> scores{row.scores.data(), row.bounds[nb]};
  if (nb == 1) {
    return ListView(keys, scores, row.positions, prefix, live, tombstones);
  }
  return ListView(keys, scores, row.positions, prefix, live, tombstones,
                  std::span<const std::uint32_t>(row.bounds.data(), nb + 1));
}

TEST(BandedListViewTest, MergedWalkMatchesFlatWalkOnRandomRows) {
  Rng rng(20'260'729);
  for (int trial = 0; trial < 80; ++trial) {
    const auto pool = static_cast<std::size_t>(rng.NextInt(8, 96));
    std::vector<double> scores(pool);
    for (double& s : scores) {
      // Coarse quantization forces plenty of score ties so the merged
      // tie-break (ascending key) is actually exercised.
      s = static_cast<double>(rng.NextBounded(8)) / 8.0;
    }
    // Geometric grid with a small first band; every trial gets >= 2 bands.
    const std::vector<std::uint32_t> breakpoints =
        PreferenceIndex::GeometricBandBreakpoints(
            pool, static_cast<std::size_t>(rng.NextInt(2, 5)));
    const LayoutRow flat = MakeRow(scores, {});
    const LayoutRow banded = MakeRow(scores, breakpoints);

    const auto prefix = static_cast<std::size_t>(
        rng.NextInt(1, static_cast<std::int64_t>(pool)));
    std::vector<std::uint64_t> tombstones((prefix + 63) / 64, 0);
    std::size_t live = 0;
    for (std::uint32_t key = 0; key < prefix; ++key) {
      if (rng.NextBool(0.3)) {
        tombstones[key >> 6] |= 1ull << (key & 63u);
      } else {
        ++live;
      }
    }
    const ListView fv(std::span<const ListKey>(flat.keys),
                      std::span<const Score>(flat.scores), flat.positions,
                      prefix, live, tombstones);
    const ListView bv = BandedView(banded, prefix, tombstones, live);
    const std::string label = "trial " + std::to_string(trial) + " pool=" +
                              std::to_string(pool) + " prefix=" +
                              std::to_string(prefix) + " bands=" +
                              std::to_string(bv.num_bands());

    EXPECT_EQ(fv.size(), bv.size()) << label;
    EXPECT_DOUBLE_EQ(fv.MaxScore(), bv.MaxScore()) << label;
    for (std::uint32_t key = 0; key < pool; ++key) {
      EXPECT_DOUBLE_EQ(fv.ScoreOfKey(key), bv.ScoreOfKey(key))
          << label << " key " << key;
    }

    // Two complete walks over the SAME banded view: the second rewinds the
    // cursor to 0 and must replay identically (merge-state reset).
    for (int pass = 0; pass < 2; ++pass) {
      AccessCounter fc, bc;
      std::size_t fcur = 0, bcur = 0;
      std::size_t read = 0;
      for (;;) {
        const bool f_more = fv.SkipToLive(fcur);
        const bool b_more = bv.SkipToLive(bcur);
        ASSERT_EQ(f_more, b_more) << label << " pass " << pass;
        if (!f_more) break;
        EXPECT_DOUBLE_EQ(fv.PeekScore(fcur), bv.PeekScore(bcur))
            << label << " pass " << pass;
        const ListEntry& fe = fv.ReadSequential(fcur, fc);
        const ListEntry& be = bv.ReadSequential(bcur, bc);
        ASSERT_EQ(fe.id, be.id) << label << " pass " << pass << " read " << read;
        EXPECT_DOUBLE_EQ(fe.score, be.score) << label;
        // An uncounted MaxScore mid-walk must not perturb the merge.
        if (read % 5 == 2) {
          EXPECT_DOUBLE_EQ(fv.MaxScore(), bv.MaxScore());
        }
        ++read;
      }
      EXPECT_EQ(read, live) << label;
      EXPECT_EQ(fc.sequential, bc.sequential) << label;
      EXPECT_EQ(fc.sequential, live) << label;
    }

    // The cost model: the banded view walks at most up to the first band
    // boundary past the prefix; the flat view spans the whole row.
    EXPECT_EQ(fv.scan_footprint(), pool) << label;
    std::size_t bound = banded.bounds.back();
    for (const std::uint32_t b : banded.bounds) {
      if (b >= prefix) {
        bound = b;
        break;
      }
    }
    EXPECT_EQ(bv.scan_footprint(), bound) << label;
  }
}

// ---- SoA-vs-AoS oracle ---------------------------------------------------

/// Walks `view` to exhaustion and asserts it yields exactly `expected` (the
/// AoS oracle's live entries in merged order) with one counted sequential
/// access per live entry. `passes` > 1 rewinds the cursor between passes.
void ExpectWalkMatchesOracle(const ListView& view,
                             const std::vector<ListEntry>& expected,
                             int passes, const std::string& label) {
  const std::size_t live = expected.size();
  EXPECT_EQ(view.size(), live) << label;
  EXPECT_EQ(view.empty(), live == 0) << label;
  EXPECT_DOUBLE_EQ(view.MaxScore(), live == 0 ? 0.0 : expected[0].score)
      << label;
  for (int pass = 0; pass < passes; ++pass) {
    AccessCounter counter;
    std::size_t cursor = 0;
    std::size_t read = 0;
    while (view.SkipToLive(cursor)) {
      ASSERT_LT(read, live) << label << " pass " << pass;
      EXPECT_DOUBLE_EQ(view.PeekScore(cursor), expected[read].score)
          << label << " pass " << pass << " read " << read;
      const ListEntry e = view.ReadSequential(cursor, counter);
      ASSERT_EQ(e.id, expected[read].id)
          << label << " pass " << pass << " read " << read;
      EXPECT_DOUBLE_EQ(e.score, expected[read].score) << label;
      ++read;
    }
    EXPECT_EQ(read, live) << label << " pass " << pass;
    EXPECT_EQ(counter.sequential, live) << label << " pass " << pass;
  }
}

TEST(BandedListViewTest, SoAWalkMatchesAoSOracle) {
  // Independent AoS model: the row mirrored as interleaved entries, liveness
  // decided by plain scalar code (no ListView, no simd.h), merged order =
  // one global ListEntryOrder sort of the live entries. Pool lengths cover
  // every tail residue of the vector width (plus 37, coprime to any lane
  // count), so the SIMD kernel's scalar tail and partial final blocks are on
  // the tested path; density 1.0 is the fully-tombstoned prefix (live = 0).
  Rng rng(20'270'101);
  std::vector<std::size_t> pools;
  for (std::size_t p = 1; p <= 2 * simd::kLanes + 1; ++p) pools.push_back(p);
  pools.push_back(37);
  pools.push_back(4 * simd::kLanes + 5);
  const double densities[] = {0.0, 0.35, 1.0};

  for (const std::size_t pool : pools) {
    for (const double density : densities) {
      for (const bool banded : {false, true}) {
        std::vector<double> scores(pool);
        for (double& s : scores) {
          s = static_cast<double>(rng.NextBounded(6)) / 6.0;  // force ties
        }
        const std::vector<std::uint32_t> breakpoints =
            banded ? PreferenceIndex::GeometricBandBreakpoints(pool, 2)
                   : std::vector<std::uint32_t>{};
        const LayoutRow row = MakeRow(scores, breakpoints);
        const auto prefix = static_cast<std::size_t>(
            rng.NextInt(1, static_cast<std::int64_t>(pool)));
        std::vector<std::uint64_t> tombstones((prefix + 63) / 64, 0);
        for (std::uint32_t key = 0; key < prefix; ++key) {
          if (density == 1.0 || rng.NextBool(density)) {
            tombstones[key >> 6] |= 1ull << (key & 63u);
          }
        }

        std::vector<ListEntry> expected;
        for (std::size_t p = 0; p < row.keys.size(); ++p) {
          const ListKey key = row.keys[p];
          const bool dead =
              key >= prefix ||
              ((tombstones[key >> 6] >> (key & 63u)) & 1u) != 0;
          if (!dead) expected.push_back({key, row.scores[p]});
        }
        std::sort(expected.begin(), expected.end(), ListEntryOrder{});

        const ListView view =
            banded ? BandedView(row, prefix, tombstones, expected.size())
                   : ListView(std::span<const ListKey>(row.keys),
                              std::span<const Score>(row.scores),
                              row.positions, prefix, expected.size(),
                              tombstones);
        ExpectWalkMatchesOracle(
            view, expected, /*passes=*/1,
            "pool=" + std::to_string(pool) + " density=" +
                std::to_string(density) + (banded ? " banded" : " flat") +
                " prefix=" + std::to_string(prefix));
      }
    }
  }
}

TEST(BandedListViewTest, SingleEntryBandsMergeAndRewind) {
  // Every band holds exactly one entry (the kMaxBands-wide degenerate grid):
  // each consumed head immediately exhausts its band, so the merge runs on
  // sentinel heads almost from the start — the hardest case for the loser
  // tree's exhausted-head handling. Scores are coarsely quantized so the
  // ascending-key tiebreak decides most of the merged order.
  const std::size_t n = ListView::kMaxBands;
  Rng rng(4242);
  std::vector<double> scores(n);
  for (double& s : scores) s = static_cast<double>(rng.NextBounded(4)) / 4.0;
  std::vector<std::uint32_t> breakpoints;
  for (std::uint32_t b = 1; b < n; ++b) breakpoints.push_back(b);
  const LayoutRow row = MakeRow(scores, breakpoints);
  ASSERT_EQ(row.bounds.size(), n + 1);

  for (const std::size_t prefix : {n, n / 2 + 1, std::size_t{1}}) {
    std::vector<std::uint64_t> tombstones(1, 0);
    std::vector<ListEntry> expected;
    for (std::uint32_t key = 0; key < n; ++key) {
      if (key < prefix && key % 3 != 1) {
        expected.push_back({key, scores[key]});
      } else if (key < prefix) {
        tombstones[0] |= 1ull << key;
      }
    }
    std::sort(expected.begin(), expected.end(), ListEntryOrder{});
    const ListView view = BandedView(row, prefix, tombstones, expected.size());
    ExpectWalkMatchesOracle(view, expected, /*passes=*/2,
                            "single-entry bands prefix=" +
                                std::to_string(prefix));
  }
}

// ---- Facade-level equivalence --------------------------------------------

class BandedFacadeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 200;
    uc.num_items = 260;
    uc.target_ratings = 16'000;
    uc.seed = 929;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 120;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static RecommenderOptions Options(IndexLayout layout) {
    RecommenderOptions options;
    options.max_candidate_items = 240;
    options.index_layout = layout;
    options.min_band_size = 32;  // several bands even at this test scale
    return options;
  }

  static std::vector<UserId> RandomGroup(Rng& rng, std::size_t size,
                                         std::size_t num_participants) {
    std::vector<UserId> group;
    while (group.size() < size) {
      const auto u = static_cast<UserId>(rng.NextBounded(num_participants));
      if (std::find(group.begin(), group.end(), u) == group.end()) {
        group.push_back(u);
      }
    }
    return group;
  }

  /// Runs randomized queries against both recommenders and asserts
  /// bit-identical recommendations and access counts.
  static void ExpectEquivalentServing(const GroupRecommender& banded,
                                      const GroupRecommender& flat,
                                      std::uint64_t seed,
                                      const std::string& phase) {
    Rng rng(seed);
    const ConsensusSpec consensus_menu[] = {
        ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
        ConsensusSpec::PairwiseDisagreement(0.6)};
    const AffinityModelSpec model_menu[] = {AffinityModelSpec::Default(),
                                            AffinityModelSpec::TimeAgnostic()};
    const Algorithm algorithms[] = {Algorithm::kNaive, Algorithm::kTa,
                                    Algorithm::kGreca};
    const std::size_t participants = banded.study().num_participants();
    QueryWorkspace banded_ws, flat_ws;

    for (int trial = 0; trial < 12; ++trial) {
      const auto g = static_cast<std::size_t>(rng.NextInt(1, 5));
      const std::vector<UserId> group = RandomGroup(rng, g, participants);
      QuerySpec spec;
      spec.k = 1 + rng.NextBounded(8);
      spec.num_candidate_items =
          static_cast<std::size_t>(rng.NextInt(8, 240));
      spec.consensus = consensus_menu[rng.NextBounded(3)];
      spec.model = model_menu[rng.NextBounded(2)];
      for (const Algorithm algorithm : algorithms) {
        spec.algorithm = algorithm;
        const std::string label =
            phase + " trial " + std::to_string(trial) + " alg " +
            std::to_string(static_cast<int>(algorithm)) + " pool " +
            std::to_string(spec.num_candidate_items) + " g " +
            std::to_string(g);
        const Recommendation b =
            banded.Recommend(group, spec, &banded_ws).value();
        const Recommendation f = flat.Recommend(group, spec, &flat_ws).value();
        EXPECT_EQ(b.items, f.items) << label;
        EXPECT_EQ(b.scores, f.scores) << label;
        EXPECT_EQ(b.raw.accesses.sequential, f.raw.accesses.sequential)
            << label;
        EXPECT_EQ(b.raw.accesses.random, f.raw.accesses.random) << label;
        EXPECT_EQ(b.raw.rounds, f.raw.rounds) << label;
        EXPECT_EQ(b.raw.total_entries, f.raw.total_entries) << label;
      }
    }
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* BandedFacadeTest::universe_ = nullptr;
FacebookStudy* BandedFacadeTest::study_ = nullptr;

TEST_F(BandedFacadeTest, AllAlgorithmsBitIdenticalAcrossLayouts) {
  const GroupRecommender banded(*universe_, *study_, Options(IndexLayout::kBanded));
  const GroupRecommender flat(*universe_, *study_, Options(IndexLayout::kFlat));
  EXPECT_GT(banded.preference_index().num_bands(), 1u);
  EXPECT_EQ(flat.preference_index().num_bands(), 1u);
  ExpectEquivalentServing(banded, flat, /*seed=*/41, "fresh");
}

TEST_F(BandedFacadeTest, EquivalenceSurvivesApplyUpdatesRowRebuilds) {
  GroupRecommender banded(*universe_, *study_, Options(IndexLayout::kBanded));
  GroupRecommender flat(*universe_, *study_, Options(IndexLayout::kFlat));

  // Same live-rating batches into both: touched rows rebuild through
  // CloneWithUpdatedRows and must land in the same layout-specific order.
  Rng rng(77);
  const std::size_t participants = study_->num_participants();
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<RatingEvent> events;
    for (int i = 0; i < 40; ++i) {
      RatingEvent e;
      e.user = static_cast<UserId>(rng.NextBounded(participants));
      e.item = static_cast<ItemId>(rng.NextBounded(260));
      e.rating = static_cast<Score>(rng.NextInt(1, 5));
      e.timestamp = 1'000'000 + batch * 1'000 + i;
      events.push_back(e);
    }
    ASSERT_TRUE(banded.ApplyRatingUpdates(events).ok());
    ASSERT_TRUE(flat.ApplyRatingUpdates(events).ok());
  }
  EXPECT_GT(banded.snapshot()->generation(), 1u);
  ExpectEquivalentServing(banded, flat, /*seed=*/43, "post-update");
}

TEST_F(BandedFacadeTest, SmallPrefixScanFootprintWithinTwiceThePrefix) {
  const GroupRecommender banded(*universe_, *study_, Options(IndexLayout::kBanded));
  const GroupRecommender flat(*universe_, *study_, Options(IndexLayout::kFlat));
  const std::size_t row = banded.preference_index().pool_size();
  const std::vector<UserId> group{1, 4, 9};

  QuerySpec spec;
  spec.num_candidate_items = row / 4;  // the small-pool workload (<= 25%)
  const GroupProblem banded_problem =
      banded.BuildProblem(group, spec).value();
  const GroupProblem flat_problem = flat.BuildProblem(group, spec).value();
  for (const ListView& view : banded_problem.preference_lists()) {
    EXPECT_LE(view.scan_footprint(), 2 * spec.num_candidate_items);
    EXPECT_GE(view.scan_footprint(), view.size());
  }
  for (const ListView& view : flat_problem.preference_lists()) {
    EXPECT_EQ(view.scan_footprint(), row);  // the skip-tail pathology
  }

  // Full-pool views cover the whole row in either layout.
  spec.num_candidate_items = row;
  const GroupProblem full = banded.BuildProblem(group, spec).value();
  for (const ListView& view : full.preference_lists()) {
    EXPECT_EQ(view.scan_footprint(), row);
  }
}

}  // namespace
}  // namespace greca
